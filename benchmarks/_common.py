"""Shared helpers for the figure-reproduction benchmarks.

Every benchmark regenerates one table or figure from the paper's
evaluation (Section 6 / Appendix F) at reduced scale, prints the
series it measured next to the paper's qualitative expectation, and
asserts the *shape*: orderings, rough factors, and trend directions.
Absolute numbers differ by design -- the substrate is a simulator,
not the authors' EC2 testbed (see EXPERIMENTS.md).
"""

from __future__ import annotations

from typing import Iterable, Sequence

#: Default reduced-scale knobs shared across microbenchmark figures.
#: (Small enough that the full 20-figure suite regenerates in minutes;
#: raise for tighter series -- shapes are already stable at this size.)
MICRO_TXNS = 2_500
MICRO_ITEMS = 150
TPCC_TXNS = 1_500
GEO_TXNS = 2_000


def message_summary(cluster) -> list[tuple[str, int]]:
    """Rows of the cluster's trace-derived message accounting."""
    stats = cluster.stats.messages
    return [
        ("sync broadcasts", stats.sync_broadcasts),
        ("votes", stats.vote_messages),
        ("cleanup runs", stats.cleanup_messages),
        ("treaty installs", stats.treaty_updates),
        ("2pc prepares", stats.prepare_messages),
        ("2pc decisions", stats.decision_messages),
        ("total", stats.total()),
    ]


def print_table(title: str, headers: Sequence[str], rows: Iterable[Sequence]) -> None:
    """Render an aligned table to stdout (captured by pytest -s)."""
    rows = [list(map(_fmt, row)) for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    print()
    print(f"=== {title} ===")
    print("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    for row in rows:
        print("  ".join(c.ljust(w) for c, w in zip(row, widths)))


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def assert_monotone(values: Sequence[float], increasing: bool, label: str,
                    tolerance: float = 0.0) -> None:
    """Assert a trend direction, allowing `tolerance` relative noise."""
    for a, b in zip(values, values[1:]):
        if increasing:
            assert b >= a * (1.0 - tolerance), (
                f"{label}: expected non-decreasing trend, got {values}"
            )
        else:
            assert b <= a * (1.0 + tolerance), (
                f"{label}: expected non-increasing trend, got {values}"
            )


def assert_factor(big: float, small: float, factor: float, label: str) -> None:
    """Assert `big` exceeds `small` by at least `factor`."""
    assert small > 0, f"{label}: degenerate baseline {small}"
    assert big / small >= factor, (
        f"{label}: expected >= {factor}x separation, got {big / small:.1f}x "
        f"({big:.1f} vs {small:.1f})"
    )


def once(benchmark, fn):
    """Run the experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
