"""Ablation: Fu-Malik MaxSAT vs the specialized budget solver.

DESIGN.md, Section 5: the faithful Fu-Malik reimplementation (the
paper used Z3's) and the exact budget-allocation DP must agree on the
optimum for treaty instances; the DP is orders of magnitude faster,
which is why the simulator uses it.
"""

import random
import time

from _common import once, print_table

from repro.logic.linear import LinearConstraint, LinearExpr
from repro.solver.fastmaxsat import BudgetInstance, solve_budget_allocation
from repro.solver.maxsat import fu_malik_maxsat


def _instances(n, rng):
    out = []
    for _ in range(n):
        sites = [f"s{k}" for k in range(rng.randint(2, 3))]
        out.append(
            BudgetInstance(
                sites=sites,
                required_total=rng.randint(-10, 20),
                soft_upper={
                    s: [rng.randint(-5, 15) for _ in range(rng.randint(1, 4))]
                    for s in sites
                },
            )
        )
    return out


def _fumalik_equivalent(inst):
    hard = [
        LinearConstraint.make(
            LinearExpr.make({s: -1 for s in inst.sites}), "<=", -inst.required_total
        )
    ]
    soft = [
        LinearConstraint.make(LinearExpr.make({s: 1}), "<=", u)
        for s in inst.sites
        for u in inst.soft_upper[s]
    ]
    return hard, soft


def test_ablation_maxsat_engines(benchmark):
    rng = random.Random(2024)
    instances = _instances(25, rng)

    def run():
        agreements = 0
        fast_time = 0.0
        fumalik_time = 0.0
        for inst in instances:
            t0 = time.perf_counter()
            fast = solve_budget_allocation(inst)
            fast_time += time.perf_counter() - t0

            hard, soft = _fumalik_equivalent(inst)
            t0 = time.perf_counter()
            fm = fu_malik_maxsat(hard, soft)
            fumalik_time += time.perf_counter() - t0

            if len(soft) - fm.cost == fast.satisfied:
                agreements += 1
        return agreements, fast_time, fumalik_time

    agreements, fast_time, fumalik_time = once(benchmark, run)

    print_table(
        "Ablation: MaxSAT engines on treaty instances",
        ["engine", "total time (s)", "per instance (ms)"],
        [
            ["budget DP", fast_time, 1000 * fast_time / len(instances)],
            ["Fu-Malik", fumalik_time, 1000 * fumalik_time / len(instances)],
        ],
    )
    print(f"optimum agreement: {agreements}/{len(instances)}")

    assert agreements == len(instances), "engines must find equal optima"
    assert fast_time * 10 < fumalik_time, (
        "the specialized solver should be at least 10x faster "
        f"({fast_time:.4f}s vs {fumalik_time:.4f}s)"
    )
