"""Ablation: parameterized symbolic tables vs Appendix A expansion.

DESIGN.md, Section 5: the Section 5.1 compression keeps the table
size independent of the array bound, while the literal Appendix A
nested-conditional encoding blows up with it -- the reason the
compression exists.  Both encodings are semantically equivalent
(tested in tests/lang/test_lpp.py); here we measure the blow-up.
"""

import time

from _common import once, print_table

from repro.analysis.symbolic import build_symbolic_table
from repro.lang.lpp import desugar_transaction
from repro.lang.parser import parse_program

SRC = """
array qty[{bound}]
transaction Buy(item) {{
  q := read(qty(@item));
  if q > 1 then {{ write(qty(@item) = q - 1) }} else {{ write(qty(@item) = 9) }}
}}
"""

BOUNDS = (2, 4, 8, 16)


def test_ablation_parameterized_tables(benchmark):
    def run():
        rows = []
        for bound in BOUNDS:
            prog = parse_program(SRC.format(bound=bound))
            tx = prog.transactions["Buy"]

            t0 = time.perf_counter()
            compressed = build_symbolic_table(
                desugar_transaction(tx, prog.arrays, mode="parameterized")
            )
            t_comp = time.perf_counter() - t0

            t0 = time.perf_counter()
            expanded = build_symbolic_table(
                desugar_transaction(tx, prog.arrays, mode="expand")
            )
            t_exp = time.perf_counter() - t0
            rows.append((bound, len(compressed), t_comp, len(expanded), t_exp))
        return rows

    rows = once(benchmark, run)

    print_table(
        "Ablation: symbolic table size, compressed vs expanded",
        ["bound", "rows (param)", "time (s)", "rows (expanded)", "time (s)"],
        rows,
    )

    # Compressed size is constant in the bound; expanded grows with it.
    param_sizes = [r[1] for r in rows]
    expanded_sizes = [r[3] for r in rows]
    assert len(set(param_sizes)) == 1 and param_sizes[0] == 2
    assert expanded_sizes == sorted(expanded_sizes)
    assert expanded_sizes[-1] >= 8 * param_sizes[-1]
