"""Ablation: treaty strategies (frozen / equal-split / optimized).

DESIGN.md, Section 5: the Theorem 4.3 default degenerates to
distributed locking (every write negotiates); the demarcation-style
equal split is optimal for uniform workloads; Algorithm 1's
workload-driven optimization matches equal-split on uniform loads and
beats it under site skew -- the paper's core claim for automatic
treaty generation.
"""

import random

from _common import once, print_table

from repro.workloads.micro import MicroWorkload


def _sync_ratio(strategy, site_weights, n=2500, seed=17):
    workload = MicroWorkload(
        num_items=40,
        refill=100,
        num_sites=2,
        site_weights=dict(site_weights),
        initial_qty="random",
        init_seed=seed,
    )
    cluster = workload.build_homeostasis(
        strategy=strategy, lookahead=60, cost_factor=4, seed=seed
    )
    rng = random.Random(seed)
    for _ in range(n):
        req = workload.next_request(rng)
        cluster.submit(req.tx_name, req.params)
    return cluster.stats.sync_ratio


def test_ablation_treaty_strategies(benchmark):
    def run():
        out = {}
        for label, weights in (("uniform", {0: 1.0, 1: 1.0}), ("skew-90/10", {0: 0.9, 1: 0.1})):
            for strategy in ("default", "equal-split", "optimized"):
                out[(label, strategy)] = _sync_ratio(strategy, weights)
        return out

    results = once(benchmark, run)

    rows = [
        [label]
        + [results[(label, s)] * 100 for s in ("default", "equal-split", "optimized")]
        for label in ("uniform", "skew-90/10")
    ]
    print_table(
        "Ablation: synchronization ratio by treaty strategy (%)",
        ["workload", "default", "equal-split", "optimized"],
        rows,
    )

    for label in ("uniform", "skew-90/10"):
        # Theorem 4.3's default = sync on every write.
        assert results[(label, "default")] == 1.0
        # Both real strategies are far below.
        assert results[(label, "equal-split")] < 0.2
        assert results[(label, "optimized")] < 0.2
    # Under skew, the workload-optimized treaties beat the equal split.
    assert (
        results[("skew-90/10", "optimized")]
        < results[("skew-90/10", "equal-split")]
    ), "Algorithm 1 should adapt budgets to site skew"
    # On uniform load they are comparable (within 2x).
    uniform_ratio = (
        results[("uniform", "optimized")] / results[("uniform", "equal-split")]
    )
    assert uniform_ratio < 2.0
