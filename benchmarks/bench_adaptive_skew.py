"""Adaptive vs static treaty allocation under Zipf site-load skew.

The coordination-avoidance literature's demand-proportional claim,
measured: a static (equal-split / demarcation OPT) allocation hands
every site the same share of each treaty's slack, so when the offered
load is skewed the hot site exhausts its budget and pays sync rounds
while cold sites hoard theirs.  The adaptive mode sizes each site's
split from the online demand estimator and refreshes proactively at
the low-watermark, so the sync ratio stays flat -- or falls -- as the
skew grows.

Two tables: the micro sweep over the Zipf exponent, and the TPC-C
subset at the high-skew point (scarce stock, so allocation is the
binding constraint).  Rebalance ratios are printed next to sync
ratios: the adaptive win must survive adding them back, proving the
drop is coordination avoided, not relabelled.
"""

from _common import print_table

from repro.sim.experiments import run_adaptive_skew

SKEW_SWEEP = (0.0, 1.0, 2.0)

TPCC_POINT = dict(
    workload="tpcc",
    skew=2.0,
    max_txns=1_000,
    num_items=30,
    initial_stock=35,
    seed=0,
    # The same point the harness gates in CI: long enough past the
    # estimator's learning phase that the honest-total comparison
    # (sync + rebalance) is meaningful.
    config_overrides={"duration_ms": 30_000.0},
)


def _run_sweep():
    micro = {
        skew: {
            mode: run_adaptive_skew(
                mode, skew=skew, workload="micro", max_txns=1_200, seed=0
            )
            for mode in ("static", "adaptive")
        }
        for skew in SKEW_SWEEP
    }
    tpcc = {
        mode: run_adaptive_skew(mode, **TPCC_POINT)
        for mode in ("static", "adaptive")
    }
    return micro, tpcc


def test_adaptive_skew(benchmark):
    micro, tpcc = benchmark.pedantic(_run_sweep, rounds=1, iterations=1)

    rows = []
    for skew, runs in micro.items():
        static, adaptive = runs["static"], runs["adaptive"]
        rows.append([
            skew,
            static.sync_ratio,
            adaptive.sync_ratio,
            adaptive.rebalance_ratio,
            adaptive.sync_ratio + adaptive.rebalance_ratio,
            static.latency_stats().p99,
            adaptive.latency_stats().p99,
        ])
    print_table(
        "Adaptive vs static sync ratio vs Zipf site skew (micro)",
        ["skew", "static sync", "adaptive sync", "adaptive reb",
         "adaptive total", "static p99", "adaptive p99"],
        rows,
    )

    t_static, t_adaptive = tpcc["static"], tpcc["adaptive"]
    print_table(
        "Adaptive vs static at the high-skew point (TPC-C, scarce stock)",
        ["mode", "sync ratio", "rebalance ratio", "total", "p99 (ms)"],
        [
            ["static", t_static.sync_ratio, 0.0, t_static.sync_ratio,
             t_static.latency_stats().p99],
            ["adaptive", t_adaptive.sync_ratio, t_adaptive.rebalance_ratio,
             t_adaptive.sync_ratio + t_adaptive.rebalance_ratio,
             t_adaptive.latency_stats().p99],
        ],
    )

    # The headline claim, on both workloads: at the high-skew point the
    # adaptive sync ratio is strictly below static's, and remains below
    # even counting every proactive refresh as a full negotiation.
    high = micro[SKEW_SWEEP[-1]]
    assert high["adaptive"].sync_ratio < high["static"].sync_ratio
    assert (
        high["adaptive"].sync_ratio + high["adaptive"].rebalance_ratio
        < high["static"].sync_ratio
    )
    assert t_adaptive.sync_ratio < t_static.sync_ratio
    assert (
        t_adaptive.sync_ratio + t_adaptive.rebalance_ratio
        < t_static.sync_ratio
    )
    # Static degrades (or at best holds) as skew grows; adaptive's
    # advantage widens with it.
    gaps = [
        micro[s]["static"].sync_ratio - micro[s]["adaptive"].sync_ratio
        for s in SKEW_SWEEP
    ]
    assert gaps[-1] > gaps[0], f"adaptive advantage did not grow: {gaps}"
