"""Wall-clock throughput of the asyncio runtime over loopback sockets.

Unlike every other benchmark in this directory, nothing here is
simulated: a real ``repro-serve`` process owns the cluster, ``N``
concurrent client connections drive transactions over real TCP, every
inter-site message crosses the server's event loop as an encoded wire
frame, and the measured txn/s is honest wall-clock throughput of the
whole stack (client socket -> serve task -> kernel driver thread ->
site inbox tasks -> reply).

The committed ``BENCH_async_loopback.json`` baseline is gated by
``compare_bench.py`` with **floors, not relative diffs**: wall-clock
throughput on shared CI runners is far too noisy for the 20% relative
gate the simulated scenarios use, but a broken runtime does not get
10% slower -- it collapses (a sender sleeping out its timeout per
send, a serialized connection handler, a reply misrouted).  The gate
asserts:

- at least ``connections`` concurrent client connections were driven;
- wall-clock throughput stays above an absolute floor chosen ~10x
  below healthy local readings;
- the run negotiated (sync ratio in (0, max]): a schedule that never
  violates treaties measures the wrong code path;
- real frames crossed the inter-site wire;
- the differential oracle (async vs deterministic kernel, >= 3 seeds
  x micro + geo) reports agreement.

Run::

    python benchmarks/bench_async_loopback.py --out bench-results
    python benchmarks/bench_async_loopback.py --out .   # refresh baseline
"""

from __future__ import annotations

import argparse
import json
import re
import statistics
import subprocess
import sys
import threading
import time
from pathlib import Path

if __package__ in (None, ""):  # script mode: make src/ importable
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.runtime.client import ServeClient  # noqa: E402
from repro.runtime.differential import (  # noqa: E402
    geo_case,
    micro_case,
    run_differential,
)

SCHEMA_VERSION = 3

#: wall-clock txn/s floor (healthy local runs measure well above 10x
#: this; the gate catches collapse, not wobble)
THROUGHPUT_FLOOR_TXN_PER_S = 50.0

#: the run must negotiate, but not on every transaction
SYNC_RATIO_MAX = 0.9

#: differential-oracle seeds (x both workloads)
ORACLE_SEEDS = (0, 1, 2)


def _start_server(items: int, refill: int, seed: int) -> tuple[subprocess.Popen, str, int]:
    src = str(Path(__file__).resolve().parent.parent / "src")
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.runtime.serve",
            "--port",
            "0",
            "--workload",
            "micro",
            "--strategy",
            "equal-split",
            "--items",
            str(items),
            "--refill",
            str(refill),
            "--seed",
            str(seed),
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env={"PYTHONPATH": src},
    )
    assert proc.stdout is not None
    line = proc.stdout.readline()
    match = re.match(r"repro-serve listening on (\S+):(\d+)", line)
    if not match:
        proc.kill()
        raise RuntimeError(f"repro-serve did not come up: {line!r}")
    return proc, match.group(1), int(match.group(2))


def drive(
    connections: int, txns_per_connection: int, items: int, refill: int, seed: int
) -> dict:
    """One measured run: N client threads against a fresh server."""
    proc, host, port = _start_server(items, refill, seed)
    latencies_ms: list[float] = []
    statuses: list[str] = []
    lock = threading.Lock()
    errors: list[BaseException] = []

    def worker(n: int) -> None:
        local_lat, local_status = [], []
        try:
            with ServeClient(host, port) as client:
                for i in range(txns_per_connection):
                    t0 = time.perf_counter()
                    result = client.submit(
                        f"Buy@s{(n + i) % 2}", {"item": (n * 7 + i) % items}
                    )
                    local_lat.append((time.perf_counter() - t0) * 1e3)
                    local_status.append(result["status"])
        except BaseException as exc:
            errors.append(exc)
            return
        with lock:
            latencies_ms.extend(local_lat)
            statuses.extend(local_status)

    threads = [
        threading.Thread(target=worker, args=(n,)) for n in range(connections)
    ]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall_s = time.perf_counter() - t0
    if errors:
        proc.kill()
        raise RuntimeError(f"client thread failed: {errors[0]!r}")

    with ServeClient(host, port) as client:
        stats = client.stats()
        client.shutdown()
    proc.wait(timeout=30)

    total = connections * txns_per_connection
    lat_sorted = sorted(latencies_ms)

    def pct(p: float) -> float:
        return lat_sorted[min(len(lat_sorted) - 1, int(p * len(lat_sorted)))]

    return {
        "connections": connections,
        "txns": total,
        "committed": sum(1 for s in statuses if s == "committed"),
        "wall_time_s": round(wall_s, 3),
        "throughput_txn_per_s": round(total / wall_s, 1),
        "latency_p50_ms": round(pct(0.50), 3),
        "latency_p99_ms": round(pct(0.99), 3),
        "latency_mean_ms": round(statistics.fmean(latencies_ms), 3),
        "negotiations": stats["negotiations"],
        "sync_ratio": round(stats["sync_ratio"], 5),
        "frames_sent": stats["wire"]["frames_sent"],
        "bytes_sent": stats["wire"]["bytes_sent"],
    }


def differential_gate(txns: int = 30) -> dict:
    """The correctness leg: async == deterministic on every seed."""
    mismatches: list[str] = []
    negotiations = 0
    for workload, case in (("micro", micro_case), ("geo", geo_case)):
        for seed in ORACLE_SEEDS:
            factory, schedule = case(seed, txns=txns)
            report = run_differential(factory, schedule)
            negotiations += report.negotiations
            if not report.ok:
                mismatches.extend(
                    f"{workload}/seed{seed}: {m}" for m in report.mismatches
                )
    return {
        "seeds": list(ORACLE_SEEDS),
        "workloads": ["micro", "geo"],
        "txns_per_schedule": txns,
        "negotiations": negotiations,
        "ok": not mismatches,
        "mismatches": mismatches[:10],
    }


def run(connections: int, txns_per_connection: int, items: int, refill: int, seed: int) -> dict:
    measured = drive(connections, txns_per_connection, items, refill, seed)
    oracle = differential_gate()
    return {
        "schema_version": SCHEMA_VERSION,
        "scenario": "async_loopback",
        "mode": "async",
        "txns": measured["committed"],
        "negotiations": measured["negotiations"],
        "wall_time_s": measured["wall_time_s"],
        # wall-clock, host-dependent: gated by absolute floor only
        "throughput_txn_per_s": measured["throughput_txn_per_s"],
        "sync_ratio": measured["sync_ratio"],
        "p50_ms": measured["latency_p50_ms"],
        "p99_ms": measured["latency_p99_ms"],
        "async_gate": {
            "connections": measured["connections"],
            "min_connections": 4,
            "throughput_floor_txn_per_s": THROUGHPUT_FLOOR_TXN_PER_S,
            "sync_ratio_max": SYNC_RATIO_MAX,
            "submitted": measured["txns"],
            "committed": measured["committed"],
            "latency_mean_ms": measured["latency_mean_ms"],
            "frames_sent": measured["frames_sent"],
            "bytes_sent": measured["bytes_sent"],
            "differential": oracle,
        },
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("--out", type=Path, default=Path("bench-results"))
    parser.add_argument("--connections", type=int, default=4)
    parser.add_argument("--txns-per-connection", type=int, default=150)
    parser.add_argument("--items", type=int, default=12)
    parser.add_argument("--refill", type=int, default=9)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    record = run(
        args.connections, args.txns_per_connection, args.items, args.refill, args.seed
    )
    args.out.mkdir(parents=True, exist_ok=True)
    path = args.out / "BENCH_async_loopback.json"
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    gate = record["async_gate"]
    print(
        f"async_loopback: {record['txns']} txns over {gate['connections']} "
        f"connections, {record['throughput_txn_per_s']:.1f} txn/s wall-clock, "
        f"sync ratio {record['sync_ratio']:.4f}, "
        f"p99 {record['p99_ms']:.1f} ms, "
        f"{gate['frames_sent']} wire frames, "
        f"differential {'ok' if gate['differential']['ok'] else 'DIVERGED'} "
        f"-> {path}"
    )
    return 0 if gate["differential"]["ok"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
