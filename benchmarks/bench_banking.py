"""Banking: cross-site transfers under non-negative-balance treaties.

The coordination-avoidance literature's canonical example: debits
guard against overdraft (treaty-bearing), credits are free after the
Appendix B transform, so most transfers commit locally while 2PC
pays a coordinated round per transaction.  The comparison measures
that gap; the conservation audit then checks the invariant money
cares about most -- the final total equals initial funds plus
deposits *exactly*, and no account ends negative, on a 3-site
cluster where every transfer crossed site-local knowledge.
"""

from _common import print_table

from repro.sim.experiments import run_banking, run_banking_conservation

POINT = dict(
    num_accounts=8,
    initial_balance=30,
    deposit_fraction=0.1,
    audit_fraction=0.05,
    max_txns=1_000,
    seed=0,
)


def _run():
    runs = {mode: run_banking(mode, **POINT) for mode in ("homeo", "2pc")}
    conservation = run_banking_conservation(
        num_sites=3, num_accounts=6, requests=600, seed=0
    )
    return runs, conservation


def test_banking(benchmark):
    runs, conservation = benchmark.pedantic(_run, rounds=1, iterations=1)

    homeo, twopc = runs["homeo"], runs["2pc"]
    print_table(
        "Banking transfers: homeostasis vs 2PC",
        ["mode", "txn/s", "sync ratio", "p50 (ms)", "p99 (ms)"],
        [
            [mode, r.total_throughput(), r.sync_ratio,
             r.latency_stats().p50, r.latency_stats().p99]
            for mode, r in runs.items()
        ],
    )
    print_table(
        "Conservation audit (3 sites, 600 requests)",
        ["expected", "final", "conserved", "min balance", "sync ratio"],
        [[conservation["expected_total"], conservation["final_total"],
          conservation["money_conserved"], conservation["min_balance"],
          conservation["sync_ratio"]]],
    )

    # Most transfers must ride the treaty, not a coordinated round.
    assert homeo.sync_ratio < 0.5, (
        f"homeo sync ratio {homeo.sync_ratio:.3f} -- transfers are "
        f"coordinating, not riding treaty headroom"
    )
    # And that avoidance must buy throughput over 2PC.
    assert homeo.total_throughput() > twopc.total_throughput(), (
        f"homeo {homeo.total_throughput():.1f} txn/s did not beat 2PC "
        f"{twopc.total_throughput():.1f}"
    )
    # The invariant: money in == money out, nobody overdrawn.
    assert conservation["money_conserved"], conservation
    assert conservation["final_total"] == conservation["expected_total"]
    assert conservation["min_balance"] >= 0
