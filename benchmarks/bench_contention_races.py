"""Racing violators under the concurrent cleanup runtime.

Sweeps the racing-violator rate by shrinking the item population
(hotter items -> more transactions violating the same treaty inside
one arrival window).  For each point the kernel's *real* vote phase
resolves the races: contenders exchange Vote/VoteReply messages, one
wins per conflict group, losers re-run after the winner's treaty
installs -- so the lost-vote queueing (``wait_ms``) and the aborted
attempt counts come from actual elections, not from the per-key
negotiation gates the per-transaction driver approximates with.

The second table shows the geo-partitioned deployment: replication
groups (0,1) and (2,3) violate in the same windows, their conflict
groups have disjoint participant closures, and their negotiations'
transport rounds overlap instead of serializing (parallel waves).
"""

from _common import once, print_table

from repro.sim.experiments import run_contention
from repro.workloads.geo import GeoMicroWorkload

ITEM_SWEEP = (6, 12, 48)


def _run_sweep():
    sweep = {
        n: run_contention(
            "homeo", num_items=n, refill=20, clients_per_replica=8,
            max_txns=1200, seed=0,
        )
        for n in ITEM_SWEEP
    }
    # Kernel-level parallel-wave demo on the geo deployment.
    workload = GeoMicroWorkload(
        groups=((0, 1), (2, 3)), num_sites=4, items_per_group=2, refill=4
    )
    cluster = workload.build_concurrent(strategy="equal-split")
    window = [(f"Buy0@s{s}", {"item": 0}) for s in (0, 1, 0, 1)]
    window += [(f"Buy1@s{s}", {"item": 0}) for s in (2, 3, 2, 3)]
    window_result = cluster.submit_window(window)
    return sweep, cluster, window_result


def test_contention_races(benchmark):
    sweep, cluster, window_result = once(benchmark, _run_sweep)

    rows = []
    for n, res in sweep.items():
        synced = [r for r in res.records if r.kind == "sync"]
        contested = [r for r in synced if r.vote_ms > 0]
        losers = [r for r in res.records if r.retries > 0]
        mean_loser_wait = (
            sum(r.wait_ms for r in losers) / len(losers) if losers else 0.0
        )
        rows.append([
            n, len(synced), len(contested), res.aborted_attempts,
            mean_loser_wait, res.latency_stats().p99,
        ])
    print_table(
        "Racing violators vs item population (homeo, 10 ms windows)",
        ["items", "negotiations", "contested", "lost votes",
         "mean loser wait", "p99 (ms)"],
        rows,
    )

    wave_rows = []
    negs = {n.index: n for n in cluster.transport.negotiations}
    for wave_index, groups in enumerate(window_result.waves):
        overlapping = 0
        for i, a in enumerate(groups):
            for b in groups[i + 1:]:
                if negs[a.negotiation_index].overlaps(negs[b.negotiation_index]):
                    overlapping += 1
        wave_rows.append([
            wave_index, len(groups),
            ", ".join(str(g.scope) for g in groups), overlapping,
        ])
    print_table(
        "Geo window: conflict groups per wave (disjoint closures run in parallel)",
        ["wave", "groups", "scopes", "overlapping pairs"],
        wave_rows,
    )

    # Shape: hotter items -> more lost votes, monotonically.
    lost = [sweep[n].aborted_attempts for n in ITEM_SWEEP]
    assert lost[0] > lost[-1], f"expected contention to fall with items: {lost}"
    # The hottest point has real contested elections on the wire.
    hottest = sweep[ITEM_SWEEP[0]]
    assert any(r.vote_ms > 0 for r in hottest.records)
    assert any(r.retries > 0 for r in hottest.records)
    # The geo window resolved >= 2 disjoint groups in its first wave,
    # and their negotiation rounds overlapped (did not serialize).
    first_wave = window_result.waves[0]
    assert len(first_wave) == 2
    a = negs[first_wave[0].negotiation_index]
    b = negs[first_wave[1].negotiation_index]
    assert a.overlaps(b)
    # Determinism of the seeded arbitration order.
    again = run_contention(
        "homeo", num_items=ITEM_SWEEP[0], refill=20, clients_per_replica=8,
        max_txns=1200, seed=0,
    )
    assert again.records == sweep[ITEM_SWEEP[0]].records
