"""Availability under site crashes: homeostasis vs 2PC.

Gray & Lamport's *Consensus on Transaction Commit* observation, made
measurable: two-phase commit needs every replica for every commit, so
one crashed site takes the whole cluster's availability to ~0 for the
duration of the outage.  The homeostasis protocol only coordinates
when a treaty is violated, so a crash blocks exactly (a) transactions
homed at the crashed site and (b) violations whose participant
closure includes it -- every other transaction keeps committing on
its local treaty, and the crashed site rejoins by replaying its
treaty WAL and re-syncing its factor state.

Three tables: the micro sweep over the outage duration (the
availability gap widens with the outage), the crash-*rate* sweep
(repeated crash/recover cycles, each exercising WAL replay + rejoin),
and the TPC-C point (Table 1 RTTs).
"""

from _common import print_table

from repro.sim.experiments import run_faults

OUTAGE_SWEEP_MS = (1_000.0, 3_000.0, 6_000.0)

POINT = dict(
    crash_site=1,
    crash_at_ms=1_500.0,
    duration_ms=9_000.0,
    clients_per_replica=4,
    num_items=120,
    seed=0,
)

TPCC_POINT = dict(
    workload="tpcc",
    crash_site=1,
    crash_at_ms=1_500.0,
    outage_ms=3_000.0,
    duration_ms=6_000.0,
    clients_per_replica=4,
    num_items=40,
    seed=0,
)

CYCLES_SWEEP = (1, 2, 3)


def _window(point, outage_ms=None, cycles=1):
    start = point["crash_at_ms"]
    outage = outage_ms if outage_ms is not None else point["outage_ms"]
    return start, start + outage


def _run_sweep():
    outage = {
        ms: {
            mode: run_faults(mode, outage_ms=ms, **POINT)
            for mode in ("homeo", "2pc")
        }
        for ms in OUTAGE_SWEEP_MS
    }
    cycles = {
        n: run_faults(
            "homeo", outage_ms=1_200.0, cycles=n, cycle_gap_ms=1_200.0,
            validate=True, **POINT
        )
        for n in CYCLES_SWEEP
    }
    tpcc = {mode: run_faults(mode, **TPCC_POINT) for mode in ("homeo", "2pc")}
    return outage, cycles, tpcc


def test_faults(benchmark):
    outage, cycles, tpcc = benchmark.pedantic(_run_sweep, rounds=1, iterations=1)

    rows = []
    for ms, runs in outage.items():
        h, p = runs["homeo"], runs["2pc"]
        t0, t1 = _window(POINT, outage_ms=ms)
        rows.append([
            ms,
            h.availability,
            h.availability_between(t0, t1),
            p.availability,
            p.availability_between(t0, t1),
            h.recoveries,
        ])
    print_table(
        "Availability vs outage duration (micro, one crash of site 1)",
        ["outage (ms)", "homeo avail", "homeo (window)",
         "2pc avail", "2pc (window)", "recoveries"],
        rows,
    )

    print_table(
        "Availability vs crash rate (micro, homeo, repeated 1.2s outages)",
        ["cycles", "avail", "timeouts", "recoveries", "recovery cost (ms)"],
        [
            [n, r.availability, r.timeouts, r.recoveries, r.recovery_ms]
            for n, r in cycles.items()
        ],
    )

    th, tp = tpcc["homeo"], tpcc["2pc"]
    t0, t1 = _window(TPCC_POINT)
    print_table(
        "Availability under one crash (TPC-C, Table 1 RTTs)",
        ["mode", "avail", "avail (window)", "txns", "failed"],
        [
            ["homeo", th.availability, th.availability_between(t0, t1),
             th.committed, th.failed],
            ["2pc", tp.availability, tp.availability_between(t0, t1),
             tp.committed, tp.failed],
        ],
    )

    # The headline claim at every point: homeostasis keeps committing
    # on the surviving sites while 2PC blocks for the whole outage.
    for ms, runs in outage.items():
        t0, t1 = _window(POINT, outage_ms=ms)
        h_win = runs["homeo"].availability_between(t0, t1)
        p_win = runs["2pc"].availability_between(t0, t1)
        assert h_win > 0.5, f"homeo availability collapsed at {ms} ms: {h_win}"
        assert p_win <= 0.05, f"2PC committed during the outage at {ms} ms: {p_win}"
    w0, w1 = _window(TPCC_POINT)
    assert th.availability_between(w0, w1) > tp.availability_between(w0, w1)
    # Longer outages hurt overall availability more under 2PC than
    # under homeostasis (the gap widens with the outage).
    gaps = [
        outage[ms]["homeo"].availability - outage[ms]["2pc"].availability
        for ms in OUTAGE_SWEEP_MS
    ]
    assert gaps[-1] > gaps[0], f"availability gap did not widen: {gaps}"
    # Every cycle recovered: as many rejoin rounds as scheduled crashes,
    # run under validate mode (H1/H2 + identical WAL-replayed treaty).
    for n, r in cycles.items():
        assert r.recoveries == n
