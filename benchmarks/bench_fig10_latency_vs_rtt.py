"""Figure 10: microbenchmark latency percentiles vs network RTT.

Paper's shape (Nr = 2, Nc = 16): under homeostasis ~97% of
transactions execute locally in a few ms; the violating tail costs
about two RTTs (plus solver time, which puts homeo slightly above OPT
at the far right).  2PC latency is consistently ~2 RTT for *every*
transaction; LOCAL stays at local service time regardless of RTT.
"""

from _common import MICRO_ITEMS, MICRO_TXNS, assert_factor, once, print_table

from repro.sim.experiments import run_micro


def _run_all():
    out = {}
    for rtt in (50.0, 200.0):
        for mode in ("homeo", "opt", "2pc", "local"):
            out[(mode, rtt)] = run_micro(
                mode, rtt_ms=rtt, max_txns=MICRO_TXNS, num_items=MICRO_ITEMS
            )
    return out


def test_fig10_latency_vs_rtt(benchmark):
    results = once(benchmark, _run_all)

    rows = []
    for (mode, rtt), res in sorted(results.items(), key=lambda kv: (kv[0][1], kv[0][0])):
        s = res.latency_stats()
        rows.append(
            [f"{mode}-t{rtt:.0f}", s.p50, s.p90, s.p97, s.p99, res.sync_ratio * 100]
        )
    print_table(
        "Figure 10: latency percentiles vs RTT (ms; sync ratio %)",
        ["series", "p50", "p90", "p97", "p99", "sync%"],
        rows,
    )

    for rtt in (50.0, 200.0):
        homeo = results[("homeo", rtt)].latency_stats()
        opt = results[("opt", rtt)].latency_stats()
        two_pc = results[("2pc", rtt)].latency_stats()
        local = results[("local", rtt)].latency_stats()
        # ~97% of homeostasis transactions run at local latency.
        assert homeo.p90 < 20.0, f"homeo p90 should be local-ish at rtt={rtt}"
        # The violating tail costs about 2 RTT.
        assert homeo.p100 >= 2 * rtt
        # 2PC pays ~2 RTT on the median.
        assert 1.8 * rtt <= two_pc.p50 <= 3.0 * rtt
        # LOCAL is RTT-independent and far below 2PC.
        assert local.p99 < 25.0
        assert_factor(two_pc.p50, homeo.p50, 10.0, f"2pc vs homeo p50 at rtt={rtt}")
        # Homeostasis tail >= OPT tail (solver overhead), Section 6.1.
        assert homeo.p100 >= opt.p100 - 1e-6
