"""Figure 11: microbenchmark throughput per replica vs network RTT.

Paper's shape: homeostasis achieves 100x-1000x the throughput of 2PC
(larger factors at larger RTTs), tracks LOCAL within a small factor,
and decays mildly with RTT while 2PC decays proportionally to 1/RTT.
"""

from _common import MICRO_ITEMS, MICRO_TXNS, assert_factor, assert_monotone, once, print_table

from repro.sim.experiments import run_micro

RTTS = (50.0, 100.0, 200.0)


def _run_all():
    return {
        (mode, rtt): run_micro(mode, rtt_ms=rtt, max_txns=MICRO_TXNS, num_items=MICRO_ITEMS)
        for rtt in RTTS
        for mode in ("homeo", "opt", "2pc", "local")
    }


def test_fig11_throughput_vs_rtt(benchmark):
    results = once(benchmark, _run_all)

    rows = []
    for rtt in RTTS:
        rows.append(
            [f"{rtt:.0f}ms"]
            + [results[(m, rtt)].throughput_per_replica() for m in ("homeo", "opt", "2pc", "local")]
        )
    print_table(
        "Figure 11: throughput per replica vs RTT (txn/s)",
        ["RTT", "homeo", "opt", "2pc", "local"],
        rows,
    )

    for rtt in RTTS:
        homeo = results[("homeo", rtt)].throughput_per_replica()
        two_pc = results[("2pc", rtt)].throughput_per_replica()
        local = results[("local", rtt)].throughput_per_replica()
        assert_factor(homeo, two_pc, 10.0, f"homeo vs 2pc at rtt={rtt}")
        assert local >= homeo  # LOCAL is the ceiling

    # 2PC throughput decays with RTT; LOCAL does not (tolerate noise).
    assert_monotone(
        [results[("2pc", rtt)].throughput_per_replica() for rtt in RTTS],
        increasing=False, label="2pc vs RTT", tolerance=0.10,
    )
    local_values = [results[("local", rtt)].throughput_per_replica() for rtt in RTTS]
    assert max(local_values) / min(local_values) < 1.25
