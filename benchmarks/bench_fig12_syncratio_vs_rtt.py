"""Figure 12: synchronization ratio vs network RTT.

Paper's shape: the fraction of transactions requiring synchronization
is a property of the *workload* (stock consumption vs treaty
budgets), not of the network: both homeostasis and OPT sit in the
low single digits across RTTs, nearly identical -- the evidence that
Algorithm 1's treaties are near-optimal for uniform workloads.
"""

from _common import MICRO_ITEMS, MICRO_TXNS, once, print_table

from repro.sim.experiments import run_micro

RTTS = (50.0, 100.0, 200.0)


def _run_all():
    return {
        (mode, rtt): run_micro(mode, rtt_ms=rtt, max_txns=MICRO_TXNS, num_items=MICRO_ITEMS)
        for rtt in RTTS
        for mode in ("homeo", "opt")
    }


def test_fig12_syncratio_vs_rtt(benchmark):
    results = once(benchmark, _run_all)

    rows = [
        [f"{rtt:.0f}ms"]
        + [results[(m, rtt)].sync_ratio * 100 for m in ("homeo", "opt")]
        for rtt in RTTS
    ]
    print_table(
        "Figure 12: synchronization ratio vs RTT (%)",
        ["RTT", "homeo", "opt"],
        rows,
    )

    for rtt in RTTS:
        homeo = results[("homeo", rtt)].sync_ratio
        opt = results[("opt", rtt)].sync_ratio
        # Single-digit percentages, like the paper's 2-4%.
        assert 0.0 < homeo < 0.10, f"homeo sync ratio {homeo:.2%} at rtt={rtt}"
        assert 0.0 < opt < 0.10
        # Near-identical: within a factor 2 of each other.
        assert 0.5 <= (homeo / opt) <= 2.0, (
            f"homeo {homeo:.2%} vs opt {opt:.2%} at rtt={rtt}"
        )
