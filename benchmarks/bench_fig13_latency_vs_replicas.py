"""Figure 13: microbenchmark latency percentiles vs replica count.

Paper's shape (RTT = 100 ms, Nc = 16): more replicas mean smaller
per-site treaty budgets, hence more frequent violations -- the latency
tail begins earlier for Nr = 5 than Nr = 2.  2PC latency is ~2 RTT at
any replica count; the homeostasis median stays at local latency.
"""

from _common import MICRO_ITEMS, MICRO_TXNS, once, print_table

from repro.sim.experiments import run_micro


def _run_all():
    return {
        (mode, nr): run_micro(
            mode, rtt_ms=100.0, num_replicas=nr,
            max_txns=MICRO_TXNS, num_items=MICRO_ITEMS,
        )
        for nr in (2, 5)
        for mode in ("homeo", "opt", "2pc", "local")
    }


def test_fig13_latency_vs_replicas(benchmark):
    results = once(benchmark, _run_all)

    rows = []
    for (mode, nr), res in sorted(results.items(), key=lambda kv: (kv[0][1], kv[0][0])):
        s = res.latency_stats()
        rows.append([f"{mode}-r{nr}", s.p50, s.p90, s.p97, s.p99, res.sync_ratio * 100])
    print_table(
        "Figure 13: latency percentiles vs replicas (ms; sync ratio %)",
        ["series", "p50", "p90", "p97", "p99", "sync%"],
        rows,
    )

    for nr in (2, 5):
        homeo = results[("homeo", nr)].latency_stats()
        two_pc = results[("2pc", nr)].latency_stats()
        assert homeo.p50 < 10.0
        assert two_pc.p50 >= 180.0
    # More replicas -> more violations -> fatter tail for homeostasis.
    sync2 = results[("homeo", 2)].sync_ratio
    sync5 = results[("homeo", 5)].sync_ratio
    assert sync5 > sync2, f"sync ratio should grow with replicas: {sync2:.2%} vs {sync5:.2%}"
    assert (
        results[("homeo", 5)].latency_stats().p97
        >= results[("homeo", 2)].latency_stats().p97
    )
