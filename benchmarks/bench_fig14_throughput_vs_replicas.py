"""Figure 14: microbenchmark throughput per replica vs replica count.

Paper's shape: per-replica throughput decreases for every mode as the
degree of replication grows (smaller treaty shares for homeostasis /
OPT, more participants per commit for 2PC), while homeostasis stays
orders of magnitude above 2PC throughout.
"""

from _common import MICRO_ITEMS, MICRO_TXNS, assert_factor, assert_monotone, once, print_table

from repro.sim.experiments import run_micro

REPLICAS = (2, 3, 5)


def _run_all():
    return {
        (mode, nr): run_micro(
            mode, rtt_ms=100.0, num_replicas=nr,
            max_txns=MICRO_TXNS, num_items=MICRO_ITEMS,
        )
        for nr in REPLICAS
        for mode in ("homeo", "opt", "2pc", "local")
    }


def test_fig14_throughput_vs_replicas(benchmark):
    results = once(benchmark, _run_all)

    rows = [
        [nr]
        + [results[(m, nr)].throughput_per_replica() for m in ("homeo", "opt", "2pc", "local")]
        for nr in REPLICAS
    ]
    print_table(
        "Figure 14: throughput per replica vs replicas (txn/s)",
        ["Nr", "homeo", "opt", "2pc", "local"],
        rows,
    )

    for nr in REPLICAS:
        assert_factor(
            results[("homeo", nr)].throughput_per_replica(),
            results[("2pc", nr)].throughput_per_replica(),
            8.0,
            f"homeo vs 2pc at Nr={nr}",
        )
    assert_monotone(
        [results[("homeo", nr)].throughput_per_replica() for nr in REPLICAS],
        increasing=False, label="homeo per-replica throughput vs Nr",
        tolerance=0.15,
    )
