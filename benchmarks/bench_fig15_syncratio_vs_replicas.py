"""Figure 15: synchronization ratio vs replica count.

Paper's shape: each replica's treaty share shrinks as 1/Nr, so
violations come sooner and the synchronization ratio rises with the
degree of replication, for homeostasis and OPT alike.
"""

from _common import MICRO_ITEMS, MICRO_TXNS, assert_monotone, once, print_table

from repro.sim.experiments import run_micro

REPLICAS = (2, 3, 5)


def _run_all():
    return {
        (mode, nr): run_micro(
            mode, rtt_ms=100.0, num_replicas=nr,
            max_txns=MICRO_TXNS, num_items=MICRO_ITEMS,
        )
        for nr in REPLICAS
        for mode in ("homeo", "opt")
    }


def test_fig15_syncratio_vs_replicas(benchmark):
    results = once(benchmark, _run_all)

    rows = [
        [nr] + [results[(m, nr)].sync_ratio * 100 for m in ("homeo", "opt")]
        for nr in REPLICAS
    ]
    print_table(
        "Figure 15: synchronization ratio vs replicas (%)",
        ["Nr", "homeo", "opt"],
        rows,
    )

    assert_monotone(
        [results[("homeo", nr)].sync_ratio for nr in REPLICAS],
        increasing=True, label="homeo sync ratio vs Nr", tolerance=0.20,
    )
    assert_monotone(
        [results[("opt", nr)].sync_ratio for nr in REPLICAS],
        increasing=True, label="opt sync ratio vs Nr", tolerance=0.20,
    )
    # Still single-digit percentages at every replica count.
    for nr in REPLICAS:
        assert results[("homeo", nr)].sync_ratio < 0.15
