"""Figure 16: microbenchmark latency percentiles vs clients per replica.

Paper's shape (Nr = 2, RTT = 100 ms): latency grows with the client
count through data/CPU contention, but the profile stays dominated by
the network split -- homeostasis local vs 2PC's 2-RTT floor.

2PC core-accounting note: cores are released while a transaction
blocks on item locks (identically for committing and aborting
waiters).  The seed model pinned a core through the whole lock wait
on the commit path, so at high client counts 2PC's tail latencies
conflated phantom CPU queueing with the real lock-chain queueing;
with the fix the client-count saturation knee here comes from locks
and genuine service demand only, and 2PC's high percentiles at large
client counts are lower than the seed's.
"""

from _common import MICRO_ITEMS, MICRO_TXNS, once, print_table

from repro.sim.experiments import run_micro


def _run_all():
    return {
        (mode, nc): run_micro(
            mode, rtt_ms=100.0, clients_per_replica=nc,
            max_txns=MICRO_TXNS, num_items=MICRO_ITEMS,
        )
        for nc in (1, 32)
        for mode in ("homeo", "opt", "2pc", "local")
    }


def test_fig16_latency_vs_clients(benchmark):
    results = once(benchmark, _run_all)

    rows = []
    for (mode, nc), res in sorted(results.items(), key=lambda kv: (kv[0][1], kv[0][0])):
        s = res.latency_stats()
        rows.append([f"{mode}-c{nc}", s.p50, s.p90, s.p97, s.p99])
    print_table(
        "Figure 16: latency percentiles vs clients (ms)",
        ["series", "p50", "p90", "p97", "p99"],
        rows,
    )

    for nc in (1, 32):
        assert results[("homeo", nc)].latency_stats().p50 < 12.0
        assert results[("2pc", nc)].latency_stats().p50 >= 180.0
    # Contention: more clients -> higher high-percentile local latency.
    assert (
        results[("local", 32)].latency_stats().p99
        >= results[("local", 1)].latency_stats().p99
    )
