"""Figure 17: microbenchmark throughput per replica vs clients.

Paper's shape: throughput scales with the client count until the
replica's cores saturate (32 vCPUs in the paper; the local curve
plateaus or dips around that point), while 2PC scales only linearly
in clients at a ~2-RTT service time, staying far below.

2PC core-accounting note: lock waiters release their core while
blocked (the seed model held it through the wait on the commit path),
so 2PC's saturation here is lock-bound, not CPU-bound: its throughput
at high client counts is slightly higher than the seed's because
waiting transactions no longer burn server capacity.
"""

from _common import MICRO_ITEMS, MICRO_TXNS, assert_factor, once, print_table

from repro.sim.experiments import run_micro

CLIENTS = (1, 4, 16, 32, 128)


def _run_all():
    out = {}
    for nc in CLIENTS:
        for mode in ("homeo", "opt", "2pc", "local"):
            out[(mode, nc)] = run_micro(
                mode, rtt_ms=100.0, clients_per_replica=nc,
                max_txns=MICRO_TXNS, num_items=MICRO_ITEMS,
            )
    return out


def test_fig17_throughput_vs_clients(benchmark):
    results = once(benchmark, _run_all)

    rows = [
        [nc]
        + [results[(m, nc)].throughput_per_replica() for m in ("homeo", "opt", "2pc", "local")]
        for nc in CLIENTS
    ]
    print_table(
        "Figure 17: throughput per replica vs clients (txn/s)",
        ["Nc", "homeo", "opt", "2pc", "local"],
        rows,
    )

    # Scaling at low client counts.
    assert (
        results[("local", 16)].throughput_per_replica()
        > 4 * results[("local", 1)].throughput_per_replica()
    )
    # Core saturation: going 32 -> 128 clients must not quadruple
    # throughput (the Figure 17 plateau).
    t32 = results[("local", 32)].throughput_per_replica()
    t128 = results[("local", 128)].throughput_per_replica()
    assert t128 < 2.5 * t32
    # 2PC is network-bound at every client count.
    for nc in (16, 32):
        assert_factor(
            results[("homeo", nc)].throughput_per_replica(),
            results[("2pc", nc)].throughput_per_replica(),
            8.0,
            f"homeo vs 2pc at Nc={nc}",
        )
