"""Figure 18: synchronization ratio vs clients per replica.

Paper's shape: the ratio stays in the low single digits across 1-128
clients (it is governed by stock consumption per item, not by client
parallelism), with homeostasis tracking OPT.

2PC core-accounting note: the companion latency/throughput figures
(16/17) changed with the lock-wait core release -- cores are freed
while a waiter blocks, for commits and aborts alike -- but the sync
ratio is a protocol-kernel quantity and is unaffected by the CPU
model; this figure matches the seed.
"""

from _common import MICRO_ITEMS, MICRO_TXNS, once, print_table

from repro.sim.experiments import run_micro

CLIENTS = (1, 16, 128)


def _run_all():
    return {
        (mode, nc): run_micro(
            mode, rtt_ms=100.0, clients_per_replica=nc,
            max_txns=MICRO_TXNS, num_items=MICRO_ITEMS,
        )
        for nc in CLIENTS
        for mode in ("homeo", "opt")
    }


def test_fig18_syncratio_vs_clients(benchmark):
    results = once(benchmark, _run_all)

    rows = [
        [nc] + [results[(m, nc)].sync_ratio * 100 for m in ("homeo", "opt")]
        for nc in CLIENTS
    ]
    print_table(
        "Figure 18: synchronization ratio vs clients (%)",
        ["Nc", "homeo", "opt"],
        rows,
    )

    for nc in CLIENTS:
        homeo = results[("homeo", nc)].sync_ratio
        opt = results[("opt", nc)].sync_ratio
        assert 0.0 < homeo < 0.10
        assert 0.0 < opt < 0.10
        assert 0.4 <= homeo / opt <= 2.5
