"""Figure 19: TPC-C New Order latency percentiles vs workload skew H.

Paper's shape (Nr = 2 on UE+UW, Nc = 8): as H (the share of New
Orders hitting the 1% hot items) grows, hot-item treaties are
violated more often and a larger fraction of transactions takes the
negotiation latency hit; 2PC's profile is H-insensitive (every
transaction pays two RTTs) but develops lock-timeout tails.
"""

from _common import TPCC_TXNS, once, print_table

from repro.sim.experiments import run_tpcc


def _run_all():
    return {
        (mode, h): run_tpcc(mode, hotness=h, max_txns=TPCC_TXNS)
        for h in (1, 50)
        for mode in ("homeo", "opt", "2pc")
    }


def test_fig19_tpcc_latency_vs_skew(benchmark):
    results = once(benchmark, _run_all)

    rows = []
    for (mode, h), res in sorted(results.items(), key=lambda kv: (kv[0][1], kv[0][0])):
        s = res.latency_stats("NewOrder")
        rows.append([f"{mode}-h{h}", s.p50, s.p90, s.p97, s.p99, res.sync_ratio * 100])
    print_table(
        "Figure 19: TPC-C New Order latency vs skew (ms; overall sync %)",
        ["series", "p50", "p90", "p97", "p99", "sync%"],
        rows,
    )

    # Homeostasis median stays local at both skews; 2PC pays >= 2 RTT.
    for h in (1, 50):
        assert results[("homeo", h)].latency_stats("NewOrder").p50 < 10.0
        assert results[("2pc", h)].latency_stats("NewOrder").p50 >= 100.0
    # Higher skew -> more violating New Orders -> fatter homeo tail.
    assert (
        results[("homeo", 50)].latency_stats("NewOrder").p97
        >= results[("homeo", 1)].latency_stats("NewOrder").p97
    )
    # 2PC's median is comparatively unaffected by skew.
    p50_low = results[("2pc", 1)].latency_stats("NewOrder").p50
    p50_high = results[("2pc", 50)].latency_stats("NewOrder").p50
    assert p50_high < 4 * p50_low
