"""Figure 20: TPC-C New Order throughput per replica vs skew H.

Paper's shape: both homeostasis and 2PC lose throughput as H grows
(hot treaties violate more / hot locks conflict more), but the
homeostasis curve stays far above 2PC at every skew.
"""

from _common import TPCC_TXNS, assert_factor, assert_monotone, once, print_table

from repro.sim.experiments import run_tpcc

HOTNESS = (5, 25, 50)


def _run_all():
    return {
        (mode, h): run_tpcc(mode, hotness=h, max_txns=TPCC_TXNS)
        for h in HOTNESS
        for mode in ("homeo", "opt", "2pc")
    }


def test_fig20_tpcc_throughput_vs_skew(benchmark):
    results = once(benchmark, _run_all)

    rows = [
        [h]
        + [
            results[(m, h)].throughput_per_replica("NewOrder")
            for m in ("homeo", "opt", "2pc")
        ]
        for h in HOTNESS
    ]
    print_table(
        "Figure 20: TPC-C New Order throughput per replica vs H (txn/s)",
        ["H", "homeo", "opt", "2pc"],
        rows,
    )

    for h in HOTNESS:
        assert_factor(
            results[("homeo", h)].throughput_per_replica("NewOrder"),
            results[("2pc", h)].throughput_per_replica("NewOrder"),
            2.0,
            f"homeo vs 2pc at H={h}",
        )
    # Throughput falls (or at best holds) as skew rises.
    assert_monotone(
        [results[("homeo", h)].throughput_per_replica("NewOrder") for h in HOTNESS],
        increasing=False, label="homeo NO throughput vs H", tolerance=0.25,
    )
