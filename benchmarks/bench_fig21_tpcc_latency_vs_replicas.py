"""Figure 21: TPC-C New Order latency percentiles vs replica count.

Paper's shape (Nc = 8, H = 10, replicas added in order UE, UW, IE,
SG, BR): the maximum pairwise RTT grows with each added datacenter,
shifting the violating tail upward; the local median is unaffected.
The MySQL 1 s lock-wait floor produces the long 2PC tails.
"""

from _common import TPCC_TXNS, once, print_table

from repro.sim.experiments import run_tpcc


def _run_all():
    return {
        (mode, nr): run_tpcc(mode, hotness=10, num_replicas=nr, max_txns=TPCC_TXNS)
        for nr in (2, 5)
        for mode in ("homeo", "2pc")
    }


def test_fig21_tpcc_latency_vs_replicas(benchmark):
    results = once(benchmark, _run_all)

    rows = []
    for (mode, nr), res in sorted(results.items(), key=lambda kv: (kv[0][1], kv[0][0])):
        s = res.latency_stats("NewOrder")
        rows.append([f"{mode}-r{nr}", s.p50, s.p90, s.p97, s.p99])
    print_table(
        "Figure 21: TPC-C New Order latency vs replicas (ms)",
        ["series", "p50", "p90", "p97", "p99"],
        rows,
    )

    # Homeostasis median remains local at both replica counts.
    for nr in (2, 5):
        assert results[("homeo", nr)].latency_stats("NewOrder").p50 < 10.0
    # The violating tail tracks the max RTT: UE-UW is 64 ms, the
    # 5-datacenter diameter is 372 ms (SG-BR).
    tail2 = results[("homeo", 2)].latency_stats("NewOrder").p100
    tail5 = results[("homeo", 5)].latency_stats("NewOrder").p100
    assert tail5 > tail2
    assert tail5 >= 2 * 372.0  # at least one 2-RTT negotiation at diameter
