"""Figure 22: TPC-C New Order throughput per replica vs replica count.

Paper's shape: throughput falls as replicas are added (more treaty
violations, larger sync diameter).  The paper could only run 2PC with
a single client per replica (conflicts aborted everything beyond
that) and *estimates* an upper bound by multiplying by 8 -- even that
estimate stays well below homeostasis.  We reproduce all three
series: homeo-c8, 2pc-c1, and 2pc-c8(est) = 8 x 2pc-c1.
"""

from _common import TPCC_TXNS, assert_factor, assert_monotone, once, print_table

from repro.sim.experiments import run_tpcc

REPLICAS = (2, 3, 5)


def _run_all():
    out = {}
    for nr in REPLICAS:
        out[("homeo", nr)] = run_tpcc(
            mode="homeo", hotness=10, num_replicas=nr, max_txns=TPCC_TXNS
        )
        out[("2pc-c1", nr)] = run_tpcc(
            mode="2pc", hotness=10, num_replicas=nr,
            clients_per_replica=1, max_txns=TPCC_TXNS // 2,
        )
    return out


def test_fig22_tpcc_throughput_vs_replicas(benchmark):
    results = once(benchmark, _run_all)

    rows = []
    for nr in REPLICAS:
        homeo = results[("homeo", nr)].throughput_per_replica("NewOrder")
        c1 = results[("2pc-c1", nr)].throughput_per_replica("NewOrder")
        rows.append([nr, homeo, c1, 8 * c1])
    print_table(
        "Figure 22: TPC-C New Order throughput per replica vs replicas (txn/s)",
        ["Nr", "homeo-c8", "2pc-c1", "2pc-c8(est)"],
        rows,
    )

    for nr in REPLICAS:
        homeo = results[("homeo", nr)].throughput_per_replica("NewOrder")
        c1 = results[("2pc-c1", nr)].throughput_per_replica("NewOrder")
        est = 8 * c1
        # With 8 clients homeostasis clearly beats what 2PC measures...
        assert_factor(homeo, c1, 3.0, f"homeo-c8 vs 2pc-c1 at Nr={nr}")
        # ...and stays at least comparable to the paper's *optimistic*
        # linear-scaling estimate (which ignores the conflicts that made
        # >1 client infeasible for 2PC in the first place).  At our
        # reduced scale hot-item negotiation queues bite harder than in
        # the paper, so the requirement is parity-level, not 1.5x.
        assert homeo >= 0.45 * est, (
            f"homeo {homeo:.1f} vs 2pc-c8(est) {est:.1f} at Nr={nr}"
        )
    assert_monotone(
        [results[("homeo", nr)].throughput_per_replica("NewOrder") for nr in REPLICAS],
        increasing=False, label="homeo NO throughput vs Nr", tolerance=0.25,
    )
