"""Figure 24: latency breakdown of violating transactions vs lookahead L.

Paper's shape (Appendix F.1): for transactions that trigger a treaty
negotiation, total latency decomposes into local execution
(negligible), communication (~2 RTT, constant) and solver time
(growing with the lookahead interval L, since Algorithm 1 simulates
f executions of length L and solves a larger MaxSAT instance).
"""

from _common import MICRO_ITEMS, MICRO_TXNS, assert_monotone, once, print_table

from repro.sim.experiments import run_micro

LOOKAHEADS = (10, 50, 100)


def _run_all():
    return {
        l: run_micro(
            "homeo", rtt_ms=100.0, lookahead=l,
            max_txns=MICRO_TXNS, num_items=MICRO_ITEMS,
        )
        for l in LOOKAHEADS
    }


def test_fig24_latency_breakdown_vs_lookahead(benchmark):
    results = once(benchmark, _run_all)

    rows = []
    for l in LOOKAHEADS:
        b = results[l].breakdown_means()
        rows.append([l, b["local"], b["comm"], b["solver"]])
    print_table(
        "Figure 24: violating-transaction latency breakdown vs L (ms)",
        ["L", "local", "comm", "solver"],
        rows,
    )

    # Local is negligible next to comm and solver (the paper notes the
    # local bars do not even appear in the figure).
    for l in LOOKAHEADS:
        b = results[l].breakdown_means()
        assert b["local"] < b["comm"] / 10
        assert b["comm"] >= 190.0  # ~2 RTT at 100 ms
    # Solver time grows with L.
    assert_monotone(
        [results[l].breakdown_means()["solver"] for l in LOOKAHEADS],
        increasing=True, label="solver time vs L",
    )
