"""Figure 25: throughput vs lookahead L for different REFILL values.

Paper's shape (Appendix F.1): larger REFILL gives each item more
slack, hence more flexible treaties, fewer violations and higher
throughput -- rf1000 > rf100 > rf10 across lookahead settings.
"""

from _common import MICRO_TXNS, assert_factor, once, print_table

from repro.sim.experiments import run_micro

LOOKAHEADS = (20, 100)
REFILLS = (10, 100, 1000)


def _run_all():
    return {
        (refill, l): run_micro(
            "homeo", rtt_ms=100.0, lookahead=l, refill=refill,
            max_txns=MICRO_TXNS, num_items=150,
        )
        for refill in REFILLS
        for l in LOOKAHEADS
    }


def test_fig25_throughput_vs_lookahead(benchmark):
    results = once(benchmark, _run_all)

    rows = [
        [l] + [results[(refill, l)].throughput_per_replica() for refill in REFILLS]
        for l in LOOKAHEADS
    ]
    print_table(
        "Figure 25: throughput per replica vs L (txn/s)",
        ["L", "rf10", "rf100", "rf1000"],
        rows,
    )

    for l in LOOKAHEADS:
        rf10 = results[(10, l)].throughput_per_replica()
        rf1000 = results[(1000, l)].throughput_per_replica()
        assert_factor(rf1000, rf10, 1.5, f"rf1000 vs rf10 at L={l}")
