"""Figure 26: synchronization ratio vs lookahead L for REFILL values.

Paper's shape (Appendix F.1): the synchronization ratio is dominated
by REFILL (rf10 violates an order of magnitude more often than
rf1000); larger lookahead finds better treaties, weakly reducing the
ratio.
"""

from _common import MICRO_TXNS, once, print_table

from repro.sim.experiments import run_micro

LOOKAHEADS = (20, 100)
REFILLS = (10, 100, 1000)


def _run_all():
    return {
        (refill, l): run_micro(
            "homeo", rtt_ms=100.0, lookahead=l, refill=refill,
            max_txns=MICRO_TXNS, num_items=150,
        )
        for refill in REFILLS
        for l in LOOKAHEADS
    }


def test_fig26_syncratio_vs_lookahead(benchmark):
    results = once(benchmark, _run_all)

    rows = [
        [l] + [results[(refill, l)].sync_ratio * 100 for refill in REFILLS]
        for l in LOOKAHEADS
    ]
    print_table(
        "Figure 26: synchronization ratio vs L (%)",
        ["L", "rf10", "rf100", "rf1000"],
        rows,
    )

    for l in LOOKAHEADS:
        rf10 = results[(10, l)].sync_ratio
        rf100 = results[(100, l)].sync_ratio
        rf1000 = results[(1000, l)].sync_ratio
        # Ordering: more slack, fewer violations.
        assert rf10 > rf100 > rf1000 > 0.0, (
            f"L={l}: expected rf10 > rf100 > rf1000, got "
            f"{rf10:.2%} / {rf100:.2%} / {rf1000:.2%}"
        )
        assert rf10 > 4 * rf1000
