"""Figure 27: latency CDF vs items ordered per transaction.

Paper's shape (Appendix F.1): ordering more items per transaction
raises the chance that *some* item's treaty is violated, so the CDF's
inflection point (the local/negotiated split) moves down as
items/txn grows from 1 to 5; 2PC's CDF is unaffected by the item
count (network-bound either way).
"""

from _common import MICRO_TXNS, assert_monotone, once, print_table

from repro.sim.experiments import run_micro

ITEM_COUNTS = (1, 2, 3, 4, 5)


def _run_all():
    out = {}
    for m in ITEM_COUNTS:
        out[("homeo", m)] = run_micro(
            "homeo", rtt_ms=100.0, items_per_txn=m, refill=100,
            max_txns=MICRO_TXNS // 2, num_items=150,
        )
    for m in (1, 5):
        out[("2pc", m)] = run_micro(
            "2pc", rtt_ms=100.0, items_per_txn=m, refill=100,
            max_txns=MICRO_TXNS // 2, num_items=150,
        )
    return out


def test_fig27_latency_vs_items(benchmark):
    results = once(benchmark, _run_all)

    # CDF value at 100 ms ~ the fraction of locally-executed txns.
    rows = []
    for m in ITEM_COUNTS:
        res = results[("homeo", m)]
        cdf = dict(res.latency_cdf([10.0, 100.0, 500.0]))
        rows.append([f"homeo-{m}", cdf[10.0], cdf[100.0], cdf[500.0], res.sync_ratio * 100])
    for m in (1, 5):
        res = results[("2pc", m)]
        cdf = dict(res.latency_cdf([10.0, 100.0, 500.0]))
        rows.append([f"2pc-{m}", cdf[10.0], cdf[100.0], cdf[500.0], ""])
    print_table(
        "Figure 27: latency CDF values vs items per transaction",
        ["series", "P(<=10ms)", "P(<=100ms)", "P(<=500ms)", "sync%"],
        rows,
    )

    # The inflection point (fraction under local latency) drops with m.
    assert_monotone(
        [dict(results[("homeo", m)].latency_cdf([100.0]))[100.0] for m in ITEM_COUNTS],
        increasing=False, label="local fraction vs items/txn", tolerance=0.02,
    )
    # Sync ratio grows roughly with the item count.
    assert results[("homeo", 5)].sync_ratio > 2 * results[("homeo", 1)].sync_ratio
    # 2PC's single-item latency sits at its two-RTT floor.  (The
    # paper's 10,000-item population also makes the 5-item 2PC curve
    # collision-free; at our reduced population multi-item 2PC
    # transactions genuinely conflict, so insensitivity is only
    # asserted where the collision probability is still negligible.)
    assert results[("2pc", 1)].latency_stats().p50 >= 190.0
