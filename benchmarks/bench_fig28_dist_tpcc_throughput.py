"""Figure 28: distributed TPC-C overall system throughput vs skew H.

Paper's setup (Appendix F.2): the database is partitioned across
machines (one per warehouse) and replicated across two datacenters;
mix 49/49/2.  Paper's shape: homeostasis achieves ~80% of OPT's
throughput and roughly an order of magnitude more than the estimated
2PC bound; throughput falls as H grows.
"""

from _common import assert_factor, assert_monotone, once, print_table

from repro.sim.experiments import run_tpcc

HOTNESS = (1, 50)
DIST_MIX = (0.49, 0.49, 0.02)


def _run(mode, h, clients=8):
    return run_tpcc(
        mode,
        hotness=h,
        num_warehouses=3,  # scaled-down stand-in for 10 machines
        num_districts=2,
        items_per_district=60,
        mix=DIST_MIX,
        clients_per_replica=clients,
        max_txns=1_500,
    )


def _run_all():
    out = {}
    for h in HOTNESS:
        out[("homeo", h)] = _run("homeo", h)
        out[("opt", h)] = _run("opt", h)
        out[("2pc-c1", h)] = _run("2pc", h, clients=1)
    return out


def test_fig28_dist_tpcc_throughput(benchmark):
    results = once(benchmark, _run_all)

    rows = []
    for h in HOTNESS:
        homeo = results[("homeo", h)].total_throughput()
        opt = results[("opt", h)].total_throughput()
        est = 8 * results[("2pc-c1", h)].total_throughput()
        rows.append([h, homeo, opt, est])
    print_table(
        "Figure 28: distributed TPC-C overall throughput vs H (txn/s)",
        ["H", "homeo", "opt", "2pc(est)"],
        rows,
    )

    for h in HOTNESS:
        homeo = results[("homeo", h)].total_throughput()
        opt = results[("opt", h)].total_throughput()
        est = 8 * results[("2pc-c1", h)].total_throughput()
        # Homeostasis reaches a large fraction of OPT...
        assert homeo >= 0.5 * opt, f"homeo {homeo:.0f} vs opt {opt:.0f} at H={h}"
        # ...and beats the optimistic linear-scaling 2PC estimate at
        # every skew (by a wide margin at low skew; at H = 50 our
        # reduced hot-item population makes negotiation queues bite
        # harder than the paper's, so the bar there is parity).
        assert homeo > est, f"homeo {homeo:.0f} vs 2pc(est) {est:.0f} at H={h}"
    assert_factor(
        results[("homeo", 1)].total_throughput(),
        8 * results[("2pc-c1", 1)].total_throughput(),
        2.0,
        "homeo vs 2pc(est) at low skew",
    )
    assert_monotone(
        [results[("homeo", h)].total_throughput() for h in HOTNESS],
        increasing=False, label="homeo throughput vs H", tolerance=0.25,
    )
