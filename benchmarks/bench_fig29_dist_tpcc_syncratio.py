"""Figure 29: distributed TPC-C synchronization ratio vs skew H.

Paper's shape (Appendix F.2): the fraction of transactions requiring
synchronization rises with H for both homeostasis and OPT, with
homeostasis somewhat above OPT (its automatically derived treaties
are near but not exactly the hand-crafted optimum); both stay in the
single-digit range.
"""

from _common import assert_monotone, once, print_table

from repro.sim.experiments import run_tpcc

HOTNESS = (1, 25, 50)
DIST_MIX = (0.49, 0.49, 0.02)


def _run_all():
    return {
        (mode, h): run_tpcc(
            mode,
            hotness=h,
            num_warehouses=3,
            num_districts=2,
            items_per_district=60,
            mix=DIST_MIX,
            clients_per_replica=8,
            max_txns=1_500,
        )
        for h in HOTNESS
        for mode in ("homeo", "opt")
    }


def test_fig29_dist_tpcc_syncratio(benchmark):
    results = once(benchmark, _run_all)

    rows = [
        [h] + [results[(m, h)].sync_ratio * 100 for m in ("homeo", "opt")]
        for h in HOTNESS
    ]
    print_table(
        "Figure 29: distributed TPC-C synchronization ratio vs H (%)",
        ["H", "homeo", "opt"],
        rows,
    )

    assert_monotone(
        [results[("homeo", h)].sync_ratio for h in HOTNESS],
        increasing=True, label="homeo sync ratio vs H", tolerance=0.25,
    )
    for h in HOTNESS:
        homeo = results[("homeo", h)].sync_ratio
        opt = results[("opt", h)].sync_ratio
        assert 0.0 < homeo < 0.25
        assert 0.0 < opt < 0.25
        assert homeo >= 0.5 * opt  # same order of magnitude
