"""Flash sale: one hot SKU, stock treaty headroom collapsing to zero.

The regime the adaptive-reallocation machinery was built for, pushed
to its worst case: 90% of checkouts hammer one SKU, so the static
equal split strands half the remaining stock on the cold site while
the hot site pays a sync round per exhausted budget.  The sweep
raises the hot fraction and compares static vs adaptive allocation;
the sell-out audit then drives 3x the hot stock in checkouts and
demands the protocol's signature property at the boundary: the SKU
ends exactly at zero -- sold out, never oversold -- however the
treaty splits moved.
"""

from _common import print_table

from repro.sim.experiments import run_flashsale, run_flashsale_sellout

HOT_SWEEP = (0.5, 0.7, 0.9)

POINT = dict(
    num_skus=8,
    hot_stock=150,
    cold_stock=60,
    restock_fraction=0.05,
    peek_fraction=0.1,
    max_txns=1_200,
    seed=0,
)


def _run_sweep():
    sweep = {
        hot: {
            mode: run_flashsale(mode, hot_fraction=hot, **POINT)
            for mode in ("static", "adaptive")
        }
        for hot in HOT_SWEEP
    }
    sellout = run_flashsale_sellout(num_sites=2, hot_stock=60, seed=0)
    return sweep, sellout


def test_flashsale(benchmark):
    sweep, sellout = benchmark.pedantic(_run_sweep, rounds=1, iterations=1)

    rows = []
    for hot, runs in sweep.items():
        static, adaptive = runs["static"], runs["adaptive"]
        rows.append([
            hot,
            static.sync_ratio,
            adaptive.sync_ratio,
            adaptive.rebalance_ratio,
            static.total_throughput(),
            adaptive.total_throughput(),
        ])
    print_table(
        "Flash sale: static vs adaptive sync ratio vs hot fraction",
        ["hot frac", "static sync", "adaptive sync", "adaptive reb",
         "static txn/s", "adaptive txn/s"],
        rows,
    )
    print_table(
        "Sell-out audit (3x hot stock in checkouts)",
        ["hot stock", "remaining", "sold out", "oversold", "min stock",
         "sync ratio"],
        [[sellout["hot_stock"], sellout["hot_remaining"],
          sellout["sold_out"], sellout["oversold_units"],
          sellout["min_stock"], sellout["sync_ratio"]]],
    )

    # Contention must *cost* something: the hot point pays more
    # coordination than the mild one under static allocation.
    static_syncs = [sweep[h]["static"].sync_ratio for h in HOT_SWEEP]
    assert static_syncs[-1] > static_syncs[0], (
        f"hot skew did not raise static sync ratio: {static_syncs}"
    )
    # The headline: at the hottest point, adaptive allocation beats
    # the static split, honestly (counting proactive refreshes too).
    hot = sweep[HOT_SWEEP[-1]]
    assert (
        hot["adaptive"].sync_ratio + hot["adaptive"].rebalance_ratio
        < hot["static"].sync_ratio
    ), "adaptive did not beat static at the hot point"
    # The boundary property, independent of allocation: sold out,
    # never oversold.
    assert sellout["sold_out"] and sellout["oversold_units"] == 0
    assert sellout["min_stock"] >= 0
