"""Per-edge negotiation pricing on a geo-partitioned deployment.

Five replicas on the Table 1 RTT matrix (UE, UW, IE, SG, BR), with
the item space split into replication groups (0,1), (2,3) and (0,4).
Under the flat pricing model every violation would pay the cluster
diameter 2 x 372 ms (SG<->BR); with participant-scoped rounds priced
from the transport trace a group's violation pays only its own
slowest internal edge:

    group (0,1)  UE<->UW  2 x  64 ms
    group (2,3)  IE<->SG  2 x 285 ms
    group (0,4)  UE<->BR  2 x 164 ms

so the negotiation tail of the cheap groups collapses by ~6x and the
mean violating latency drops well below the flat-model bound.
"""

from _common import GEO_TXNS, once, print_table

from repro.sim.experiments import run_geo
from repro.sim.network import max_rtt, participants_rtt, rtt_matrix_for

GROUPS = ((0, 1), (2, 3), (0, 4))


def _run():
    return run_geo(
        "homeo", groups=GROUPS, num_replicas=5, max_txns=GEO_TXNS, seed=0
    )


def test_geo_edge_pricing(benchmark):
    res = once(benchmark, _run)
    matrix = rtt_matrix_for(5)
    flat_cost = 2.0 * max_rtt(matrix)  # what the old model charged

    rows = []
    for gid, members in enumerate(GROUPS):
        synced = [
            r for r in res.records
            if r.kind == "sync" and r.family == f"Buy{gid}"
        ]
        if not synced:
            continue
        scoped = 2.0 * participants_rtt(matrix, members)
        mean_comm = sum(r.comm_ms for r in synced) / len(synced)
        rows.append([f"group {members}", len(synced), scoped, mean_comm, flat_cost])
    print_table(
        "Geo deployment: negotiation cost per replication group (ms)",
        ["group", "negotiations", "2x group edge", "mean comm", "flat model"],
        rows,
    )
    print("participant histogram:", res.participant_histogram())

    synced = [r for r in res.records if r.kind == "sync"]
    assert synced, "expected some negotiations"
    # Every negotiation is priced at most at its group edge bound...
    group_bound = {
        f"Buy{gid}": 2.0 * participants_rtt(matrix, members)
        for gid, members in enumerate(GROUPS)
    }
    for r in synced:
        # A violation may drag in extra sites through shared dirty
        # state (site 0 is in two groups), but never the whole
        # cluster's worst edge unless those sites are truly involved.
        assert r.comm_ms <= flat_cost
        assert r.comm_ms >= group_bound[r.family] or r.participants
    # ...and the cheap group's violations beat the flat model by >4x.
    cheap = [r for r in synced if r.family == "Buy0" and len(r.participants) == 2]
    assert cheap, "expected scoped (0,1) negotiations"
    for r in cheap:
        assert r.comm_ms == 2.0 * 64.0
    assert flat_cost / (2.0 * 64.0) > 4.0
