"""Quota: a multi-tenant rate limiter of many small treaties.

Where the other workloads stress one treaty's headroom, this one
stresses the treaty *table*: every tenant carries its own independent
limit invariant, so the per-commit check scope, the compiled-check
cache, and the install path all scale with tenant count.  The sweep
grows the tenant population and watches checks-per-commit and
throughput; the saturation audit hammers 90% of traffic onto one
tenant and demands the ceiling behaviour exactly -- the tenant
reaches its limit and never passes it.
"""

from _common import print_table

from repro.sim.experiments import run_quota, run_quota_saturation

TENANT_SWEEP = (30, 80, 150)

POINT = dict(
    limit=12,
    usage_fraction=0.05,
    max_txns=1_200,
    seed=0,
)


def _run_sweep():
    sweep = {
        tenants: run_quota("homeo", num_tenants=tenants, **POINT)
        for tenants in TENANT_SWEEP
    }
    saturation = run_quota_saturation(
        num_sites=2, num_tenants=30, limit=8, requests=600, seed=0
    )
    return sweep, saturation


def test_quota(benchmark):
    sweep, saturation = benchmark.pedantic(_run_sweep, rounds=1, iterations=1)

    print_table(
        "Quota: treaty-table scaling with tenant count",
        ["tenants", "txn/s", "sync ratio", "checks/commit", "free ratio"],
        [
            [tenants, r.total_throughput(), r.sync_ratio,
             r.classifier.get("checks_per_commit", 0.0),
             r.classifier.get("free_ratio", 0.0)]
            for tenants, r in sweep.items()
        ],
    )
    print_table(
        "Saturation audit (one tenant hammered, limit 8)",
        ["limit", "max used", "min used", "overruns", "sync ratio"],
        [[saturation["limit"], saturation["max_used"],
          saturation["min_used"], saturation["overrun_violations"],
          saturation["sync_ratio"]]],
    )

    # Tenant treaties are independent: growing the population must not
    # drive the sync ratio toward coordination collapse.
    for tenants, result in sweep.items():
        assert result.sync_ratio < 0.5, (
            f"{tenants} tenants: sync ratio {result.sync_ratio:.3f}"
        )
    # Clause scope scales with the table size (this is the cost the
    # compare_bench checks-per-commit gate holds the line on).
    cpcs = [sweep[t].classifier.get("checks_per_commit", 0.0)
            for t in TENANT_SWEEP]
    assert cpcs == sorted(cpcs), f"checks/commit not monotone: {cpcs}"
    # The ceiling, exactly: saturated but never overrun.
    assert saturation["within_limits"], saturation
    assert saturation["max_used"] == saturation["limit"]
    assert saturation["min_used"] >= 0
