"""Table 1: average RTTs between Amazon datacenters (milliseconds).

An input table in the paper; reproduced here as the simulator's
network model, with the symmetry/triangle sanity checks the
experiments rely on.
"""

from _common import once, print_table

from repro.sim.network import DATACENTERS, TABLE1_RTT_MS, max_rtt, rtt_matrix_for


def test_table1_rtt_matrix(benchmark):
    matrix = once(benchmark, lambda: rtt_matrix_for(5))

    rows = []
    for i, a in enumerate(DATACENTERS):
        rows.append([a] + [f"{matrix[i][j]:.0f}" for j in range(5)])
    print_table("Table 1: RTT between datacenters (ms)", ["", *DATACENTERS], rows)

    # Symmetry and the paper's headline values.
    for i in range(5):
        for j in range(5):
            assert matrix[i][j] == matrix[j][i]
    assert TABLE1_RTT_MS[("UE", "UW")] == 64.0
    assert TABLE1_RTT_MS[("SG", "BR")] == 372.0
    assert max_rtt(rtt_matrix_for(2)) == 64.0  # UE+UW deployment
    assert max_rtt(rtt_matrix_for(5)) == 372.0
    # Adding replicas in paper order increases the sync-round cost.
    costs = [max_rtt(rtt_matrix_for(n)) for n in range(2, 6)]
    assert costs == sorted(costs)
