"""Diff a benchmark run against the committed ``BENCH_*.json`` baseline.

Gates (per scenario):

- ``throughput_txn_per_s`` (simulated, deterministic) must not drop
  more than ``--threshold`` (default 20%) below the baseline;
- ``sync_ratio`` must not rise more than ``--threshold`` above the
  baseline (plus a small absolute epsilon for near-zero ratios);
- ``p99_ms`` (simulated, deterministic) must not rise more than
  ``--threshold`` above the baseline;
- scenarios carrying an ``adaptive_gate`` block (the adaptive_skew
  scenario) must show the adaptive sync ratio **strictly below** the
  static one at the high-skew point, per workload -- this is the
  headline claim of adaptive reallocation, checked on the *current*
  run (both ratios are deterministic under the fixed seed, so the
  inequality is stable) in addition to the regression gates above;
- scenarios carrying a ``fault_gate`` block (the faults scenario)
  must show homeostasis **committing on the surviving sites during
  the outage window while 2PC blocks**: homeo outage-window
  availability strictly above 2PC's, above an absolute floor (0.5),
  and 2PC's at most 0.05 -- all deterministic under the fixed seed;
  a ``winner_crash`` sub-block additionally asserts the Paxos Commit
  survivor path: the round whose origin crash-stopped mid-quorum
  committed without the origin, announced completion, and the origin
  recovered and committed again (every flag checked);
- scenarios carrying a ``fairness_gate`` block (the contention_races
  scenario) must show the budgeted credit policy **bounding the worst
  losing streak** in the tie-dominated regime: credit's
  max-consecutive-losses at or below an absolute ceiling (3) and
  strictly below the pure site-id priority policy's, whose streaks
  grow with skew -- deterministic under the fixed seed;
- the treaty-check microbenchmark ``speedup`` must stay at or above
  ``--min-speedup`` (default 1.5).  The recorded speedups sit at
  ~2.4-2.9x; the floor is deliberately below them because the speedup
  is a wall-clock *ratio* measured on the host -- it is robust to a
  uniformly slow machine but a noisy shared runner can shave a few
  tenths, and the gate's job is to catch the fast path being broken
  (ratio collapsing to ~1x), not to relitigate the margin;
- the escrow-counter microbenchmark ``escrow_speedup`` (escrow
  commits over compiled-closure checks) must stay at or above
  ``--min-escrow-speedup`` (default 5.0) -- same one-shared-
  measurement, judged-once treatment as the compiled speedup, with
  the recorded values sitting at >10x;
- ``escrow_eligible_ratio`` (eligible installs / installs, fully
  deterministic under the fixed seed) must not drop below the
  baseline on the ``micro`` and ``adaptive_skew`` scenarios: a
  lowering change that silently sends real treaties back to the
  compiled slow path should fail loudly, not vanish into a
  throughput wobble;
- ``free_ratio`` (classifier-FREE commit-check bypasses per treaty
  execution, deterministic) must not drop below the baseline on the
  ``micro`` scenario, whose mix carries read-only ``Audit`` probes
  the coordination-freedom classifier must keep proving FREE;
- the TPC-C ``checks_per_commit`` (mean treaty clauses in scope per
  commit, recorded in the adaptive_skew scenario's gate block) must
  not rise above the baseline: a path-sensitivity regression that
  sends partitioned checks back to whole-treaty evaluation should
  fail loudly;
- scenarios carrying a ``flashsale_gate`` block must show the
  deterministic sell-out audit clean: the hot SKU ends exactly at
  zero after 3x demand -- sold out, never oversold; the scenario's
  ``adaptive_gate`` row additionally requires adaptive strictly below
  static on sync ratio at the hot point;
- scenarios carrying a ``banking_gate`` block must conserve money
  exactly (final total equals initial funds plus deposits) with no
  account ending negative;
- scenarios carrying a ``quota_gate`` block must show the hammered
  tenant reaching its limit exactly and never overrunning it; the
  quota scenario's record-level ``checks_per_commit`` is additionally
  gated against the baseline (150 independent tenant treaties make it
  the canary for treaty-table / compiled-check-cache bloat);
- records carrying an ``async_gate`` block (the async_loopback
  scenario, produced by ``bench_async_loopback.py`` rather than the
  harness) are judged by **absolute floors only** -- their
  throughput is real wall-clock over loopback sockets, far too
  host-dependent for relative gates.  The floors: at least
  ``min_connections`` concurrent client connections, throughput at
  or above the recorded floor, every submitted transaction
  committed, a sync ratio in ``(0, sync_ratio_max]`` (the run must
  negotiate, on the async wire), real inter-site frames sent, and
  the differential oracle (async kernel vs deterministic simulator
  on identical seeds) reporting agreement.

``wall_time_s`` and absolute check rates are host-dependent and only
reported, never gated.  Exit status is non-zero iff any gate fails,
so CI can hard-fail on main and soft-fail (``continue-on-error``) on
pull requests.

Usage::

    python benchmarks/harness.py --out bench-results
    python benchmarks/compare_bench.py --current bench-results --baseline .
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: absolute slack on sync-ratio comparisons (a 0.001 -> 0.002 move is
#: within seed-level noise, not a 100% regression)
SYNC_RATIO_EPSILON = 0.005


def _load(path: Path) -> dict:
    with path.open() as fh:
        record = json.load(fh)
    version = record.get("schema_version")
    if version != 3:
        raise SystemExit(f"{path}: unsupported schema_version {version!r}")
    return record


#: scenarios whose escrow eligibility ratio is gated against the
#: baseline (the protocol scenarios where the escrow path carries the
#: commit load; the fault scenario crashes accounts mid-run and the
#: geo/contention scenarios are covered transitively by the lowering)
ESCROW_ELIGIBILITY_SCENARIOS = ("micro", "adaptive_skew")

#: scenarios whose classifier-FREE bypass ratio is gated against the
#: baseline (the micro mix carries read-only Audit probes the
#: classifier must keep proving FREE)
CLASSIFIER_FREE_SCENARIOS = ("micro",)

#: adaptive_gate workloads whose per-commit clauses-in-scope count is
#: gated against the baseline (TPC-C is where path-sensitive partition
#: checks shrink the scope; micro's two-path Buy has nothing to shrink)
CHECKS_PER_COMMIT_WORKLOADS = ("tpcc",)

#: scenarios whose *record-level* checks_per_commit is gated against
#: the baseline (quota runs 150 independent tenant treaties, so a
#: treaty-table or compiled-check-cache regression shows up directly
#: as clause-scope bloat per commit)
CHECKS_PER_COMMIT_SCENARIOS = ("quota",)


def compare_scenario(baseline: dict, current: dict, threshold: float) -> list[str]:
    """Gate failures for one scenario's deterministic metrics.

    The treaty-check speedup is *not* gated here: the harness measures
    it once per run and copies the record into every scenario file, so
    the floor is applied once in :func:`main` (one noisy measurement
    must fail once, not once per scenario)."""
    failures: list[str] = []
    name = baseline["scenario"]

    if baseline.get("async_gate") or current.get("async_gate"):
        # Wall-clock-over-sockets records: absolute floors only, the
        # relative gates below assume deterministic simulated numbers.
        return async_gate_failures(name, current)

    base_tput = baseline["throughput_txn_per_s"]
    cur_tput = current["throughput_txn_per_s"]
    if cur_tput < base_tput * (1.0 - threshold):
        failures.append(
            f"{name}: throughput regressed {base_tput:.1f} -> {cur_tput:.1f} "
            f"txn/s (> {threshold:.0%} drop)"
        )

    base_sync = baseline["sync_ratio"]
    cur_sync = current["sync_ratio"]
    if cur_sync > base_sync * (1.0 + threshold) + SYNC_RATIO_EPSILON:
        failures.append(
            f"{name}: sync ratio regressed {base_sync:.4f} -> {cur_sync:.4f} "
            f"(> {threshold:.0%} rise)"
        )

    base_p99 = baseline["p99_ms"]
    cur_p99 = current["p99_ms"]
    if cur_p99 > base_p99 * (1.0 + threshold):
        failures.append(
            f"{name}: p99 latency regressed {base_p99:.1f} -> {cur_p99:.1f} ms "
            f"(> {threshold:.0%} rise)"
        )

    if name in ESCROW_ELIGIBILITY_SCENARIOS:
        base_elig = baseline["escrow_eligible_ratio"]
        cur_elig = current["escrow_eligible_ratio"]
        if cur_elig < base_elig:
            failures.append(
                f"{name}: escrow eligibility dropped {base_elig:.4f} -> "
                f"{cur_elig:.4f} (treaties falling back to the compiled path)"
            )

    if name in CLASSIFIER_FREE_SCENARIOS:
        base_free = baseline.get("free_ratio", 0.0)
        cur_free = current.get("free_ratio", 0.0)
        if cur_free < base_free:
            failures.append(
                f"{name}: classifier FREE ratio dropped {base_free:.4f} -> "
                f"{cur_free:.4f} (FREE paths falling back to treaty checks)"
            )

    if name in CHECKS_PER_COMMIT_SCENARIOS:
        base_cpc = baseline.get("checks_per_commit", 0.0)
        cur_cpc = current.get("checks_per_commit", 0.0)
        if cur_cpc > base_cpc:
            failures.append(
                f"{name}: checks per commit rose {base_cpc:.2f} -> "
                f"{cur_cpc:.2f} (per-commit treaty clause scope bloated)"
            )

    failures.extend(checks_per_commit_failures(name, baseline, current))
    failures.extend(adaptive_gate_failures(name, current))
    failures.extend(fault_gate_failures(name, current))
    failures.extend(fairness_gate_failures(name, current))
    failures.extend(flashsale_gate_failures(name, current))
    failures.extend(banking_gate_failures(name, current))
    failures.extend(quota_gate_failures(name, current))
    return failures


def checks_per_commit_failures(
    name: str, baseline: dict, current: dict
) -> list[str]:
    """The path-sensitivity gate: mean treaty clauses in scope per
    commit must not rise above the baseline on the gated workloads of
    a record's ``adaptive_gate`` block (empty for scenarios without
    one).  Both numbers are deterministic under the fixed seed."""
    base_gate = baseline.get("adaptive_gate") or {}
    cur_gate = current.get("adaptive_gate") or {}
    failures: list[str] = []
    for workload in CHECKS_PER_COMMIT_WORKLOADS:
        base_point = base_gate.get(workload)
        cur_point = cur_gate.get(workload)
        if not isinstance(base_point, dict) or not isinstance(cur_point, dict):
            continue
        base_cpc = base_point.get("checks_per_commit", 0.0)
        cur_cpc = cur_point.get("checks_per_commit", 0.0)
        if cur_cpc > base_cpc:
            failures.append(
                f"{name}/{workload}: checks per commit rose {base_cpc:.2f} -> "
                f"{cur_cpc:.2f} (partitioned checks widening back to the "
                f"whole treaty)"
            )
    return failures


def adaptive_gate_failures(name: str, current: dict) -> list[str]:
    """The adaptive-beats-static gate over a record's ``adaptive_gate``
    block (empty for scenarios without one)."""
    gate = current.get("adaptive_gate")
    if not gate:
        return []
    failures: list[str] = []
    for workload, point in sorted(gate.items()):
        if not isinstance(point, dict):
            continue  # 'skew' and other scalar annotations
        adaptive = point["adaptive_sync_ratio"]
        static = point["static_sync_ratio"]
        if not adaptive < static:
            failures.append(
                f"{name}/{workload}: adaptive sync ratio {adaptive:.4f} not "
                f"strictly below static {static:.4f} at skew {gate.get('skew')}"
            )
    return failures


#: fault-gate thresholds: homeostasis must stay at least this
#: available during the outage window, and 2PC at most this available
#: (it blocks; its only commits race the crash boundary)
FAULT_HOMEO_FLOOR = 0.5
FAULT_TWOPC_CEILING = 0.05


def fault_gate_failures(name: str, current: dict) -> list[str]:
    """The homeostasis-survives-2PC-blocks gate over a record's
    ``fault_gate`` block (empty for scenarios without one).  All three
    checks run on the *current* record -- the quantities are
    deterministic under the fixed seed, so the inequalities are stable
    across machines."""
    gate = current.get("fault_gate")
    if not gate:
        return []
    failures: list[str] = []
    homeo = gate["homeo_outage_availability"]
    twopc = gate["twopc_outage_availability"]
    if not homeo > twopc:
        failures.append(
            f"{name}: homeo outage availability {homeo:.4f} not strictly "
            f"above 2PC's {twopc:.4f}"
        )
    if homeo < FAULT_HOMEO_FLOOR:
        failures.append(
            f"{name}: homeo outage availability {homeo:.4f} below the "
            f"{FAULT_HOMEO_FLOOR} floor (surviving sites should keep committing)"
        )
    if twopc > FAULT_TWOPC_CEILING:
        failures.append(
            f"{name}: 2PC outage availability {twopc:.4f} above the "
            f"{FAULT_TWOPC_CEILING} ceiling (2PC should block during an outage)"
        )
    failures.extend(winner_crash_failures(name, gate.get("winner_crash")))
    return failures


#: winner_crash flags that must all be true for the survivor path to
#: count as exercised (see run_winner_crash for what each one means)
WINNER_CRASH_FLAGS = (
    "committed",
    "origin_down_at_completion",
    "origin_excluded",
    "recovered_clean",
    "post_recovery_committed",
)


def winner_crash_failures(name: str, crash: dict | None) -> list[str]:
    """The Paxos Commit survivor-completion gate over a fault_gate's
    ``winner_crash`` sub-block (empty when absent, for baselines
    predating it).  The scenario is fully deterministic."""
    if not crash:
        return []
    failures: list[str] = []
    for flag in WINNER_CRASH_FLAGS:
        if not crash.get(flag):
            failures.append(
                f"{name}: winner_crash flag {flag!r} is false (survivor "
                f"completion of the crashed origin's round broke)"
            )
    if crash.get("complete_messages", 0) < 1:
        failures.append(
            f"{name}: winner_crash announced no Complete message (the "
            f"survivor never closed the round for the other participants)"
        )
    return failures


#: absolute ceiling on the credit policy's worst losing streak in the
#: tie-dominated fairness scenario (the recorded value sits at 2; the
#: budgeted credit bounds it by construction, so 3 is headroom for
#: workload-mix drift, not for a starvation regression)
CREDIT_MAX_LOSSES = 3


def fairness_gate_failures(name: str, current: dict) -> list[str]:
    """The starvation-freedom gate over a record's ``fairness_gate``
    block (empty for scenarios without one).  Both policies run the
    identical tie-dominated skew point, so the comparison is
    deterministic under the fixed seed."""
    gate = current.get("fairness_gate")
    if not gate:
        return []
    failures: list[str] = []
    priority = gate.get("priority") or {}
    credit = gate.get("credit") or {}
    credit_losses = credit.get("max_consecutive_losses")
    priority_losses = priority.get("max_consecutive_losses")
    if credit_losses is None or priority_losses is None:
        return [f"{name}: fairness_gate missing a policy block"]
    if credit_losses > CREDIT_MAX_LOSSES:
        failures.append(
            f"{name}: credit policy's max consecutive losses "
            f"{credit_losses} above the {CREDIT_MAX_LOSSES} ceiling "
            f"(priority credit no longer bounds starvation)"
        )
    if not credit_losses < priority_losses:
        failures.append(
            f"{name}: credit max consecutive losses {credit_losses} not "
            f"strictly below priority's {priority_losses} at skew "
            f"{gate.get('skew')} (the policies stopped separating)"
        )
    if credit.get("elections", 0) <= 0:
        failures.append(
            f"{name}: fairness scenario held no contested elections "
            f"(the tie-dominated point stopped racing)"
        )
    return failures


def flashsale_gate_failures(name: str, current: dict) -> list[str]:
    """The sell-out audit over a record's ``flashsale_gate`` block
    (empty for scenarios without one).  Driving 3x the hot stock in
    checkouts is deterministic under the fixed seed: the hot SKU must
    end exactly at zero -- sold out, never oversold -- whatever the
    treaty splits and refreshes did along the way."""
    gate = current.get("flashsale_gate")
    if not gate:
        return []
    failures: list[str] = []
    if not gate.get("sold_out"):
        failures.append(
            f"{name}: hot SKU did not sell out ({gate.get('hot_remaining')} "
            f"of {gate.get('hot_stock')} left after 3x demand)"
        )
    if gate.get("oversold_units", 0) != 0:
        failures.append(
            f"{name}: oversold {gate['oversold_units']} unit(s) (the stock "
            f"treaty admitted a decrement below zero)"
        )
    if gate.get("min_stock", 0) < 0:
        failures.append(
            f"{name}: a SKU ended at {gate['min_stock']} (negative stock "
            f"on final state)"
        )
    return failures


def banking_gate_failures(name: str, current: dict) -> list[str]:
    """The money-conservation audit over a record's ``banking_gate``
    block (empty for scenarios without one).  Deterministic under the
    fixed seed: the final total must equal initial funds plus
    deposits exactly, and no account may end negative."""
    gate = current.get("banking_gate")
    if not gate:
        return []
    failures: list[str] = []
    if not gate.get("money_conserved"):
        problems = gate.get("conservation_problems") or []
        shown = "; ".join(str(p) for p in problems[:3]) or "no detail"
        failures.append(f"{name}: money not conserved ({shown})")
    if gate.get("final_total") != gate.get("expected_total"):
        failures.append(
            f"{name}: final total {gate.get('final_total')} != expected "
            f"{gate.get('expected_total')} (transfers created or destroyed "
            f"money)"
        )
    if gate.get("min_balance", 0) < 0:
        failures.append(
            f"{name}: an account ended at {gate['min_balance']} (the "
            f"non-negative-balance treaty was violated)"
        )
    return failures


def quota_gate_failures(name: str, current: dict) -> list[str]:
    """The saturation audit over a record's ``quota_gate`` block
    (empty for scenarios without one).  Deterministic under the fixed
    seed: the hammered tenant must reach its limit exactly -- the
    treaty must neither admit an overrun nor refuse admissible
    hits short of the ceiling."""
    gate = current.get("quota_gate")
    if not gate:
        return []
    failures: list[str] = []
    if gate.get("overrun_violations", 0) != 0 or not gate.get("within_limits"):
        failures.append(
            f"{name}: {gate.get('overrun_violations')} tenant(s) overran "
            f"the limit (rate-limiter treaty admitted excess hits)"
        )
    if gate.get("max_used") != gate.get("limit"):
        failures.append(
            f"{name}: hammered tenant peaked at {gate.get('max_used')} of "
            f"limit {gate.get('limit')} (saturation never reached -- the "
            f"audit is not exercising the ceiling)"
        )
    if gate.get("min_used", 0) < 0:
        failures.append(
            f"{name}: a tenant's counter ended at {gate['min_used']} "
            f"(negative usage on final state)"
        )
    return failures


def async_gate_failures(name: str, current: dict) -> list[str]:
    """Absolute floors for a record's ``async_gate`` block (empty for
    scenarios without one).  The async_loopback record measures the
    real asyncio runtime over loopback sockets, so its throughput is
    host wall-clock: the gate catches collapse (a sender sleeping out
    its timeout per send, a serialized connection handler), not
    wobble, and the correctness burden rides on the differential
    oracle instead."""
    gate = current.get("async_gate")
    if not gate:
        return []
    failures: list[str] = []
    if gate["connections"] < gate["min_connections"]:
        failures.append(
            f"{name}: only {gate['connections']} concurrent connection(s), "
            f"need >= {gate['min_connections']}"
        )
    tput = current["throughput_txn_per_s"]
    floor = gate["throughput_floor_txn_per_s"]
    if tput < floor:
        failures.append(
            f"{name}: wall-clock throughput {tput:.1f} txn/s below the "
            f"{floor:.1f} floor (runtime collapsed, not wobbled)"
        )
    if gate["committed"] < gate["submitted"]:
        failures.append(
            f"{name}: only {gate['committed']}/{gate['submitted']} "
            f"transactions committed on a fault-free loopback run"
        )
    sync = current["sync_ratio"]
    if not 0.0 < sync <= gate["sync_ratio_max"]:
        failures.append(
            f"{name}: sync ratio {sync:.4f} outside (0, "
            f"{gate['sync_ratio_max']}] (the run must negotiate, but not "
            f"on every transaction)"
        )
    if gate["frames_sent"] <= 0:
        failures.append(
            f"{name}: no inter-site wire frames sent (treaty negotiation "
            f"never crossed the async transport)"
        )
    oracle = gate["differential"]
    if not oracle["ok"]:
        shown = "; ".join(oracle.get("mismatches", [])[:3]) or "no detail"
        failures.append(
            f"{name}: differential oracle diverged (async kernel != "
            f"deterministic simulator): {shown}"
        )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument(
        "--current",
        type=Path,
        default=Path("bench-results"),
        help="directory holding the fresh BENCH_*.json run",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=Path("."),
        help="directory holding the committed baseline BENCH_*.json files",
    )
    parser.add_argument("--threshold", type=float, default=0.20)
    parser.add_argument("--min-speedup", type=float, default=1.5)
    parser.add_argument("--min-escrow-speedup", type=float, default=5.0)
    args = parser.parse_args(argv)

    baselines = sorted(args.baseline.glob("BENCH_*.json"))
    if not baselines:
        print(f"no BENCH_*.json baselines under {args.baseline}", file=sys.stderr)
        return 2

    failures: list[str] = []
    speedups: list[float] = []
    escrow_speedups: list[float] = []
    for base_path in baselines:
        baseline = _load(base_path)
        cur_path = args.current / base_path.name
        if not cur_path.exists():
            failures.append(f"{baseline['scenario']}: missing {cur_path}")
            continue
        current = _load(cur_path)
        microbench = current.get("check_microbench")
        if microbench is not None:  # absent on the async_loopback record
            speedups.append(microbench["speedup"])
            escrow_speedups.append(microbench["escrow_speedup"])
        scenario_failures = compare_scenario(baseline, current, args.threshold)
        failures.extend(scenario_failures)
        status = "FAIL" if scenario_failures else "ok"
        agate = current.get("async_gate")
        if agate:
            oracle = agate["differential"]
            print(
                f"[{status}] {baseline['scenario']}: wall-clock "
                f"{current['throughput_txn_per_s']:.1f} txn/s over "
                f"{agate['connections']} connection(s) (floor "
                f"{agate['throughput_floor_txn_per_s']:.0f}, baseline "
                f"{baseline['throughput_txn_per_s']:.1f}, not gated "
                f"relatively), {agate['committed']}/{agate['submitted']} "
                f"committed, sync {current['sync_ratio']:.4f}, p99 "
                f"{current['p99_ms']:.1f} ms, {agate['frames_sent']} wire "
                f"frame(s), differential "
                f"{'ok' if oracle['ok'] else 'DIVERGED'} over "
                f"{len(oracle['seeds'])} seed(s) x {len(oracle['workloads'])} "
                f"workload(s)"
            )
            continue
        print(
            f"[{status}] {baseline['scenario']}: "
            f"throughput {baseline['throughput_txn_per_s']:.1f} -> "
            f"{current['throughput_txn_per_s']:.1f} txn/s, "
            f"sync {baseline['sync_ratio']:.4f} -> {current['sync_ratio']:.4f}, "
            f"p99 {baseline['p99_ms']:.1f} -> {current['p99_ms']:.1f} ms, "
            f"check speedup {current['check_microbench']['speedup']:.2f}x, "
            f"escrow {current['check_microbench']['escrow_speedup']:.2f}x "
            f"(eligible {current.get('escrow_eligible_ratio', 0.0):.2f}), "
            f"free ratio {current.get('free_ratio', 0.0):.2f}, "
            f"wall {current['wall_time_s']:.2f}s (baseline "
            f"{baseline['wall_time_s']:.2f}s, not gated)"
        )
        gate = current.get("adaptive_gate")
        if gate:
            for workload, point in sorted(gate.items()):
                if isinstance(point, dict):
                    print(
                        f"    adaptive_gate {workload}: adaptive "
                        f"{point['adaptive_sync_ratio']:.4f} vs static "
                        f"{point['static_sync_ratio']:.4f} (rebalance ratio "
                        f"{point['adaptive_rebalance_ratio']:.4f}, "
                        f"checks/commit "
                        f"{point.get('checks_per_commit', 0.0):.2f})"
                    )
        fgate = current.get("fault_gate")
        if fgate:
            print(
                f"    fault_gate: outage-window availability homeo "
                f"{fgate['homeo_outage_availability']:.4f} vs 2PC "
                f"{fgate['twopc_outage_availability']:.4f} "
                f"({fgate['homeo_recoveries']} recovery round(s), "
                f"{fgate['homeo_timeouts']} homeo timeout(s))"
            )
            crash = fgate.get("winner_crash")
            if crash:
                ok = all(crash.get(f) for f in WINNER_CRASH_FLAGS)
                print(
                    f"    winner_crash: {'ok' if ok else 'FAIL'} -- "
                    f"{crash.get('survivors', 0)} survivor(s) finished the "
                    f"round ({crash.get('phase2a_messages', 0)} Phase2a, "
                    f"{crash.get('phase2b_messages', 0)} Phase2b, "
                    f"{crash.get('complete_messages', 0)} Complete)"
                )
        sgate = current.get("flashsale_gate")
        if sgate:
            print(
                f"    flashsale_gate: hot SKU {sgate.get('hot_remaining')}/"
                f"{sgate.get('hot_stock')} left, "
                f"{sgate.get('oversold_units')} oversold, min stock "
                f"{sgate.get('min_stock')} (audit sync ratio "
                f"{sgate.get('sync_ratio')})"
            )
        bgate = current.get("banking_gate")
        if bgate:
            print(
                f"    banking_gate: total {bgate.get('final_total')} vs "
                f"expected {bgate.get('expected_total')}, min balance "
                f"{bgate.get('min_balance')} over {bgate.get('accounts')} "
                f"account(s) (audit sync ratio {bgate.get('sync_ratio')})"
            )
        qgate = current.get("quota_gate")
        if qgate:
            print(
                f"    quota_gate: hammered tenant {qgate.get('max_used')}/"
                f"{qgate.get('limit')}, {qgate.get('overrun_violations')} "
                f"overrun(s) over {qgate.get('tenants')} tenant(s) (audit "
                f"sync ratio {qgate.get('sync_ratio')})"
            )
        pgate = current.get("fairness_gate")
        if pgate:
            pri = pgate.get("priority") or {}
            cre = pgate.get("credit") or {}
            print(
                f"    fairness_gate: max consecutive losses priority "
                f"{pri.get('max_consecutive_losses')} vs credit "
                f"{cre.get('max_consecutive_losses')} at skew "
                f"{pgate.get('skew')} (worst-site p99 wait "
                f"{pri.get('worst_site_p99_wait')} vs "
                f"{cre.get('worst_site_p99_wait')} election(s))"
            )

    # One shared measurement, one gate: the harness copies the same
    # microbench record into every scenario file, so judge its best
    # reading once rather than emitting a duplicate failure per file.
    if speedups and max(speedups) < args.min_speedup:
        failures.append(
            f"treaty-check speedup {max(speedups):.2f}x below the "
            f"{args.min_speedup:.1f}x floor"
        )
    if escrow_speedups and max(escrow_speedups) < args.min_escrow_speedup:
        failures.append(
            f"escrow-check speedup {max(escrow_speedups):.2f}x below the "
            f"{args.min_escrow_speedup:.1f}x floor"
        )

    if failures:
        print("\nregressions:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print(f"\nall {len(baselines)} scenario(s) within thresholds")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
