"""Benchmark suite configuration.

Makes the shared helpers importable regardless of invocation
directory and registers the ``paper_check`` summary hook.
"""

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))
