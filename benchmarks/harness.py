"""Machine-readable benchmark harness: scenarios -> ``BENCH_*.json``.

Every performance claim this repo makes should leave a durable,
diffable record.  This harness runs a fixed set of end-to-end
scenarios (each one a prepackaged experiment from
``repro.sim.experiments``), measures

- **wall time** of the whole scenario (host-dependent, informational),
- **simulated transaction throughput** and **sync ratio** (fully
  deterministic under the fixed seed, so they diff exactly across
  machines),
- latency percentiles of the simulated run, and
- a **treaty-check microbenchmark**: the same installed local treaty
  checked through the interpreted reference
  (:func:`repro.logic.compile.interpret_clauses`, the seed's per-call
  AST walk), through the compiled closure fast path
  (:func:`repro.logic.compile.compile_clauses`), and through the
  escrow headroom counters
  (:class:`repro.treaty.escrow.EscrowAccount`), reported as checks/s
  and speedups,

and writes one ``BENCH_<scenario>.json`` per scenario with the stable
schema below.  ``compare_bench.py`` diffs a run against the committed
baselines and fails on regressions; CI runs both on every push.

Schema (``schema_version`` 3)::

    {
      "schema_version": 3,
      "scenario": str,            # harness scenario name
      "mode": str,                # kernel mode the scenario ran
      "txns": int,                # committed transactions
      "negotiations": int,
      "rebalances": int,          # proactive adaptive refreshes
      "wall_time_s": float,       # host-dependent, not gated
      "throughput_txn_per_s": float,   # simulated clock, deterministic
      "sync_ratio": float,             # deterministic
      "p50_ms": float, "p99_ms": float,  # deterministic
      # run-level escrow fast-path counters from the kernel
      # (deterministic under the fixed seed)
      "escrow_eligible_ratio": float,  # eligible installs / installs
      "escrow": {
        "installs": int, "eligible_installs": int,
        "eligible_ratio": float,
        "sites_with_treaty": int, "sites_on_escrow": int,
        "fast_commits": int,      # admitted by the window guard alone
        "settled_commits": int,   # judged on exact counters
        "settlements": int, "violations": int, "resyncs": int
      },
      # static-tier (coordination-freedom classifier + path-sensitive
      # partition) counters, deterministic under the fixed seed
      "free_ratio": float,        # check bypasses / treaty executions
      "checks_per_commit": float, # mean treaty clauses in scope
      "classifier": {
        "free": int, "absorbed": int, "partition": int, "full": int,
        "checked": int, "clauses_in_scope": int,
        "free_ratio": float, "checks_per_commit": float
      },
      "check_microbench": {
        "clauses": int,
        "iterations": int,
        "interpreted_checks_per_s": float,
        "compiled_checks_per_s": float,
        "speedup": float,         # compiled / interpreted
        "escrow_checks_per_s": float,    # counter commits / s
        "escrow_speedup": float,  # escrow / compiled
        "escrow_window": {        # batching behaviour during the bench
          "window": int, "rows": int, "fast_commits": int,
          "settled_commits": int, "settlements": int
        }
      },
      # adaptive_skew only: the adaptive-beats-static comparison at
      # the high-skew point, gated by compare_bench.py
      "adaptive_gate": {
        "skew": float,
        "<workload>": {
          "adaptive_sync_ratio": float,   # deterministic
          "static_sync_ratio": float,     # deterministic
          "adaptive_rebalance_ratio": float,
          "adaptive_rebalances": int,
          "free_ratio": float,            # static-tier bypasses
          "checks_per_commit": float      # TPC-C row gates this
        }
      },
      # faults only: the availability-under-crash comparison, gated by
      # compare_bench.py (homeo must keep committing on the surviving
      # sites during the outage window while 2PC blocks)
      "fault_gate": {
        "crash_at_ms": float, "outage_ms": float,
        "homeo_availability": float,          # whole run, deterministic
        "homeo_outage_availability": float,   # outage window only
        "twopc_availability": float,
        "twopc_outage_availability": float,
        "homeo_recoveries": int,              # WAL replay + rejoin rounds
        "homeo_timeouts": int,                # unavailability failures
        # the Paxos Commit winner-crash scenario (the negotiation
        # origin crash-stops mid-quorum; a survivor must finish the
        # round from the acceptors' WAL state) -- every flag gated
        "winner_crash": {
          "committed": bool, "origin_down_at_completion": bool,
          "origin_excluded": bool, "survivors": int,
          "complete_messages": int,
          "phase2a_messages": int, "phase2b_messages": int,
          "recovered_clean": bool, "post_recovery_committed": bool
        }
      },
      # contention_races only: the arbitration-fairness comparison in
      # the tie-dominated regime (coarse clocks, Zipf-skewed load),
      # gated by compare_bench.py: the credit policy must bound the
      # worst losing streak that pure site-id tie-breaking lets grow
      "fairness_gate": {
        "skew": float, "clock_quantum_ms": float,
        "<policy>": {                          # "priority" and "credit"
          "elections": int,                    # contested elections
          "max_consecutive_losses": int,       # worst site streak
          "worst_site_p99_wait": float,        # elections-waited p99
          "per_site_max_losses": {str: int}
        }
      },
      # flashsale only: the deterministic sell-out audit (3x the hot
      # stock in checkouts must end exactly at zero), gated by
      # compare_bench.py; the scenario also carries an adaptive_gate
      # block with a "flashsale" workload row
      "flashsale_gate": {
        "hot_stock": int, "hot_remaining": int, "sold_out": bool,
        "oversold_units": int, "min_stock": int, "sync_ratio": float
      },
      # banking only: the deterministic money-conservation audit,
      # gated by compare_bench.py (conserved total, no negative
      # balance on final state)
      "banking_gate": {
        "accounts": int, "requests": int, "deposited": int,
        "expected_total": int, "final_total": int, "min_balance": int,
        "money_conserved": bool, "conservation_problems": [str],
        "sync_ratio": float
      },
      # quota only: the deterministic saturation audit (a hammered
      # tenant must reach its limit and never pass it), gated by
      # compare_bench.py
      "quota_gate": {
        "tenants": int, "limit": int, "requests": int,
        "max_used": int, "min_used": int, "overrun_violations": int,
        "within_limits": bool, "sync_ratio": float
      }
    }

Run it::

    python benchmarks/harness.py --out bench-results        # all scenarios
    python benchmarks/harness.py --scenario geo_pricing     # one scenario
    python benchmarks/harness.py --out .                    # refresh baselines
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

if __package__ in (None, ""):  # script mode: make src/ importable
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.logic.compile import (  # noqa: E402
    compile_clauses,
    interpret_clauses,
    lower_to_escrow,
)
from repro.protocol.paxos_commit import NegotiationSpec  # noqa: E402
from repro.sim.experiments import (  # noqa: E402
    run_adaptive_skew,
    run_banking,
    run_banking_conservation,
    run_contention,
    run_faults,
    run_flashsale,
    run_flashsale_sellout,
    run_geo,
    run_micro,
    run_quota,
    run_quota_saturation,
    run_winner_crash,
)
from repro.treaty.escrow import EscrowAccount  # noqa: E402
from repro.workloads.micro import MicroWorkload  # noqa: E402

SCHEMA_VERSION = 3

#: iterations of the treaty-check microbenchmark (per implementation)
CHECK_ITERATIONS = 20_000


def _check_microbench(iterations: int = CHECK_ITERATIONS) -> dict:
    """Compiled-vs-interpreted throughput of one real local treaty.

    The treaty comes from an actual protocol cluster (50 items at the
    checked site), and both implementations read object values through
    the same snapshot lookup, so the measured difference is purely the
    check mechanism: one compiled closure call versus an AST walk per
    clause.

    The escrow leg times :meth:`EscrowAccount.commit` on the same
    treaty's lowered program, fed alternating +1/-1 single-object
    deltas (refill first, so nothing ever violates) against synthetic
    healthy headroom -- honest because commit cost is independent of
    the slack values except through settlement frequency, which the
    recorded ``escrow_window`` stats make auditable.
    """
    workload = MicroWorkload(
        num_items=50, refill=100, num_sites=2, initial_qty="random", init_seed=1
    )
    cluster = workload.build_homeostasis(
        strategy="equal-split", lookahead=20, cost_factor=3, seed=0
    )
    site = cluster.sites[0]
    constraints = site.local_treaty.constraints
    getobj = site.engine.store.snapshot().__getitem__
    compiled = compile_clauses(constraints)
    if compiled(getobj) != interpret_clauses(constraints, getobj):
        raise AssertionError("compiled and interpreted checks disagree")

    def best_rate(check) -> float:
        # Best of three timed repeats: transient host noise only ever
        # slows a repeat down, so the max rate is the stablest estimate.
        best = 0.0
        for _ in range(3):
            t0 = time.perf_counter()
            for _ in range(iterations):
                check()
            best = max(best, iterations / (time.perf_counter() - t0))
        return best

    interpreted_rate = best_rate(lambda: interpret_clauses(constraints, getobj))
    compiled_rate = best_rate(lambda: compiled(getobj))

    program = lower_to_escrow(tuple(constraints))
    if program is None:
        raise AssertionError("microbench treaty must be escrow-eligible")
    account = EscrowAccount(program, [1000] * len(program.rows))
    commit = account.commit
    obj = program.rows[0].expr.coeffs[0][0].name
    up, down = {obj: 1}, {obj: -1}
    if commit(up) is not None or commit(down) is not None:
        raise AssertionError("escrow microbench deltas must never violate")
    escrow_rate = 0.0
    for _ in range(3):
        t0 = time.perf_counter()
        for _ in range(0, iterations, 2):
            commit(up)
            commit(down)
        escrow_rate = max(escrow_rate, iterations / (time.perf_counter() - t0))
    window = account.stats()
    return {
        "clauses": len(constraints),
        "iterations": iterations,
        "interpreted_checks_per_s": round(interpreted_rate, 1),
        "compiled_checks_per_s": round(compiled_rate, 1),
        "speedup": round(compiled_rate / interpreted_rate, 3),
        "escrow_checks_per_s": round(escrow_rate, 1),
        "escrow_speedup": round(escrow_rate / compiled_rate, 3),
        "escrow_window": {
            "window": account.window,
            "rows": len(program.rows),
            "fast_commits": window["fast_commits"],
            "settled_commits": window["settled_commits"],
            "settlements": window["settlements"],
        },
    }


def _scenario_micro():
    # A quarter of the mix is read-only Audit probes: the traffic
    # class the coordination-freedom classifier proves FREE, so the
    # scenario exercises (and its baseline gates) the static tier.
    return run_micro(
        "homeo", num_items=150, max_txns=2_000, seed=0, audit_fraction=0.25
    )


def _scenario_geo_pricing():
    return run_geo("homeo", max_txns=1_500, seed=0)


#: the skew of the fairness comparison (matches the adaptive point)
FAIRNESS_SKEW = 2.0

#: the tie-dominated arbitration point: Zipf(2.0)-skewed clients over
#: four replicas, hot items, and an arbitration clock so coarse that
#: every within-window race carries equal vote timestamps -- elections
#: are decided purely by the tie-break chain (credit, then site id),
#: the regime where the policies separate
_FAIRNESS_POINT = dict(
    num_replicas=4,
    clients_per_replica=8,
    num_items=12,
    skew=FAIRNESS_SKEW,
    max_txns=1_200,
    seed=0,
    config_overrides={"clock_quantum_ms": 1e6},
)


def _scenario_contention_races():
    """Racing violators under the concurrent runtime, plus fairness.

    The scenario's headline metrics are the legacy uniform-load run
    (unchanged semantics); the ``fairness_gate`` extras run the
    tie-dominated skew point under both arbitration policies and
    record each one's credit-ledger summary, which ``compare_bench.py``
    enforces: the budgeted credit policy must bound the worst losing
    streak that pure site-id tie-breaking lets grow.
    """
    headline = run_contention(
        "homeo", num_items=20, window_ms=10.0, max_txns=800, seed=0
    )
    gate: dict = {
        "skew": FAIRNESS_SKEW,
        "clock_quantum_ms": _FAIRNESS_POINT["config_overrides"]["clock_quantum_ms"],
    }
    for policy in ("priority", "credit"):
        result = run_contention(
            "homeo",
            negotiation=NegotiationSpec(policy=policy),
            **_FAIRNESS_POINT,
        )
        fairness = result.fairness
        per_site = fairness["per_site"]
        gate[policy] = {
            "elections": fairness["elections"],
            "max_consecutive_losses": fairness["max_consecutive_losses"],
            "worst_site_p99_wait": max(
                (d["wait_p99"] for d in per_site.values()), default=0.0
            ),
            "per_site_max_losses": {
                str(site): d["max_consecutive_losses"]
                for site, d in sorted(per_site.items())
            },
        }
    return headline, {"fairness_gate": gate}


#: the high-skew point of the adaptive-reallocation experiment
ADAPTIVE_SKEW = 2.0

#: per-workload knobs of the adaptive_skew scenario (deterministic)
_ADAPTIVE_POINTS = {
    "micro": dict(workload="micro", skew=ADAPTIVE_SKEW, max_txns=2_000, seed=0),
    "tpcc": dict(
        workload="tpcc",
        skew=ADAPTIVE_SKEW,
        max_txns=1_000,
        num_items=30,
        initial_stock=35,
        seed=0,
        config_overrides={"duration_ms": 30_000.0},
    ),
}


def _scenario_adaptive_skew():
    """Adaptive vs static treaty allocation at the high-skew point.

    The scenario's headline metrics (throughput / sync ratio / p99)
    are the *adaptive micro* run; the extras record the
    adaptive-beats-static comparison on both workloads, which
    ``compare_bench.py`` enforces as its own gate.  Rebalance ratios
    are recorded alongside so the win is auditable as real
    coordination avoided, not violations relabelled as refreshes.
    """
    gate: dict = {"skew": ADAPTIVE_SKEW}
    main_result = None
    for workload, point in _ADAPTIVE_POINTS.items():
        adaptive = run_adaptive_skew("adaptive", **point)
        static = run_adaptive_skew("static", **point)
        gate[workload] = {
            "adaptive_sync_ratio": round(adaptive.sync_ratio, 5),
            "static_sync_ratio": round(static.sync_ratio, 5),
            "adaptive_rebalance_ratio": round(adaptive.rebalance_ratio, 5),
            "adaptive_rebalances": adaptive.rebalances,
            # static-tier yield on this workload (the TPC-C row backs
            # the compare_bench checks-per-commit gate)
            "free_ratio": adaptive.classifier.get("free_ratio", 0.0),
            "checks_per_commit": adaptive.classifier.get(
                "checks_per_commit", 0.0
            ),
        }
        if workload == "micro":
            main_result = adaptive
    return main_result, {"adaptive_gate": gate}


#: the fault scenario's deterministic crash schedule (site 1 is down
#: for half of the 1.5s..4.5s window of a 6s run)
_FAULT_POINT = dict(
    crash_site=1,
    crash_at_ms=1_500.0,
    outage_ms=3_000.0,
    duration_ms=6_000.0,
    clients_per_replica=4,
    num_items=120,
    seed=0,
)


def _scenario_faults():
    """Availability under a site crash: homeo vs 2PC, one outage.

    The scenario's headline metrics are the *homeostasis* run (with
    validate mode on, so every install asserts H1/H2 and the recovery
    asserts the WAL-replayed treaty is identical to the cluster's);
    the ``fault_gate`` extras record both modes' availability over the
    whole run and over the outage window specifically, which
    ``compare_bench.py`` enforces: homeostasis must keep committing on
    the surviving sites while 2PC blocks.
    """
    homeo = run_faults("homeo", validate=True, **_FAULT_POINT)
    twopc = run_faults("2pc", **_FAULT_POINT)
    window = (
        _FAULT_POINT["crash_at_ms"],
        _FAULT_POINT["crash_at_ms"] + _FAULT_POINT["outage_ms"],
    )
    gate = {
        "crash_at_ms": _FAULT_POINT["crash_at_ms"],
        "outage_ms": _FAULT_POINT["outage_ms"],
        "homeo_availability": round(homeo.availability, 5),
        "homeo_outage_availability": round(homeo.availability_between(*window), 5),
        "twopc_availability": round(twopc.availability, 5),
        "twopc_outage_availability": round(twopc.availability_between(*window), 5),
        "homeo_recoveries": homeo.recoveries,
        "homeo_timeouts": homeo.timeouts,
        # The non-blocking negotiation scenario: the origin of a
        # violating round crash-stops after the first Phase2b ack and
        # a survivor completes the round from the acceptors' WAL
        # state (validate-mode oracles on throughout).
        "winner_crash": run_winner_crash(seed=0),
    }
    return homeo, {"fault_gate": gate}


#: the flash-sale stress point: 90% of checkouts on one SKU, treaty
#: headroom collapsing toward zero -- the regime adaptive rebalancing
#: was built for (deterministic under the fixed seed)
_FLASHSALE_POINT = dict(
    num_skus=8,
    hot_stock=150,
    cold_stock=60,
    hot_fraction=0.9,
    restock_fraction=0.05,
    peek_fraction=0.1,
    max_txns=2_500,
    seed=0,
)


def _scenario_flashsale():
    """One hot SKU under adaptive vs static treaty allocation.

    The scenario's headline metrics are the *adaptive* run; the
    ``adaptive_gate`` extras record the adaptive-beats-static
    comparison (the same gate shape the adaptive_skew scenario uses,
    enforced by the same compare_bench check), and the
    ``flashsale_gate`` extras record the deterministic sell-out audit:
    driving 3x the hot stock in checkouts must end exactly at zero --
    sold out, never oversold -- whatever the treaty splits did.
    """
    adaptive = run_flashsale("adaptive", **_FLASHSALE_POINT)
    static = run_flashsale("static", **_FLASHSALE_POINT)
    gate = {
        "hot_fraction": _FLASHSALE_POINT["hot_fraction"],
        "flashsale": {
            "adaptive_sync_ratio": round(adaptive.sync_ratio, 5),
            "static_sync_ratio": round(static.sync_ratio, 5),
            "adaptive_rebalance_ratio": round(adaptive.rebalance_ratio, 5),
            "adaptive_rebalances": adaptive.rebalances,
            "free_ratio": adaptive.classifier.get("free_ratio", 0.0),
            "checks_per_commit": adaptive.classifier.get(
                "checks_per_commit", 0.0
            ),
        },
    }
    sellout = run_flashsale_sellout(num_sites=2, hot_stock=60, seed=0)
    return adaptive, {"adaptive_gate": gate, "flashsale_gate": sellout}


def _scenario_banking():
    """Cross-site transfers under non-negative-balance treaties.

    Headline metrics are the homeostasis run; the ``banking_gate``
    extras record the deterministic conservation audit on a separate
    3-site cluster: money in equals money out (transfers conserve,
    deposits add exactly what they deposited) and no account ever
    ends negative -- the treaty invariant, checked on final state.
    """
    homeo = run_banking(
        "homeo",
        num_accounts=8,
        initial_balance=30,
        deposit_fraction=0.1,
        audit_fraction=0.05,
        max_txns=2_000,
        seed=0,
    )
    conservation = run_banking_conservation(
        num_sites=3, num_accounts=6, requests=600, seed=0
    )
    return homeo, {"banking_gate": conservation}


def _scenario_quota():
    """A multi-tenant rate limiter: 150 independent small treaties.

    Headline metrics are the homeostasis run (its
    ``checks_per_commit`` is gated baseline-relative by
    compare_bench: this scenario is where a treaty-table or
    compiled-check-cache regression shows up as clause-scope bloat);
    the ``quota_gate`` extras record the deterministic saturation
    audit: hammering 90% of traffic onto one tenant must drive it
    exactly to its limit -- never past it.
    """
    homeo = run_quota(
        "homeo",
        num_tenants=150,
        limit=12,
        usage_fraction=0.05,
        max_txns=2_500,
        seed=0,
    )
    saturation = run_quota_saturation(
        num_sites=2, num_tenants=30, limit=8, requests=600, seed=0
    )
    return homeo, {"quota_gate": saturation}


#: scenario name -> zero-argument runner returning a SimResult (or a
#: (SimResult, extras) pair whose extras merge into the JSON record)
SCENARIOS = {
    "micro": _scenario_micro,
    "geo_pricing": _scenario_geo_pricing,
    "contention_races": _scenario_contention_races,
    "adaptive_skew": _scenario_adaptive_skew,
    "faults": _scenario_faults,
    "flashsale": _scenario_flashsale,
    "banking": _scenario_banking,
    "quota": _scenario_quota,
}


def run_scenario(name: str, check_microbench: dict | None = None) -> dict:
    """Run one scenario end to end and return its schema-1 record.

    The treaty-check microbenchmark is scenario-independent; callers
    running several scenarios should measure it once and pass it in
    (``main`` does) rather than re-timing 120k checks per scenario.
    """
    runner = SCENARIOS[name]
    t0 = time.perf_counter()
    result = runner()
    wall = time.perf_counter() - t0
    extras: dict = {}
    if isinstance(result, tuple):
        result, extras = result
    stats = result.latency_stats()
    record = {
        "schema_version": SCHEMA_VERSION,
        "scenario": name,
        "mode": result.mode,
        "txns": result.committed,
        "negotiations": result.negotiations,
        "rebalances": result.rebalances,
        "wall_time_s": round(wall, 3),
        "throughput_txn_per_s": round(result.total_throughput(), 3),
        "sync_ratio": round(result.sync_ratio, 5),
        "p50_ms": round(stats.p50, 3),
        "p99_ms": round(stats.p99, 3),
        "escrow": dict(result.escrow),
        "escrow_eligible_ratio": result.escrow.get("eligible_ratio", 0.0),
        "classifier": dict(result.classifier),
        "free_ratio": result.classifier.get("free_ratio", 0.0),
        "checks_per_commit": result.classifier.get("checks_per_commit", 0.0),
        "check_microbench": check_microbench or _check_microbench(),
    }
    record.update(extras)
    return record


def bench_path(out_dir: Path, scenario: str) -> Path:
    return out_dir / f"BENCH_{scenario}.json"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument(
        "--scenario",
        action="append",
        choices=sorted(SCENARIOS),
        help="scenario to run (repeatable; default: all)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path("bench-results"),
        help="directory for BENCH_<scenario>.json files (default: bench-results)",
    )
    args = parser.parse_args(argv)
    names = args.scenario or sorted(SCENARIOS)
    args.out.mkdir(parents=True, exist_ok=True)
    micro = _check_microbench()

    for name in names:
        record = run_scenario(name, check_microbench=micro)
        path = bench_path(args.out, name)
        path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
        mb = record["check_microbench"]
        print(
            f"{name}: {record['txns']} txns, "
            f"{record['throughput_txn_per_s']:.1f} txn/s (sim), "
            f"sync ratio {record['sync_ratio']:.4f}, "
            f"wall {record['wall_time_s']:.2f}s, "
            f"check speedup {mb['speedup']:.2f}x, "
            f"escrow {mb['escrow_speedup']:.2f}x/"
            f"{record['escrow_eligible_ratio']:.2f} -> {path}"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
