#!/usr/bin/env python3
"""Starvation-free arbitration under skewed contention.

Runs the racing-violator experiment at a skewed contention point
(Zipf-distributed client population, every within-window race a true
timestamp tie) under both arbitration policies of the negotiation
facade:

- ``priority`` — the legacy ordering; ties fall through to the site
  id, so low-numbered sites win every election and a hot cluster
  starves the rest;
- ``credit``   — each lost election accrues a capped priority credit
  bid ahead of the site id, bounding any site's consecutive losses.

Prints the per-policy fairness ledger (``SimResult.fairness``): max
consecutive losses, per-site win/loss counts and wait percentiles.
See docs/FAIRNESS.md for the metric definitions and the CI gate over
the same point.

Run:  python examples/fairness_arbitration.py
"""

from repro import NegotiationSpec, run_contention


def main() -> None:
    print("Racing violators: 4 replicas, Zipf(2.0) client skew, "
          "12 hot items, 800 transactions per policy\n")
    for policy in ("priority", "credit"):
        result = run_contention(
            "homeo",
            num_replicas=4,
            clients_per_replica=8,
            num_items=12,
            skew=2.0,
            max_txns=800,
            seed=0,
            negotiation=NegotiationSpec(policy=policy),
            # Quantize vote timestamps into one shared window so every
            # race is a genuine tie -- the regime the tiebreak decides.
            config_overrides={"clock_quantum_ms": 1e6},
        )
        fairness = result.fairness
        print(f"policy={policy}: {fairness['elections']} contested "
              f"elections, max consecutive losses "
              f"{fairness['max_consecutive_losses']}")
        for site, row in sorted(fairness["per_site"].items()):
            print(f"  site {site}: {row['wins']:4d} wins "
                  f"{row['losses']:4d} losses  worst streak "
                  f"{row['max_consecutive_losses']:2d}  "
                  f"wait p99 {row['wait_p99']:.0f}")
        print()
    print("The credit policy's budget bounds every site's losing "
          "streak; the site-id tiebreak does not.")


if __name__ == "__main__":
    main()
