#!/usr/bin/env python3
"""Performance comparison across execution modes (Section 6.1 in small).

Drives the discrete-event harness over the microbenchmark in all four
modes (homeostasis with Algorithm 1 treaties, OPT/demarcation
equal-split, two-phase commit, uncoordinated LOCAL) and prints a
Figure 10/11-style table: latency percentiles, per-replica throughput
and synchronization ratio.

Run:  python examples/performance_comparison.py
"""

from repro import run_micro

MODES = ("homeo", "opt", "2pc", "local")


def main() -> None:
    print("Microbenchmark, 2 replicas x 16 clients, RTT 100 ms, "
          "150 items, REFILL 100, 2500 transactions per mode\n")
    header = (
        f"{'mode':7s} {'p50':>8s} {'p90':>8s} {'p97':>8s} {'p99':>9s} "
        f"{'tput/replica':>13s} {'sync':>7s}"
    )
    print(header)
    print("-" * len(header))
    rows = {}
    for mode in MODES:
        res = run_micro(mode, rtt_ms=100.0, max_txns=2_500, num_items=150)
        s = res.latency_stats()
        rows[mode] = res
        print(
            f"{mode:7s} {s.p50:7.1f}ms {s.p90:7.1f}ms {s.p97:7.1f}ms "
            f"{s.p99:8.1f}ms {res.throughput_per_replica():10.0f}/s "
            f"{res.sync_ratio:6.2%}"
        )

    homeo = rows["homeo"].throughput_per_replica()
    two_pc = rows["2pc"].throughput_per_replica()
    local = rows["local"].throughput_per_replica()
    print()
    print("The paper's Section 6.1 story, in miniature:")
    print(f"  - homeostasis median latency is local ({rows['homeo'].latency_stats().p50:.1f} ms)"
          " -- ~97-98% of transactions never communicate;")
    print(f"  - the violating tail pays ~2 RTT + solver "
          f"(p100 = {rows['homeo'].latency_stats().p100:.0f} ms);")
    print(f"  - 2PC pays two round trips on *every* transaction "
          f"(p50 = {rows['2pc'].latency_stats().p50:.0f} ms);")
    print(f"  - throughput: homeostasis is {homeo / two_pc:.0f}x 2PC and "
          f"{homeo / local:.0%} of the uncoordinated ceiling.")


if __name__ == "__main__":
    main()
