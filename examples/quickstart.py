#!/usr/bin/env python3
"""Quickstart: the paper's running example, end to end.

Walks the full pipeline on transactions T1 and T2 from Figure 3:

1. parse L source and compute symbolic tables (Figure 4),
2. build the joint table (Figure 4c),
3. pick the row matching the current database and linearize it,
4. split into per-site treaty templates with configuration variables,
5. instantiate configurations (Theorem 4.3 default, demarcation
   equal-split, Algorithm 1 optimized -- reproducing the Appendix C.2
   worked example), and
6. run a replicated stock workload through the full homeostasis
   protocol kernel, checking Theorem 3.8 equivalence.

Run:  python examples/quickstart.py
"""

import random

from repro import (
    MicroWorkload,
    SequenceWorkloadModel,
    build_cluster,
    build_joint_table,
    build_symbolic_table,
    build_templates,
    default_configuration,
    equal_split_configuration,
    evaluate,
    linearize_for_treaty,
    optimize_configuration,
    parse_transaction,
)

T1_SRC = """
transaction T1() {
  xh := read(x);
  yh := read(y);
  if xh + yh < 10 then { write(x = xh + 1) } else { write(x = xh - 1) }
}
"""

T2_SRC = """
transaction T2() {
  xh := read(x);
  yh := read(y);
  if xh + yh < 20 then { write(y = yh + 1) } else { write(y = yh - 1) }
}
"""


def analysis_walkthrough() -> None:
    print("=" * 72)
    print("1. Symbolic tables (Figure 4)")
    print("=" * 72)
    t1 = parse_transaction(T1_SRC)
    t2 = parse_transaction(T2_SRC)
    table1 = build_symbolic_table(t1)
    table2 = build_symbolic_table(t2)
    print(table1.pretty())
    print(table2.pretty())

    print()
    print("=" * 72)
    print("2. Joint table for {T1, T2} (Figure 4c)")
    print("=" * 72)
    joint = build_joint_table([table1, table2])
    for row in joint.rows:
        print("  psi:", row.guard.pretty())

    print()
    print("=" * 72)
    print("3. Treaty generation at D = {x: 10, y: 13} (Section 4.2)")
    print("=" * 72)
    db = {"x": 10, "y": 13}
    getobj = lambda name: db.get(name, 0)  # noqa: E731
    psi = joint.lookup(getobj).guard
    print("matched psi:", psi.pretty())
    lin = linearize_for_treaty(psi, getobj)
    print("linearized :", lin.pretty())

    locate = lambda name: 1 if name == "x" else 2  # noqa: E731
    templates = build_templates(lin, locate, [1, 2])
    print(templates.pretty())

    print()
    print("4. Configurations")
    for name, maker in (
        ("Theorem 4.3 default ", default_configuration),
        ("equal split (OPT)   ", equal_split_configuration),
    ):
        config = maker(templates, getobj)
        values = {repr(k): v for k, v in config.values.items()}
        print(f"  {name}: {values}")

    # Algorithm 1 with the Appendix C.2 workload model: T1 twice as
    # likely as T2, lookahead 3, cost factor 3.
    model = SequenceWorkloadModel(mix={"T1": 2.0, "T2": 1.0})
    config, stats = optimize_configuration(
        templates, getobj, db, {"T1": t1, "T2": t2}, model,
        lookahead=3, cost_factor=3, rng=random.Random(42),
    )
    values = {repr(k): v for k, v in config.values.items()}
    print(f"  Algorithm 1 (L=3, f=3): {values}  "
          f"[{stats.soft_constraints} soft constraints sampled]")


def protocol_demo() -> None:
    print()
    print("=" * 72)
    print("5. The homeostasis protocol on a replicated stock workload")
    print("=" * 72)
    workload = MicroWorkload(num_items=10, refill=20, num_sites=2)
    spec = workload.cluster_spec(strategy="equal-split", validate=True)
    cluster = build_cluster(spec)

    rng = random.Random(7)
    schedule = [workload.next_request(rng) for _ in range(400)]
    logs = [cluster.submit(req.tx_name, req.params).log for req in schedule]

    stats = cluster.stats
    print(f"submitted            : {stats.submitted}")
    print(f"committed locally    : {stats.committed_local}")
    print(f"treaty negotiations  : {stats.negotiations}")
    print(f"synchronization ratio: {stats.sync_ratio:.2%}")
    print(f"messages sent        : {stats.messages.total()}")

    # Theorem 3.8: indistinguishable from a serial execution.
    state = dict(workload.initial_db)
    for req, log in zip(schedule, logs):
        out = evaluate(
            workload.reference_transaction(req.tx_name), state, params=req.params
        )
        state = out.db
        assert out.log == log
    final = cluster.global_state()
    assert all(state.get(k, 0) == final.get(k, 0) for k in set(state) | set(final))
    print("Theorem 3.8 check    : protocol run == serial run  [OK]")


if __name__ == "__main__":
    analysis_walkthrough()
    protocol_demo()
