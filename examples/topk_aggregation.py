#!/usr/bin/env python3
"""The introduction's distributed top-k example (Figures 1 and 2).

Shows how the symbolic table of the aggregator's insert handler
*derives* the threshold-algorithm optimization: the row whose residual
is `skip` identifies exactly the inserts that item sites can swallow
without contacting the aggregator.  Then replays a random insert
stream under both algorithms and compares message counts.

Run:  python examples/topk_aggregation.py
"""

from repro import (
    TopKSystem,
    TopKWorkload,
    aggregator_table,
    skip_guard_threshold,
)


def main() -> None:
    print("=" * 72)
    print("Aggregator insert handler: symbolic table (k = 2)")
    print("=" * 72)
    table = aggregator_table()
    print(table.pretty())

    print()
    print("The do-nothing row's guard -- the derived treaty shape:")
    print("   ", skip_guard_threshold(table))
    print("Item sites holding a cached copy of top2 can locally skip any")
    print("insert satisfying it; only violations contact the aggregator.")

    print()
    print("=" * 72)
    print("Figure 1 vs Figure 2 on a 5000-insert stream, 3 item sites")
    print("=" * 72)
    workload = TopKWorkload(num_item_sites=3, value_range=(1, 100_000))
    basic, improved = workload.compare(n=5000, seed=11)
    print(f"final top-2 (both algorithms): {basic.top}")
    print(f"basic    (Fig. 1): {basic.messages:6d} messages "
          f"({basic.message_ratio:.2f} per insert)")
    print(f"improved (Fig. 2): {improved.messages:6d} messages "
          f"({improved.message_ratio:.3f} per insert)")
    print(f"communication reduced {basic.messages / improved.messages:.0f}x")

    print()
    print("Message ratio shrinks as the top-2 stabilizes:")
    system = TopKSystem(num_item_sites=3)
    for n in (100, 500, 2500, 10_000):
        stream = workload.stream(n, seed=3)
        run = system.run_improved(stream)
        print(f"  {n:6d} inserts -> {run.message_ratio:.4f} messages/insert")


if __name__ == "__main__":
    main()
