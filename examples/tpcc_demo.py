#!/usr/bin/env python3
"""TPC-C under the homeostasis protocol (Section 6.2, Appendix E).

Runs the three-transaction TPC-C subset through the protocol kernel
and shows the per-family synchronization behaviour the paper derives
in Appendix E:

- Payment never synchronizes (pure delta increments after the
  Appendix B transform),
- New Order synchronizes only when a stock treaty budget runs out,
- Delivery synchronizes on every execution (its output pins remote
  state).

Run:  python examples/tpcc_demo.py
"""

import random
from collections import defaultdict

from repro import TpccWorkload, build_cluster, evaluate


def main() -> None:
    workload = TpccWorkload(
        num_warehouses=2,
        num_districts=2,
        items_per_district=50,
        num_customers=40,
        num_sites=2,
        hotness=10,
        initial_stock=100,
    )
    print("Building symbolic tables and treaties "
          f"({len(workload.variants)} transaction variants)...")
    cluster = build_cluster(workload.cluster_spec(strategy="equal-split"))

    print("One transformed New Order variant (Appendix B deltas visible):")
    print(workload.variants["NewOrder@s0"].pretty())
    print()

    rng = random.Random(5)
    schedule = [workload.next_request(rng) for _ in range(1500)]

    per_family = defaultdict(lambda: [0, 0])  # family -> [count, syncs]
    logs = []
    for req in schedule:
        out = cluster.submit(req.tx_name, req.params)
        logs.append(out.log)
        per_family[req.family][0] += 1
        per_family[req.family][1] += out.synced

    print(f"{'family':10s} {'txns':>6s} {'syncs':>6s} {'sync ratio':>11s}")
    for family in ("NewOrder", "Payment", "Delivery"):
        count, syncs = per_family[family]
        ratio = syncs / count if count else 0.0
        print(f"{family:10s} {count:6d} {syncs:6d} {ratio:10.2%}")
    print(f"{'overall':10s} {cluster.stats.submitted:6d} "
          f"{cluster.stats.negotiations:6d} {cluster.stats.sync_ratio:10.2%}")

    # Theorem 3.8 spot check.
    state = dict(workload.initial_db)
    for req, log in zip(schedule, logs):
        out = evaluate(
            workload.reference_transaction(req.tx_name), state, params=req.params
        )
        state = out.db
        assert out.log == log
    final = cluster.global_state()
    assert all(state.get(k, 0) == final.get(k, 0) for k in set(state) | set(final))
    print("\nTheorem 3.8 check: protocol run == serial run  [OK]")

    # Appendix E expectations.
    assert per_family["Payment"][1] == 0, "Payment must never synchronize"
    assert per_family["Delivery"][1] == per_family["Delivery"][0], (
        "Delivery must synchronize every time"
    )
    no_count, no_syncs = per_family["NewOrder"]
    assert 0 < no_syncs < no_count, "New Order synchronizes only at boundaries"
    print("Appendix E sync behaviour: derived automatically  [OK]")


if __name__ == "__main__":
    main()
