#!/usr/bin/env python3
"""Appendix D: treaties beyond top-k -- the weather examples.

The paper's argument for automation: the "top-k of minimums" and
"top-k temperature differences" programs have treaties that are *in
principle* derivable by hand, but the case analysis is error-prone;
the symbolic-table analysis produces it mechanically.  This example
prints the derived case structures and demonstrates which inserts
are observable (treaty-violating) versus silent.

Run:  python examples/weather_monitoring.py
"""

from repro import WeatherWorkload, evaluate


def case_structure(table, title):
    print("=" * 72)
    print(title)
    print("=" * 72)
    print(f"{len(table.rows)} behavioural cases derived:")
    for i, row in enumerate(table.rows):
        print(f"  case {i}: {row.guard.pretty()}")
    print()


def main() -> None:
    workload = WeatherWorkload(num_days=3)

    lows = workload.top2_lows_table()
    case_structure(
        lows,
        "Top-2 of minimums: insert a temperature, print the 2 highest "
        "record lows",
    )

    print("Which observations change the printed top-2?")
    db = {"daymin[0]": -5, "daymin[1]": 2, "daymin[2]": 7}
    print(f"  record lows: {db}")
    for day, temp in ((0, 0), (0, -9), (2, 5), (1, -1)):
        params = {"day": day, "temp": temp}
        before = evaluate(workload.top2_lows(), db, params=params)
        row = lows.lookup(lambda n: db.get(n, 0), params=params)
        silent = "daymin" not in row.residual.pretty().split("print")[0]
        marker = "silent " if silent else "OBSERVABLE"
        print(f"  day {day}, temp {temp:3d} -> {marker}  log {before.log}")

    print()
    diffs = workload.top2_diffs_table()
    case_structure(
        diffs,
        "Top-2 temperature differences: the harder Appendix D case",
    )
    print(
        "The paper: 'It is unclear how much more complexity can be added\n"
        "without overwhelming the human and introducing errors. [...] our\n"
        "analysis can compute correct symbolic tables and local treaties\n"
        f"for both examples automatically.'  ({len(diffs.rows)} cases here.)"
    )


if __name__ == "__main__":
    main()
