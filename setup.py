"""Legacy build shim: the offline environment lacks the `wheel` package
required by PEP 517 editable installs, so `pip install -e .` goes through
this setup.py with metadata sourced from pyproject.toml."""
from setuptools import setup

setup()
