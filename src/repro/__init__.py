"""Reproduction of "The Homeostasis Protocol: Avoiding Transaction
Coordination Through Program Analysis" (Roy et al., SIGMOD 2015).

The package implements the paper's full pipeline from scratch:

- :mod:`repro.lang` -- the transaction languages L / L++ (parser,
  interpreter, Appendix A desugaring);
- :mod:`repro.logic` -- the formula substrate (terms, formulas,
  linear normal forms, the Appendix C.1 preprocessing);
- :mod:`repro.analysis` -- symbolic tables (Figure 6), joint tables,
  independence factorization, residual optimization, LR-slices;
- :mod:`repro.solver` -- exact rational simplex, branch-and-bound
  ILP, Fu-Malik MaxSAT and the specialized budget solver (the paper
  used Z3; this reproduction is self-contained);
- :mod:`repro.treaty` -- treaty templates, Theorem 4.3 / equal-split
  / Algorithm 1 configurations, treaty tables;
- :mod:`repro.storage` -- the per-site transactional engine (strict
  2PL, undo log, relational veneer; the paper used MySQL);
- :mod:`repro.protocol` -- the homeostasis protocol kernel, the
  Appendix B remote-write transform, and the LOCAL / 2PC baselines;
- :mod:`repro.sim` -- the discrete-event performance harness
  (replaces the paper's EC2 deployment);
- :mod:`repro.workloads` -- the microbenchmark, the TPC-C subset,
  top-k, and the Appendix D weather examples.

Quickstart (see also ``examples/quickstart.py``)::

    from repro import analyze, parse_transaction

    tx = parse_transaction('''
        transaction T(p) {
          q := read(stock(@p));
          if q > 0 then { write(stock(@p) = q - 1) }
          else { write(stock(@p) = 99) }
        }
    ''')
    table = analyze(tx)
    print(table.pretty())
"""

from repro.analysis.symbolic import SymbolicTable, build_symbolic_table
from repro.lang.interp import evaluate
from repro.lang.parser import parse_program, parse_transaction
from repro.protocol.homeostasis import HomeostasisCluster, TreatyGenerator

__version__ = "1.0.0"


def analyze(transaction, simplify: bool = True) -> SymbolicTable:
    """Compute the symbolic table of a transaction (Section 2.3)."""
    return build_symbolic_table(transaction, simplify=simplify)


__all__ = [
    "HomeostasisCluster",
    "SymbolicTable",
    "TreatyGenerator",
    "analyze",
    "build_symbolic_table",
    "evaluate",
    "parse_program",
    "parse_transaction",
    "__version__",
]
