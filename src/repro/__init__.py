"""Reproduction of "The Homeostasis Protocol: Avoiding Transaction
Coordination Through Program Analysis" (Roy et al., SIGMOD 2015).

The package implements the paper's full pipeline from scratch:

- :mod:`repro.lang` -- the transaction languages L / L++ (parser,
  interpreter, Appendix A desugaring);
- :mod:`repro.logic` -- the formula substrate (terms, formulas,
  linear normal forms, the Appendix C.1 preprocessing);
- :mod:`repro.analysis` -- symbolic tables (Figure 6), joint tables,
  independence factorization, residual optimization, LR-slices;
- :mod:`repro.solver` -- exact rational simplex, branch-and-bound
  ILP, Fu-Malik MaxSAT and the specialized budget solver (the paper
  used Z3; this reproduction is self-contained);
- :mod:`repro.treaty` -- treaty templates, Theorem 4.3 / equal-split
  / Algorithm 1 configurations, treaty tables;
- :mod:`repro.storage` -- the per-site transactional engine (strict
  2PL, undo log, relational veneer; the paper used MySQL);
- :mod:`repro.protocol` -- the homeostasis protocol kernel, the
  Appendix B remote-write transform, and the LOCAL / 2PC baselines;
- :mod:`repro.runtime` -- the asyncio runtime: sites as tasks,
  messages as wire frames, ``repro-serve`` over loopback sockets;
- :mod:`repro.sim` -- the discrete-event performance harness
  (replaces the paper's EC2 deployment);
- :mod:`repro.workloads` -- the microbenchmark, the TPC-C subset,
  top-k, and the Appendix D weather examples.

This module is the public facade: analysis entry points, the workload
builders, and the :class:`ClusterSpec` / :func:`build_cluster` pair
that constructs any protocol kernel (sequential, concurrent, async)
from one declarative value.  Quickstart (see also
``examples/quickstart.py``)::

    from repro import MicroWorkload, build_cluster

    workload = MicroWorkload(num_items=10, refill=20, num_sites=2)
    cluster = build_cluster(workload.cluster_spec(strategy="equal-split"))
    result = cluster.submit("Buy@s0", {"item": 3})
    print(result.status, cluster.stats.sync_ratio)
"""

from repro.analysis.joint import build_joint_table
from repro.analysis.symbolic import SymbolicTable, build_symbolic_table
from repro.lang.interp import evaluate
from repro.lang.parser import parse_program, parse_transaction
from repro.logic.linearize import linearize_for_treaty
from repro.protocol.config import ClusterSpec, NegotiationSpec, build_cluster
from repro.protocol.homeostasis import HomeostasisCluster, TreatyGenerator
from repro.protocol.messages import Outcome
from repro.sim.experiments import run_contention, run_micro
from repro.sim.runner import SimConfig, SimResult
from repro.sim.runner import simulate as run_simulation
from repro.treaty.config import (
    default_configuration,
    equal_split_configuration,
)
from repro.treaty.optimize import SequenceWorkloadModel, optimize_configuration
from repro.treaty.templates import build_templates
from repro.workloads.banking import BankingWorkload
from repro.workloads.common import WorkloadSpecError
from repro.workloads.flashsale import FlashSaleWorkload
from repro.workloads.geo import GeoMicroWorkload
from repro.workloads.micro import MicroWorkload
from repro.workloads.quota import QuotaWorkload
from repro.workloads.topk import (
    TopKSystem,
    TopKWorkload,
    aggregator_table,
    skip_guard_threshold,
)
from repro.workloads.tpcc import TpccWorkload
from repro.workloads.weather import WeatherWorkload

__version__ = "1.0.0"


def analyze(transaction, simplify: bool = True) -> SymbolicTable:
    """Compute the symbolic table of a transaction (Section 2.3)."""
    return build_symbolic_table(transaction, simplify=simplify)


__all__ = [
    # analysis pipeline
    "SymbolicTable",
    "analyze",
    "build_joint_table",
    "build_symbolic_table",
    "build_templates",
    "linearize_for_treaty",
    # language
    "evaluate",
    "parse_program",
    "parse_transaction",
    # treaty configuration
    "SequenceWorkloadModel",
    "default_configuration",
    "equal_split_configuration",
    "optimize_configuration",
    # cluster construction + protocol
    "ClusterSpec",
    "HomeostasisCluster",
    "NegotiationSpec",
    "Outcome",
    "TreatyGenerator",
    "build_cluster",
    # simulation harness
    "SimConfig",
    "SimResult",
    "run_contention",
    "run_micro",
    "run_simulation",
    # workloads
    "BankingWorkload",
    "FlashSaleWorkload",
    "GeoMicroWorkload",
    "MicroWorkload",
    "QuotaWorkload",
    "WorkloadSpecError",
    "TopKSystem",
    "TopKWorkload",
    "TpccWorkload",
    "WeatherWorkload",
    "aggregator_table",
    "skip_guard_threshold",
    "__version__",
]
