"""Program analysis: symbolic tables, joint tables, LR-slices.

- :mod:`repro.analysis.symbolic` -- per-transaction symbolic tables
  via the backward construction of Figure 6.
- :mod:`repro.analysis.joint` -- joint tables for transaction sets
  (the K+1-ary relation of Section 2.2).
- :mod:`repro.analysis.factorize` -- SDD-1-style independence
  factorization keeping joint tables small (Section 5.1).
- :mod:`repro.analysis.slices` -- local-remote partitions, LR-slices
  and observational equivalence (Definitions 3.2-3.7).
"""

from repro.analysis.symbolic import (
    AnalysisError,
    Row,
    SymbolicTable,
    build_symbolic_table,
)
from repro.analysis.joint import JointRow, JointSymbolicTable, build_joint_table
from repro.analysis.factorize import FactorizedJointTable, factorize_workload
from repro.analysis.slices import (
    LocalRemotePartition,
    is_lr_slice,
    is_valid_global_treaty,
    observationally_equivalent,
)

__all__ = [
    "AnalysisError",
    "FactorizedJointTable",
    "JointRow",
    "JointSymbolicTable",
    "LocalRemotePartition",
    "Row",
    "SymbolicTable",
    "build_joint_table",
    "build_symbolic_table",
    "factorize_workload",
    "is_lr_slice",
    "is_valid_global_treaty",
    "observationally_equivalent",
]
