"""Program analysis: symbolic tables, joint tables, LR-slices.

- :mod:`repro.analysis.symbolic` -- per-transaction symbolic tables
  via the backward construction of Figure 6.
- :mod:`repro.analysis.joint` -- joint tables for transaction sets
  (the K+1-ary relation of Section 2.2).
- :mod:`repro.analysis.factorize` -- SDD-1-style independence
  factorization keeping joint tables small (Section 5.1).
- :mod:`repro.analysis.slices` -- local-remote partitions, LR-slices
  and observational equivalence (Definitions 3.2-3.7).
- :mod:`repro.analysis.pathsplit` -- per-path write summaries and
  treaty-check partitioning (the dispatch-time static tier).
- :mod:`repro.analysis.classify` -- the coordination-freedom
  classifier: FREE / PATH_SENSITIVE / TREATY / SYNC verdicts with
  machine-checkable witnesses.
"""

from repro.analysis.symbolic import (
    AnalysisError,
    Row,
    SymbolicTable,
    build_symbolic_table,
)
from repro.analysis.joint import JointRow, JointSymbolicTable, build_joint_table
from repro.analysis.factorize import FactorizedJointTable, factorize_workload
from repro.analysis.classify import (
    Classification,
    ClassificationError,
    PathClassification,
    classify_catalog,
)
from repro.analysis.pathsplit import PathCheck, WriteSummary, build_path_checks
from repro.analysis.slices import (
    LocalRemotePartition,
    is_lr_slice,
    is_valid_global_treaty,
    observationally_equivalent,
)

__all__ = [
    "AnalysisError",
    "Classification",
    "ClassificationError",
    "FactorizedJointTable",
    "JointRow",
    "JointSymbolicTable",
    "LocalRemotePartition",
    "PathCheck",
    "PathClassification",
    "Row",
    "SymbolicTable",
    "WriteSummary",
    "build_joint_table",
    "build_path_checks",
    "build_symbolic_table",
    "classify_catalog",
    "factorize_workload",
    "is_lr_slice",
    "is_valid_global_treaty",
    "observationally_equivalent",
]
