"""Coordination-freedom classifier over symbolic execution paths.

The static tier that decides *when treaties are needed at all*.  Per
execution path (one symbolic-table row) the classifier consumes the
:mod:`repro.analysis.pathsplit` write summary and the installed treaty
and emits a verdict with a machine-checkable witness:

``FREE``
    The path provably cannot violate any installed invariant: it is
    read-only, its writes never touch a treaty base
    (invariant-confluence by disjointness), or every write is a
    monotone-safe constant delta (commutative bounded increments away
    from their bounds -- the Bailis-style coordination-avoidance
    classes).  FREE paths bypass the treaty check at commit time and
    the simulator prices them at zero check cost.

``TREATY``
    The path may move an invariant and carries a per-path clause
    partition (or the full dynamic check) -- the homeostasis protocol
    proper.

``SYNC``
    The path *statically always* violates: it writes a constant
    nonzero delta into a base held by an equality pin, so every
    execution lands in the cleanup/negotiation round (TPC-C Delivery's
    print-pinned counters are the canonical case).

Per procedure, the path verdicts roll up to FREE (all paths free),
SYNC (all paths sync), PATH_SENSITIVE (a mix containing at least one
free path -- the dispatch-time selection is what buys the win), or
TREATY.

Witnesses are plain dicts re-derivable from (constraints, summary)
alone; :func:`check_witness` re-verifies one from scratch, which is
what the golden classification table and the property tests call.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Mapping

from repro.analysis.pathsplit import (
    PathCheck,
    WriteSummary,
    base_of_name,
    classify_path,
    clause_bases,
    summarize_writes,
)
from repro.logic.linear import LinearConstraint
from repro.logic.terms import ObjT

if TYPE_CHECKING:
    from repro.protocol.catalog import StoredProcedureCatalog
    from repro.treaty.table import LocalTreaty

#: path-level verdicts
PATH_VERDICTS = ("FREE", "TREATY", "SYNC")
#: procedure-level verdicts
VERDICTS = ("FREE", "PATH_SENSITIVE", "TREATY", "SYNC")


class ClassificationError(Exception):
    """Raised when a witness fails re-verification."""


class PathCheckDivergence(AssertionError):
    """The static tier's bypass and the full treaty check disagreed on
    one commit's verdict -- a soundness bug in the classifier or the
    path partition, surfaced loudly by validate mode instead of
    silently weakening (or over-enforcing) the treaty."""


@dataclass(frozen=True)
class PathClassification:
    """Verdict + witness for one execution path."""

    row_index: int
    verdict: str  # one of PATH_VERDICTS
    reason: str
    witness: tuple[tuple[str, object], ...]  # frozen dict items, sorted

    def witness_dict(self) -> dict[str, object]:
        return dict(self.witness)


@dataclass(frozen=True)
class Classification:
    """Procedure-level verdict over all execution paths."""

    tx_name: str
    verdict: str  # one of VERDICTS
    paths: tuple[PathClassification, ...]

    @property
    def free_paths(self) -> tuple[int, ...]:
        return tuple(p.row_index for p in self.paths if p.verdict == "FREE")


def _freeze(witness: Mapping[str, object]) -> tuple[tuple[str, object], ...]:
    return tuple(sorted(witness.items()))


def _touching_pins(
    summary: WriteSummary, constraints: tuple[LinearConstraint, ...]
) -> list[tuple[int, str, int]]:
    """``(clause_index, base, delta)`` for every constant nonzero write
    into a base an equality pin holds -- the static always-sync proof."""
    out: list[tuple[int, str, int]] = []
    by_base = summary.delta_by_base()
    for idx, con in enumerate(constraints):
        if con.op != "=":
            continue
        for var in con.variables():
            if not isinstance(var, ObjT):
                continue
            base = base_of_name(var.name)
            for delta in by_base.get(base, ()):
                if delta != 0:
                    out.append((idx, base, delta))
    return out


def classify_row(
    summary: WriteSummary,
    constraints: tuple[LinearConstraint, ...],
    tx_name: str,
    row_index: int,
) -> tuple[PathClassification, PathCheck]:
    """Classify one path; returns the verdict and the runtime check."""
    check = classify_path(summary, constraints, tx_name, row_index)
    bases = sorted(summary.bases)
    treaty_bases = sorted(clause_bases(constraints))
    if check.kind == "free":
        witness: dict[str, object] = {
            "write_bases": bases,
            "clause_bases": treaty_bases,
        }
        return (
            PathClassification(row_index, "FREE", check.reason, _freeze(witness)),
            check,
        )
    if check.kind == "free-absorb":
        witness = {
            "deltas": sorted(summary.const_deltas or ()),
            "touching": _touching_coeffs(summary, constraints),
        }
        return (
            PathClassification(row_index, "FREE", check.reason, _freeze(witness)),
            check,
        )
    pins = _touching_pins(summary, constraints)
    if pins and summary.const_deltas is not None:
        witness = {"pins": pins}
        return (
            PathClassification(row_index, "SYNC", "breaks-pin", _freeze(witness)),
            check,
        )
    if check.kind == "partition":
        witness = {"clause_indices": list(check.clause_indices)}
    else:
        witness = {"write_bases": bases}
    return (
        PathClassification(row_index, "TREATY", check.reason, _freeze(witness)),
        check,
    )


def _touching_coeffs(
    summary: WriteSummary, constraints: tuple[LinearConstraint, ...]
) -> list[tuple[int, str, int, int]]:
    """``(clause_index, base, coeff, delta)`` rows backing a
    monotone-safety witness: every row must satisfy ``coeff * delta
    <= 0`` on a ``<=``-clause."""
    out: list[tuple[int, str, int, int]] = []
    by_base = summary.delta_by_base()
    for idx, con in enumerate(constraints):
        for var in con.variables():
            if not isinstance(var, ObjT):
                continue
            base = base_of_name(var.name)
            for delta in by_base.get(base, ()):
                out.append((idx, base, con.coeff_for(var), delta))
    return out


def classify_procedure(
    tx_name: str,
    rows: Iterable[tuple[int, WriteSummary]],
    constraints: tuple[LinearConstraint, ...],
) -> tuple[Classification, tuple[PathCheck, ...]]:
    """Roll per-path verdicts up to one procedure-level classification."""
    paths: list[PathClassification] = []
    checks: list[PathCheck] = []
    for row_index, summary in rows:
        cls, check = classify_row(summary, constraints, tx_name, row_index)
        paths.append(cls)
        checks.append(check)
    verdicts = {p.verdict for p in paths}
    if verdicts == {"FREE"}:
        verdict = "FREE"
    elif verdicts == {"SYNC"}:
        verdict = "SYNC"
    elif "FREE" in verdicts:
        verdict = "PATH_SENSITIVE"
    else:
        verdict = "TREATY"
    return Classification(tx_name, verdict, tuple(paths)), tuple(checks)


def classify_catalog(
    catalog: "StoredProcedureCatalog", treaty: "LocalTreaty | None"
) -> dict[str, Classification]:
    """Classify every registered stored procedure against a site's
    installed local treaty (the runtime entry point; also what the
    golden `docs/CLASSIFICATION.md` table is generated from)."""
    constraints: tuple[LinearConstraint, ...] = (
        treaty.constraints if treaty is not None else ()
    )
    out: dict[str, Classification] = {}
    for tx_name, procedures in catalog.procedures.items():
        rows = [
            (proc.row_index, summarize_writes(proc.row.residual))
            for proc in procedures
        ]
        out[tx_name], _ = classify_procedure(tx_name, rows, constraints)
    return out


# ---------------------------------------------------------------------------
# Witness re-verification
# ---------------------------------------------------------------------------


def check_witness(
    path: PathClassification,
    summary: WriteSummary,
    constraints: tuple[LinearConstraint, ...],
) -> None:
    """Re-verify a path's witness from the raw inputs.

    Raises :class:`ClassificationError` on any mismatch -- a witness
    is only as good as its checkability.
    """
    witness = path.witness_dict()
    if path.verdict == "FREE" and path.reason in ("read-only", "untouched-invariants"):
        claimed_writes = frozenset(
            witness.get("write_bases", ())  # type: ignore[arg-type]
        )
        claimed_clauses = frozenset(
            witness.get("clause_bases", ())  # type: ignore[arg-type]
        )
        if claimed_writes != summary.bases:
            raise ClassificationError(
                f"witness write bases {sorted(claimed_writes)} != "
                f"actual {sorted(summary.bases)}"
            )
        if claimed_clauses != clause_bases(constraints):
            raise ClassificationError("witness clause bases drifted from treaty")
        if claimed_writes & claimed_clauses:
            raise ClassificationError(
                f"FREE witness overlaps: {sorted(claimed_writes & claimed_clauses)}"
            )
        if path.reason == "read-only" and claimed_writes:
            raise ClassificationError("read-only witness has write bases")
        return
    if path.verdict == "FREE" and path.reason == "monotone-safe":
        if summary.const_deltas is None:
            raise ClassificationError("monotone-safe witness without const deltas")
        touching = witness.get("touching", ())
        for idx, base, coeff, delta in touching:  # type: ignore[union-attr]
            con = constraints[idx]
            if con.op != "<=":
                raise ClassificationError(f"clause {idx} is not a <=-bound")
            if coeff * delta > 0:
                raise ClassificationError(
                    f"clause {idx}: delta {delta} on {base} moves toward bound"
                )
        return
    if path.verdict == "SYNC":
        pins = witness.get("pins", ())
        if not pins:
            raise ClassificationError("SYNC witness names no pins")
        for idx, base, delta in pins:  # type: ignore[union-attr]
            con = constraints[idx]
            if con.op != "=":
                raise ClassificationError(f"clause {idx} is not a pin")
            if delta == 0:
                raise ClassificationError("zero delta cannot break a pin")
            pinned = {
                base_of_name(var.name)
                for var in con.variables()
                if isinstance(var, ObjT)
            }
            if base not in pinned:
                raise ClassificationError(f"pin {idx} does not hold base {base!r}")
            if base not in summary.bases:
                raise ClassificationError(f"path does not write base {base!r}")
        return
    if path.verdict == "TREATY":
        indices = witness.get("clause_indices")
        if indices is not None:
            if summary.ground is None:
                raise ClassificationError("partition witness without ground writes")
            for i in indices:  # type: ignore[union-attr]
                _ = constraints[int(i)]  # bounds check
        return
    raise ClassificationError(f"unknown verdict {path.verdict!r}")
