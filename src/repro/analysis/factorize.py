"""Independence factorization of joint tables (Section 5.1).

"Often transaction code operates on multiple database objects
independently [...].  Using a read-write dependency analysis like the
one in SDD-1, we identify such points of independence and use them to
encode symbolic tables more concisely in a factorized manner."

Two transactions are *dependent* when they may touch a common database
object (read-write or write-write on the same object, or on
potentially-aliasing parameterized references).  The dependency graph
partitions the workload into connected components; the joint table of
the whole workload is then the (implicit) product of the per-component
joint tables.  Storing the factors instead of the product avoids the
cross-product blow-up: the materialized row count is the *sum* of
factor sizes rather than their product.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from repro.analysis.joint import JointRow, JointSymbolicTable, build_joint_table
from repro.analysis.symbolic import SymbolicTable
from repro.lang.ast import (
    AConst,
    ArrayRef,
    ObjRef,
    Transaction,
    transaction_reads,
    transaction_writes,
)
from repro.logic.formula import conj
from repro.logic.terms import parse_ground_name


def _ref_footprint(ref: ObjRef) -> tuple[str, str | None]:
    """Return ``(base_name, full_name_or_None)`` for dependency purposes.

    A parameterized reference ``a(@p)`` may touch any slot of ``a``,
    so it is tracked at base granularity (``full_name`` is None); a
    ground reference keeps its exact object name.
    """
    if isinstance(ref, ArrayRef):
        if all(isinstance(ix, AConst) for ix in ref.index):
            indices = tuple(ix.value for ix in ref.index)  # type: ignore[union-attr]
            from repro.logic.terms import ground_name

            return ref.base, ground_name(ref.base, indices)
        return ref.base, None
    parsed = parse_ground_name(ref.name)
    if parsed is not None:
        return parsed[0], ref.name
    return ref.name, ref.name


def _footprints_overlap(
    xs: set[tuple[str, str | None]], ys: set[tuple[str, str | None]]
) -> bool:
    names_y = {name for _base, name in ys if name is not None}
    imprecise_bases_y = {base for base, name in ys if name is None}
    bases_y = {base for base, _name in ys}
    for base, name in xs:
        if name is not None:
            if name in names_y or base in imprecise_bases_y:
                return True
        else:
            # Imprecise reference: conflicts with anything on the base.
            if base in bases_y:
                return True
    return False


def transactions_may_conflict(a: Transaction, b: Transaction) -> bool:
    """Conservative check: do the two transactions share any object?

    Conflicts considered: write-write and read-write in either
    direction (pure read-read sharing does not create a dependency for
    table factorization, because neither transaction's behaviour
    constrains the other's writes -- their guards simply share
    variables, which the treaty layer handles).  Two ground references
    conflict only when they name the same object; a parameterized
    reference conflicts with anything sharing its array base.
    """
    reads_a = {_ref_footprint(r) for r in transaction_reads(a)}
    writes_a = {_ref_footprint(r) for r in transaction_writes(a)}
    reads_b = {_ref_footprint(r) for r in transaction_reads(b)}
    writes_b = {_ref_footprint(r) for r in transaction_writes(b)}

    return (
        _footprints_overlap(writes_a, writes_b)
        or _footprints_overlap(writes_a, reads_b)
        or _footprints_overlap(reads_a, writes_b)
    )


@dataclass
class FactorizedJointTable:
    """A joint table stored as independent factors.

    Each factor is the joint table of one dependency component.  The
    implied full joint table is the cross product of the factors; the
    ``lookup`` result is assembled per-factor without materializing
    that product.
    """

    factors: list[JointSymbolicTable] = field(default_factory=list)

    @property
    def transactions(self) -> tuple[Transaction, ...]:
        out: list[Transaction] = []
        for factor in self.factors:
            out.extend(factor.transactions)
        return tuple(out)

    def materialized_rows(self) -> int:
        """Rows stored across all factors (sum, not product)."""
        return sum(len(f) for f in self.factors)

    def implied_rows(self) -> int:
        """Rows the unfactorized cross product would contain."""
        total = 1
        for factor in self.factors:
            total *= len(factor)
        return total

    def lookup(
        self,
        getobj: Callable[[str], int],
        params: Mapping[str, int] | None = None,
    ) -> JointRow:
        """Assemble the matching implied row from per-factor lookups."""
        guards = []
        residuals = []
        for factor in self.factors:
            row = factor.lookup(getobj, params=params)
            guards.append(row.guard)
            residuals.extend(row.residuals)
        return JointRow(guard=conj(guards), residuals=tuple(residuals))

    def factor_for(self, tx_name: str) -> JointSymbolicTable:
        for factor in self.factors:
            if any(tx.name == tx_name for tx in factor.transactions):
                return factor
        raise KeyError(f"transaction {tx_name!r} not in any factor")


def factorize_workload(
    tables: Sequence[SymbolicTable], simplify: bool = True
) -> FactorizedJointTable:
    """Partition a workload into independent factors and build each
    factor's joint table.

    Union-find over the conservative conflict relation; instead of the
    quadratic pairwise check, transactions are unioned through the
    objects they touch (two transactions conflict exactly when they
    meet in some object's read+write sets, so hashing by footprint
    yields the same partition in near-linear time).  The result is
    semantically equivalent to ``build_joint_table`` over the full set
    (their cross product matches row-for-row), while storing
    exponentially fewer rows for independent workloads.
    """
    n = len(tables)
    parent = list(range(n))

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    def union(i: int, j: int) -> None:
        ri, rj = find(i), find(j)
        if ri != rj:
            parent[rj] = ri

    # Index transactions by footprint.  A precise footprint is keyed
    # by its full object name; an imprecise one (parameterized access)
    # by its base.  Read-write and write-write sharing creates edges;
    # read-read does not, so readers and writers are indexed apart.
    readers_by_name: dict[str, list[int]] = {}
    writers_by_name: dict[str, list[int]] = {}
    readers_by_base: dict[str, list[int]] = {}
    writers_by_base: dict[str, list[int]] = {}
    bases_seen: set[str] = set()

    footprints: list[tuple[set, set]] = []
    for i, table in enumerate(tables):
        tx = table.transaction
        reads = {_ref_footprint(r) for r in transaction_reads(tx)}
        writes = {_ref_footprint(r) for r in transaction_writes(tx)}
        footprints.append((reads, writes))
        for base, name in reads:
            bases_seen.add(base)
            if name is None:
                readers_by_base.setdefault(base, []).append(i)
            else:
                readers_by_name.setdefault(name, []).append(i)
        for base, name in writes:
            bases_seen.add(base)
            if name is None:
                writers_by_base.setdefault(base, []).append(i)
            else:
                writers_by_name.setdefault(name, []).append(i)

    # Precise name meetings: writers union with every reader/writer of
    # the same object name.
    for name, writer_list in writers_by_name.items():
        anchor = writer_list[0]
        for other in writer_list[1:]:
            union(anchor, other)
        for reader in readers_by_name.get(name, []):
            union(anchor, reader)
    # Imprecise base meetings: a base-level writer conflicts with
    # everything on the base; a base-level reader conflicts with every
    # writer on the base.
    for base, writer_list in writers_by_base.items():
        anchor = writer_list[0]
        for other in writer_list[1:]:
            union(anchor, other)
        for reader in readers_by_base.get(base, []):
            union(anchor, reader)
        for name, others in writers_by_name.items():
            if name.split("[", 1)[0] == base:
                for other in others:
                    union(anchor, other)
        for name, others in readers_by_name.items():
            if name.split("[", 1)[0] == base:
                for other in others:
                    union(anchor, other)
    for base, reader_list in readers_by_base.items():
        for name, others in writers_by_name.items():
            if name.split("[", 1)[0] == base:
                for reader in reader_list:
                    union(reader, others[0])

    groups: dict[int, list[SymbolicTable]] = {}
    for i, table in enumerate(tables):
        groups.setdefault(find(i), []).append(table)

    factors = [
        build_joint_table(group, simplify=simplify)
        for _, group in sorted(groups.items())
    ]
    return FactorizedJointTable(factors=factors)
