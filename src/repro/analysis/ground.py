"""Grounding of parameterized transactions.

Treaty generation needs a parameter-free joint table: a global treaty
is a predicate over database states only (Definition 3.6), so the
per-parameter behaviour of a transaction family such as
``NewOrder(item)`` must be captured by instantiating the family over
the item domain.  Thanks to independence factorization
(:mod:`repro.analysis.factorize`) the ground instances touching
different objects land in different factors, so grounding costs the
*sum* of instance table sizes, not their product.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.lang.ast import (
    ABin,
    AConst,
    AExp,
    ANeg,
    AParam,
    ARead,
    ArrayRef,
    Assign,
    BAnd,
    BCmp,
    BExp,
    BNot,
    BOr,
    Com,
    ForEach,
    If,
    ObjRef,
    Print,
    Seq,
    Skip,
    Transaction,
    Write,
)


def subst_params_aexp(expr: AExp, values: Mapping[str, int]) -> AExp:
    if isinstance(expr, AParam) and expr.name in values:
        return AConst(values[expr.name])
    if isinstance(expr, ARead):
        return ARead(_subst_params_ref(expr.ref, values))
    if isinstance(expr, ABin):
        return ABin(
            expr.op,
            subst_params_aexp(expr.left, values),
            subst_params_aexp(expr.right, values),
        )
    if isinstance(expr, ANeg):
        return ANeg(subst_params_aexp(expr.operand, values))
    return expr


def _subst_params_ref(ref: ObjRef, values: Mapping[str, int]) -> ObjRef:
    if isinstance(ref, ArrayRef):
        return ArrayRef(
            ref.base, tuple(subst_params_aexp(ix, values) for ix in ref.index)
        )
    return ref


def subst_params_bexp(expr: BExp, values: Mapping[str, int]) -> BExp:
    if isinstance(expr, BCmp):
        return BCmp(
            expr.op,
            subst_params_aexp(expr.left, values),
            subst_params_aexp(expr.right, values),
        )
    if isinstance(expr, BAnd):
        return BAnd(subst_params_bexp(expr.left, values), subst_params_bexp(expr.right, values))
    if isinstance(expr, BOr):
        return BOr(subst_params_bexp(expr.left, values), subst_params_bexp(expr.right, values))
    if isinstance(expr, BNot):
        return BNot(subst_params_bexp(expr.operand, values))
    return expr


def subst_params_com(com: Com, values: Mapping[str, int]) -> Com:
    if isinstance(com, Skip):
        return com
    if isinstance(com, Assign):
        return Assign(com.temp, subst_params_aexp(com.expr, values))
    if isinstance(com, Seq):
        return Seq(subst_params_com(com.first, values), subst_params_com(com.second, values))
    if isinstance(com, If):
        return If(
            subst_params_bexp(com.cond, values),
            subst_params_com(com.then_branch, values),
            subst_params_com(com.else_branch, values),
        )
    if isinstance(com, Write):
        return Write(
            _subst_params_ref(com.ref, values), subst_params_aexp(com.expr, values)
        )
    if isinstance(com, Print):
        return Print(subst_params_aexp(com.expr, values))
    if isinstance(com, ForEach):
        return ForEach(com.var, com.array, subst_params_com(com.body, values))
    raise TypeError(f"unknown command node {com!r}")


def instance_name(tx_name: str, values: Mapping[str, int]) -> str:
    suffix = ",".join(f"{k}={values[k]}" for k in sorted(values))
    return f"{tx_name}#{suffix}"


@dataclass(frozen=True)
class GroundInstance:
    """One parameter instantiation of a transaction family."""

    family: str
    params: tuple[tuple[str, int], ...]
    transaction: Transaction


def _violates_distinct(tx: Transaction, values: Mapping[str, int]) -> bool:
    """True when a combination assigns equal values within a distinct group."""
    for group in tx.assume_distinct:
        seen = [values[p] for p in group if p in values]
        if len(seen) != len(set(seen)):
            return True
    return False


def ground_instances(
    tx: Transaction, domains: Mapping[str, Sequence[int]]
) -> list[GroundInstance]:
    """Instantiate a transaction over the product of parameter domains,
    skipping combinations excluded by ``assume_distinct``."""
    missing = set(tx.params) - set(domains)
    if missing:
        raise ValueError(f"no domain for parameters {sorted(missing)} of {tx.name}")
    out: list[GroundInstance] = []
    names = list(tx.params)
    for combo in itertools.product(*(domains[p] for p in names)):
        values = dict(zip(names, combo))
        if _violates_distinct(tx, values):
            continue
        body = subst_params_com(tx.body, values)
        instance = Transaction(instance_name(tx.name, values), (), body)
        out.append(
            GroundInstance(
                family=tx.name,
                params=tuple(sorted(values.items())),
                transaction=instance,
            )
        )
    return out
