"""Joint symbolic tables for transaction sets (Section 2.2).

A symbolic table for a set of K transactions is a (K+1)-ary relation:
each row ``(guard, residual_1, ..., residual_K)`` pairs a conjunction
of per-transaction guards with the corresponding partially evaluated
transaction for every member of the set.  It is built as the cross
product of the individual tables, conjoining guards and pruning
contradictions.

Parameters of different transactions are renamed apart in the joint
guard (``@p`` of transaction ``T`` becomes ``@T.p``) so that two
transactions using the same parameter name do not accidentally
correlate.  Residuals keep their original parameter names: they are
executed per-transaction with that transaction's own arguments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, Mapping, Sequence

from repro.analysis.symbolic import SymbolicTable
from repro.lang.ast import Com, Transaction
from repro.logic.formula import FalseF, Formula, conj
from repro.logic.simplify import simplify_formula
from repro.logic.terms import ParamT, Term


class JointTableError(Exception):
    """Raised on inconsistent joint table operations."""


def qualified_param(tx_name: str, param: str) -> str:
    """The joint-table name for parameter ``param`` of ``tx_name``."""
    return f"{tx_name}.{param}"


def _rename_params(guard: Formula, tx: Transaction) -> Formula:
    mapping: dict[Term, Term] = {
        ParamT(p): ParamT(qualified_param(tx.name, p)) for p in tx.params
    }
    return guard.substitute(mapping) if mapping else guard


@dataclass(frozen=True)
class JointRow:
    """One row of the joint table."""

    guard: Formula
    residuals: tuple[Com, ...]

    def pretty(self) -> str:
        return f"{self.guard.pretty()}  ->  {len(self.residuals)} residuals"


@dataclass
class JointSymbolicTable:
    """The (K+1)-ary joint symbolic table of a transaction set."""

    transactions: tuple[Transaction, ...]
    rows: list[JointRow] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[JointRow]:
        return iter(self.rows)

    def lookup(
        self,
        getobj: Callable[[str], int],
        params: Mapping[str, int] | None = None,
    ) -> JointRow:
        """Return the unique row whose guard holds on the database.

        ``params`` uses qualified names (``T.p``); for workloads whose
        treaties do not depend on parameters it can be omitted.
        """
        matches = [
            row for row in self.rows if row.guard.evaluate(getobj, params=params)
        ]
        if len(matches) != 1:
            raise JointTableError(
                f"expected exactly one matching joint row, found {len(matches)}"
            )
        return matches[0]

    def residual_for(self, row: JointRow, tx_name: str) -> Com:
        for tx, residual in zip(self.transactions, row.residuals):
            if tx.name == tx_name:
                return residual
        raise JointTableError(f"transaction {tx_name!r} not in joint table")

    def pretty(self) -> str:
        names = ", ".join(tx.name for tx in self.transactions)
        lines = [f"joint symbolic table for {{{names}}} ({len(self.rows)} rows)"]
        lines += ["  " + row.pretty() for row in self.rows]
        return "\n".join(lines)


def build_joint_table(
    tables: Sequence[SymbolicTable], simplify: bool = True
) -> JointSymbolicTable:
    """Cross-product construction of the joint table (Section 2.2).

    Rows whose conjoined guard simplifies to ``false`` are pruned;
    this is what keeps joint tables of compatible transactions from
    exploding (e.g. ``x + y < 10`` of T1 contradicts ``x + y >= 20``
    of T2, removing that combination entirely -- compare Figure 4c,
    which has 3 rows rather than 4).
    """
    if not tables:
        raise JointTableError("cannot build a joint table for zero transactions")
    transactions = tuple(t.transaction for t in tables)
    seen = set()
    for tx in transactions:
        if tx.name in seen:
            raise JointTableError(f"duplicate transaction name {tx.name!r}")
        seen.add(tx.name)

    rows: list[JointRow] = [JointRow(guard=conj([]), residuals=())]
    for table in tables:
        tx = table.transaction
        extended: list[JointRow] = []
        for row in rows:
            for member in table.rows:
                guard = conj([row.guard, _rename_params(member.guard, tx)])
                if simplify:
                    guard = simplify_formula(guard)
                    if guard == FalseF:
                        continue
                extended.append(
                    JointRow(guard=guard, residuals=row.residuals + (member.residual,))
                )
        rows = extended
    return JointSymbolicTable(transactions=transactions, rows=rows)


def joint_from_rows(
    transactions: Sequence[Transaction], rows: Sequence[tuple[Formula, Sequence[Com]]]
) -> JointSymbolicTable:
    """Assemble a joint table from explicit rows (used in tests)."""
    out = JointSymbolicTable(transactions=tuple(transactions))
    for guard, residuals in rows:
        if len(residuals) != len(transactions):
            raise JointTableError("row arity does not match transaction count")
        out.rows.append(JointRow(guard=guard, residuals=tuple(residuals)))
    return out
