"""Per-path write summaries and treaty-check partitioning.

The symbolic executor (:mod:`repro.analysis.symbolic`) already splits a
stored procedure into mutually exclusive ``Row(guard, residual)``
execution paths, and the catalog dispatches exactly one row per
invocation.  This module exploits that split at *treaty-check* time:
instead of treating every commit as potentially touching every clause
of the site's local treaty, it statically summarizes each path's write
set and partitions the installed clause list into the cheapest sound
check for that path.

Four check kinds, from cheapest to most general:

``free``
    The path's written array bases are disjoint from every base any
    treaty clause mentions (read-only paths are the degenerate case).
    A clause's truth value only changes through writes to its own
    objects, so under H2 (the treaty holds before the commit) it still
    holds after -- the commit can skip the treaty check, the escrow
    interaction, and the write-delta computation outright.  This is
    exactly escrow-equivalent: untracked objects have ``max_coeff ==
    0``, so the escrow account would not have staged their deltas
    either.

``free-absorb``
    Every write has the constant-delta form ``x = read(x) + c`` and,
    for every ``<=``-clause touching a written base, ``coeff * c <=
    0`` (the write moves the clause *away* from its bound), with no
    equality pin touching any written base.  Monotone-safe: the commit
    cannot introduce a violation, so the judgment is skipped.  In
    escrow mode the deltas still flow through the account (the
    counters track slack incrementally) but the verdict is known
    statically.

``partition``
    The path's write set is fully ground (statically known object
    names).  The clauses touching those names are precompiled into a
    single conjunction subset check -- the static analogue of the
    per-object clause index ``violations_after_writes`` consults
    dynamically, minus the per-commit index walk.

``full``
    Parameterized writes touching treaty bases: fall back to the
    dynamic per-object check (or the escrow account).

The partitioning runs at :meth:`SiteServer.install_treaty` time from
the site's own catalog and treaty, so it is deterministic given the
install -- which is what lets the WAL record it and recovery re-derive
and cross-check it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterable, Mapping

from repro.lang.ast import ArrayRef, Com, GroundRef, Write, ref_to_term, walk_commands
from repro.logic.linear import (
    LinearConstraint,
    LinearizationError,
    linear_of_term,
)
from repro.logic.terms import ObjT, Term, parse_ground_name

if TYPE_CHECKING:
    from repro.protocol.catalog import StoredProcedureCatalog
    from repro.treaty.table import LocalTreaty

#: check kinds, cheapest first (order is meaningful for reporting)
CHECK_KINDS = ("free", "free-absorb", "partition", "full")


def base_of_name(name: str) -> str:
    """Array base of a ground object name (scalars are their own base)."""
    parsed = parse_ground_name(name)
    return parsed[0] if parsed else name


def clause_bases(constraints: Iterable[LinearConstraint]) -> frozenset[str]:
    """Every array base mentioned by any clause of a treaty."""
    bases: set[str] = set()
    for con in constraints:
        for var in con.variables():
            if isinstance(var, ObjT):
                bases.add(base_of_name(var.name))
            else:  # parameterized template var; be conservative
                bases.add(getattr(var, "base", str(var)))
    return frozenset(bases)


@dataclass(frozen=True)
class WriteSummary:
    """Static summary of one execution path's write set.

    ``bases`` is always exact (every write's array base).  ``ground``
    is the full set of written object names when *every* write target
    is ground, else ``None``.  ``const_deltas`` maps each written
    reference (pretty-printed term) to its constant delta when every
    write has the form ``x = read(x) + c``, else ``None``.
    """

    bases: frozenset[str]
    ground: frozenset[str] | None
    const_deltas: tuple[tuple[str, int], ...] | None

    @property
    def read_only(self) -> bool:
        return not self.bases

    def delta_by_base(self) -> dict[str, list[int]]:
        """Constant deltas grouped by written base (empty if unknown)."""
        out: dict[str, list[int]] = {}
        if self.const_deltas is None:
            return out
        for name, delta in self.const_deltas:
            out.setdefault(base_of_name(name), []).append(delta)
        return out


def summarize_writes(residual: Com) -> WriteSummary:
    """Summarize the writes of one straight-line residual."""
    bases: set[str] = set()
    ground: set[str] | None = set()
    deltas: list[tuple[str, int]] | None = []
    for node in walk_commands(residual):
        if not isinstance(node, Write):
            continue
        ref = node.ref
        target = ref_to_term(ref)
        if isinstance(ref, GroundRef):
            bases.add(base_of_name(ref.name))
        else:
            assert isinstance(ref, ArrayRef)
            bases.add(ref.base)
        if isinstance(target, ObjT):
            if ground is not None:
                ground.add(target.name)
        else:
            ground = None  # parameterized target: names unknown statically
        if deltas is not None:
            delta = _const_delta(target, node)
            if delta is None:
                deltas = None
            else:
                deltas.append((_ref_key(target), delta))
    return WriteSummary(
        bases=frozenset(bases),
        ground=frozenset(ground) if ground is not None else None,
        const_deltas=tuple(deltas) if deltas is not None else None,
    )


def _ref_key(target: Term) -> str:
    return target.pretty()


def _const_delta(target: Term, write: Write) -> int | None:
    """The constant ``c`` when the write is ``target = read(target) + c``."""
    from repro.lang.ast import aexp_to_term

    try:
        linear = linear_of_term(aexp_to_term(write.expr))
    except LinearizationError:
        return None
    coeffs = dict(linear.coeffs)
    if coeffs.pop(target, None) != 1 or coeffs:
        return None
    return linear.const


@dataclass(frozen=True)
class PathCheck:
    """The selected treaty-check strategy for one execution path."""

    tx_name: str
    row_index: int
    kind: str  # one of CHECK_KINDS
    clause_indices: tuple[int, ...]  # into the treaty's constraint list
    reason: str

    @property
    def bypasses_check(self) -> bool:
        return self.kind in ("free", "free-absorb")

    def encode(self) -> list[object]:
        """Compact JSON-ready form (for the treaty WAL record)."""
        return [self.row_index, self.kind, list(self.clause_indices), self.reason]


def decode_path_check(tx_name: str, payload: Iterable[Any]) -> PathCheck:
    row_index, kind, indices, reason = payload
    return PathCheck(
        tx_name=tx_name,
        row_index=int(row_index),
        kind=str(kind),
        clause_indices=tuple(int(i) for i in indices),
        reason=str(reason),
    )


def classify_path(
    summary: WriteSummary,
    constraints: tuple[LinearConstraint, ...],
    tx_name: str,
    row_index: int,
) -> PathCheck:
    """Select the cheapest sound check kind for one path's writes."""
    treaty_bases = clause_bases(constraints)
    if summary.read_only:
        return PathCheck(tx_name, row_index, "free", (), "read-only")
    if not (summary.bases & treaty_bases):
        return PathCheck(tx_name, row_index, "free", (), "untouched-invariants")
    absorb = _monotone_safe(summary, constraints)
    if absorb:
        return PathCheck(tx_name, row_index, "free-absorb", (), "monotone-safe")
    if summary.ground is not None:
        indices = tuple(
            i
            for i, con in enumerate(constraints)
            if any(
                isinstance(var, ObjT) and var.name in summary.ground
                for var in con.variables()
            )
        )
        return PathCheck(tx_name, row_index, "partition", indices, "ground-writes")
    return PathCheck(tx_name, row_index, "full", (), "parameterized-writes")


def _monotone_safe(
    summary: WriteSummary, constraints: tuple[LinearConstraint, ...]
) -> bool:
    """True when every write is a constant delta that cannot move any
    touching ``<=``-clause toward its bound, and no pin is touched."""
    by_base = summary.delta_by_base()
    if not by_base or set(by_base) != set(summary.bases):
        return False
    for con in constraints:
        touched = False
        for var in con.variables():
            if not isinstance(var, ObjT):
                return False  # template var: cannot reason statically
            base = base_of_name(var.name)
            if base not in by_base:
                continue
            touched = True
            coeff = con.coeff_for(var)
            for delta in by_base[base]:
                if coeff * delta > 0:
                    return False
        if touched and con.op != "<=":
            return False  # equality pin on a written base
    return True


def build_path_checks(
    catalog: "StoredProcedureCatalog", treaty: "LocalTreaty | None"
) -> dict[str, tuple[PathCheck, ...]]:
    """Partition every registered stored procedure's paths against the
    installed local treaty.

    With no treaty installed every path is trivially free.
    """
    constraints: tuple[LinearConstraint, ...] = (
        treaty.constraints if treaty is not None else ()
    )
    out: dict[str, tuple[PathCheck, ...]] = {}
    for tx_name, procedures in catalog.procedures.items():
        checks: list[PathCheck] = []
        for proc in procedures:
            summary = summarize_writes(proc.row.residual)
            checks.append(
                classify_path(summary, constraints, tx_name, proc.row_index)
            )
        out[tx_name] = tuple(checks)
    return out


def encode_path_checks(
    paths: Mapping[str, tuple[PathCheck, ...]],
) -> dict[str, list[list[object]]]:
    """JSON-ready form of a full path-check table (WAL payload)."""
    return {
        tx: [check.encode() for check in checks]
        for tx, checks in sorted(paths.items())
    }


def decode_path_checks(
    payload: Mapping[str, Iterable[Iterable[Any]]],
) -> dict[str, tuple[PathCheck, ...]]:
    return {
        tx: tuple(decode_path_check(tx, entry) for entry in entries)
        for tx, entries in payload.items()
    }
