"""Optimization of partially evaluated transactions (residuals).

Two semantics-preserving passes over the straight-line residuals that
symbolic table construction produces:

1. **Linear write simplification** -- forward-substitute temporary
   definitions into write/print expressions, lower to linear form and
   cancel.  This is the "semantics-preserving program transformation"
   of Appendix B that turns Figure 23b into Figure 23c: the write
   ``w(dx1 = xh - 1 - r(x))`` with ``xh = r(x) + r(dx1)`` cancels the
   remote read and becomes ``w(dx1 = r(dx1) - 1)``.  Non-linear
   expressions are left untouched.

2. **Dead assignment elimination** -- a backward liveness pass drops
   assignments to temporaries never used afterwards.  This is what
   makes Figure 4a's residual ``w(x = r(x) + 1)`` rather than
   ``[xh := r(x); yh := r(y); w(x = xh + 1)]``, and it is essential
   for Assumption 4.1: a dead remote read would otherwise force the
   treaty generator to pin the remote object (Appendix C.3).

Both passes assume straight-line code (no conditionals) -- exactly
what residuals are.  Reads are pure in L, so dropping one is safe.
"""

from __future__ import annotations

from repro.lang.ast import (
    ABin,
    AConst,
    AExp,
    ANeg,
    AParam,
    ARead,
    ATemp,
    ArrayRef,
    Assign,
    Com,
    GroundRef,
    If,
    ObjRef,
    Print,
    Seq,
    Skip,
    Write,
    aexp_to_term,
    seq,
)
from repro.logic.linear import LinearizationError, linear_of_term
from repro.logic.terms import (
    Const,
    IndexedObjT,
    ObjT,
    ParamT,
    TempT,
    Term,
)


class ResidualError(Exception):
    """Raised when a residual is not straight-line code."""


def _flatten(com: Com) -> list[Com]:
    out: list[Com] = []
    stack = [com]
    while stack:
        node = stack.pop()
        if isinstance(node, Seq):
            stack.append(node.second)
            stack.append(node.first)
        elif isinstance(node, Skip):
            continue
        elif isinstance(node, (Assign, Write, Print)):
            out.append(node)
        elif isinstance(node, If):
            raise ResidualError("residuals must be straight-line (no conditionals)")
        else:
            raise ResidualError(f"unexpected node in residual: {node!r}")
    return out


def _term_to_aexp(term: Term) -> AExp:
    """Render a term back into an L expression."""
    if isinstance(term, Const):
        return AConst(term.value)
    if isinstance(term, ObjT):
        return ARead(GroundRef(term.name))
    if isinstance(term, IndexedObjT):
        return ARead(ArrayRef(term.base, tuple(_term_to_aexp(ix) for ix in term.index)))
    if isinstance(term, ParamT):
        return AParam(term.name)
    if isinstance(term, TempT):
        return ATemp(term.name)
    from repro.logic.terms import Add, Mul, Neg

    if isinstance(term, Add):
        return ABin("+", _term_to_aexp(term.left), _term_to_aexp(term.right))
    if isinstance(term, Mul):
        return ABin("*", _term_to_aexp(term.left), _term_to_aexp(term.right))
    if isinstance(term, Neg):
        return ANeg(_term_to_aexp(term.operand))
    raise TypeError(f"unknown term {term!r}")


def _linear_to_aexp(variables: list[tuple[Term, int]], const: int) -> AExp:
    """Render a cancelled linear combination as an expression."""
    expr: AExp | None = None
    for var, coeff in variables:
        if coeff == 0:
            continue
        base = _term_to_aexp(var)
        magnitude = abs(coeff)
        piece: AExp = base if magnitude == 1 else ABin("*", AConst(magnitude), base)
        if expr is None:
            expr = piece if coeff > 0 else ANeg(piece)
        elif coeff > 0:
            expr = ABin("+", expr, piece)
        else:
            expr = ABin("-", expr, piece)
    if expr is None:
        return AConst(const)
    if const != 0:
        op = "+" if const > 0 else "-"
        expr = ABin(op, expr, AConst(abs(const)))
    return expr


def _term_bases(term: Term) -> set[str]:
    """Array bases / scalar names of every object the term reads."""
    from repro.logic.terms import parse_ground_name

    bases: set[str] = set()
    for obj in term.objects():
        parsed = parse_ground_name(obj.name)
        bases.add(parsed[0] if parsed else obj.name)
    for indexed in term.indexed_objects():
        bases.add(indexed.base)
    return bases


def _write_base(ref: ObjRef) -> str:
    from repro.logic.terms import parse_ground_name

    if isinstance(ref, ArrayRef):
        return ref.base
    parsed = parse_ground_name(ref.name)
    return parsed[0] if parsed else ref.name


def simplify_writes_linear(com: Com) -> Com:
    """Forward-substitute temps into writes/prints and cancel linearly.

    The write's *value* is rewritten; the temporary assignments are
    left in place (a following dead-code pass removes unused ones).
    Array index expressions inside references are substituted too, so
    cancellation applies to parameterized accesses uniformly.

    Soundness across writes: a temporary's recorded definition reads
    the database state at its assignment point, so once an object the
    definition mentions (conservatively: any object of the same array
    base) is written, the definition is dropped -- later uses keep the
    temporary reference instead of inlining a stale read.
    """
    statements = _flatten(com)
    defs: dict[Term, Term] = {}  # TempT -> fully substituted defining term
    out: list[Com] = []
    for node in statements:
        if isinstance(node, Assign):
            term = aexp_to_term(node.expr).substitute(defs)
            defs[TempT(node.temp)] = term
            out.append(node)
            continue
        expr_term = aexp_to_term(node.expr).substitute(defs)
        new_expr = _cancelled_expression(expr_term)
        if isinstance(node, Write):
            ref = node.ref
            if isinstance(ref, ArrayRef):
                new_index = []
                for ix in ref.index:
                    ix_term = aexp_to_term(ix).substitute(defs)
                    new_index.append(_cancelled_expression(ix_term))
                ref = ArrayRef(ref.base, tuple(new_index))
            out.append(Write(ref, new_expr))
            written_base = _write_base(ref)
            defs = {
                temp: term
                for temp, term in defs.items()
                if written_base not in _term_bases(term)
            }
        else:
            assert isinstance(node, Print)
            out.append(Print(new_expr))
    return seq(*out)


def _cancelled_expression(term: Term) -> AExp:
    try:
        linear = linear_of_term(term)
    except LinearizationError:
        return _term_to_aexp(term)
    variables = [(var, coeff) for var, coeff in linear.coeffs]
    return _linear_to_aexp(variables, linear.const)


def _expr_temps(expr: AExp) -> set[str]:
    if isinstance(expr, ATemp):
        return {expr.name}
    if isinstance(expr, ARead):
        out: set[str] = set()
        if isinstance(expr.ref, ArrayRef):
            for ix in expr.ref.index:
                out |= _expr_temps(ix)
        return out
    if isinstance(expr, ABin):
        return _expr_temps(expr.left) | _expr_temps(expr.right)
    if isinstance(expr, ANeg):
        return _expr_temps(expr.operand)
    return set()


def eliminate_dead_assignments(com: Com) -> Com:
    """Drop assignments to temporaries with no later use."""
    statements = _flatten(com)
    live: set[str] = set()
    kept_reversed: list[Com] = []
    for node in reversed(statements):
        if isinstance(node, Assign):
            if node.temp not in live:
                continue  # dead; reads inside are pure, safe to drop
            live.discard(node.temp)
            live |= _expr_temps(node.expr)
        elif isinstance(node, Write):
            live |= _expr_temps(node.expr)
            if isinstance(node.ref, ArrayRef):
                for ix in node.ref.index:
                    live |= _expr_temps(ix)
        else:
            assert isinstance(node, Print)
            live |= _expr_temps(node.expr)
        kept_reversed.append(node)
    return seq(*reversed(kept_reversed))


def optimize_residual(com: Com) -> Com:
    """Full pipeline: linear simplification then dead-code elimination."""
    return eliminate_dead_assignments(simplify_writes_linear(com))


def residual_reads(com: Com) -> set[str | tuple[str, tuple]]:
    """Ground and parameterized object reads of an optimized residual.

    Ground reads are returned as names; parameterized reads as
    ``(base, index_terms)`` pairs.  Used by the Appendix C.3 check for
    Assumption 4.1 (remote reads in residuals force pinning).
    """
    out: set[str | tuple[str, tuple]] = set()

    def expr_reads(expr: AExp) -> None:
        if isinstance(expr, ARead):
            if isinstance(expr.ref, GroundRef):
                out.add(expr.ref.name)
            else:
                index_terms = tuple(aexp_to_term(ix) for ix in expr.ref.index)
                if all(isinstance(t, Const) for t in index_terms):
                    from repro.logic.terms import ground_name

                    out.add(
                        ground_name(
                            expr.ref.base, tuple(t.value for t in index_terms)
                        )
                    )
                else:
                    out.add((expr.ref.base, index_terms))
                for ix in expr.ref.index:
                    expr_reads(ix)
        elif isinstance(expr, ABin):
            expr_reads(expr.left)
            expr_reads(expr.right)
        elif isinstance(expr, ANeg):
            expr_reads(expr.operand)

    for node in _flatten(com):
        if isinstance(node, (Assign, Print, Write)):
            expr_reads(node.expr)
        if isinstance(node, Write) and isinstance(node.ref, ArrayRef):
            for ix in node.ref.index:
                expr_reads(ix)
    return out
