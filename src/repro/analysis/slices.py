"""Local-remote partitions, LR-slices, observational equivalence.

These are the semantic foundations of the protocol (Section 3.2):

- Definition 3.2: a *local-remote partition* marks each database
  object local or remote for a given transaction/site.
- Definition 3.3: two evaluations are *observationally equivalent*
  when they agree on local state and on the printed log.
- Definition 3.4: ``(L, R)`` is an *LR-slice* for ``T`` when the
  observable behaviour of ``T`` is insensitive to which ``r in R``
  the remote objects hold.
- Definition 3.7: a global treaty is *valid* when its projections form
  an LR-slice for every transaction in the workload.

The checkers in this module verify these definitions by enumeration
over explicit (small) value sets; they are the executable
specification against which the treaty generator is property-tested.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Iterable, Mapping, Sequence

from repro.lang.ast import Transaction
from repro.lang.interp import EvalResult, evaluate


@dataclass(frozen=True)
class LocalRemotePartition:
    """Definition 3.2: a boolean function over object names.

    ``local_names`` is the extension of the partition's local side;
    every other object is remote.
    """

    local_names: frozenset[str]

    @staticmethod
    def of(names: Iterable[str]) -> "LocalRemotePartition":
        return LocalRemotePartition(frozenset(names))

    def is_local(self, name: str) -> bool:
        return name in self.local_names

    def split(self, db: Mapping[str, int]) -> tuple[dict[str, int], dict[str, int]]:
        """Split a database into its (local, remote) vectors."""
        local = {k: v for k, v in db.items() if self.is_local(k)}
        remote = {k: v for k, v in db.items() if not self.is_local(k)}
        return local, remote


def observationally_equivalent(
    a: EvalResult, b: EvalResult, partition: LocalRemotePartition
) -> bool:
    """Definition 3.3: equality of local vectors and logs.

    Remote objects are ignored: under Assumption 3.1 the transaction
    never writes them, so any difference there was present in the
    inputs, not created by the execution.
    """
    local_a, _ = partition.split(a.db)
    local_b, _ = partition.split(b.db)
    # Objects absent from a mapping read as 0; normalize.
    keys = set(local_a) | set(local_b)
    for key in keys:
        if local_a.get(key, 0) != local_b.get(key, 0):
            return False
    return a.log == b.log


def _assignments(
    names: Sequence[str], vectors: Iterable[Sequence[int]]
) -> list[dict[str, int]]:
    return [dict(zip(names, vec)) for vec in vectors]


def is_lr_slice(
    tx: Transaction,
    local_names: Sequence[str],
    remote_names: Sequence[str],
    local_vectors: Iterable[Sequence[int]],
    remote_vectors: Iterable[Sequence[int]],
    params: Mapping[str, int] | None = None,
) -> bool:
    """Definition 3.4, checked by enumeration.

    ``local_vectors`` / ``remote_vectors`` list the permitted value
    tuples for the named objects.  Returns True iff for every local
    vector ``l`` and all remote vectors ``r, r'``:
    ``Eval(T,(l,r)) == Eval(T,(l,r'))`` observationally.
    """
    partition = LocalRemotePartition.of(local_names)
    locals_ = _assignments(local_names, local_vectors)
    remotes = _assignments(remote_names, remote_vectors)
    for l in locals_:
        results = []
        for r in remotes:
            db = {**l, **r}
            results.append(evaluate(tx, db, params=params))
        for a, b in itertools.combinations(results, 2):
            if not observationally_equivalent(a, b, partition):
                return False
    return True


def is_valid_global_treaty(
    transactions: Sequence[tuple[Transaction, Sequence[str]]],
    treaty_states: Sequence[Mapping[str, int]],
    params: Mapping[str, Mapping[str, int]] | None = None,
) -> bool:
    """Definition 3.7, checked by enumeration over an explicit treaty.

    ``transactions`` pairs each transaction with the names of its
    *local* objects; ``treaty_states`` explicitly lists the databases
    in the treaty set Gamma.  For each transaction the projections
    ``L = {l | (l, r) in Gamma}`` and ``R = {r | (l, r) in Gamma}``
    must form an LR-slice.

    Note the projections are independent: ``(L, R)`` contains *all*
    recombinations ``(l, r')``, not just the pairs occurring in Gamma
    -- this is exactly why treaties factorized into independent local
    treaties (Lemma 4.2) satisfy the definition, while an entangled
    predicate like ``x = y`` does not.
    """
    params = params or {}
    all_names = sorted({name for db in treaty_states for name in db})
    for tx, local_names in transactions:
        local_set = set(local_names)
        remote_names = [n for n in all_names if n not in local_set]
        local_vecs = {tuple(db.get(n, 0) for n in local_names) for db in treaty_states}
        remote_vecs = {tuple(db.get(n, 0) for n in remote_names) for db in treaty_states}
        if not is_lr_slice(
            tx,
            list(local_names),
            remote_names,
            local_vecs,
            remote_vecs,
            params=params.get(tx.name),
        ):
            return False
    return True


def treaty_states_from_predicate(
    names: Sequence[str],
    domains: Mapping[str, Sequence[int]],
    predicate: Callable[[Mapping[str, int]], bool],
) -> list[dict[str, int]]:
    """Enumerate the extension of a treaty predicate over small domains."""
    out: list[dict[str, int]] = []
    for combo in itertools.product(*(domains[n] for n in names)):
        db = dict(zip(names, combo))
        if predicate(db):
            out.append(db)
    return out
