"""Symbolic table construction (Section 2.3, Figure 6).

A symbolic table for a transaction ``T`` is a set of rows
``(guard, residual)`` where ``guard`` is a formula over database
objects and transaction parameters, and ``residual`` is a straight-line
"partially evaluated" transaction that behaves exactly like ``T`` on
every database satisfying the guard.  Rows are mutually exclusive and
exhaustive: a database (with fixed parameter values) satisfies exactly
one guard.

The construction works backward through the command structure,
applying the rules of Figure 6:

1.  start from ``{(true, skip)}``;
2.  sequencing processes the second command first;
3.  conditionals duplicate the running table, conjoining the branch
    guard (or its negation);
4.  assignments substitute the assigned expression for the temporary
    in every guard and prepend the assignment to every residual;
5.  ``skip`` leaves the table unchanged;
6.  writes substitute the written expression for the object and
    prepend the write;
7.  prints prepend the print and leave guards unchanged.

Parameterized array writes (the Section 5.1 compressed form) require
care: a write to ``a[@p]`` may alias another reference ``a[@q]`` or
``a[3]`` appearing in a guard.  The analysis performs an explicit
alias case split, producing one row per alias pattern with the
corresponding equality/disequality guards -- this keeps the
construction sound without expanding arrays.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Mapping

from repro.lang.ast import (
    Assign,
    Com,
    ForEach,
    If,
    Print,
    Seq,
    Skip,
    Transaction,
    Write,
    aexp_to_term,
    bexp_to_formula,
    ref_to_term,
    seq,
)
from repro.logic.formula import Cmp, FalseF, Formula, TrueF, conj
from repro.logic.simplify import simplify_formula
from repro.logic.terms import (
    IndexedObjT,
    ObjT,
    TempT,
    Term,
    parse_ground_name,
)

#: Hard cap on ambiguous alias references per write (case split is 2^m).
MAX_ALIAS_SPLIT = 6


class AnalysisError(Exception):
    """Raised when a transaction cannot be analyzed."""


@dataclass(frozen=True)
class Row:
    """One symbolic table row ``(guard, residual)``."""

    guard: Formula
    residual: Com

    def pretty(self) -> str:
        residual = self.residual.pretty().replace("\n", " ")
        return f"{self.guard.pretty()}  ->  [{residual}]"


@dataclass
class SymbolicTable:
    """The symbolic table ``Q_T`` of one transaction."""

    transaction: Transaction
    rows: list[Row] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self.rows)

    def lookup(
        self,
        getobj: Callable[[str], int],
        params: Mapping[str, int] | None = None,
    ) -> Row:
        """Return the unique row whose guard holds on the database.

        Rows partition the database space (for fixed parameters), so
        exactly one guard matches; a mismatch indicates an analysis
        bug and raises :class:`AnalysisError`.
        """
        matches = [
            row for row in self.rows if row.guard.evaluate(getobj, params=params)
        ]
        if len(matches) != 1:
            raise AnalysisError(
                f"expected exactly one matching row for {self.transaction.name}, "
                f"found {len(matches)}"
            )
        return matches[0]

    def guards(self) -> list[Formula]:
        return [row.guard for row in self.rows]

    def pretty(self) -> str:
        header = f"symbolic table for {self.transaction.name} ({len(self.rows)} rows)"
        lines = [header] + ["  " + row.pretty() for row in self.rows]
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Write substitution with alias case-splitting
# ---------------------------------------------------------------------------


def _formula_base_refs(formula: Formula, base: str) -> set[Term]:
    """All references in the formula that could denote a slot of ``base``."""
    refs: set[Term] = set()
    for indexed in formula.indexed_objects():
        if indexed.base == base:
            refs.add(indexed)
    for obj in formula.objects():
        parsed = parse_ground_name(obj.name)
        if parsed is not None and parsed[0] == base:
            refs.add(obj)
    return refs


def _index_terms(ref: Term) -> tuple[Term, ...]:
    if isinstance(ref, IndexedObjT):
        return ref.index
    assert isinstance(ref, ObjT)
    parsed = parse_ground_name(ref.name)
    assert parsed is not None
    from repro.logic.terms import Const

    return tuple(Const(i) for i in parsed[1])


def _classify_alias(
    written: Term, other: Term, distinct: frozenset[frozenset[str]] = frozenset()
) -> str:
    """'same' / 'distinct' / 'ambiguous' aliasing of two references.

    ``distinct`` carries the transaction's ``assume_distinct`` groups:
    two different parameters of one group never take the same value.
    """
    if written == other:
        return "same"
    wi = _index_terms(written)
    oi = _index_terms(other)
    if len(wi) != len(oi):
        return "distinct"
    from repro.logic.terms import Const, ParamT

    all_const = all(isinstance(t, Const) for t in wi + oi)
    if all_const:
        return "same" if wi == oi else "distinct"
    if wi == oi:
        return "same"
    for a, b in zip(wi, oi):
        if (
            isinstance(a, ParamT)
            and isinstance(b, ParamT)
            and a.name != b.name
            and any(a.name in g and b.name in g for g in distinct)
        ):
            return "distinct"
        if isinstance(a, Const) and isinstance(b, Const) and a != b:
            return "distinct"
    return "ambiguous"


def _alias_guard(written: Term, other: Term, equal: bool) -> Formula:
    wi = _index_terms(written)
    oi = _index_terms(other)
    if equal:
        return conj([Cmp("=", a, b) for a, b in zip(wi, oi)])
    # "not all components equal": for 1-D indexes (the common case) a
    # single disequality; multi-dimensional disequality is a disjunction.
    from repro.logic.formula import disj

    return disj([Cmp("!=", a, b) for a, b in zip(wi, oi)])


def apply_write_substitution(
    guard: Formula,
    target: Term,
    replacement: Term,
    distinct: frozenset[frozenset[str]] = frozenset(),
) -> list[tuple[Formula, Formula]]:
    """Compute ``guard{replacement / target}`` with alias splitting.

    Returns a list of ``(alias_condition, substituted_guard)`` pairs
    whose alias conditions are mutually exclusive and exhaustive.  For
    ground scalar writes the list has exactly one entry with condition
    ``true``.
    """
    if isinstance(target, ObjT) and parse_ground_name(target.name) is None:
        # Plain scalar object: no aliasing possible.
        return [(TrueF, guard.substitute({target: replacement}))]

    base = target.base if isinstance(target, IndexedObjT) else parse_ground_name(target.name)[0]  # type: ignore[index]
    candidates = _formula_base_refs(guard, base)
    sure: set[Term] = set()
    ambiguous: list[Term] = []
    for ref in candidates:
        kind = _classify_alias(target, ref, distinct)
        if kind == "same":
            sure.add(ref)
        elif kind == "ambiguous":
            ambiguous.append(ref)
    ambiguous.sort(key=repr)
    if len(ambiguous) > MAX_ALIAS_SPLIT:
        raise AnalysisError(
            f"write to {target.pretty()} has {len(ambiguous)} ambiguous aliases "
            f"(limit {MAX_ALIAS_SPLIT}); expand the array instead"
        )

    results: list[tuple[Formula, Formula]] = []
    for pattern in itertools.product((True, False), repeat=len(ambiguous)):
        mapping: dict[Term, Term] = {target: replacement}
        for ref in sure:
            mapping[ref] = replacement
        conditions: list[Formula] = []
        for ref, equal in zip(ambiguous, pattern):
            conditions.append(_alias_guard(target, ref, equal))
            if equal:
                mapping[ref] = replacement
        results.append((conj(conditions), guard.substitute(mapping)))
    return results


# ---------------------------------------------------------------------------
# Backward construction
# ---------------------------------------------------------------------------


def _flatten_seq(com: Com) -> list[Com]:
    """Flatten nested ``Seq`` nodes into program order."""
    out: list[Com] = []
    stack = [com]
    while stack:
        node = stack.pop()
        if isinstance(node, Seq):
            stack.append(node.second)
            stack.append(node.first)
        else:
            out.append(node)
    return out


def _process(
    com: Com,
    rows: list[Row],
    simplify: bool,
    distinct: frozenset[frozenset[str]] = frozenset(),
) -> list[Row]:
    """Process a command backward (rule 2), statement by statement.

    Iterative over sequences so recursion depth tracks conditional
    nesting, not program length.
    """
    for cmd in reversed(_flatten_seq(com)):
        rows = _process_single(cmd, rows, simplify, distinct)
    return rows


def _process_single(
    com: Com, rows: list[Row], simplify: bool, distinct: frozenset[frozenset[str]]
) -> list[Row]:
    """Apply the Figure 6 rule for one non-sequence command."""
    if isinstance(com, Skip):
        return rows  # rule (5)
    if isinstance(com, If):  # rule (3)
        branch = bexp_to_formula(com.cond)
        not_branch = branch.to_nnf(negate=True)
        out: list[Row] = []
        for row in _process(com.then_branch, rows, simplify, distinct):
            out.append(Row(conj([branch, row.guard]), row.residual))
        for row in _process(com.else_branch, rows, simplify, distinct):
            out.append(Row(conj([not_branch, row.guard]), row.residual))
        return _prune(out, simplify)
    if isinstance(com, Assign):  # rule (4)
        expr = aexp_to_term(com.expr)
        mapping: dict[Term, Term] = {TempT(com.temp): expr}
        return [
            Row(row.guard.substitute(mapping), seq(com, row.residual)) for row in rows
        ]
    if isinstance(com, Write):  # rule (6)
        target = ref_to_term(com.ref)
        replacement = aexp_to_term(com.expr)
        out = []
        for row in rows:
            for alias_cond, guard in apply_write_substitution(
                row.guard, target, replacement, distinct
            ):
                out.append(Row(conj([alias_cond, guard]), seq(com, row.residual)))
        return _prune(out, simplify)
    if isinstance(com, Print):  # rule (7)
        return [Row(row.guard, seq(com, row.residual)) for row in rows]
    if isinstance(com, ForEach):
        raise AnalysisError(
            "foreach in transaction body; desugar with repro.lang.lpp first"
        )
    raise TypeError(f"unknown command node {com!r}")


def _prune(rows: list[Row], simplify: bool) -> list[Row]:
    if not simplify:
        return rows
    out: list[Row] = []
    for row in rows:
        guard = simplify_formula(row.guard)
        if guard == FalseF:
            continue
        out.append(Row(guard, row.residual))
    return out


def build_symbolic_table(
    tx: Transaction, simplify: bool = True, optimize_residuals: bool = True
) -> SymbolicTable:
    """Build the symbolic table of a (desugared) transaction.

    ``simplify`` prunes contradictory rows and redundant conjuncts; it
    never changes table semantics.  ``optimize_residuals`` runs the
    linear-cancellation and dead-read passes of
    :mod:`repro.analysis.residual` over each partially evaluated
    transaction (this is what produces Figure 4a's compact residuals
    and what lets Assumption 4.1 hold after the Appendix B transform).
    The completed guards mention only database objects and parameters
    -- a leftover temporary indicates a use-before-assignment in the
    transaction and raises :class:`AnalysisError`.
    """
    distinct = frozenset(frozenset(group) for group in tx.assume_distinct)
    rows = _process(tx.body, [Row(TrueF, Skip())], simplify, distinct)  # rules (1)-(2)
    for row in rows:
        leftover = row.guard.temps()
        if leftover:
            names = sorted(t.name for t in leftover)
            raise AnalysisError(
                f"temporaries {names} read before assignment in {tx.name}"
            )
    if optimize_residuals:
        from repro.analysis.residual import optimize_residual

        rows = [Row(row.guard, optimize_residual(row.residual)) for row in rows]
    return SymbolicTable(transaction=tx, rows=rows)


def rows_are_exclusive(
    table: SymbolicTable,
    databases: Iterable[Mapping[str, int]],
    params: Mapping[str, int] | None = None,
) -> bool:
    """Check mutual exclusivity of guards on the given sample databases."""
    for db in databases:
        matches = sum(
            1
            for row in table.rows
            if row.guard.evaluate(lambda n: db.get(n, 0), params=params)
        )
        if matches != 1:
            return False
    return True
