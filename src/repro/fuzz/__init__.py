"""Adversarial workload fuzzing for the homeostasis protocol.

Random L++ programs with linear numeric invariants, run through the
real parser, the Appendix B replication transform, and a
validate-mode protocol cluster, then held to the Theorem 3.8 serial
oracle (identical logs, identical final state) with H1/H2 treaty
assertions on every install.

- :mod:`repro.fuzz.generators` -- case model + program synthesis +
  the plain-RNG generator (no external dependencies);
- :mod:`repro.fuzz.strategies` -- Hypothesis strategies over the
  same space (imports :mod:`hypothesis`; test environments only);
- :mod:`repro.fuzz.oracle` -- the serial-equivalence oracle;
- :mod:`repro.fuzz.corpus` -- JSON persistence for shrunk
  counterexamples and the committed regression corpus.

This subpackage is deliberately *not* re-exported from the
:mod:`repro` facade: the fuzzer is a development harness, not part of
the reproduction's public API.
"""

from repro.fuzz.corpus import (
    case_from_json,
    case_to_json,
    fingerprint,
    load_corpus,
    save_case,
)
from repro.fuzz.generators import (
    ArraySpec,
    FamilySpec,
    FuzzCase,
    FuzzRequest,
    FuzzSpec,
    FuzzWorkload,
    random_case,
    synthesize_source,
)
from repro.fuzz.oracle import FuzzDivergence, FuzzOutcome, run_case

__all__ = [
    "ArraySpec",
    "FamilySpec",
    "FuzzCase",
    "FuzzDivergence",
    "FuzzOutcome",
    "FuzzRequest",
    "FuzzSpec",
    "FuzzWorkload",
    "case_from_json",
    "case_to_json",
    "fingerprint",
    "load_corpus",
    "random_case",
    "run_case",
    "save_case",
    "synthesize_source",
]
