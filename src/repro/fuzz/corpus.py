"""Persisting fuzz cases: the regression corpus.

A shrunk counterexample is only worth something if it keeps running
after the Hypothesis database is gone, so cases round-trip through a
stable JSON encoding:

- :func:`save_case` writes a case under its content fingerprint (or a
  caller-chosen name).  The fuzz test overwrites one well-known
  pending file per failure; Hypothesis replays the *minimal* shrunk
  example last, so after a failing run the pending file holds the
  minimal reproducer, ready to be promoted into the committed corpus.
- :func:`load_corpus` reads every ``*.json`` case in a directory; the
  tier-1 regression test replays them all through the oracle on every
  run, so a once-found divergence can never quietly return.
- :func:`fingerprint` is the canonical-JSON content hash used both
  for corpus filenames and by the diversity audit (two cases with the
  same fingerprint are the same program, invariants, configuration,
  and schedule).
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from repro.fuzz.generators import (
    ArraySpec,
    FamilySpec,
    FuzzCase,
    FuzzRequest,
    FuzzSpec,
)


def case_to_json(case: FuzzCase) -> dict:
    return {
        "spec": {
            "num_sites": case.spec.num_sites,
            "arrays": [
                {"name": a.name, "num_items": a.num_items, "initial": a.initial}
                for a in case.spec.arrays
            ],
            "families": [
                {
                    "name": f.name,
                    "kind": f.kind,
                    "array": f.array,
                    "floor": f.floor,
                    "delta": f.delta,
                    "reset": f.reset,
                }
                for f in case.spec.families
            ],
            "strategy": case.spec.strategy,
            "adaptive": case.spec.adaptive,
            "negotiation": case.spec.negotiation,
            "pinned_probes": case.spec.pinned_probes,
        },
        "schedule": [
            {"family": r.family, "site": r.site, "draws": list(r.draws)}
            for r in case.schedule
        ],
    }


def case_from_json(data: dict) -> FuzzCase:
    spec = data["spec"]
    return FuzzCase(
        spec=FuzzSpec(
            num_sites=spec["num_sites"],
            arrays=tuple(ArraySpec(**a) for a in spec["arrays"]),
            families=tuple(FamilySpec(**f) for f in spec["families"]),
            strategy=spec["strategy"],
            adaptive=spec["adaptive"],
            negotiation=spec["negotiation"],
            pinned_probes=spec.get("pinned_probes", False),
        ),
        schedule=tuple(
            FuzzRequest(
                family=r["family"], site=r["site"], draws=tuple(r["draws"])
            )
            for r in data["schedule"]
        ),
    )


def fingerprint(case: FuzzCase) -> str:
    """Content hash of the canonical JSON encoding (12 hex chars)."""
    canonical = json.dumps(case_to_json(case), sort_keys=True)
    return hashlib.sha256(canonical.encode()).hexdigest()[:12]


def save_case(case: FuzzCase, directory: Path, name: str | None = None) -> Path:
    """Write one case; returns the path.  Default name: fingerprint."""
    directory.mkdir(parents=True, exist_ok=True)
    stem = name or f"case-{fingerprint(case)}"
    path = directory / f"{stem}.json"
    path.write_text(json.dumps(case_to_json(case), indent=2, sort_keys=True) + "\n")
    return path


def load_corpus(directory: Path) -> list[tuple[str, FuzzCase]]:
    """Every committed case in ``directory``, sorted by filename."""
    out: list[tuple[str, FuzzCase]] = []
    if not directory.is_dir():
        return out
    for path in sorted(directory.glob("*.json")):
        out.append((path.stem, case_from_json(json.loads(path.read_text()))))
    return out
