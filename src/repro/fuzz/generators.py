"""Random L++ workloads with linear numeric invariants.

The fixed scenarios exercise the shapes their authors thought of; the
fuzzer's job is to exercise the shapes nobody did.  A
:class:`FuzzSpec` describes a small replicated database (one or two
arrays over two or three sites) and a handful of transaction
families, each drawn from the guard/write shapes the protocol stack
actually distinguishes:

- ``buy`` -- the Listing-1 guarded decrement: coordination rides the
  treaty headroom under the linear guard, and the else branch is
  either ``skip`` (the flash-sale shape) or an absolute refill write
  (the micro shape, whose matched row pins state and forces sync);
- ``transfer`` -- the two-slot guarded move with a ``distinct``
  constraint (the banking shape: a treaty-bearing debit plus a free
  credit in one transaction);
- ``pay`` -- the unconditional increment (TPC-C Payment's shape,
  coordination-free after the Appendix B transform);
- ``probe`` -- the read-only print probe.  Two contracts, selected by
  ``FuzzSpec.pinned_probes``: by default probes are excluded from
  treaty generation (the classifier-FREE class, like the fleet
  workloads' audits) and held to the *snapshot* contract; with
  ``pinned_probes=True`` their ground rows enter treaty generation, so
  the prints pin the replicated slots (Appendix C.3 demarcation) and
  the oracle demands strictly serial logs.

:func:`synthesize_source` turns a family spec into L++ source, so
every generated program goes through the real parser, the real
Appendix B replication transform, and the real treaty generator --
the fuzzer owns no second implementation of any of them.

Everything here is deterministic and dependency-free;
:mod:`repro.fuzz.strategies` layers Hypothesis on top, and
:func:`random_case` mirrors the same distribution on a plain
``random.Random`` for seed-corpus generation and the diversity audit.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.analysis.ground import ground_instances
from repro.analysis.symbolic import SymbolicTable, build_symbolic_table
from repro.lang.ast import Transaction
from repro.lang.parser import parse_transaction
from repro.protocol.remote_writes import (
    ReplicationSpec,
    initial_replicated_db,
    replicate_workload,
)
from repro.treaty.optimize import SequenceWorkloadModel
from repro.workloads.common import (
    ReplicatedWorkloadBase,
    WorkloadSpecError,
    require_nonempty,
    require_positive,
    require_sites,
)

#: guard/write shapes the generator draws from
FAMILY_KINDS = ("buy", "transfer", "pay", "probe")

#: treaty strategies the fuzzer exercises (static split vs the
#: demand-weighted reallocation; 'default' degenerates to distributed
#: locking and still must be serially equivalent)
FUZZ_STRATEGIES = ("equal-split", "demand", "default")

#: arbitration policies a case may attach (None = legacy coordinator)
FUZZ_POLICIES = (None, "priority", "credit")


@dataclass(frozen=True)
class ArraySpec:
    """One replicated array: ``num_items`` slots starting at ``initial``."""

    name: str
    num_items: int
    initial: int


@dataclass(frozen=True)
class FamilySpec:
    """One transaction family over one array.

    ``floor`` and ``delta`` parameterize the linear guard: ``buy``
    guards ``t > floor`` and writes ``t - delta``; ``transfer``
    guards ``t >= amount`` with amounts in ``1..delta``; ``pay``
    adds amounts in ``1..delta`` unconditionally.  ``reset`` (buy
    only) selects the else branch: ``None`` is ``skip``, an integer
    is the absolute refill write.
    """

    name: str
    kind: str
    array: str
    floor: int = 0
    delta: int = 1
    reset: int | None = None


@dataclass(frozen=True)
class FuzzSpec:
    """A complete generated workload + protocol configuration."""

    num_sites: int
    arrays: tuple[ArraySpec, ...]
    families: tuple[FamilySpec, ...]
    strategy: str = "equal-split"
    adaptive: bool = False
    negotiation: str | None = None
    #: include probe ground rows in treaty generation, pinning the
    #: printed slots (demarcation: writers pay a sync per conflicting
    #: write, probes earn strictly serial prints)
    pinned_probes: bool = False


@dataclass(frozen=True)
class FuzzRequest:
    """One scheduled submission: family index, site, raw param draws.

    Params are stored as opaque non-negative draws and resolved
    against the family's domains at run time, so a shrunk request
    stays valid whatever the spec shrinks to.
    """

    family: int
    site: int
    draws: tuple[int, ...] = ()


@dataclass(frozen=True)
class FuzzCase:
    """A spec plus the schedule the oracle will replay against it."""

    spec: FuzzSpec
    schedule: tuple[FuzzRequest, ...]


def synthesize_source(family: FamilySpec) -> str:
    """The family as L++ source (parsed by the real parser)."""
    arr = family.array
    if family.kind == "buy":
        if family.reset is None:
            alt = "skip"
        else:
            alt = f"write({arr}(@item) = {family.reset})"
        return f"""
        transaction {family.name}(item) {{
          t := read({arr}(@item));
          if t > {family.floor} then {{ write({arr}(@item) = t - {family.delta}) }}
          else {{ {alt} }}
        }}"""
    if family.kind == "transfer":
        return f"""
        transaction {family.name}(src, dst, amount) distinct(src, dst) {{
          t := read({arr}(@src));
          if t >= @amount then {{
            write({arr}(@src) = t - @amount);
            u := read({arr}(@dst));
            write({arr}(@dst) = u + @amount)
          }} else {{ skip }}
        }}"""
    if family.kind == "pay":
        return f"""
        transaction {family.name}(item, amount) {{
          t := read({arr}(@item));
          write({arr}(@item) = t + @amount)
        }}"""
    if family.kind == "probe":
        return f"""
        transaction {family.name}(item) {{
          t := read({arr}(@item));
          print(t)
        }}"""
    raise WorkloadSpecError(f"unknown family kind {family.kind!r}")


@dataclass
class FuzzWorkload(ReplicatedWorkloadBase):
    """A :class:`FuzzSpec` built into the standard workload spine.

    The same ``build_homeostasis`` / ``build_concurrent`` path as the
    hand-written workloads, so a fuzzed cluster is indistinguishable
    from a scenario cluster to the kernel.
    """

    fuzz: FuzzSpec = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        spec = self.fuzz
        if spec is None:
            raise WorkloadSpecError("FuzzWorkload requires a FuzzSpec")
        require_sites("num_sites", spec.num_sites, floor=2)
        require_nonempty("arrays", spec.arrays)
        require_nonempty("families", spec.families)
        arrays = {a.name: a for a in spec.arrays}
        if len(arrays) != len(spec.arrays):
            raise WorkloadSpecError("array names must be unique")
        for a in spec.arrays:
            require_positive(f"array {a.name} num_items", a.num_items)
            if a.initial < 0:
                raise WorkloadSpecError(
                    f"array {a.name} initial must be >= 0, got {a.initial!r}"
                )
        names = [f.name for f in spec.families]
        if len(set(names)) != len(names):
            raise WorkloadSpecError("family names must be unique")
        for f in spec.families:
            if f.kind not in FAMILY_KINDS:
                raise WorkloadSpecError(
                    f"family {f.name} kind must be one of {FAMILY_KINDS}, "
                    f"got {f.kind!r}"
                )
            if f.array not in arrays:
                raise WorkloadSpecError(
                    f"family {f.name} references unknown array {f.array!r}"
                )
            require_positive(f"family {f.name} delta", f.delta)
            if f.kind == "transfer" and arrays[f.array].num_items < 2:
                raise WorkloadSpecError(
                    f"family {f.name} transfers on array {f.array!r} "
                    f"with fewer than 2 items (distinct src/dst impossible)"
                )

        self.sites = tuple(range(spec.num_sites))
        self.spec = ReplicationSpec(
            bases={a.name: self.sites for a in spec.arrays},
            home={a.name: 0 for a in spec.arrays},
        )
        self.family_txs = {
            f.name: parse_transaction(synthesize_source(f))
            for f in spec.families
        }
        self.variants = replicate_workload(
            list(self.family_txs.values()), self.sites, self.spec
        )
        self.tx_home = {
            name: int(name.rsplit("@s", 1)[1]) for name in self.variants
        }
        self.initial_values = {
            f"{a.name}[{i}]": a.initial
            for a in spec.arrays
            for i in range(a.num_items)
        }
        self.initial_db = initial_replicated_db(
            self.initial_values, self.spec, self.sites
        )
        self._arrays = arrays
        self._by_name = {f.name: f for f in spec.families}

    # -- analysis products ---------------------------------------------------

    def _domains(self, family: FamilySpec) -> dict[str, list[int]]:
        items = list(range(self._arrays[family.array].num_items))
        if family.kind == "transfer":
            return {
                "src": items,
                "dst": items,
                "amount": list(range(1, family.delta + 1)),
            }
        if family.kind == "pay":
            return {"item": items, "amount": list(range(1, family.delta + 1))}
        return {"item": items}

    def ground_tables(self) -> list[tuple[SymbolicTable, int]]:
        out: list[tuple[SymbolicTable, int]] = []
        for name, tx in self.variants.items():
            base = name.rsplit("@s", 1)[0]
            family = self._by_name[base]
            if family.kind == "probe" and not self.fuzz.pinned_probes:
                # The classifier-FREE class: excluded from treaty
                # generation like every fleet probe, but present in
                # the schedule so the oracle checks its print log
                # against the snapshot contract.  With pinned_probes
                # the row stays in: its print pins the slot and the
                # oracle demands strictly serial logs.
                continue
            site = self.tx_home[name]
            domains = self._domains(family)
            for gi in ground_instances(
                tx, {p: domains[p] for p in tx.params}
            ):
                out.append((build_symbolic_table(gi.transaction), site))
        return out

    def workload_model(self) -> SequenceWorkloadModel:
        def sample_params(rng: random.Random, name: str) -> dict[str, int]:
            family = self._by_name[name.rsplit("@s", 1)[0]]
            domains = self._domains(family)
            params = {p: rng.choice(vals) for p, vals in domains.items()}
            if family.kind == "transfer" and params["src"] == params["dst"]:
                items = domains["src"]
                params["dst"] = items[(items.index(params["src"]) + 1) % len(items)]
            return params

        mix = {name: 1.0 for name in self.variants}
        return SequenceWorkloadModel(mix=mix, param_sampler=sample_params)

    def baseline_transactions(self) -> dict[str, Transaction]:
        out: dict[str, Transaction] = {}
        for s in self.sites:
            for name, tx in self.family_txs.items():
                out[f"{name}@s{s}"] = tx
        return out

    # -- schedule resolution -------------------------------------------------

    def resolve(self, request: FuzzRequest) -> tuple[str, dict[str, int]]:
        """A :class:`FuzzRequest`'s concrete transaction + params.

        Draws index into the family's domains modulo their size, so
        any tuple of non-negative integers resolves to a valid
        submission (shrinking the draws toward zero stays in-domain).
        """
        families = self.fuzz.families
        family = families[request.family % len(families)]
        site = request.site % self.fuzz.num_sites
        domains = self._domains(family)
        params: dict[str, int] = {}
        for i, (p, vals) in enumerate(sorted(domains.items())):
            draw = request.draws[i] if i < len(request.draws) else 0
            params[p] = vals[draw % len(vals)]
        if family.kind == "transfer" and params["src"] == params["dst"]:
            items = domains["src"]
            params["dst"] = items[(items.index(params["src"]) + 1) % len(items)]
        return f"{family.name}@s{site}", params


def random_case(rng: random.Random) -> FuzzCase:
    """One case from a plain RNG, mirroring the Hypothesis strategy.

    Used to mint the committed seed corpus and by the diversity audit
    (distinct fingerprints over a seed sweep); the Hypothesis strategy
    in :mod:`repro.fuzz.strategies` draws from the same space with
    shrinking on top.
    """
    num_sites = rng.randint(2, 3)
    arrays = tuple(
        ArraySpec(
            name=f"a{i}",
            num_items=rng.randint(2, 4),
            initial=rng.randint(4, 16),
        )
        for i in range(rng.randint(1, 2))
    )
    families = []
    for i in range(rng.randint(1, 3)):
        kind = rng.choice(FAMILY_KINDS)
        array = rng.choice(arrays)
        floor = rng.randint(0, 3)
        delta = rng.randint(1, 2)
        reset = None
        if kind == "buy" and rng.random() < 0.5:
            reset = floor + delta + rng.randint(0, 6)
        families.append(
            FamilySpec(
                name=f"T{i}",
                kind=kind,
                array=array.name,
                floor=floor,
                delta=delta,
                reset=reset,
            )
        )
    spec = FuzzSpec(
        num_sites=num_sites,
        arrays=arrays,
        families=tuple(families),
        strategy=rng.choice(FUZZ_STRATEGIES),
        adaptive=rng.random() < 0.3,
        negotiation=rng.choice(FUZZ_POLICIES),
        pinned_probes=rng.random() < 0.25,
    )
    schedule = tuple(
        FuzzRequest(
            family=rng.randrange(len(families)),
            site=rng.randrange(num_sites),
            draws=tuple(rng.randrange(8) for _ in range(3)),
        )
        for _ in range(rng.randint(30, 80))
    )
    return FuzzCase(spec=spec, schedule=schedule)
