"""The single-site serial oracle for fuzzed workloads.

Theorem 3.8 is the contract the fuzzer holds every generated case to:
a protocol execution must be observationally indistinguishable from a
serial execution of the same transactions on one consistent database.
:func:`run_case` replays a case's schedule through a validate-mode
homeostasis cluster -- so every treaty install additionally asserts
the H1 sum partition and the per-site H2 regions, the escrow
differential cross-checks the counter fast path against the compiled
checks, and the path-sensitive check oracles run -- then compares
against plain-interpreter evaluation on three levels:

- **Final state, strictly serial.**  The cluster's merged global
  state must equal the serial replay's, key by key, deltas included.
  No configuration weakens this check.
- **Every synchronization broadcast, strictly serial.**  A post-sync
  hook records each round's participant set and update map; every
  broadcast value must equal the serial replay's value for that
  object (at the committed prefix for cleanup rounds, which run
  before the violating transaction re-executes; after the commit for
  proactive rebalance rounds).  A sync that ships a fabricated value
  is caught at the round that ships it, not at the end of the run.
- **Logs (the print channel), against the probe contract the case
  selected.**  With ``pinned_probes=True`` the probes' ground rows
  enter treaty generation, their prints pin the replicated slots
  (Appendix C.3), every conflicting write pays the demarcation sync
  -- and the oracle demands *strictly serial* logs.  With the default
  ``pinned_probes=False`` probes ride the classifier-FREE bypass and
  the guarantee is **snapshot consistency**: each site observes the
  serial prefix as of its last synchronization, plus its own local
  commits since.  The oracle maintains one view per site, evolved by
  the same transformed-transaction evaluation the engine performs:
  participant-scoped rounds refresh exactly the broadcast objects of
  exactly the participants (non-participants legitimately lag, as the
  kernel's own H2 validation documents), and a cleanup round's
  re-executed transaction applies at *every* live participant, the
  way ``_cleanup_execute`` runs T'.  This is the contract the fleet
  workloads' ``Audit`` / ``Peek`` / ``Usage`` probes actually get --
  the fuzzer made it explicit after finding that an unpinned probe's
  print can trail the serial value (see docs/FUZZING.md).

A divergence raises :class:`FuzzDivergence` carrying the case, ready
to be persisted by :mod:`repro.fuzz.corpus`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.lang.interp import evaluate
from repro.protocol.homeostasis import AdaptiveSettings
from repro.protocol.paxos_commit import NegotiationSpec
from repro.fuzz.generators import FuzzCase, FuzzWorkload


@dataclass
class FuzzOutcome:
    """Accounting from one clean oracle run (for reporting only)."""

    submitted: int
    negotiations: int
    sync_ratio: float
    treaty_clauses: int


class FuzzDivergence(AssertionError):
    """Protocol execution disagreed with the serial oracle."""

    def __init__(self, case: FuzzCase, detail: str):
        super().__init__(detail)
        self.case = case
        self.detail = detail


def build_cluster(workload: FuzzWorkload):
    """The case's protocol cluster, validate-mode oracles armed."""
    spec = workload.fuzz
    negotiation = (
        NegotiationSpec(policy=spec.negotiation) if spec.negotiation else None
    )
    adaptive = AdaptiveSettings() if spec.adaptive else None
    return workload.build_homeostasis(
        strategy=spec.strategy,
        adaptive=adaptive,
        negotiation=negotiation,
        validate=True,
    )


def run_case(case: FuzzCase) -> FuzzOutcome:
    """Replay one case against the serial oracle; raise on divergence."""
    workload = FuzzWorkload(fuzz=case.spec)
    cluster = build_cluster(workload)
    resolved = [workload.resolve(req) for req in case.schedule]
    strict_logs = case.spec.pinned_probes

    sync_events = []
    cluster.post_sync_hooks.append(
        lambda c: sync_events.append(c.last_sync)
    )

    serial_state = dict(workload.initial_db)
    views = {s: dict(workload.initial_db) for s in workload.sites}
    cursor = 0

    def apply_sync(event, reference, i, when):
        """Refresh participants' views from one recorded round, holding
        every broadcast value to the serial reference state."""
        for key, value in sorted(event.updates.items()):
            if value != reference.get(key, 0):
                raise FuzzDivergence(
                    case,
                    f"sync divergence at request {i} ({when} round): "
                    f"broadcast {key}={value} != serial "
                    f"{reference.get(key, 0)}",
                )
            for p in event.participants:
                views[p][key] = value

    for i, (tx_name, params) in enumerate(resolved):
        site = workload.tx_home[tx_name]
        result = cluster.submit(tx_name, params)
        fresh = sync_events[cursor:]
        cursor = len(sync_events)
        # A violating submission runs exactly one cleanup round before
        # the transaction re-executes; proactive rebalances run after a
        # local commit.  Classify the recorded rounds accordingly.
        pre = fresh[:1] if result.synced else []
        post = fresh[len(pre):]

        tx = workload.reference_transaction(tx_name)
        serial = evaluate(tx, serial_state, params=params)

        for event in pre:
            apply_sync(event, serial_state, i, "cleanup")
        if result.synced:
            # T' re-executes at every live participant, so the commit
            # lands in each participant's view (their refreshed inputs
            # agree, so their evaluations do too).
            expected = None
            for p in result.participants:
                out = evaluate(tx, views[p], params=params)
                views[p] = out.db
                if p == site:
                    expected = out
            if expected is None:  # origin outside the live set: no faults here
                raise FuzzDivergence(
                    case,
                    f"synced request {i} ({tx_name}) excluded its origin "
                    f"{site} from participants {result.participants!r}",
                )
        else:
            expected = evaluate(tx, views[site], params=params)
            views[site] = expected.db
        serial_state = serial.db
        for event in post:
            apply_sync(event, serial_state, i, "rebalance")

        want = serial.log if strict_logs else expected.log
        contract = "serial" if strict_logs else "snapshot"
        if result.log != want:
            raise FuzzDivergence(
                case,
                f"log divergence at request {i} ({tx_name} {params}): "
                f"protocol {result.log!r} != {contract} {want!r}",
            )

    final = cluster.global_state()
    for key in sorted(set(serial_state) | set(final)):
        if serial_state.get(key, 0) != final.get(key, 0):
            raise FuzzDivergence(
                case,
                f"final-state divergence on {key}: protocol "
                f"{final.get(key, 0)} != serial {serial_state.get(key, 0)}",
            )

    table = cluster.treaty_table
    clauses = 0
    if table is not None:
        clauses = sum(
            len(table.local_for(site).constraints) for site in workload.sites
        )
    return FuzzOutcome(
        submitted=cluster.stats.submitted,
        negotiations=cluster.stats.negotiations,
        sync_ratio=cluster.stats.sync_ratio,
        treaty_clauses=clauses,
    )
