"""Hypothesis strategies over the fuzz case space.

The same distribution :func:`repro.fuzz.generators.random_case` draws
from, expressed as Hypothesis strategies so failing cases *shrink*:
schedules get shorter, draws fall toward zero (and stay in-domain --
request params resolve modulo the family's domains), specs lose
arrays and families, and the surviving counterexample is the minimal
program + schedule that still diverges.

This module is the only place the fuzzer imports :mod:`hypothesis`,
keeping :mod:`repro.fuzz` importable in production environments; it
is deliberately not pulled into ``repro.fuzz.__init__``.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.fuzz.generators import (
    FAMILY_KINDS,
    FUZZ_POLICIES,
    FUZZ_STRATEGIES,
    ArraySpec,
    FamilySpec,
    FuzzCase,
    FuzzRequest,
    FuzzSpec,
)

#: one opaque request draw; three cover the widest domain (transfer's
#: amount/dst/src) and shrink toward the zeroth domain element
_DRAWS = st.tuples(
    st.integers(0, 7), st.integers(0, 7), st.integers(0, 7)
)


@st.composite
def fuzz_specs(draw) -> FuzzSpec:
    """A generated workload + protocol configuration."""
    num_sites = draw(st.integers(2, 3))
    arrays = tuple(
        ArraySpec(
            name=f"a{i}",
            num_items=draw(st.integers(2, 4)),
            initial=draw(st.integers(4, 16)),
        )
        for i in range(draw(st.integers(1, 2)))
    )
    families = []
    for i in range(draw(st.integers(1, 3))):
        kind = draw(st.sampled_from(FAMILY_KINDS))
        floor = draw(st.integers(0, 3))
        delta = draw(st.integers(1, 2))
        reset = None
        if kind == "buy":
            reset = draw(
                st.none()
                | st.integers(floor + delta, floor + delta + 6)
            )
        families.append(
            FamilySpec(
                name=f"T{i}",
                kind=kind,
                array=draw(st.sampled_from(arrays)).name,
                floor=floor,
                delta=delta,
                reset=reset,
            )
        )
    return FuzzSpec(
        num_sites=num_sites,
        arrays=arrays,
        families=tuple(families),
        strategy=draw(st.sampled_from(FUZZ_STRATEGIES)),
        adaptive=draw(st.booleans()),
        negotiation=draw(st.sampled_from(FUZZ_POLICIES)),
        pinned_probes=draw(st.booleans()),
    )


@st.composite
def fuzz_cases(draw, min_schedule: int = 10, max_schedule: int = 60) -> FuzzCase:
    """A spec plus a schedule to replay against the serial oracle."""
    spec = draw(fuzz_specs())
    requests = st.builds(
        FuzzRequest,
        family=st.integers(0, len(spec.families) - 1),
        site=st.integers(0, spec.num_sites - 1),
        draws=_DRAWS,
    )
    schedule = draw(
        st.lists(requests, min_size=min_schedule, max_size=max_schedule)
    )
    return FuzzCase(spec=spec, schedule=tuple(schedule))
