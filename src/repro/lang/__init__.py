"""The transaction languages L and L++ (Sections 2.3 and 2.4).

``L`` is the paper's loop-free imperative core: reads, writes,
temporary assignments, conditionals and prints (Figure 5).  ``L++``
adds bounded arrays/relations and bounded iteration as syntactic sugar
that desugars into plain ``L`` (Appendix A), plus the compressed
*parameterized access* form of Section 5.1.

Public entry points:

- :func:`repro.lang.parser.parse_program` / ``parse_transaction`` --
  text to AST.
- :func:`repro.lang.interp.evaluate` -- ``Eval(T, D)`` per
  Definition 2.1.
- :func:`repro.lang.lpp.desugar_transaction` -- L++ to L lowering.
"""

from repro.lang.ast import (
    ABin,
    AConst,
    ANeg,
    AParam,
    ARead,
    ATemp,
    ArrayRef,
    Assign,
    BAnd,
    BCmp,
    BConst,
    BNot,
    BOr,
    Com,
    ForEach,
    GroundRef,
    If,
    ObjRef,
    Print,
    Program,
    Seq,
    Skip,
    Transaction,
    Write,
)
from repro.lang.interp import EvalResult, evaluate
from repro.lang.lexer import LexError, tokenize
from repro.lang.parser import ParseError, parse_program, parse_transaction
from repro.lang.pretty import pretty_com, pretty_transaction

__all__ = [
    "ABin",
    "AConst",
    "ANeg",
    "AParam",
    "ARead",
    "ATemp",
    "ArrayRef",
    "Assign",
    "BAnd",
    "BCmp",
    "BConst",
    "BNot",
    "BOr",
    "Com",
    "EvalResult",
    "ForEach",
    "GroundRef",
    "If",
    "LexError",
    "ObjRef",
    "ParseError",
    "Print",
    "Program",
    "Seq",
    "Skip",
    "Transaction",
    "Write",
    "evaluate",
    "parse_program",
    "parse_transaction",
    "pretty_com",
    "pretty_transaction",
    "tokenize",
]
