"""Abstract syntax for the transaction languages L and L++.

The node set mirrors Figure 5 of the paper:

    (AExp)  e ::= n | p | x^ | e0 (+|*) e1 | -e | read(x)
    (BExp)  b ::= true | false | e0 (<|=|<=) e1 | b0 and b1 | not b
    (Com)   c ::= skip | x^ := e | c0; c1 | if b then c1 else c2
                | write(x = e) | print(e)
    (Trans) T ::= { c } (P)

plus the L++ extensions of Section 2.4 / Appendix A:

- array references ``a(e1, ..., ek)`` in read and write position
  (:class:`ArrayRef`), with declared bounds recorded in
  :class:`Program`;
- bounded iteration ``foreach i in a { ... }`` (:class:`ForEach`),
  which unrolls during desugaring;
- ``or`` / ``>=`` / ``>`` / ``!=`` as derived boolean forms.

Object references in read/write position are :class:`GroundRef`
(a plain named database object) or :class:`ArrayRef` (a base name
plus index expressions).  AExp nodes convert to logic terms via
:func:`aexp_to_term`; BExp nodes convert to formulas via
:func:`bexp_to_formula` -- these conversions are what the symbolic
analysis of Section 2.3 operates on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Union

from repro.logic.formula import BoolConst, Cmp, Formula, conj, disj
from repro.logic.terms import (
    Add,
    Const,
    IndexedObjT,
    Mul,
    Neg,
    ObjT,
    ParamT,
    TempT,
    Term,
)

# ---------------------------------------------------------------------------
# Object references
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class GroundRef:
    """A reference to a named database object, e.g. ``x``."""

    name: str

    def pretty(self) -> str:
        return self.name


@dataclass(frozen=True)
class ArrayRef:
    """An L++ array access ``base(e1, ..., ek)``."""

    base: str
    index: tuple["AExp", ...]

    def pretty(self) -> str:
        return f"{self.base}({', '.join(e.pretty() for e in self.index)})"


ObjRef = Union[GroundRef, ArrayRef]


# ---------------------------------------------------------------------------
# Arithmetic expressions
# ---------------------------------------------------------------------------


class AExp:
    """Base class for arithmetic expressions."""

    __slots__ = ()

    def pretty(self) -> str:
        raise NotImplementedError

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.pretty()


@dataclass(frozen=True)
class AConst(AExp):
    value: int

    def pretty(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class AParam(AExp):
    """A transaction parameter occurrence."""

    name: str

    def pretty(self) -> str:
        return f"@{self.name}"


@dataclass(frozen=True)
class ATemp(AExp):
    """A temporary-variable occurrence."""

    name: str

    def pretty(self) -> str:
        return self.name


@dataclass(frozen=True)
class ARead(AExp):
    """``read(x)`` -- fetch a database object's current value."""

    ref: ObjRef

    def pretty(self) -> str:
        return f"read({self.ref.pretty()})"


@dataclass(frozen=True)
class ABin(AExp):
    """Binary ``+``, ``-`` or ``*`` (``-`` is sugar for ``+ (-e)``)."""

    op: str
    left: AExp
    right: AExp

    def __post_init__(self) -> None:
        if self.op not in ("+", "-", "*"):
            raise ValueError(f"unknown arithmetic operator {self.op!r}")

    def pretty(self) -> str:
        return f"({self.left.pretty()} {self.op} {self.right.pretty()})"


@dataclass(frozen=True)
class ANeg(AExp):
    operand: AExp

    def pretty(self) -> str:
        return f"-({self.operand.pretty()})"


# ---------------------------------------------------------------------------
# Boolean expressions
# ---------------------------------------------------------------------------


class BExp:
    """Base class for boolean expressions."""

    __slots__ = ()

    def pretty(self) -> str:
        raise NotImplementedError

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.pretty()


@dataclass(frozen=True)
class BConst(BExp):
    value: bool

    def pretty(self) -> str:
        return "true" if self.value else "false"


@dataclass(frozen=True)
class BCmp(BExp):
    """Comparison of two arithmetic expressions."""

    op: str
    left: AExp
    right: AExp

    def __post_init__(self) -> None:
        if self.op not in ("<", "<=", "=", "!=", ">", ">="):
            raise ValueError(f"unknown comparison operator {self.op!r}")

    def pretty(self) -> str:
        return f"{self.left.pretty()} {self.op} {self.right.pretty()}"


@dataclass(frozen=True)
class BAnd(BExp):
    left: BExp
    right: BExp

    def pretty(self) -> str:
        return f"({self.left.pretty()} and {self.right.pretty()})"


@dataclass(frozen=True)
class BOr(BExp):
    """Derived form: ``b0 or b1`` is ``not (not b0 and not b1)``."""

    left: BExp
    right: BExp

    def pretty(self) -> str:
        return f"({self.left.pretty()} or {self.right.pretty()})"


@dataclass(frozen=True)
class BNot(BExp):
    operand: BExp

    def pretty(self) -> str:
        return f"not ({self.operand.pretty()})"


# ---------------------------------------------------------------------------
# Commands
# ---------------------------------------------------------------------------


class Com:
    """Base class for commands."""

    __slots__ = ()

    def pretty(self, indent: int = 0) -> str:
        raise NotImplementedError

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.pretty()


@dataclass(frozen=True)
class Skip(Com):
    def pretty(self, indent: int = 0) -> str:
        return " " * indent + "skip"


@dataclass(frozen=True)
class Assign(Com):
    """``temp := e``"""

    temp: str
    expr: AExp

    def pretty(self, indent: int = 0) -> str:
        return " " * indent + f"{self.temp} := {self.expr.pretty()}"


@dataclass(frozen=True)
class Seq(Com):
    """``c0; c1``"""

    first: Com
    second: Com

    def pretty(self, indent: int = 0) -> str:
        return f"{self.first.pretty(indent)};\n{self.second.pretty(indent)}"


@dataclass(frozen=True)
class If(Com):
    cond: BExp
    then_branch: Com
    else_branch: Com

    def pretty(self, indent: int = 0) -> str:
        pad = " " * indent
        return (
            f"{pad}if {self.cond.pretty()} then {{\n"
            f"{self.then_branch.pretty(indent + 2)}\n{pad}}} else {{\n"
            f"{self.else_branch.pretty(indent + 2)}\n{pad}}}"
        )


@dataclass(frozen=True)
class Write(Com):
    """``write(ref = e)``"""

    ref: ObjRef
    expr: AExp

    def pretty(self, indent: int = 0) -> str:
        return " " * indent + f"write({self.ref.pretty()} = {self.expr.pretty()})"


@dataclass(frozen=True)
class Print(Com):
    """``print(e)`` -- append a value to the externally visible log."""

    expr: AExp

    def pretty(self, indent: int = 0) -> str:
        return " " * indent + f"print({self.expr.pretty()})"


@dataclass(frozen=True)
class ForEach(Com):
    """L++ bounded iteration: ``foreach i in a { c }``.

    ``i`` is a temporary bound to each index ``0..bound-1`` of the
    declared array ``a`` in turn; desugaring unrolls the body once per
    index with ``i`` replaced by the constant.  Not valid in plain L.
    """

    var: str
    array: str
    body: Com

    def pretty(self, indent: int = 0) -> str:
        pad = " " * indent
        return (
            f"{pad}foreach {self.var} in {self.array} {{\n"
            f"{self.body.pretty(indent + 2)}\n{pad}}}"
        )


# ---------------------------------------------------------------------------
# Transactions and programs
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Transaction:
    """A named transaction ``{ c } (P)`` with integer parameters P.

    ``assume_distinct`` lists groups of parameters the caller promises
    to instantiate with pairwise-distinct values (e.g. the item ids of
    a multi-item order).  The alias analysis uses the promise to avoid
    case-splitting on impossible aliases, and grounding skips the
    excluded combinations.
    """

    name: str
    params: tuple[str, ...]
    body: Com
    assume_distinct: tuple[tuple[str, ...], ...] = ()

    def pretty(self) -> str:
        header = f"transaction {self.name}({', '.join('@' + p for p in self.params)})"
        for group in self.assume_distinct:
            header += f" distinct({', '.join(group)})"
        return f"{header} {{\n{self.body.pretty(2)}\n}}"


@dataclass
class Program:
    """A compilation unit: array declarations plus transactions.

    ``arrays`` maps an array base name to its declared shape (a tuple
    of per-dimension bounds).  Declarations are required for the naive
    Appendix-A desugaring of dynamic accesses and for ``foreach``.
    """

    arrays: dict[str, tuple[int, ...]] = field(default_factory=dict)
    transactions: dict[str, Transaction] = field(default_factory=dict)

    def add(self, tx: Transaction) -> None:
        if tx.name in self.transactions:
            raise ValueError(f"duplicate transaction {tx.name!r}")
        self.transactions[tx.name] = tx


# ---------------------------------------------------------------------------
# Conversions to logic terms / formulas
# ---------------------------------------------------------------------------


def ref_to_term(ref: ObjRef) -> Term:
    """Convert an object reference to the term denoting its value."""
    if isinstance(ref, GroundRef):
        return ObjT(ref.name)
    term = IndexedObjT(ref.base, tuple(aexp_to_term(e) for e in ref.index))
    grounded = term.try_ground()
    return grounded if grounded is not None else term


def aexp_to_term(expr: AExp) -> Term:
    """Convert an arithmetic expression to a logic term.

    ``read(x)`` becomes the object variable ``x``: in formulas, an
    object denotes its value in the database state at the relevant
    program point (Section 2.3).
    """
    if isinstance(expr, AConst):
        return Const(expr.value)
    if isinstance(expr, AParam):
        return ParamT(expr.name)
    if isinstance(expr, ATemp):
        return TempT(expr.name)
    if isinstance(expr, ARead):
        return ref_to_term(expr.ref)
    if isinstance(expr, ANeg):
        return Neg(aexp_to_term(expr.operand))
    if isinstance(expr, ABin):
        left = aexp_to_term(expr.left)
        right = aexp_to_term(expr.right)
        if expr.op == "+":
            return Add(left, right)
        if expr.op == "-":
            return Add(left, Neg(right))
        return Mul(left, right)
    raise TypeError(f"unknown arithmetic node {expr!r}")


def bexp_to_formula(expr: BExp) -> Formula:
    """Convert a boolean expression to a logic formula."""
    if isinstance(expr, BConst):
        return BoolConst(expr.value)
    if isinstance(expr, BCmp):
        return Cmp(expr.op, aexp_to_term(expr.left), aexp_to_term(expr.right))
    if isinstance(expr, BAnd):
        return conj([bexp_to_formula(expr.left), bexp_to_formula(expr.right)])
    if isinstance(expr, BOr):
        return disj([bexp_to_formula(expr.left), bexp_to_formula(expr.right)])
    if isinstance(expr, BNot):
        return bexp_to_formula(expr.operand).to_nnf(negate=True)
    raise TypeError(f"unknown boolean node {expr!r}")


# ---------------------------------------------------------------------------
# Structural helpers
# ---------------------------------------------------------------------------


def seq(*commands: Com) -> Com:
    """Right-nested sequencing of several commands, dropping skips."""
    useful = [c for c in commands if not isinstance(c, Skip)]
    if not useful:
        return Skip()
    result = useful[-1]
    for c in reversed(useful[:-1]):
        result = Seq(c, result)
    return result


def walk_commands(com: Com) -> Iterator[Com]:
    """Yield every command node, pre-order."""
    stack = [com]
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, Seq):
            stack.append(node.second)
            stack.append(node.first)
        elif isinstance(node, If):
            stack.append(node.else_branch)
            stack.append(node.then_branch)
        elif isinstance(node, ForEach):
            stack.append(node.body)


def aexp_reads(expr: AExp) -> set[ObjRef]:
    """All object references read by an arithmetic expression."""
    out: set[ObjRef] = set()
    if isinstance(expr, ARead):
        out.add(expr.ref)
        for ix in getattr(expr.ref, "index", ()):
            out |= aexp_reads(ix)
    elif isinstance(expr, ABin):
        out |= aexp_reads(expr.left) | aexp_reads(expr.right)
    elif isinstance(expr, ANeg):
        out |= aexp_reads(expr.operand)
    return out


def bexp_reads(expr: BExp) -> set[ObjRef]:
    """All object references read by a boolean expression."""
    if isinstance(expr, BCmp):
        return aexp_reads(expr.left) | aexp_reads(expr.right)
    if isinstance(expr, (BAnd, BOr)):
        return bexp_reads(expr.left) | bexp_reads(expr.right)
    if isinstance(expr, BNot):
        return bexp_reads(expr.operand)
    return set()


def transaction_reads(tx: Transaction) -> set[ObjRef]:
    """Every object reference read anywhere in the transaction."""
    out: set[ObjRef] = set()
    for node in walk_commands(tx.body):
        if isinstance(node, Assign):
            out |= aexp_reads(node.expr)
        elif isinstance(node, Write):
            out |= aexp_reads(node.expr)
            for ix in getattr(node.ref, "index", ()):
                out |= aexp_reads(ix)
        elif isinstance(node, Print):
            out |= aexp_reads(node.expr)
        elif isinstance(node, If):
            out |= bexp_reads(node.cond)
    return out


def transaction_writes(tx: Transaction) -> set[ObjRef]:
    """Every object reference written anywhere in the transaction."""
    return {
        node.ref for node in walk_commands(tx.body) if isinstance(node, Write)
    }
