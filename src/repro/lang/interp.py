"""The L / L++ interpreter: ``Eval(T, D)`` from Definition 2.1.

Evaluating a transaction ``T`` on a database ``D`` yields a pair
``(D', G')`` where ``D'`` is the updated database and ``G'`` the log of
printed values, in print order.  Transactions are deterministic, so
the result is a function of ``T``, ``D`` and the parameter values.

Two entry points:

- :func:`evaluate` -- pure functional evaluation over an immutable
  mapping, used by the analysis tests and the reference serial
  executor.
- :func:`execute` -- effectful evaluation against arbitrary
  read/write/print callbacks, used by the storage engine's stored
  procedures (Section 5.1) so that reads acquire locks and writes are
  journaled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

from repro.lang.ast import (
    ABin,
    AConst,
    AExp,
    ANeg,
    AParam,
    ARead,
    ATemp,
    Assign,
    BAnd,
    BCmp,
    BConst,
    BExp,
    BNot,
    BOr,
    Com,
    ForEach,
    GroundRef,
    If,
    ObjRef,
    Print,
    Seq,
    Skip,
    Transaction,
    Write,
)
from repro.logic.terms import ground_name

_CMP = {
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


class InterpError(Exception):
    """Raised on runtime errors such as unbound temporaries."""


@dataclass
class ExecContext:
    """Execution environment threaded through command evaluation.

    ``getobj`` / ``setobj`` resolve database objects by ground name;
    ``emit`` receives printed values.  ``arrays`` supplies declared
    bounds for L++ ``foreach``.
    """

    getobj: Callable[[str], int]
    setobj: Callable[[str, int], None]
    emit: Callable[[int], None]
    params: Mapping[str, int] = field(default_factory=dict)
    temps: dict[str, int] = field(default_factory=dict)
    arrays: Mapping[str, tuple[int, ...]] = field(default_factory=dict)


def _resolve_ref(ref: ObjRef, ctx: ExecContext) -> str:
    if isinstance(ref, GroundRef):
        return ref.name
    indices = tuple(eval_aexp(ix, ctx) for ix in ref.index)
    return ground_name(ref.base, indices)


def eval_aexp(expr: AExp, ctx: ExecContext) -> int:
    """Evaluate an arithmetic expression to an integer."""
    if isinstance(expr, AConst):
        return expr.value
    if isinstance(expr, AParam):
        if expr.name not in ctx.params:
            raise InterpError(f"unbound parameter @{expr.name}")
        return ctx.params[expr.name]
    if isinstance(expr, ATemp):
        if expr.name not in ctx.temps:
            raise InterpError(f"unbound temporary {expr.name}")
        return ctx.temps[expr.name]
    if isinstance(expr, ARead):
        return ctx.getobj(_resolve_ref(expr.ref, ctx))
    if isinstance(expr, ANeg):
        return -eval_aexp(expr.operand, ctx)
    if isinstance(expr, ABin):
        left = eval_aexp(expr.left, ctx)
        right = eval_aexp(expr.right, ctx)
        if expr.op == "+":
            return left + right
        if expr.op == "-":
            return left - right
        return left * right
    raise TypeError(f"unknown arithmetic node {expr!r}")


def eval_bexp(expr: BExp, ctx: ExecContext) -> bool:
    """Evaluate a boolean expression."""
    if isinstance(expr, BConst):
        return expr.value
    if isinstance(expr, BCmp):
        return _CMP[expr.op](eval_aexp(expr.left, ctx), eval_aexp(expr.right, ctx))
    if isinstance(expr, BAnd):
        return eval_bexp(expr.left, ctx) and eval_bexp(expr.right, ctx)
    if isinstance(expr, BOr):
        return eval_bexp(expr.left, ctx) or eval_bexp(expr.right, ctx)
    if isinstance(expr, BNot):
        return not eval_bexp(expr.operand, ctx)
    raise TypeError(f"unknown boolean node {expr!r}")


def execute(com: Com, ctx: ExecContext) -> None:
    """Execute a command for its effects on ``ctx``."""
    # Iterative on sequences to keep recursion depth bounded by nesting,
    # not by program length.
    stack: list[Com] = [com]
    while stack:
        node = stack.pop()
        if isinstance(node, Skip):
            continue
        if isinstance(node, Seq):
            stack.append(node.second)
            stack.append(node.first)
            continue
        if isinstance(node, Assign):
            ctx.temps[node.temp] = eval_aexp(node.expr, ctx)
            continue
        if isinstance(node, If):
            branch = node.then_branch if eval_bexp(node.cond, ctx) else node.else_branch
            stack.append(branch)
            continue
        if isinstance(node, Write):
            value = eval_aexp(node.expr, ctx)
            ctx.setobj(_resolve_ref(node.ref, ctx), value)
            continue
        if isinstance(node, Print):
            ctx.emit(eval_aexp(node.expr, ctx))
            continue
        if isinstance(node, ForEach):
            if node.array not in ctx.arrays:
                raise InterpError(
                    f"foreach over undeclared array {node.array!r}; "
                    "declare its bound or desugar first"
                )
            bound = ctx.arrays[node.array][0]
            # Unroll in reverse so the stack pops iterations in order;
            # each iteration rebinds the loop temporary.
            for index in reversed(range(bound)):
                stack.append(node.body)
                stack.append(Assign(node.var, AConst(index)))
            continue
        raise TypeError(f"unknown command node {node!r}")


@dataclass(frozen=True)
class EvalResult:
    """The observable outcome ``(D', G')`` of Definition 2.1."""

    db: dict[str, int]
    log: tuple[int, ...]

    def observationally_equal(self, other: "EvalResult") -> bool:
        """Final database and log both match (Definition 3.3 specialised
        to a single transaction with everything local)."""
        return self.db == other.db and self.log == other.log


def evaluate(
    tx: Transaction,
    db: Mapping[str, int],
    params: Mapping[str, int] | None = None,
    arrays: Mapping[str, tuple[int, ...]] | None = None,
) -> EvalResult:
    """Pure ``Eval(T, D)``: returns the updated database and the log.

    ``db`` maps ground object names to integers; objects absent from
    the mapping read as 0 (the paper's null default).  The input
    mapping is never mutated.
    """
    params = dict(params or {})
    expected = set(tx.params)
    missing = expected - set(params)
    if missing:
        raise InterpError(f"missing parameters for {tx.name}: {sorted(missing)}")

    state = dict(db)
    log: list[int] = []
    ctx = ExecContext(
        getobj=lambda name: state.get(name, 0),
        setobj=state.__setitem__,
        emit=log.append,
        params=params,
        arrays=arrays or {},
    )
    execute(tx.body, ctx)
    return EvalResult(db=state, log=tuple(log))
