"""Tokenizer for L / L++ source text.

The concrete syntax accepted by :mod:`repro.lang.parser` is a small,
readable rendering of Figure 5.  The token set:

- keywords: ``transaction array relation skip if then else write print
  read foreach in and or not true false``
- identifiers (temporaries, array bases, object names), ``@name``
  parameters
- integer literals (optionally negative via unary minus at parse time)
- operators and punctuation: ``:= = < <= > >= != + - * ( ) { } , ; @``
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

KEYWORDS = {
    "transaction",
    "array",
    "relation",
    "skip",
    "if",
    "then",
    "else",
    "write",
    "print",
    "read",
    "foreach",
    "in",
    "and",
    "or",
    "not",
    "true",
    "false",
}

_TWO_CHAR = {":=", "<=", ">=", "!="}
_ONE_CHAR = set("=<>+-*(){};,@[]")


class LexError(Exception):
    """Raised on malformed input text."""

    def __init__(self, message: str, line: int, col: int) -> None:
        super().__init__(f"{message} at line {line}, column {col}")
        self.line = line
        self.col = col


@dataclass(frozen=True)
class Token:
    """A lexical token with source position (1-based)."""

    kind: str  # 'int' | 'name' | 'keyword' | 'op' | 'eof'
    text: str
    line: int
    col: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind}, {self.text!r}, {self.line}:{self.col})"


def tokenize(source: str) -> list[Token]:
    """Tokenize source text; comments run from ``#`` or ``//`` to EOL."""
    return list(_scan(source))


def _scan(source: str) -> Iterator[Token]:
    i = 0
    line = 1
    col = 1
    n = len(source)
    while i < n:
        ch = source[i]
        if ch == "\n":
            i += 1
            line += 1
            col = 1
            continue
        if ch in " \t\r":
            i += 1
            col += 1
            continue
        if ch == "#" or source.startswith("//", i):
            while i < n and source[i] != "\n":
                i += 1
            continue
        if source[i : i + 2] in _TWO_CHAR:
            yield Token("op", source[i : i + 2], line, col)
            i += 2
            col += 2
            continue
        if ch.isdigit():
            start = i
            while i < n and source[i].isdigit():
                i += 1
            yield Token("int", source[start:i], line, col)
            col += i - start
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (source[i].isalnum() or source[i] == "_"):
                i += 1
            text = source[start:i]
            kind = "keyword" if text in KEYWORDS else "name"
            yield Token(kind, text, line, col)
            col += i - start
            continue
        if ch in _ONE_CHAR:
            yield Token("op", ch, line, col)
            i += 1
            col += 1
            continue
        raise LexError(f"unexpected character {ch!r}", line, col)
    yield Token("eof", "", line, col)
