"""L++ to L lowering (Section 2.4, Appendix A) and the compressed form.

Two lowering modes are provided:

``expand``
    The literal Appendix A encoding: a dynamic array access
    ``a(e)`` becomes a cascade of ``if e = 0 then ... else if e = 1``
    statements over the array's declared bound, and ``foreach``
    unrolls completely.  The result is pure Figure-5 L.  This mode is
    exponential in practice and exists to validate the compressed
    form against it.

``parameterized``
    The Section 5.1 compression: accesses whose indices are built only
    from constants and transaction parameters stay symbolic
    (``a(@p)``); the parameterization is pushed into the symbolic
    tables instead of instantiated.  Accesses with data-dependent
    indices (mentioning ``read`` or temporaries) still fall back to
    the expanded encoding.

Both modes eliminate ``foreach`` by unrolling, since L has no loops.
Out-of-bounds behaviour of the expanded encoding: a dynamic read
outside the declared bound yields 0 (the null default) and a dynamic
write outside the bound is a no-op; this matches evaluating the
nested-conditional encoding, whose final ``else`` is ``skip``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.lang.ast import (
    ABin,
    AConst,
    AExp,
    ANeg,
    AParam,
    ARead,
    ATemp,
    ArrayRef,
    Assign,
    BAnd,
    BCmp,
    BExp,
    BNot,
    BOr,
    Com,
    ForEach,
    GroundRef,
    If,
    ObjRef,
    Print,
    Seq,
    Skip,
    Transaction,
    Write,
    seq,
)
from repro.logic.terms import ground_name

#: Hard cap on the number of slots a single dynamic access may expand to.
MAX_EXPANSION = 4096


class DesugarError(Exception):
    """Raised when lowering is impossible (missing bounds, blow-up)."""


# ---------------------------------------------------------------------------
# Temp substitution (used by foreach unrolling)
# ---------------------------------------------------------------------------


def subst_temp_aexp(expr: AExp, name: str, value: AExp) -> AExp:
    if isinstance(expr, ATemp) and expr.name == name:
        return value
    if isinstance(expr, ARead):
        return ARead(_subst_temp_ref(expr.ref, name, value))
    if isinstance(expr, ABin):
        return ABin(
            expr.op,
            subst_temp_aexp(expr.left, name, value),
            subst_temp_aexp(expr.right, name, value),
        )
    if isinstance(expr, ANeg):
        return ANeg(subst_temp_aexp(expr.operand, name, value))
    return expr


def _subst_temp_ref(ref: ObjRef, name: str, value: AExp) -> ObjRef:
    if isinstance(ref, ArrayRef):
        return ArrayRef(
            ref.base, tuple(subst_temp_aexp(ix, name, value) for ix in ref.index)
        )
    return ref


def subst_temp_bexp(expr: BExp, name: str, value: AExp) -> BExp:
    if isinstance(expr, BCmp):
        return BCmp(
            expr.op,
            subst_temp_aexp(expr.left, name, value),
            subst_temp_aexp(expr.right, name, value),
        )
    if isinstance(expr, BAnd):
        return BAnd(
            subst_temp_bexp(expr.left, name, value),
            subst_temp_bexp(expr.right, name, value),
        )
    if isinstance(expr, BOr):
        return BOr(
            subst_temp_bexp(expr.left, name, value),
            subst_temp_bexp(expr.right, name, value),
        )
    if isinstance(expr, BNot):
        return BNot(subst_temp_bexp(expr.operand, name, value))
    return expr


def subst_temp_com(com: Com, name: str, value: AExp) -> Com:
    """Substitute a temporary inside a command.

    Raises :class:`DesugarError` if the command re-assigns the
    temporary (shadowing a loop variable is rejected rather than
    silently mis-scoped).
    """
    if isinstance(com, Skip):
        return com
    if isinstance(com, Assign):
        if com.temp == name:
            raise DesugarError(f"loop variable {name!r} is re-assigned in the body")
        return Assign(com.temp, subst_temp_aexp(com.expr, name, value))
    if isinstance(com, Seq):
        return Seq(
            subst_temp_com(com.first, name, value),
            subst_temp_com(com.second, name, value),
        )
    if isinstance(com, If):
        return If(
            subst_temp_bexp(com.cond, name, value),
            subst_temp_com(com.then_branch, name, value),
            subst_temp_com(com.else_branch, name, value),
        )
    if isinstance(com, Write):
        return Write(
            _subst_temp_ref(com.ref, name, value),
            subst_temp_aexp(com.expr, name, value),
        )
    if isinstance(com, Print):
        return Print(subst_temp_aexp(com.expr, name, value))
    if isinstance(com, ForEach):
        if com.var == name:
            raise DesugarError(f"loop variable {name!r} shadowed by nested foreach")
        return ForEach(com.var, com.array, subst_temp_com(com.body, name, value))
    raise TypeError(f"unknown command node {com!r}")


# ---------------------------------------------------------------------------
# foreach unrolling
# ---------------------------------------------------------------------------


def unroll_foreach(com: Com, arrays: dict[str, tuple[int, ...]]) -> Com:
    """Replace every ``foreach`` by its full unrolling."""
    if isinstance(com, (Skip, Assign, Write, Print)):
        return com
    if isinstance(com, Seq):
        return Seq(unroll_foreach(com.first, arrays), unroll_foreach(com.second, arrays))
    if isinstance(com, If):
        return If(
            com.cond,
            unroll_foreach(com.then_branch, arrays),
            unroll_foreach(com.else_branch, arrays),
        )
    if isinstance(com, ForEach):
        if com.array not in arrays:
            raise DesugarError(f"foreach over undeclared array {com.array!r}")
        bound = arrays[com.array][0]
        body = unroll_foreach(com.body, arrays)
        iterations = [subst_temp_com(body, com.var, AConst(i)) for i in range(bound)]
        return seq(*iterations)
    raise TypeError(f"unknown command node {com!r}")


# ---------------------------------------------------------------------------
# Dynamic access classification and expansion
# ---------------------------------------------------------------------------


def _index_is_const(ix: AExp) -> bool:
    return isinstance(ix, AConst)


def _index_is_static(ix: AExp) -> bool:
    """True if the index uses only constants and parameters."""
    if isinstance(ix, (AConst, AParam)):
        return True
    if isinstance(ix, ANeg):
        return _index_is_static(ix.operand)
    if isinstance(ix, ABin):
        return _index_is_static(ix.left) and _index_is_static(ix.right)
    return False


def _ground_ref(ref: ArrayRef) -> GroundRef:
    indices = tuple(ix.value for ix in ref.index)  # type: ignore[union-attr]
    return GroundRef(ground_name(ref.base, indices))


@dataclass
class _Lowering:
    """Stateful lowering pass over one transaction body."""

    arrays: dict[str, tuple[int, ...]]
    keep_static: bool  # parameterized mode keeps param-indexed accesses
    fresh: int = 0
    prelude: list[Com] = field(default_factory=list)

    def fresh_temp(self) -> str:
        self.fresh += 1
        return f"_t{self.fresh}"

    # -- expressions ----------------------------------------------------------

    def lower_aexp(self, expr: AExp) -> AExp:
        if isinstance(expr, ARead):
            ref = expr.ref
            if isinstance(ref, GroundRef):
                return expr
            ref = ArrayRef(ref.base, tuple(self.lower_aexp(ix) for ix in ref.index))
            if all(_index_is_const(ix) for ix in ref.index):
                return ARead(_ground_ref(ref))
            if self.keep_static and all(_index_is_static(ix) for ix in ref.index):
                return ARead(ref)
            return self._expand_read(ref)
        if isinstance(expr, ABin):
            return ABin(expr.op, self.lower_aexp(expr.left), self.lower_aexp(expr.right))
        if isinstance(expr, ANeg):
            return ANeg(self.lower_aexp(expr.operand))
        return expr

    def lower_bexp(self, expr: BExp) -> BExp:
        if isinstance(expr, BCmp):
            return BCmp(expr.op, self.lower_aexp(expr.left), self.lower_aexp(expr.right))
        if isinstance(expr, BAnd):
            return BAnd(self.lower_bexp(expr.left), self.lower_bexp(expr.right))
        if isinstance(expr, BOr):
            return BOr(self.lower_bexp(expr.left), self.lower_bexp(expr.right))
        if isinstance(expr, BNot):
            return BNot(self.lower_bexp(expr.operand))
        return expr

    def _slots(self, ref: ArrayRef) -> list[tuple[int, ...]]:
        if ref.base not in self.arrays:
            raise DesugarError(f"dynamic access to undeclared array {ref.base!r}")
        shape = self.arrays[ref.base]
        if len(shape) != len(ref.index):
            raise DesugarError(
                f"array {ref.base!r} has {len(shape)} dimension(s), "
                f"accessed with {len(ref.index)}"
            )
        total = 1
        for d in shape:
            total *= d
        if total > MAX_EXPANSION:
            raise DesugarError(
                f"expanding {ref.base!r} would create {total} cases "
                f"(limit {MAX_EXPANSION}); use parameterized mode"
            )
        return list(itertools.product(*(range(d) for d in shape)))

    def _expand_read(self, ref: ArrayRef) -> AExp:
        """Appendix A read: hoist a nested-if cascade into the prelude."""
        temp = self.fresh_temp()
        cascade: Com = Assign(temp, AConst(0))  # out-of-bounds default
        for slot in reversed(self._slots(ref)):
            cond = _slot_condition(ref, slot)
            assign = Assign(temp, ARead(GroundRef(ground_name(ref.base, slot))))
            cascade = If(cond, assign, cascade)
        self.prelude.append(cascade)
        return ATemp(temp)

    def _expand_write(self, ref: ArrayRef, value: AExp) -> Com:
        """Appendix A write: nested-if cascade selecting the slot."""
        # Bind the value once so each branch writes the same expression
        # without re-evaluating reads inside it.
        temp = self.fresh_temp()
        bind = Assign(temp, value)
        cascade: Com = Skip()  # out-of-bounds: no-op
        for slot in reversed(self._slots(ref)):
            cond = _slot_condition(ref, slot)
            write = Write(GroundRef(ground_name(ref.base, slot)), ATemp(temp))
            cascade = If(cond, write, cascade)
        return Seq(bind, cascade)

    # -- commands -----------------------------------------------------------------

    def lower_com(self, com: Com) -> Com:
        if isinstance(com, Skip):
            return com
        if isinstance(com, Assign):
            expr = self._with_prelude_expr(com.expr)
            return self._flush_prelude(Assign(com.temp, expr))
        if isinstance(com, Print):
            expr = self._with_prelude_expr(com.expr)
            return self._flush_prelude(Print(expr))
        if isinstance(com, Write):
            expr = self._with_prelude_expr(com.expr)
            ref = com.ref
            if isinstance(ref, ArrayRef):
                ref = ArrayRef(ref.base, tuple(self.lower_aexp(ix) for ix in ref.index))
                if all(_index_is_const(ix) for ix in ref.index):
                    return self._flush_prelude(Write(_ground_ref(ref), expr))
                if self.keep_static and all(_index_is_static(ix) for ix in ref.index):
                    return self._flush_prelude(Write(ref, expr))
                return self._flush_prelude(self._expand_write(ref, expr))
            return self._flush_prelude(Write(ref, expr))
        if isinstance(com, Seq):
            return Seq(self.lower_com(com.first), self.lower_com(com.second))
        if isinstance(com, If):
            cond = self.lower_bexp(com.cond)
            # Flush reads hoisted out of the condition before lowering
            # the branches, which manage their own preludes.
            prefix = self.prelude
            self.prelude = []
            then_branch = self.lower_com(com.then_branch)
            else_branch = self.lower_com(com.else_branch)
            node: Com = If(cond, then_branch, else_branch)
            return seq(*prefix, node) if prefix else node
        if isinstance(com, ForEach):
            raise DesugarError("foreach must be unrolled before access lowering")
        raise TypeError(f"unknown command node {com!r}")

    def _with_prelude_expr(self, expr: AExp) -> AExp:
        assert not self.prelude
        return self.lower_aexp(expr)

    def _flush_prelude(self, com: Com) -> Com:
        if not self.prelude:
            return com
        prefix = self.prelude
        self.prelude = []
        return seq(*prefix, com)


def _slot_condition(ref: ArrayRef, slot: tuple[int, ...]) -> BExp:
    conds = [BCmp("=", ix, AConst(v)) for ix, v in zip(ref.index, slot)]
    cond = conds[0]
    for extra in conds[1:]:
        cond = BAnd(cond, extra)
    return cond


# ---------------------------------------------------------------------------
# Public API
# ---------------------------------------------------------------------------


def desugar_transaction(
    tx: Transaction,
    arrays: dict[str, tuple[int, ...]] | None = None,
    mode: str = "parameterized",
) -> Transaction:
    """Lower an L++ transaction into L.

    ``mode`` is ``"parameterized"`` (Section 5.1 compression, the
    default) or ``"expand"`` (literal Appendix A encoding).
    """
    if mode not in ("parameterized", "expand"):
        raise ValueError(f"unknown desugaring mode {mode!r}")
    arrays = dict(arrays or {})
    body = unroll_foreach(tx.body, arrays)
    lowering = _Lowering(arrays=arrays, keep_static=(mode == "parameterized"))
    body = lowering.lower_com(body)
    return Transaction(tx.name, tx.params, body, tx.assume_distinct)


def is_core_l(com: Com) -> bool:
    """True if the command is plain Figure-5 L: no foreach, and every
    object reference is a ground name."""
    from repro.lang.ast import walk_commands

    for node in walk_commands(com):
        if isinstance(node, ForEach):
            return False
        if isinstance(node, Write) and isinstance(node.ref, ArrayRef):
            return False
        for expr in _node_exprs(node):
            if _has_array_read(expr):
                return False
    return True


def _node_exprs(node: Com) -> list[AExp]:
    if isinstance(node, (Assign, Print, Write)):
        return [node.expr]
    if isinstance(node, If):
        return _bexp_aexps(node.cond)
    return []


def _bexp_aexps(expr: BExp) -> list[AExp]:
    if isinstance(expr, BCmp):
        return [expr.left, expr.right]
    if isinstance(expr, (BAnd, BOr)):
        return _bexp_aexps(expr.left) + _bexp_aexps(expr.right)
    if isinstance(expr, BNot):
        return _bexp_aexps(expr.operand)
    return []


def _has_array_read(expr: AExp) -> bool:
    if isinstance(expr, ARead):
        return isinstance(expr.ref, ArrayRef)
    if isinstance(expr, ABin):
        return _has_array_read(expr.left) or _has_array_read(expr.right)
    if isinstance(expr, ANeg):
        return _has_array_read(expr.operand)
    return False
