"""Recursive-descent parser for L / L++.

The paper's prototype used an ANTLR-4 generated parser (Section 5.2);
this is a hand-written equivalent for the same grammar.  A unified
expression grammar avoids backtracking: ``or`` < ``and`` < ``not`` <
comparison < additive < multiplicative < unary, with parenthesized
subexpressions allowed to be either arithmetic or boolean and
type-checked at the point of use.

Two conveniences beyond Figure 5:

- ``write(x = b)`` with a boolean right-hand side (used by transaction
  T4 in Figure 8b) desugars to
  ``if b then write(x = 1) else write(x = 0)``;
- bare command sequences can be parsed as anonymous transactions via
  :func:`parse_transaction`.
"""

from __future__ import annotations

from repro.lang.ast import (
    ABin,
    AConst,
    AExp,
    ANeg,
    AParam,
    ARead,
    ATemp,
    ArrayRef,
    Assign,
    BAnd,
    BCmp,
    BConst,
    BExp,
    BNot,
    BOr,
    Com,
    ForEach,
    GroundRef,
    If,
    ObjRef,
    Print,
    Program,
    Skip,
    Transaction,
    Write,
    seq,
)
from repro.lang.lexer import Token, tokenize

_CMP_OPS = {"<", "<=", "=", "!=", ">", ">="}


class ParseError(Exception):
    """Raised on syntactically invalid input."""

    def __init__(self, message: str, token: Token) -> None:
        super().__init__(f"{message} at line {token.line}, column {token.col}")
        self.token = token


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self.tokens = tokens
        self.pos = 0
        self.params: set[str] = set()

    # -- token plumbing -------------------------------------------------------

    def peek(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind != "eof":
            self.pos += 1
        return tok

    def check(self, kind: str, text: str | None = None) -> bool:
        tok = self.peek()
        return tok.kind == kind and (text is None or tok.text == text)

    def accept(self, kind: str, text: str | None = None) -> Token | None:
        if self.check(kind, text):
            return self.advance()
        return None

    def expect(self, kind: str, text: str | None = None) -> Token:
        tok = self.accept(kind, text)
        if tok is None:
            want = text if text is not None else kind
            raise ParseError(f"expected {want!r}, found {self.peek().text!r}", self.peek())
        return tok

    # -- program structure -----------------------------------------------------

    def program(self) -> Program:
        prog = Program()
        while not self.check("eof"):
            if self.check("keyword", "array") or self.check("keyword", "relation"):
                name, shape = self.array_decl()
                prog.arrays[name] = shape
            elif self.check("keyword", "transaction"):
                prog.add(self.transaction())
            else:
                raise ParseError(
                    "expected 'array' or 'transaction' declaration", self.peek()
                )
        return prog

    def array_decl(self) -> tuple[str, tuple[int, ...]]:
        self.advance()  # 'array' or 'relation'
        name = self.expect("name").text
        self.expect("op", "[")
        dims = [int(self.expect("int").text)]
        while self.accept("op", ","):
            dims.append(int(self.expect("int").text))
        self.expect("op", "]")
        self.accept("op", ";")
        return name, tuple(dims)

    def transaction(self) -> Transaction:
        self.expect("keyword", "transaction")
        name = self.expect("name").text
        self.expect("op", "(")
        params: list[str] = []
        if not self.check("op", ")"):
            params.append(self.param_name())
            while self.accept("op", ","):
                params.append(self.param_name())
        self.expect("op", ")")
        distinct_groups: list[tuple[str, ...]] = []
        while self.check("name", "distinct"):
            self.advance()
            self.expect("op", "(")
            group = [self.param_name()]
            while self.accept("op", ","):
                group.append(self.param_name())
            self.expect("op", ")")
            unknown = set(group) - set(params)
            if unknown:
                raise ParseError(
                    f"distinct() names unknown parameters {sorted(unknown)}",
                    self.peek(),
                )
            distinct_groups.append(tuple(group))
        old_params = self.params
        self.params = set(params)
        try:
            body = self.block()
        finally:
            self.params = old_params
        return Transaction(name, tuple(params), body, tuple(distinct_groups))

    def param_name(self) -> str:
        self.accept("op", "@")
        return self.expect("name").text

    # -- commands ---------------------------------------------------------------

    def block(self) -> Com:
        self.expect("op", "{")
        body = self.command_sequence()
        self.expect("op", "}")
        return body

    def command_sequence(self) -> Com:
        commands: list[Com] = []
        while True:
            while self.accept("op", ";"):
                pass
            if self.check("op", "}") or self.check("eof"):
                break
            commands.append(self.statement())
        return seq(*commands) if commands else Skip()

    def statement(self) -> Com:
        tok = self.peek()
        if self.accept("keyword", "skip"):
            return Skip()
        if self.accept("keyword", "if"):
            cond = self.boolean_expr()
            self.accept("keyword", "then")
            then_branch = self.block()
            self.expect("keyword", "else")
            else_branch = self.block()
            return If(cond, then_branch, else_branch)
        if self.accept("keyword", "write"):
            self.expect("op", "(")
            ref = self.object_ref()
            self.expect("op", "=")
            value = self.expression()
            self.expect("op", ")")
            if isinstance(value, BExp):
                # Boolean store: desugar to a conditional 1/0 write.
                return If(value, Write(ref, AConst(1)), Write(ref, AConst(0)))
            return Write(ref, value)
        if self.accept("keyword", "print"):
            self.expect("op", "(")
            value = self.arith_expr()
            self.expect("op", ")")
            return Print(value)
        if self.accept("keyword", "foreach"):
            var = self.expect("name").text
            self.expect("keyword", "in")
            array = self.expect("name").text
            body = self.block()
            return ForEach(var, array, body)
        if tok.kind == "name":
            name = self.advance().text
            self.expect("op", ":=")
            value = self.arith_expr()
            return Assign(name, value)
        raise ParseError(f"unexpected token {tok.text!r} in statement", tok)

    def object_ref(self) -> ObjRef:
        name = self.expect("name").text
        if self.accept("op", "("):
            index = [self.arith_expr()]
            while self.accept("op", ","):
                index.append(self.arith_expr())
            self.expect("op", ")")
            return ArrayRef(name, tuple(index))
        return GroundRef(name)

    # -- expressions -------------------------------------------------------------

    def expression(self) -> "AExp | BExp":
        return self.or_expr()

    def boolean_expr(self) -> BExp:
        expr = self.or_expr()
        if not isinstance(expr, BExp):
            raise ParseError("expected a boolean expression", self.peek())
        return expr

    def arith_expr(self) -> AExp:
        expr = self.or_expr()
        if not isinstance(expr, AExp):
            raise ParseError("expected an arithmetic expression", self.peek())
        return expr

    def or_expr(self) -> "AExp | BExp":
        left = self.and_expr()
        while self.check("keyword", "or"):
            self.advance()
            right = self.and_expr()
            left = BOr(self._as_bool(left), self._as_bool(right))
        return left

    def and_expr(self) -> "AExp | BExp":
        left = self.not_expr()
        while self.check("keyword", "and"):
            self.advance()
            right = self.not_expr()
            left = BAnd(self._as_bool(left), self._as_bool(right))
        return left

    def not_expr(self) -> "AExp | BExp":
        if self.accept("keyword", "not"):
            operand = self.not_expr()
            return BNot(self._as_bool(operand))
        return self.cmp_expr()

    def cmp_expr(self) -> "AExp | BExp":
        left = self.add_expr()
        if self.peek().kind == "op" and self.peek().text in _CMP_OPS:
            op = self.advance().text
            right = self.add_expr()
            return BCmp(op, self._as_arith(left), self._as_arith(right))
        return left

    def add_expr(self) -> "AExp | BExp":
        left = self.mul_expr()
        while self.peek().kind == "op" and self.peek().text in ("+", "-"):
            op = self.advance().text
            right = self.mul_expr()
            left = ABin(op, self._as_arith(left), self._as_arith(right))
        return left

    def mul_expr(self) -> "AExp | BExp":
        left = self.unary_expr()
        while self.check("op", "*"):
            self.advance()
            right = self.unary_expr()
            left = ABin("*", self._as_arith(left), self._as_arith(right))
        return left

    def unary_expr(self) -> "AExp | BExp":
        if self.accept("op", "-"):
            operand = self.unary_expr()
            return ANeg(self._as_arith(operand))
        return self.atom()

    def atom(self) -> "AExp | BExp":
        tok = self.peek()
        if tok.kind == "int":
            self.advance()
            return AConst(int(tok.text))
        if self.accept("keyword", "true"):
            return BConst(True)
        if self.accept("keyword", "false"):
            return BConst(False)
        if self.accept("keyword", "read"):
            self.expect("op", "(")
            ref = self.object_ref()
            self.expect("op", ")")
            return ARead(ref)
        if self.accept("op", "@"):
            name = self.expect("name").text
            return AParam(name)
        if tok.kind == "name":
            self.advance()
            if tok.text in self.params:
                return AParam(tok.text)
            return ATemp(tok.text)
        if self.accept("op", "("):
            inner = self.or_expr()
            self.expect("op", ")")
            return inner
        raise ParseError(f"unexpected token {tok.text!r} in expression", tok)

    def _as_bool(self, expr: "AExp | BExp") -> BExp:
        if isinstance(expr, BExp):
            return expr
        raise ParseError("expected a boolean operand", self.peek())

    def _as_arith(self, expr: "AExp | BExp") -> AExp:
        if isinstance(expr, AExp):
            return expr
        raise ParseError("expected an arithmetic operand", self.peek())


def parse_program(source: str) -> Program:
    """Parse a full L/L++ compilation unit."""
    parser = _Parser(tokenize(source))
    return parser.program()


def parse_transaction(
    source: str, name: str = "T", params: tuple[str, ...] = ()
) -> Transaction:
    """Parse a single transaction.

    Accepts either the full ``transaction name(params) { ... }`` form
    or a bare command sequence (optionally brace-wrapped), in which
    case ``name`` and ``params`` supply the header.
    """
    tokens = tokenize(source)
    parser = _Parser(tokens)
    if parser.check("keyword", "transaction"):
        tx = parser.transaction()
        parser.expect("eof")
        return tx
    parser.params = set(params)
    if parser.check("op", "{"):
        body = parser.block()
    else:
        body = parser.command_sequence()
    parser.expect("eof")
    return Transaction(name, tuple(params), body)
