"""Pretty-printer producing parseable L/L++ source text.

Round-trip property: for any AST ``t``,
``parse_transaction(pretty_transaction(t)) == t`` up to the parser's
sugar (boolean writes desugar to conditionals before printing, so the
property is tested on parser output, which is already desugared).
"""

from __future__ import annotations

from repro.lang.ast import Com, Program, Transaction


def pretty_com(com: Com, indent: int = 0) -> str:
    """Render a command as source text."""
    return com.pretty(indent)


def pretty_transaction(tx: Transaction) -> str:
    """Render a transaction declaration as source text."""
    return tx.pretty()


def pretty_program(prog: Program) -> str:
    """Render a full compilation unit as source text."""
    parts: list[str] = []
    for name, shape in sorted(prog.arrays.items()):
        dims = ", ".join(str(d) for d in shape)
        parts.append(f"array {name}[{dims}]")
    for tx in prog.transactions.values():
        parts.append(pretty_transaction(tx))
    return "\n\n".join(parts)
