"""First-order logic substrate for the homeostasis reproduction.

This package provides the formula language used by symbolic tables
(Section 2 of the paper), treaties (Sections 3-4) and the treaty
optimizer (Appendix C):

- :mod:`repro.logic.terms` -- integer terms over database objects,
  transaction parameters and temporary program variables.
- :mod:`repro.logic.formula` -- quantifier-free boolean formulas over
  comparisons of terms.
- :mod:`repro.logic.linear` -- linear normal forms (``LinearExpr`` /
  ``LinearConstraint``) and the lowering from terms.
- :mod:`repro.logic.linearize` -- the Appendix C.1 preprocessing that
  strengthens an arbitrary row formula into a conjunction of linear
  constraints.
- :mod:`repro.logic.simplify` -- light-weight logical simplification.
"""

from repro.logic.terms import (
    Add,
    Const,
    IndexedObjT,
    Mul,
    Neg,
    ObjT,
    ParamT,
    TempT,
    Term,
    ground_name,
)
from repro.logic.formula import (
    And,
    Cmp,
    FalseF,
    Formula,
    Not,
    Or,
    TrueF,
    conj,
    disj,
)
from repro.logic.linear import LinearConstraint, LinearExpr, LinearizationError
from repro.logic.linearize import linearize_for_treaty
from repro.logic.simplify import simplify_formula

__all__ = [
    "Add",
    "And",
    "Cmp",
    "Const",
    "FalseF",
    "Formula",
    "IndexedObjT",
    "LinearConstraint",
    "LinearExpr",
    "LinearizationError",
    "Mul",
    "Neg",
    "Not",
    "ObjT",
    "Or",
    "ParamT",
    "TempT",
    "Term",
    "TrueF",
    "conj",
    "disj",
    "ground_name",
    "linearize_for_treaty",
    "simplify_formula",
]
