"""Formula and treaty-clause compilation: the local-check fast path.

The whole point of the homeostasis protocol is that a *local* treaty
check replaces a coordinated round (Section 5.1), so the check sits on
the hot path of every single commit: stored-procedure dispatch
evaluates a row guard, and the pre-commit check evaluates the site's
local treaty clauses.  The interpreted implementations
(:meth:`repro.logic.formula.Formula.evaluate` and the per-constraint
loops over :class:`repro.logic.linear.LinearConstraint`) walk an AST
per call, which costs microseconds where the protocol's argument says
it should cost nanoseconds.

This module lowers both representations into single Python code
objects built with :func:`compile`:

- :func:`compile_formula` turns a :class:`Formula` (ideally after
  :func:`repro.logic.simplify.simplify`) into a closure with the same
  ``(getobj, params, temps)`` signature and semantics as
  ``Formula.evaluate`` -- including raising :class:`KeyError` on
  unbound parameters or temporaries;
- :func:`compile_clause` / :func:`compile_clauses` turn normalized
  linear treaty constraints into closures over ``getobj`` alone,
  equivalent to :func:`interpret_clauses` (the interpreted reference
  kept for differential tests and benchmarks);
- :func:`lower_to_escrow` classifies a clause set for the **escrow
  fast path** (:mod:`repro.treaty.escrow`): a conjunction whose every
  clause is a linear ``<=``-bound or equality pin over ground objects
  lowers to an :class:`EscrowProgram` -- the static shape (per-row
  coefficients, object-to-row index, worst-case coefficient
  magnitudes) that a site's headroom counters are run from.  Anything
  else (non-object variables, non-normalized operators) returns
  ``None`` and stays on the compiled-closure path.

Compilation is memoized on the (hashable, immutable) AST nodes, so
recurring guards and the value-keyed treaty pieces the incremental
generator reuses across rounds compile once while cached (the memo
tables are bounded and cleared wholesale when they outgrow
``_CACHE_LIMIT``, so long-lived processes never accumulate dead code
objects).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Mapping, Sequence, TypeVar

from repro.logic.formula import And, BoolConst, Cmp, Formula, Not, Or
from repro.logic.linear import LinearConstraint
from repro.logic.terms import (
    Add,
    Const,
    IndexedObjT,
    Mul,
    Neg,
    ObjT,
    ParamT,
    TempT,
    Term,
    ground_name,
)

#: signature of a compiled formula check (mirrors ``Formula.evaluate``)
FormulaCheck = Callable[..., bool]
#: signature of a compiled treaty-clause check
ClauseCheck = Callable[[Callable[[str], int]], bool]


class CompilationError(Exception):
    """The AST has no closed-form lowering (e.g. non-object variables
    in a treaty constraint)."""


#: comparison operator -> python source operator
_PY_OP = {"<": "<", "<=": "<=", "=": "==", "!=": "!=", ">": ">", ">=": ">="}

#: shared empty mapping for absent params/temps: lookups raise the
#: same ``KeyError`` the interpreter raises on unbound names
_EMPTY: Mapping[str, int] = {}

#: above this many clauses a conjunction is split into several code
#: objects (keeps generated expressions small for pathological treaties)
_CHUNK = 64

#: per-table memo bound: value-keyed treaty pieces recur across rounds
#: so the working set is small, but each negotiation can also mint
#: clauses with fresh bounds -- when a table outgrows this limit it is
#: simply cleared (recompilation is cheap and correctness-free), which
#: keeps long-lived processes from accumulating dead code objects
_CACHE_LIMIT = 4096

_formula_cache: dict[Formula, FormulaCheck] = {}
_clause_cache: dict[LinearConstraint, ClauseCheck] = {}
_conjunction_cache: dict[tuple[LinearConstraint, ...], ClauseCheck] = {}


_K = TypeVar("_K")
_V = TypeVar("_V")


def _remember(cache: dict[_K, _V], key: _K, value: _V) -> _V:
    if len(cache) >= _CACHE_LIMIT:
        cache.clear()
    cache[key] = value
    return value


def compiled_counts() -> dict[str, int]:
    """Sizes of the memo tables (observability for tests/benchmarks)."""
    return {
        "formulas": len(_formula_cache),
        "clauses": len(_clause_cache),
        "conjunctions": len(_conjunction_cache),
    }


# -- escrow lowering (the counter fast path's static shape) ---------------


#: drain coefficient assigned to objects pinned by an equality clause:
#: large enough that any nonzero delta to a pinned object exceeds any
#: realistic window budget, forcing the exact settle-and-check path
#: (a pin has zero headroom in at least one direction, so there is no
#: slack to consume optimistically)
PIN_DRAIN = 1 << 60


@dataclass(frozen=True, eq=False)
class EscrowProgram:
    """Static shape of an escrow-eligible clause set.

    One program per distinct constraint tuple (memoized like the
    compiled closures); the mutable counter state lives in
    :class:`repro.treaty.escrow.EscrowAccount`, so many accounts (one
    per install) can share one lowering.

    Each source clause lowers to one or two counter **rows**, every
    row a ``<=``-bound: a ``<=`` clause is its own row, and an
    equality pin ``e = b`` becomes the opposing pair ``e <= b`` and
    ``-e <= -b`` (both have zero slack exactly when the pin holds, so
    a row going negative is precisely the pin breaking in that
    direction).  Pin rows are excluded from the window budget -- they
    have no headroom to lend -- and pinned objects carry a
    :data:`PIN_DRAIN` worst-case coefficient so any write that moves
    one lands on the exact path.
    """

    #: the source clauses, in treaty order (the memo key)
    constraints: tuple[LinearConstraint, ...]
    #: counter rows, every one a normalized ``<=``-constraint
    rows: tuple[LinearConstraint, ...]
    #: per row: the index of the source clause it was lowered from
    row_source: tuple[int, ...]
    #: per row: the normalized right-hand bound
    bounds: tuple[int, ...]
    #: per row: the names of the objects its source clause mentions
    #: (violation reconstruction returns exactly these, matching the
    #: object set ``LocalTreaty.violations_after_writes`` reports)
    clause_objects: tuple[tuple[str, ...], ...]
    #: row indices participating in the window budget (rows lowered
    #: from ``<=`` clauses; pin rows never lend headroom)
    budget_rows: tuple[int, ...]
    #: object name -> ((row index, coefficient), ...) for every row
    #: mentioning it
    touching: Mapping[str, tuple[tuple[int, int], ...]]
    #: object name -> max |coefficient| across the rows mentioning it:
    #: a one-unit write to the object can drain at most this much
    #: headroom from any single budget row (the window guard's worst
    #: case); :data:`PIN_DRAIN` for pinned objects
    max_coeff: Mapping[str, int]


_escrow_cache: dict[tuple[LinearConstraint, ...], "EscrowProgram | None"] = {}
_escrow_counts = {"hits": 0, "misses": 0, "ineligible": 0}
_ESCROW_MISSING = object()


def escrow_counts() -> dict[str, int]:
    """Escrow lowering-cache statistics (observability for the
    nightly figure sweeps and the benchmark harness)."""
    return {"programs": len(_escrow_cache), **_escrow_counts}


def lower_to_escrow(
    constraints: Iterable[LinearConstraint],
) -> EscrowProgram | None:
    """Lower a clause set to its escrow program, or ``None`` if any
    clause is ineligible.

    Eligibility rule: every clause must be a linear ``<=``-bound or
    equality pin over ground objects (the two normal forms
    :meth:`LinearConstraint.make` produces).  For a ``<=`` clause,
    slack ``bound - sum(coeff_i * D(x_i))`` is an integer headroom
    counter that a commit's deltas update incrementally -- exactly the
    numeric-invariant class that admits escrow-style local
    enforcement.  An equality pin lowers to an opposing pair of
    zero-slack rows (see :class:`EscrowProgram`).  Any clause over
    non-object variables sends the whole treaty to the compiled slow
    path.
    """
    cons = tuple(constraints)
    cached = _escrow_cache.get(cons, _ESCROW_MISSING)
    if cached is not _ESCROW_MISSING:
        _escrow_counts["hits"] += 1
        return cached  # type: ignore[return-value]
    _escrow_counts["misses"] += 1
    program = _lower_escrow(cons)
    if program is None:
        _escrow_counts["ineligible"] += 1
    return _remember(_escrow_cache, cons, program)


def _lower_escrow(cons: tuple[LinearConstraint, ...]) -> EscrowProgram | None:
    touching: dict[str, list[tuple[int, int]]] = {}
    max_coeff: dict[str, int] = {}
    rows: list[LinearConstraint] = []
    row_source: list[int] = []
    bounds: list[int] = []
    clause_objects: list[tuple[str, ...]] = []
    budget_rows: list[int] = []

    def add_row(src: int, row: LinearConstraint, names: tuple[str, ...]) -> int:
        idx = len(rows)
        rows.append(row)
        row_source.append(src)
        bounds.append(row.bound)
        clause_objects.append(names)
        for var, coeff in row.expr.coeffs:
            touching.setdefault(var.name, []).append((idx, coeff))
        return idx

    for src, con in enumerate(cons):
        if con.op not in ("<=", "="):
            return None
        names: list[str] = []
        for var, _coeff in con.expr.coeffs:
            if not isinstance(var, ObjT):
                return None
            names.append(var.name)
        if not con.expr.coeffs:
            # Coefficient-less clauses (trivially true, or the
            # canonical-false normal form) mention no object, so
            # neither check path can ever attribute a violation to
            # them -- they lower to no row at all.
            continue
        objs = tuple(names)
        if con.op == "<=":
            budget_rows.append(add_row(src, con, objs))
            for var, coeff in con.expr.coeffs:
                magnitude = coeff if coeff >= 0 else -coeff
                if magnitude > max_coeff.get(var.name, 0):
                    max_coeff[var.name] = magnitude
        else:
            add_row(src, LinearConstraint(con.expr, "<=", con.bound), objs)
            add_row(src, LinearConstraint(con.expr.scaled(-1), "<=", -con.bound), objs)
            for name in objs:
                max_coeff[name] = PIN_DRAIN
    return EscrowProgram(
        constraints=cons,
        rows=tuple(rows),
        row_source=tuple(row_source),
        bounds=tuple(bounds),
        clause_objects=tuple(clause_objects),
        budget_rows=tuple(budget_rows),
        touching={name: tuple(pairs) for name, pairs in touching.items()},
        max_coeff=max_coeff,
    )


# -- codegen ---------------------------------------------------------------


def _term_source(term: Term) -> str:
    """Python expression source for a term over ``(g, p, t)``."""
    if isinstance(term, Const):
        return f"({term.value})"
    if isinstance(term, ObjT):
        return f"g({term.name!r})"
    if isinstance(term, ParamT):
        return f"p[{term.name!r}]"
    if isinstance(term, TempT):
        return f"t[{term.name!r}]"
    if isinstance(term, IndexedObjT):
        indices = ", ".join(_term_source(ix) for ix in term.index)
        if len(term.index) == 1:
            indices += ","
        return f"g(_gn({term.base!r}, ({indices})))"
    if isinstance(term, Neg):
        return f"(-{_term_source(term.operand)})"
    if isinstance(term, Add):
        return f"({_term_source(term.left)} + {_term_source(term.right)})"
    if isinstance(term, Mul):
        return f"({_term_source(term.left)} * {_term_source(term.right)})"
    raise CompilationError(f"unknown term node {term!r}")


def _formula_source(formula: Formula) -> str:
    """Python expression source for a formula over ``(g, p, t)``."""
    if isinstance(formula, BoolConst):
        return "True" if formula.value else "False"
    if isinstance(formula, Cmp):
        lhs = _term_source(formula.left)
        rhs = _term_source(formula.right)
        return f"({lhs} {_PY_OP[formula.op]} {rhs})"
    if isinstance(formula, And):
        if not formula.operands:
            return "True"
        return "(" + " and ".join(_formula_source(f) for f in formula.operands) + ")"
    if isinstance(formula, Or):
        if not formula.operands:
            return "False"
        return "(" + " or ".join(_formula_source(f) for f in formula.operands) + ")"
    if isinstance(formula, Not):
        return f"(not {_formula_source(formula.operand)})"
    raise CompilationError(f"unknown formula node {formula!r}")


def _clause_source(con: LinearConstraint) -> str:
    """Python expression source for a treaty clause over ``g``."""
    if con.op not in ("<=", "="):
        raise CompilationError(f"non-normalized constraint operator {con.op!r}")
    parts: list[str] = []
    for var, coeff in con.expr.coeffs:
        if not isinstance(var, ObjT):
            raise CompilationError(
                f"treaty clause mentions non-object variable {var!r}"
            )
        access = f"g({var.name!r})"
        if coeff == 1:
            parts.append(access)
        elif coeff == -1:
            parts.append(f"-{access}")
        else:
            parts.append(f"{coeff}*{access}")
    total = " + ".join(parts) if parts else "0"
    return f"({total}) {_PY_OP[con.op]} {con.bound}"


def _make(source: str, args: str) -> Callable[..., Any]:
    """Build one closure from generated expression source."""
    code = compile(f"lambda {args}: {source}", "<treaty-check>", "eval")
    closure: Callable[..., Any] = eval(code, {"_gn": ground_name})
    return closure


# -- public API ------------------------------------------------------------


def compile_formula(formula: Formula) -> FormulaCheck:
    """Compile a formula into a check equivalent to ``formula.evaluate``.

    The returned closure has the signature
    ``check(getobj, params=None, temps=None) -> bool`` and agrees with
    the interpreter on every environment, including raising
    ``KeyError`` for unbound parameters and temporaries.
    """
    cached = _formula_cache.get(formula)
    if cached is not None:
        return cached
    try:
        raw = _make(_formula_source(formula), "g, p, t")
    except (SyntaxError, RecursionError, MemoryError):
        # Pathologically deep ASTs (e.g. a foreach unrolled over
        # hundreds of array slots) can exceed CPython's nested-paren
        # or recursion limits; the equivalence contract wins over the
        # speedup, so fall back to the interpreter itself.
        raw = None

    if raw is None:
        check: FormulaCheck = formula.evaluate
    else:

        def check(
            getobj: Callable[[str], int],
            params: Mapping[str, int] | None = None,
            temps: Mapping[str, int] | None = None,
        ) -> bool:
            return raw(
                getobj,
                _EMPTY if params is None else params,
                _EMPTY if temps is None else temps,
            )

    return _remember(_formula_cache, formula, check)


def compile_clause(con: LinearConstraint) -> ClauseCheck:
    """Compile one normalized treaty clause into a check over ``getobj``."""
    cached = _clause_cache.get(con)
    if cached is not None:
        return cached
    return _remember(_clause_cache, con, _make(_clause_source(con), "g"))


def compile_clauses(constraints: Iterable[LinearConstraint]) -> ClauseCheck:
    """Compile a conjunction of treaty clauses into one check.

    This is the per-commit fast path: the entire local treaty becomes
    a single short-circuiting code object, so checking costs one
    closure call instead of a Python-level loop with per-clause
    dispatch.
    """
    cons = tuple(constraints)
    cached = _conjunction_cache.get(cons)
    if cached is not None:
        return cached
    if not cons:
        check: ClauseCheck = lambda g: True  # the empty treaty holds
    elif len(cons) <= _CHUNK:
        check = _make(" and ".join(_clause_source(c) for c in cons), "g")
    else:
        chunks = tuple(
            _make(" and ".join(_clause_source(c) for c in cons[i : i + _CHUNK]), "g")
            for i in range(0, len(cons), _CHUNK)
        )

        def check(
            g: Callable[[str], int],
            _chunks: tuple[Callable[..., Any], ...] = chunks,
        ) -> bool:
            return all(part(g) for part in _chunks)

    return _remember(_conjunction_cache, cons, check)


def interpret_clauses(
    constraints: Sequence[LinearConstraint], getobj: Callable[[str], int]
) -> bool:
    """Interpreted reference semantics for :func:`compile_clauses`.

    Kept (rather than deleted with the old per-call loops) so the
    equivalence property tests and the benchmark harness can measure
    compiled-vs-interpreted head to head.
    """
    for con in constraints:
        if con.op not in ("<=", "="):
            raise CompilationError(f"non-normalized constraint operator {con.op!r}")
        total = 0
        for var, coeff in con.expr.coeffs:
            if not isinstance(var, ObjT):
                raise CompilationError(
                    f"treaty clause mentions non-object variable {var!r}"
                )
            total += coeff * getobj(var.name)
        ok = total <= con.bound if con.op == "<=" else total == con.bound
        if not ok:
            return False
    return True
