"""Quantifier-free formulas over integer term comparisons.

These formulas appear as the first components of symbolic table rows
(Section 2.2), as global treaties (Definition 3.6) and as local
treaties (Section 4.1).  The grammar mirrors ``BExp`` from Figure 5 of
the paper, closed under negation and conjunction/disjunction:

    f ::= true | false | e0 OP e1 | f0 AND f1 | f0 OR f1 | NOT f
    OP ::= < | <= | = | != | > | >=

``>``/``>=``/``!=`` are not primitive in the paper's grammar but arise
from negating primitives; keeping them as first-class operators keeps
negation-normal-form cheap and formulas readable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Mapping

from repro.logic.terms import IndexedObjT, ObjT, ParamT, TempT, Term, fold_constants

#: comparison operator -> python semantics
_OPS: dict[str, Callable[[int, int], bool]] = {
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}

#: comparison operator -> its logical negation
NEGATED_OP: dict[str, str] = {
    "<": ">=",
    "<=": ">",
    "=": "!=",
    "!=": "=",
    ">": "<=",
    ">=": "<",
}

#: comparison operator -> the operator with swapped operands
SWAPPED_OP: dict[str, str] = {
    "<": ">",
    "<=": ">=",
    "=": "=",
    "!=": "!=",
    ">": "<",
    ">=": "<=",
}


class Formula:
    """Base class of all formula nodes."""

    __slots__ = ()

    def children(self) -> tuple["Formula", ...]:
        return ()

    def walk(self) -> Iterator["Formula"]:
        stack: list[Formula] = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(node.children())

    def atoms(self) -> Iterator["Cmp"]:
        """Yield every comparison atom in the formula."""
        for node in self.walk():
            if isinstance(node, Cmp):
                yield node

    # -- variable queries -----------------------------------------------------

    def objects(self) -> set[ObjT]:
        out: set[ObjT] = set()
        for atom in self.atoms():
            out |= atom.left.objects() | atom.right.objects()
        return out

    def indexed_objects(self) -> set[IndexedObjT]:
        out: set[IndexedObjT] = set()
        for atom in self.atoms():
            out |= atom.left.indexed_objects() | atom.right.indexed_objects()
        return out

    def params(self) -> set[ParamT]:
        out: set[ParamT] = set()
        for atom in self.atoms():
            out |= atom.left.params() | atom.right.params()
        return out

    def temps(self) -> set[TempT]:
        out: set[TempT] = set()
        for atom in self.atoms():
            out |= atom.left.temps() | atom.right.temps()
        return out

    # -- logical operators ------------------------------------------------------

    def __and__(self, other: "Formula") -> "Formula":
        return conj([self, other])

    def __or__(self, other: "Formula") -> "Formula":
        return disj([self, other])

    def __invert__(self) -> "Formula":
        return Not(self)

    # -- core operations -------------------------------------------------------

    def substitute(self, mapping: Mapping[Term, Term]) -> "Formula":
        raise NotImplementedError

    def evaluate(
        self,
        getobj: Callable[[str], int],
        params: Mapping[str, int] | None = None,
        temps: Mapping[str, int] | None = None,
    ) -> bool:
        raise NotImplementedError

    def to_nnf(self, negate: bool = False) -> "Formula":
        """Push negations down to atoms (negation normal form)."""
        raise NotImplementedError

    def pretty(self) -> str:
        raise NotImplementedError

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.pretty()


@dataclass(frozen=True)
class BoolConst(Formula):
    """``true`` or ``false``."""

    value: bool

    def substitute(self, mapping: Mapping[Term, Term]) -> Formula:
        return self

    def evaluate(
        self,
        getobj: Callable[[str], int],
        params: Mapping[str, int] | None = None,
        temps: Mapping[str, int] | None = None,
    ) -> bool:
        return self.value

    def to_nnf(self, negate: bool = False) -> Formula:
        return BoolConst(self.value != negate)

    def pretty(self) -> str:
        return "true" if self.value else "false"


TrueF = BoolConst(True)
FalseF = BoolConst(False)


@dataclass(frozen=True)
class Cmp(Formula):
    """A comparison atom ``left OP right``."""

    op: str
    left: Term
    right: Term

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise ValueError(f"unknown comparison operator {self.op!r}")

    def substitute(self, mapping: Mapping[Term, Term]) -> Formula:
        return Cmp(self.op, self.left.substitute(mapping), self.right.substitute(mapping))

    def evaluate(
        self,
        getobj: Callable[[str], int],
        params: Mapping[str, int] | None = None,
        temps: Mapping[str, int] | None = None,
    ) -> bool:
        lhs = self.left.evaluate(getobj, params, temps)
        rhs = self.right.evaluate(getobj, params, temps)
        return _OPS[self.op](lhs, rhs)

    def negated(self) -> "Cmp":
        return Cmp(NEGATED_OP[self.op], self.left, self.right)

    def to_nnf(self, negate: bool = False) -> Formula:
        return self.negated() if negate else self

    def folded(self) -> "Cmp":
        """Constant-fold both sides."""
        return Cmp(self.op, fold_constants(self.left), fold_constants(self.right))

    def pretty(self) -> str:
        return f"{self.left.pretty()} {self.op} {self.right.pretty()}"


@dataclass(frozen=True)
class And(Formula):
    """N-ary conjunction."""

    operands: tuple[Formula, ...]

    def children(self) -> tuple[Formula, ...]:
        return self.operands

    def substitute(self, mapping: Mapping[Term, Term]) -> Formula:
        return And(tuple(f.substitute(mapping) for f in self.operands))

    def evaluate(
        self,
        getobj: Callable[[str], int],
        params: Mapping[str, int] | None = None,
        temps: Mapping[str, int] | None = None,
    ) -> bool:
        return all(f.evaluate(getobj, params, temps) for f in self.operands)

    def to_nnf(self, negate: bool = False) -> Formula:
        parts = tuple(f.to_nnf(negate) for f in self.operands)
        return Or(parts) if negate else And(parts)

    def pretty(self) -> str:
        if not self.operands:
            return "true"
        return "(" + " and ".join(f.pretty() for f in self.operands) + ")"


@dataclass(frozen=True)
class Or(Formula):
    """N-ary disjunction."""

    operands: tuple[Formula, ...]

    def children(self) -> tuple[Formula, ...]:
        return self.operands

    def substitute(self, mapping: Mapping[Term, Term]) -> Formula:
        return Or(tuple(f.substitute(mapping) for f in self.operands))

    def evaluate(
        self,
        getobj: Callable[[str], int],
        params: Mapping[str, int] | None = None,
        temps: Mapping[str, int] | None = None,
    ) -> bool:
        return any(f.evaluate(getobj, params, temps) for f in self.operands)

    def to_nnf(self, negate: bool = False) -> Formula:
        parts = tuple(f.to_nnf(negate) for f in self.operands)
        return And(parts) if negate else Or(parts)

    def pretty(self) -> str:
        if not self.operands:
            return "false"
        return "(" + " or ".join(f.pretty() for f in self.operands) + ")"


@dataclass(frozen=True)
class Not(Formula):
    """Logical negation."""

    operand: Formula

    def children(self) -> tuple[Formula, ...]:
        return (self.operand,)

    def substitute(self, mapping: Mapping[Term, Term]) -> Formula:
        return Not(self.operand.substitute(mapping))

    def evaluate(
        self,
        getobj: Callable[[str], int],
        params: Mapping[str, int] | None = None,
        temps: Mapping[str, int] | None = None,
    ) -> bool:
        return not self.operand.evaluate(getobj, params, temps)

    def to_nnf(self, negate: bool = False) -> Formula:
        return self.operand.to_nnf(not negate)

    def pretty(self) -> str:
        return f"not ({self.operand.pretty()})"


def conj(formulas: Iterable[Formula]) -> Formula:
    """Build a flattened conjunction, short-circuiting constants."""
    flat: list[Formula] = []
    for f in formulas:
        if isinstance(f, BoolConst):
            if not f.value:
                return FalseF
            continue
        if isinstance(f, And):
            flat.extend(f.operands)
        else:
            flat.append(f)
    if not flat:
        return TrueF
    if len(flat) == 1:
        return flat[0]
    return And(tuple(flat))


def disj(formulas: Iterable[Formula]) -> Formula:
    """Build a flattened disjunction, short-circuiting constants."""
    flat: list[Formula] = []
    for f in formulas:
        if isinstance(f, BoolConst):
            if f.value:
                return TrueF
            continue
        if isinstance(f, Or):
            flat.extend(f.operands)
        else:
            flat.append(f)
    if not flat:
        return FalseF
    if len(flat) == 1:
        return flat[0]
    return Or(tuple(flat))


def conjuncts(formula: Formula) -> list[Formula]:
    """Flatten a formula into its top-level conjuncts."""
    if isinstance(formula, And):
        out: list[Formula] = []
        for f in formula.operands:
            out.extend(conjuncts(f))
        return out
    if isinstance(formula, BoolConst) and formula.value:
        return []
    return [formula]
