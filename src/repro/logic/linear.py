"""Linear normal forms over integer variables.

The treaty machinery of Section 4.2 works with *linear constraints*:

    sum_i d_i * x_i  OP  n      with OP in {<, <=, =}

This module provides ``LinearExpr`` (an integer-coefficient linear
combination over arbitrary hashable variable keys) and
``LinearConstraint`` (a normalized comparison of a linear expression
against an integer bound), together with the lowering from the term
language of :mod:`repro.logic.terms`.

Variable keys are deliberately generic: the analysis uses term leaves
(``ObjT``), while the treaty optimizer mixes in configuration
variables (:class:`repro.treaty.templates.ConfigVar`).
"""

from __future__ import annotations

from dataclasses import dataclass
from math import gcd
from typing import Callable, Hashable, Mapping

from repro.logic.formula import Cmp
from repro.logic.terms import (
    Add,
    Const,
    IndexedObjT,
    Mul,
    Neg,
    ObjT,
    ParamT,
    TempT,
    Term,
)


class LinearizationError(Exception):
    """Raised when a term or atom has no linear representation."""


@dataclass(frozen=True)
class LinearExpr:
    """``sum(coeffs[v] * v) + const`` with integer coefficients.

    Instances are immutable; arithmetic helpers return new objects.
    Zero coefficients are never stored.
    """

    coeffs: tuple[tuple[Hashable, int], ...]
    const: int = 0

    @staticmethod
    def make(coeffs: Mapping[Hashable, int], const: int = 0) -> "LinearExpr":
        items = tuple(
            sorted(((v, c) for v, c in coeffs.items() if c != 0), key=lambda kv: repr(kv[0]))
        )
        return LinearExpr(items, const)

    @staticmethod
    def constant(value: int) -> "LinearExpr":
        return LinearExpr((), value)

    @staticmethod
    def variable(var: Hashable, coeff: int = 1) -> "LinearExpr":
        if coeff == 0:
            return LinearExpr((), 0)
        return LinearExpr(((var, coeff),), 0)

    def coeff_map(self) -> dict[Hashable, int]:
        return dict(self.coeffs)

    def variables(self) -> set[Hashable]:
        return {v for v, _ in self.coeffs}

    def is_constant(self) -> bool:
        return not self.coeffs

    def __add__(self, other: "LinearExpr | int") -> "LinearExpr":
        if isinstance(other, int):
            return LinearExpr(self.coeffs, self.const + other)
        merged = self.coeff_map()
        for v, c in other.coeffs:
            merged[v] = merged.get(v, 0) + c
        return LinearExpr.make(merged, self.const + other.const)

    def __sub__(self, other: "LinearExpr | int") -> "LinearExpr":
        if isinstance(other, int):
            return LinearExpr(self.coeffs, self.const - other)
        return self + other.scaled(-1)

    def scaled(self, factor: int) -> "LinearExpr":
        if factor == 0:
            return LinearExpr((), 0)
        return LinearExpr(
            tuple((v, c * factor) for v, c in self.coeffs), self.const * factor
        )

    def evaluate(self, assignment: Mapping[Hashable, int]) -> int:
        total = self.const
        for v, c in self.coeffs:
            total += c * assignment[v]
        return total

    def pretty(self) -> str:
        parts: list[str] = []
        for v, c in self.coeffs:
            name = v.pretty() if isinstance(v, Term) else str(v)
            if c == 1:
                parts.append(name)
            elif c == -1:
                parts.append(f"-{name}")
            else:
                parts.append(f"{c}*{name}")
        if self.const or not parts:
            parts.append(str(self.const))
        return " + ".join(parts).replace("+ -", "- ")

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.pretty()


@dataclass(frozen=True)
class LinearConstraint:
    """A normalized linear constraint ``expr OP bound``.

    After normalization ``op`` is either ``"<="`` or ``"="`` and the
    expression carries no constant part (it is folded into ``bound``).
    Over the integers, strict ``<`` is normalized to ``<= bound - 1``
    and ``>=`` / ``>`` are normalized by negating coefficients.
    """

    expr: LinearExpr
    op: str
    bound: int

    @staticmethod
    def make(expr: LinearExpr, op: str, bound: int) -> "LinearConstraint":
        # Fold the expression's constant into the bound.
        bound = bound - expr.const
        expr = LinearExpr(expr.coeffs, 0)
        if op == "<":
            op, bound = "<=", bound - 1
        elif op == ">":
            # e > b  <=>  e >= b + 1  <=>  -e <= -(b + 1)
            expr, op, bound = expr.scaled(-1), "<=", -bound - 1
        elif op == ">=":
            op, expr, bound = "<=", expr.scaled(-1), -bound
        if op not in ("<=", "="):
            raise LinearizationError(f"operator {op!r} has no linear normal form")
        return LinearConstraint(expr, op, bound)._tightened()

    def _tightened(self) -> "LinearConstraint":
        """Divide through by the gcd of the coefficients (integer tightening)."""
        if not self.expr.coeffs:
            return self
        g = 0
        for _, c in self.expr.coeffs:
            g = gcd(g, abs(c))
        if g <= 1:
            return self
        coeffs = tuple((v, c // g) for v, c in self.expr.coeffs)
        if self.op == "<=":
            bound = self.bound // g  # floor division tightens soundly
            return LinearConstraint(LinearExpr(coeffs, 0), "<=", bound)
        if self.bound % g != 0:
            # Equality whose bound is not divisible by the coefficient
            # gcd has no *integer* solution; normalize to a canonical
            # false constraint (all constraints in this system range
            # over integer-valued database objects, so this is sound,
            # and it keeps branch-and-bound from diverging on
            # unbounded relaxations of such constraints).
            return LinearConstraint(LinearExpr((), 0), "<=", -1)
        return LinearConstraint(LinearExpr(coeffs, 0), "=", self.bound // g)

    def variables(self) -> set[Hashable]:
        return self.expr.variables()

    def coeff_for(self, var: Hashable) -> int:
        for v, c in self.expr.coeffs:
            if v == var:
                return c
        return 0

    def is_trivially_true(self) -> bool:
        if self.expr.coeffs:
            return False
        return 0 <= self.bound if self.op == "<=" else self.bound == 0

    def is_trivially_false(self) -> bool:
        if self.expr.coeffs:
            return False
        return not self.is_trivially_true()

    def satisfied_by(self, assignment: Mapping[Hashable, int]) -> bool:
        value = self.expr.evaluate(assignment)
        return value <= self.bound if self.op == "<=" else value == self.bound

    def negated(self) -> "LinearConstraint":
        """Return the negation (only defined for ``<=``)."""
        if self.op != "<=":
            raise LinearizationError("cannot negate a linear equality into one constraint")
        # not(e <= b)  <=>  e >= b + 1  <=>  -e <= -(b + 1)
        return LinearConstraint.make(self.expr.scaled(-1), "<=", -(self.bound + 1))

    def pretty(self) -> str:
        return f"{self.expr.pretty()} {self.op} {self.bound}"

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.pretty()


def linear_of_term(term: Term) -> LinearExpr:
    """Lower a term to a linear expression over its leaf variables.

    Raises :class:`LinearizationError` if the term multiplies two
    non-constant subterms (non-linear arithmetic).
    """
    if isinstance(term, Const):
        return LinearExpr.constant(term.value)
    if isinstance(term, (ObjT, ParamT, TempT)):
        return LinearExpr.variable(term)
    if isinstance(term, IndexedObjT):
        grounded = term.try_ground()
        return LinearExpr.variable(grounded if grounded is not None else term)
    if isinstance(term, Neg):
        return linear_of_term(term.operand).scaled(-1)
    if isinstance(term, Add):
        return linear_of_term(term.left) + linear_of_term(term.right)
    if isinstance(term, Mul):
        left = linear_of_term(term.left)
        right = linear_of_term(term.right)
        if left.is_constant():
            return right.scaled(left.const)
        if right.is_constant():
            return left.scaled(right.const)
        raise LinearizationError(f"non-linear product: {term.pretty()}")
    raise TypeError(f"unknown term node {term!r}")


def constraints_of_cmp(atom: Cmp) -> list[LinearConstraint]:
    """Lower a comparison atom to normalized linear constraints.

    ``!=`` is non-convex and has no conjunction-of-linear-constraints
    form; callers must handle it (the Appendix C.1 preprocessing pins
    the involved variables instead).
    """
    if atom.op == "!=":
        raise LinearizationError("disequality is not linearizable")
    lhs = linear_of_term(atom.left)
    rhs = linear_of_term(atom.right)
    diff = lhs - rhs
    return [LinearConstraint.make(diff, atom.op, 0)]


def evaluate_constraints(
    constraints: list[LinearConstraint], lookup: Callable[[Hashable], int]
) -> bool:
    """Check all constraints under a variable lookup function."""
    for con in constraints:
        total = 0
        for v, c in con.expr.coeffs:
            total += c * lookup(v)
        ok = total <= con.bound if con.op == "<=" else total == con.bound
        if not ok:
            return False
    return True
