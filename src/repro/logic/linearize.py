"""Appendix C.1 preprocessing: strengthen a row formula to linear form.

Treaty generation (Section 4.2) requires the chosen symbolic-table
formula psi to be a conjunction of linear constraints.  Arbitrary row
formulas may contain disequalities, disjunctions or non-linear
arithmetic.  Following Appendix C.1, every offending subformula theta
is replaced by its truth value on the current database ``D`` and the
variables of theta are *pinned*: the constraints ``x_i = D(x_i)`` are
added for each variable ``x_i`` appearing in theta.

The result is a (possibly stronger) conjunction of linear constraints
that still holds on ``D``, which is all that correctness requires --
enforcing a stronger treaty can only cause extra synchronization,
never incorrect execution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

from repro.logic.formula import BoolConst, Cmp, Formula, conjuncts
from repro.logic.linear import (
    LinearConstraint,
    LinearExpr,
    LinearizationError,
    constraints_of_cmp,
)
from repro.logic.terms import Const, ObjT, ParamT, Term


@dataclass
class LinearizedTreaty:
    """Outcome of preprocessing: linear constraints plus pinning info.

    ``constraints`` is the conjunction of linear constraints over
    ground database objects.  ``pinned`` records the objects whose
    values were frozen because they appeared in non-linearizable
    subformulas (these yield equality constraints already included in
    ``constraints``).
    """

    constraints: list[LinearConstraint]
    pinned: set[ObjT] = field(default_factory=set)

    def holds_on(self, getobj: Callable[[str], int]) -> bool:
        for con in self.constraints:
            total = 0
            for var, coeff in con.expr.coeffs:
                if not isinstance(var, ObjT):
                    raise LinearizationError(
                        f"treaty constraint mentions non-object variable {var!r}"
                    )
                total += coeff * getobj(var.name)
            ok = total <= con.bound if con.op == "<=" else total == con.bound
            if not ok:
                return False
        return True

    def pretty(self) -> str:
        return " and ".join(c.pretty() for c in self.constraints) or "true"


def _instantiate_params(formula: Formula, params: Mapping[str, int]) -> Formula:
    mapping: dict[Term, Term] = {ParamT(name): Const(value) for name, value in params.items()}
    return formula.substitute(mapping)


def linearize_for_treaty(
    formula: Formula,
    getobj: Callable[[str], int],
    params: Mapping[str, int] | None = None,
) -> LinearizedTreaty:
    """Preprocess ``formula`` into a conjunction of linear constraints.

    ``getobj`` resolves ground database object values on the current
    database ``D``; it is consulted both to check that the formula
    holds on ``D`` (a precondition: psi was selected as the row
    matching ``D``) and to pin variables of non-linearizable parts.

    Raises ``ValueError`` if the formula does not hold on ``D``.
    """
    if params:
        formula = _instantiate_params(formula, params)
    if not formula.evaluate(getobj):
        raise ValueError(
            f"formula {formula.pretty()} does not hold on the current database; "
            "it cannot seed a treaty (H2 would be violated)"
        )

    result = LinearizedTreaty(constraints=[])
    for part in conjuncts(formula.to_nnf()):
        _linearize_part(part, getobj, result)
    return result


def _linearize_part(
    part: Formula, getobj: Callable[[str], int], result: LinearizedTreaty
) -> None:
    if isinstance(part, BoolConst):
        if not part.value:
            raise ValueError("false conjunct in a formula that holds on D")
        return
    if isinstance(part, Cmp) and part.op != "!=":
        try:
            cons = constraints_of_cmp(part)
        except LinearizationError:
            _pin_subformula(part, getobj, result)
            return
        for con in cons:
            _require_ground_objects(con)
            if not con.is_trivially_true():
                result.constraints.append(con)
        return
    # Disequalities, residual negations, disjunctions, non-linear atoms:
    # pin every variable mentioned (Appendix C.1).
    _pin_subformula(part, getobj, result)


def _require_ground_objects(con: LinearConstraint) -> None:
    for var in con.variables():
        if not isinstance(var, ObjT):
            raise LinearizationError(
                f"treaty constraint mentions unresolved variable {var!r}; "
                "instantiate parameters and eliminate temporaries first"
            )


def _pin_subformula(
    part: Formula, getobj: Callable[[str], int], result: LinearizedTreaty
) -> None:
    if not part.evaluate(getobj):
        raise ValueError(
            f"subformula {part.pretty()} is false on the current database"
        )
    objs = set(part.objects())
    for indexed in part.indexed_objects():
        grounded = indexed.try_ground()
        if grounded is None:
            raise LinearizationError(
                f"cannot pin parameterized object {indexed.pretty()}"
            )
        objs.add(grounded)
    for obj in sorted(objs, key=lambda o: o.name):
        result.pinned.add(obj)
        value = getobj(obj.name)
        result.constraints.append(
            LinearConstraint.make(LinearExpr.variable(obj), "=", value)
        )
