"""Light-weight logical simplification.

Symbolic table construction (Figure 6) accumulates branch guards by
conjunction, which produces formulas with redundant or contradictory
atoms (e.g. ``x < 10 and x < 20``, or ``x < 10 and x >= 10``).  This
module performs sound simplification:

- constant folding inside atoms,
- removal of trivially true conjuncts / trivially false disjuncts,
- detection of contradictory pairs of *linear* atoms over the same
  expression (yielding ``false`` rows that the analysis prunes),
- subsumption between linear atoms over the same expression.

Simplification never changes the semantics of a formula; it only makes
symbolic tables smaller, which matters because the joint table of a
transaction set is a cross product (Section 2.2).
"""

from __future__ import annotations

from typing import Hashable

from repro.logic.formula import (
    And,
    BoolConst,
    Cmp,
    FalseF,
    Formula,
    Not,
    Or,
    TrueF,
    conj,
    disj,
)
from repro.logic.linear import LinearConstraint, LinearizationError, constraints_of_cmp


def _atom_truth(atom: Cmp) -> bool | None:
    """Evaluate an atom if both sides are constant, else None."""
    folded = atom.folded()
    from repro.logic.terms import Const

    if isinstance(folded.left, Const) and isinstance(folded.right, Const):
        return folded.evaluate(lambda _name: 0)
    return None


class _Bounds:
    """Per-expression integer bounds accumulated from <= / = atoms.

    Tracks ``lo <= expr <= hi`` plus an optional exact value, keyed by
    the normalized coefficient vector of the expression.  Detects
    contradictions between linear atoms of a conjunction.
    """

    def __init__(self) -> None:
        self.upper: dict[tuple[tuple[Hashable, int], ...], int] = {}
        self.exact: dict[tuple[tuple[Hashable, int], ...], int] = {}

    def add(self, con: LinearConstraint) -> bool:
        """Record a constraint; return False on contradiction."""
        key = con.expr.coeffs
        neg_key = tuple((v, -c) for v, c in key)
        if con.op == "=":
            if key in self.exact and self.exact[key] != con.bound:
                return False
            self.exact[key] = con.bound
            if key in self.upper and self.upper[key] < con.bound:
                return False
            if neg_key in self.upper and self.upper[neg_key] < -con.bound:
                return False
            return True
        # op == "<="; an upper bound on key is a lower bound on neg_key.
        prev = self.upper.get(key)
        if prev is None or con.bound < prev:
            self.upper[key] = con.bound
        if key in self.exact and self.exact[key] > self.upper[key]:
            return False
        if neg_key in self.exact and -self.exact[neg_key] > self.upper[key]:
            return False
        lower_on_key = self.upper.get(neg_key)
        if lower_on_key is not None and -lower_on_key > self.upper[key]:
            return False
        return True

    def is_redundant(self, con: LinearConstraint) -> bool:
        """True if an already-recorded constraint implies this one."""
        key = con.expr.coeffs
        if con.op == "=":
            return self.exact.get(key) == con.bound
        if key in self.exact:
            return self.exact[key] <= con.bound
        prev = self.upper.get(key)
        return prev is not None and prev <= con.bound


def simplify_formula(formula: Formula) -> Formula:
    """Return a simpler formula equivalent to the input."""
    nnf = formula.to_nnf()
    return _simplify_nnf(nnf)


def _simplify_nnf(formula: Formula) -> Formula:
    if isinstance(formula, BoolConst):
        return formula
    if isinstance(formula, Cmp):
        truth = _atom_truth(formula)
        if truth is True:
            return TrueF
        if truth is False:
            return FalseF
        return formula.folded()
    if isinstance(formula, Not):
        # NNF guarantees Not only wraps atoms we could not negate; keep.
        inner = _simplify_nnf(formula.operand)
        if isinstance(inner, BoolConst):
            return BoolConst(not inner.value)
        return Not(inner)
    if isinstance(formula, Or):
        parts = [_simplify_nnf(f) for f in formula.operands]
        return disj(parts)
    if isinstance(formula, And):
        parts = [_simplify_nnf(f) for f in formula.operands]
        flat = conj(parts)
        if not isinstance(flat, And):
            return flat
        return _prune_conjunction(flat)
    raise TypeError(f"unknown formula node {formula!r}")


def _prune_conjunction(formula: And) -> Formula:
    """Drop linear conjuncts subsumed by earlier ones; detect conflicts.

    Two passes: the first collects the tightest bounds per expression,
    the second keeps only non-redundant atoms.  Non-linear conjuncts
    pass through untouched.
    """
    bounds = _Bounds()
    lowered: list[tuple[Formula, list[LinearConstraint] | None]] = []
    for part in formula.operands:
        cons: list[LinearConstraint] | None = None
        if isinstance(part, Cmp):
            try:
                cons = constraints_of_cmp(part)
            except LinearizationError:
                cons = None
        lowered.append((part, cons))
        if cons is not None:
            for con in cons:
                if con.is_trivially_false():
                    return FalseF
                if not con.is_trivially_true() and not bounds.add(con):
                    return FalseF

    def dominated(con: LinearConstraint) -> bool:
        """Strictly implied by some *other* atom's final bound."""
        key = con.expr.coeffs
        neg_key = tuple((v, -c) for v, c in key)
        if con.op == "<=":
            if key in bounds.exact and bounds.exact[key] <= con.bound:
                return True
            if neg_key in bounds.exact and -bounds.exact[neg_key] <= con.bound:
                return True
            return bounds.upper.get(key, con.bound) < con.bound
        return False

    keep: list[Formula] = []
    emitted = _Bounds()
    for part, cons in lowered:
        if cons is None:
            keep.append(part)
            continue
        useful = [c for c in cons if not c.is_trivially_true()]
        if not useful:
            continue
        if all(dominated(c) or emitted.is_redundant(c) for c in useful):
            continue
        for c in useful:
            emitted.add(c)
        keep.append(part)
    return conj(keep)
