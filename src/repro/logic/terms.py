"""Integer terms over database objects, parameters and temporaries.

Terms are the arithmetic layer shared by the transaction language ``L``
(Section 2.3, Figure 5 of the paper) and the formula language used in
symbolic tables.  A term is built from:

- integer constants (``Const``),
- references to ground database objects (``ObjT``),
- references to *parameterized* database objects (``IndexedObjT``) --
  the compressed array representation of Section 5.1,
- transaction parameters (``ParamT``),
- temporary program variables (``TempT``),
- addition, multiplication and negation.

All nodes are immutable and hashable so they can be used directly as
keys in substitution maps.  Construction helpers normalize nothing; the
linear lowering in :mod:`repro.logic.linear` performs normalization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Mapping


def ground_name(base: str, indices: tuple[int, ...]) -> str:
    """Return the canonical ground object name for an array slot.

    The storage layer and the analysis agree on this encoding: the
    array slot ``a(3, 7)`` is the database object named ``a[3,7]``.
    """
    return f"{base}[{','.join(str(i) for i in indices)}]"


def parse_ground_name(name: str) -> tuple[str, tuple[int, ...]] | None:
    """Invert :func:`ground_name`; return None for plain scalar names.

    Needed by the write-aliasing analysis: a ground object ``a[3]``
    may alias the parameterized reference ``a[@p]`` when ``p = 3``.
    """
    if not name.endswith("]"):
        return None
    open_idx = name.find("[")
    if open_idx <= 0:
        return None
    base = name[:open_idx]
    inner = name[open_idx + 1 : -1]
    try:
        indices = tuple(int(part) for part in inner.split(","))
    except ValueError:
        return None
    return base, indices


class Term:
    """Base class for integer terms."""

    __slots__ = ()

    # -- construction sugar -------------------------------------------------

    def __add__(self, other: "Term | int") -> "Term":
        return Add(self, _coerce(other))

    def __radd__(self, other: "Term | int") -> "Term":
        return Add(_coerce(other), self)

    def __sub__(self, other: "Term | int") -> "Term":
        return Add(self, Neg(_coerce(other)))

    def __rsub__(self, other: "Term | int") -> "Term":
        return Add(_coerce(other), Neg(self))

    def __mul__(self, other: "Term | int") -> "Term":
        return Mul(self, _coerce(other))

    def __rmul__(self, other: "Term | int") -> "Term":
        return Mul(_coerce(other), self)

    def __neg__(self) -> "Term":
        return Neg(self)

    # -- traversal ----------------------------------------------------------

    def children(self) -> tuple["Term", ...]:
        return ()

    def walk(self) -> Iterator["Term"]:
        """Yield this node and all descendants, pre-order."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(node.children())

    # -- queries ------------------------------------------------------------

    def objects(self) -> set["ObjT"]:
        """All ground object references in the term."""
        return {n for n in self.walk() if isinstance(n, ObjT)}

    def indexed_objects(self) -> set["IndexedObjT"]:
        """All parameterized object references in the term."""
        return {n for n in self.walk() if isinstance(n, IndexedObjT)}

    def params(self) -> set["ParamT"]:
        return {n for n in self.walk() if isinstance(n, ParamT)}

    def temps(self) -> set["TempT"]:
        return {n for n in self.walk() if isinstance(n, TempT)}

    def is_ground(self) -> bool:
        """True if the term mentions no temporaries or parameters."""
        return not any(isinstance(n, (TempT, ParamT)) for n in self.walk())

    # -- substitution and evaluation -----------------------------------------

    def substitute(self, mapping: Mapping["Term", "Term"]) -> "Term":
        """Replace exact syntactic occurrences of the mapping's keys.

        Keys may be any leaf-like node (``ObjT``, ``IndexedObjT``,
        ``ParamT``, ``TempT``).  Substitution proceeds bottom-up so an
        ``IndexedObjT`` whose *index* mentions a substituted variable is
        first rewritten and then looked up in the mapping.
        """
        raise NotImplementedError

    def evaluate(
        self,
        getobj: Callable[[str], int],
        params: Mapping[str, int] | None = None,
        temps: Mapping[str, int] | None = None,
    ) -> int:
        """Evaluate the term to an integer.

        ``getobj`` resolves ground object names to values; parameters
        and temporaries are looked up in the given mappings.
        """
        raise NotImplementedError

    def pretty(self) -> str:
        raise NotImplementedError

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.pretty()


def _coerce(value: "Term | int") -> Term:
    if isinstance(value, Term):
        return value
    if isinstance(value, int):
        return Const(value)
    raise TypeError(f"cannot coerce {value!r} to a Term")


@dataclass(frozen=True)
class Const(Term):
    """An integer literal."""

    value: int

    def substitute(self, mapping: Mapping[Term, Term]) -> Term:
        return self

    def evaluate(
        self,
        getobj: Callable[[str], int],
        params: Mapping[str, int] | None = None,
        temps: Mapping[str, int] | None = None,
    ) -> int:
        return self.value

    def pretty(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class ObjT(Term):
    """A reference to a ground database object (``read(x)`` in L)."""

    name: str

    def substitute(self, mapping: Mapping[Term, Term]) -> Term:
        return mapping.get(self, self)

    def evaluate(
        self,
        getobj: Callable[[str], int],
        params: Mapping[str, int] | None = None,
        temps: Mapping[str, int] | None = None,
    ) -> int:
        return getobj(self.name)

    def pretty(self) -> str:
        return self.name


@dataclass(frozen=True)
class IndexedObjT(Term):
    """A parameterized database object reference such as ``qty[@item]``.

    This is the compressed form described in Section 5.1: rather than
    expanding a dynamic array access into the nested conditionals of
    Appendix A, the access stays symbolic in both partially evaluated
    transactions and formulas.  When every index is a constant the
    reference is equivalent to ``ObjT(ground_name(base, indices))``.
    """

    base: str
    index: tuple[Term, ...]

    def children(self) -> tuple[Term, ...]:
        return self.index

    def substitute(self, mapping: Mapping[Term, Term]) -> Term:
        new_index = tuple(ix.substitute(mapping) for ix in self.index)
        candidate = IndexedObjT(self.base, new_index)
        if candidate in mapping:
            return mapping[candidate]
        grounded = candidate.try_ground()
        if grounded is not None and grounded in mapping:
            return mapping[grounded]
        return candidate

    def try_ground(self) -> ObjT | None:
        """Return the equivalent ``ObjT`` if all indices are constants."""
        values = []
        for ix in self.index:
            if not isinstance(ix, Const):
                return None
            values.append(ix.value)
        return ObjT(ground_name(self.base, tuple(values)))

    def evaluate(
        self,
        getobj: Callable[[str], int],
        params: Mapping[str, int] | None = None,
        temps: Mapping[str, int] | None = None,
    ) -> int:
        indices = tuple(ix.evaluate(getobj, params, temps) for ix in self.index)
        return getobj(ground_name(self.base, indices))

    def pretty(self) -> str:
        return f"{self.base}[{', '.join(ix.pretty() for ix in self.index)}]"


@dataclass(frozen=True)
class ParamT(Term):
    """A transaction parameter (``p`` in Figure 5)."""

    name: str

    def substitute(self, mapping: Mapping[Term, Term]) -> Term:
        return mapping.get(self, self)

    def evaluate(
        self,
        getobj: Callable[[str], int],
        params: Mapping[str, int] | None = None,
        temps: Mapping[str, int] | None = None,
    ) -> int:
        if params is None or self.name not in params:
            raise KeyError(f"unbound parameter @{self.name}")
        return params[self.name]

    def pretty(self) -> str:
        return f"@{self.name}"


@dataclass(frozen=True)
class TempT(Term):
    """A temporary program variable (``x^`` in the paper)."""

    name: str

    def substitute(self, mapping: Mapping[Term, Term]) -> Term:
        return mapping.get(self, self)

    def evaluate(
        self,
        getobj: Callable[[str], int],
        params: Mapping[str, int] | None = None,
        temps: Mapping[str, int] | None = None,
    ) -> int:
        if temps is None or self.name not in temps:
            raise KeyError(f"unbound temporary {self.name}")
        return temps[self.name]

    def pretty(self) -> str:
        return self.name


@dataclass(frozen=True)
class Add(Term):
    """Binary addition."""

    left: Term
    right: Term

    def children(self) -> tuple[Term, ...]:
        return (self.left, self.right)

    def substitute(self, mapping: Mapping[Term, Term]) -> Term:
        return Add(self.left.substitute(mapping), self.right.substitute(mapping))

    def evaluate(
        self,
        getobj: Callable[[str], int],
        params: Mapping[str, int] | None = None,
        temps: Mapping[str, int] | None = None,
    ) -> int:
        return self.left.evaluate(getobj, params, temps) + self.right.evaluate(
            getobj, params, temps
        )

    def pretty(self) -> str:
        return f"({self.left.pretty()} + {self.right.pretty()})"


@dataclass(frozen=True)
class Mul(Term):
    """Binary multiplication."""

    left: Term
    right: Term

    def children(self) -> tuple[Term, ...]:
        return (self.left, self.right)

    def substitute(self, mapping: Mapping[Term, Term]) -> Term:
        return Mul(self.left.substitute(mapping), self.right.substitute(mapping))

    def evaluate(
        self,
        getobj: Callable[[str], int],
        params: Mapping[str, int] | None = None,
        temps: Mapping[str, int] | None = None,
    ) -> int:
        return self.left.evaluate(getobj, params, temps) * self.right.evaluate(
            getobj, params, temps
        )

    def pretty(self) -> str:
        return f"({self.left.pretty()} * {self.right.pretty()})"


@dataclass(frozen=True)
class Neg(Term):
    """Unary negation."""

    operand: Term

    def children(self) -> tuple[Term, ...]:
        return (self.operand,)

    def substitute(self, mapping: Mapping[Term, Term]) -> Term:
        return Neg(self.operand.substitute(mapping))

    def evaluate(
        self,
        getobj: Callable[[str], int],
        params: Mapping[str, int] | None = None,
        temps: Mapping[str, int] | None = None,
    ) -> int:
        return -self.operand.evaluate(getobj, params, temps)

    def pretty(self) -> str:
        return f"(-{self.operand.pretty()})"


def fold_constants(term: Term) -> Term:
    """Recursively fold constant subterms (``2 + 3`` becomes ``5``).

    Only sound rewrites are applied; the result is semantically equal to
    the input on every environment.
    """
    if isinstance(term, (Const, ObjT, ParamT, TempT)):
        return term
    if isinstance(term, IndexedObjT):
        folded = IndexedObjT(term.base, tuple(fold_constants(ix) for ix in term.index))
        grounded = folded.try_ground()
        return grounded if grounded is not None else folded
    if isinstance(term, Neg):
        inner = fold_constants(term.operand)
        if isinstance(inner, Const):
            return Const(-inner.value)
        if isinstance(inner, Neg):
            return inner.operand
        return Neg(inner)
    if isinstance(term, Add):
        left = fold_constants(term.left)
        right = fold_constants(term.right)
        if isinstance(left, Const) and isinstance(right, Const):
            return Const(left.value + right.value)
        if isinstance(left, Const) and left.value == 0:
            return right
        if isinstance(right, Const) and right.value == 0:
            return left
        return Add(left, right)
    if isinstance(term, Mul):
        left = fold_constants(term.left)
        right = fold_constants(term.right)
        if isinstance(left, Const) and isinstance(right, Const):
            return Const(left.value * right.value)
        if isinstance(left, Const) and left.value == 1:
            return right
        if isinstance(right, Const) and right.value == 1:
            return left
        if (isinstance(left, Const) and left.value == 0) or (
            isinstance(right, Const) and right.value == 0
        ):
            return Const(0)
        return Mul(left, right)
    raise TypeError(f"unknown term node {term!r}")
