"""The homeostasis protocol runtime and baselines (Sections 3 and 5).

- :mod:`repro.protocol.messages` -- the typed inter-site message
  vocabulary plus :class:`MessageStats`, a derived view over a
  transport trace;
- :mod:`repro.protocol.transport` -- the loopback message fabric:
  every message the distributed deployment would send is recorded
  with its endpoints, grouped per negotiation, and priced per edge by
  the simulator;
- :mod:`repro.protocol.site` -- a site server: storage engine,
  snapshots of remote objects, stored-procedure execution with the
  pre-commit local treaty check; also the transport endpoint;
- :mod:`repro.protocol.catalog` -- stored procedures compiled from
  symbolic tables (Section 5.1);
- :mod:`repro.protocol.remote_writes` -- the Appendix B transform
  eliminating remote writes via per-site delta objects;
- :mod:`repro.protocol.homeostasis` -- the coordinator implementing
  the round lifecycle (treaty generation, normal execution,
  participant-scoped cleanup);
- :mod:`repro.protocol.concurrent` -- the concurrent cleanup runtime:
  windows of interleaved submissions, racing violators resolved by a
  real vote phase, and parallel negotiations over disjoint closures;
- :mod:`repro.protocol.faults` -- deterministic fault injection for
  the transport: message drop/delay, site crash-stops at message
  indices, partitions over edge sets -- all surfacing as timeouts
  rather than hangs;
- :mod:`repro.protocol.baselines` -- LOCAL, 2PC and OPT
  (demarcation-style) execution modes from Section 6.
"""

from repro.protocol.messages import (
    CleanupRun,
    Decision,
    Message,
    MessageStats,
    Prepare,
    RebalanceRequest,
    Rejoin,
    SyncBroadcast,
    TreatyInstall,
    Vote,
    VoteReply,
)
from repro.protocol.transport import (
    NegotiationTrace,
    Transport,
    TransportError,
    UnreachableError,
)
from repro.protocol.catalog import StoredProcedure, StoredProcedureCatalog
from repro.protocol.faults import FaultPlan, Partition
from repro.protocol.site import SiteResult, SiteServer
from repro.protocol.remote_writes import ReplicationSpec, transform_for_site
from repro.protocol.homeostasis import (
    ClusterResult,
    HomeostasisCluster,
    SyncRound,
    TreatyStrategy,
    Unavailable,
)
from repro.protocol.concurrent import (
    ConcurrentCluster,
    GroupOutcome,
    WindowOutcome,
    WindowResult,
)
from repro.protocol.baselines import LocalCluster, TwoPhaseCommitCluster

__all__ = [
    "CleanupRun",
    "ClusterResult",
    "ConcurrentCluster",
    "Decision",
    "FaultPlan",
    "GroupOutcome",
    "HomeostasisCluster",
    "LocalCluster",
    "Message",
    "MessageStats",
    "NegotiationTrace",
    "Partition",
    "Prepare",
    "RebalanceRequest",
    "Rejoin",
    "ReplicationSpec",
    "SiteResult",
    "SiteServer",
    "StoredProcedure",
    "StoredProcedureCatalog",
    "SyncBroadcast",
    "SyncRound",
    "Transport",
    "TransportError",
    "TreatyInstall",
    "TreatyStrategy",
    "TwoPhaseCommitCluster",
    "Unavailable",
    "UnreachableError",
    "Vote",
    "VoteReply",
    "WindowOutcome",
    "WindowResult",
    "transform_for_site",
]
