"""The homeostasis protocol runtime and baselines (Sections 3 and 5).

- :mod:`repro.protocol.messages` -- message vocabulary (counted by
  the kernel, priced by the simulator);
- :mod:`repro.protocol.site` -- a site server: storage engine,
  snapshots of remote objects, stored-procedure execution with the
  pre-commit local treaty check;
- :mod:`repro.protocol.catalog` -- stored procedures compiled from
  symbolic tables (Section 5.1);
- :mod:`repro.protocol.remote_writes` -- the Appendix B transform
  eliminating remote writes via per-site delta objects;
- :mod:`repro.protocol.homeostasis` -- the coordinator implementing
  the round lifecycle (treaty generation, normal execution, cleanup);
- :mod:`repro.protocol.baselines` -- LOCAL, 2PC and OPT
  (demarcation-style) execution modes from Section 6.
"""

from repro.protocol.messages import MessageStats
from repro.protocol.catalog import StoredProcedure, StoredProcedureCatalog
from repro.protocol.site import SiteResult, SiteServer
from repro.protocol.remote_writes import ReplicationSpec, transform_for_site
from repro.protocol.homeostasis import (
    ClusterResult,
    HomeostasisCluster,
    TreatyStrategy,
)
from repro.protocol.baselines import LocalCluster, TwoPhaseCommitCluster

__all__ = [
    "ClusterResult",
    "HomeostasisCluster",
    "LocalCluster",
    "MessageStats",
    "ReplicationSpec",
    "SiteResult",
    "SiteServer",
    "StoredProcedure",
    "StoredProcedureCatalog",
    "TreatyStrategy",
    "TwoPhaseCommitCluster",
    "transform_for_site",
]
