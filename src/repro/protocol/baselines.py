"""Baseline execution modes from the evaluation (Section 6.1).

- **LOCAL**: "each replica executes the transactions locally without
  any communication; thus, database consistency across replicas is
  not guaranteed."  A bare-bones performance floor.
- **2PC**: classical strongly-consistent geo-replication -- every
  transaction executes at its origin replica and synchronously
  propagates its write set to all replicas inside a two-phase commit
  (two message rounds per transaction).
- **OPT** (the hand-crafted demarcation-protocol variant) is not a
  separate class: it is :class:`~repro.protocol.homeostasis.
  HomeostasisCluster` with the ``equal-split`` treaty strategy, which
  "splits and allocates the remaining stock level of each item
  equally among the replicas" at each synchronization point.

Both classes expose the same ``submit`` API as the homeostasis
cluster so experiment harnesses can swap modes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.lang.ast import Transaction
from repro.lang.interp import ExecContext, execute
from repro.protocol.homeostasis import ClusterResult, ClusterStats, ProtocolError
from repro.protocol.messages import Decision, Message, Prepare
from repro.protocol.transport import Transport
from repro.storage.engine import LocalEngine


@dataclass
class _Replica:
    """A full-copy replica; a transport endpoint for 2PC traffic."""

    engine: LocalEngine = field(default_factory=LocalEngine)

    def handle(self, msg: Message):
        if isinstance(msg, Prepare):
            for name, value in msg.updates:
                self.engine.poke(name, value)
            return True  # vote yes
        if isinstance(msg, Decision):
            return None
        raise TypeError(f"replica: unhandled message {msg!r}")


class _ReplicatedBase:
    """Shared plumbing: one full copy per replica, transactions run as
    complete programs at their home replica."""

    def __init__(
        self,
        site_ids: Sequence[int],
        initial_db: Mapping[str, int],
        transactions: Mapping[str, Transaction],
        tx_home: Mapping[str, int],
        arrays: Mapping[str, tuple[int, ...]] | None = None,
    ) -> None:
        self.site_ids = tuple(site_ids)
        self.transactions = dict(transactions)
        self.tx_home = dict(tx_home)
        self.arrays = dict(arrays or {})
        self.transport = Transport()
        self.stats = ClusterStats(transport=self.transport)
        self.replicas: dict[int, _Replica] = {}
        for sid in self.site_ids:
            replica = _Replica()
            replica.engine.store.apply(initial_db)
            self.replicas[sid] = replica
            self.transport.register(sid, replica)

    def _run_at(self, sid: int, tx_name: str, params: Mapping[str, int] | None):
        tx = self.transactions[tx_name]
        engine = self.replicas[sid].engine
        txn = engine.begin()
        try:
            ctx = ExecContext(
                getobj=txn.read,
                setobj=txn.write,
                emit=txn.emit,
                params=dict(params or {}),
                arrays=self.arrays,
            )
            execute(tx.body, ctx)
            log = tuple(txn.log)
            written = set(txn.written)
            txn.commit()
            return log, written
        except BaseException:
            if txn.active:
                txn.abort()
            raise

    def _origin(self, tx_name: str) -> int:
        if tx_name not in self.tx_home:
            raise ProtocolError(f"unknown transaction {tx_name!r}")
        return self.tx_home[tx_name]


class LocalCluster(_ReplicatedBase):
    """LOCAL mode: execute at the origin replica, never communicate."""

    def submit(self, tx_name: str, params: Mapping[str, int] | None = None) -> ClusterResult:
        origin = self._origin(tx_name)
        self.stats.submitted += 1
        log, _written = self._run_at(origin, tx_name, params)
        self.stats.committed_local += 1
        return ClusterResult(log=log, site=origin, synced=False)

    def replica_state(self, sid: int) -> dict[str, int]:
        return self.replicas[sid].engine.store.snapshot()


class TwoPhaseCommitCluster(_ReplicatedBase):
    """2PC mode: synchronous write-set replication on every commit."""

    def submit(self, tx_name: str, params: Mapping[str, int] | None = None) -> ClusterResult:
        origin = self._origin(tx_name)
        self.stats.submitted += 1
        log, written = self._run_at(origin, tx_name, params)
        # Phase one + two across all replicas; the write set ships with
        # the prepare messages (ROWA replication).
        origin_engine = self.replicas[origin].engine
        payload = tuple(
            sorted((name, origin_engine.peek(name)) for name in written)
        )
        with self.transport.negotiation("2pc", origin):
            for sid in self.site_ids:
                if sid != origin:
                    self.transport.send(Prepare(src=origin, dst=sid, updates=payload))
            for sid in self.site_ids:
                if sid != origin:
                    self.transport.send(Decision(src=origin, dst=sid, commit=True))
        self.stats.negotiations += 1  # every transaction coordinates
        return ClusterResult(
            log=log, site=origin, synced=True, participants=tuple(self.site_ids)
        )

    def replica_state(self, sid: int) -> dict[str, int]:
        return self.replicas[sid].engine.store.snapshot()
