"""Baseline execution modes from the evaluation (Section 6.1).

- **LOCAL**: "each replica executes the transactions locally without
  any communication; thus, database consistency across replicas is
  not guaranteed."  A bare-bones performance floor.
- **2PC**: classical strongly-consistent geo-replication -- every
  transaction executes at its origin replica and synchronously
  propagates its write set to all replicas inside a two-phase commit
  (two message rounds per transaction).
- **OPT** (the hand-crafted demarcation-protocol variant) is not a
  separate class: it is :class:`~repro.protocol.homeostasis.
  HomeostasisCluster` with the ``equal-split`` treaty strategy, which
  "splits and allocates the remaining stock level of each item
  equally among the replicas" at each synchronization point.

Both classes expose the same ``submit`` API as the homeostasis
cluster so experiment harnesses can swap modes.

Under faults the 2PC baseline exhibits exactly the blocking behavior
Gray & Lamport's *Consensus on Transaction Commit* ascribes to it:
every commit needs every replica, so while any replica is crashed or
partitioned away **no** transaction can commit anywhere -- ``submit``
raises :class:`~repro.protocol.homeostasis.Unavailable` (after
aborting the local execution cleanly; the commit is deferred until
the cohort votes arrive, so an unreachable cohort leaves no partial
state).  This is the availability counterpoint the ``run_faults``
experiment measures against homeostasis, where only closures touching
the crashed site block.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.lang.ast import Transaction
from repro.lang.interp import ExecContext, execute
from repro.protocol.homeostasis import (
    ClusterResult,
    ClusterStats,
    ProtocolError,
    Unavailable,
)
from repro.protocol.messages import Decision, Message, Prepare
from repro.protocol.transport import Transport, UnreachableError
from repro.storage.engine import LocalEngine


@dataclass
class _Replica:
    """A full-copy replica; a transport endpoint for 2PC traffic.

    Prepared write sets are **staged** and only applied when the
    commit decision arrives: an aborted 2PC round (unreachable cohort
    elsewhere in the cluster) must leave this replica exactly as it
    was, and a crash while prepared loses only the staged set -- which
    recovery's snapshot catch-up re-fetches from a live peer.
    """

    engine: LocalEngine = field(default_factory=LocalEngine)
    _staged: tuple[tuple[str, int], ...] | None = None

    def handle(self, msg: Message):
        if isinstance(msg, Prepare):
            self._staged = msg.updates
            return True  # vote yes
        if isinstance(msg, Decision):
            if msg.commit and self._staged is not None:
                for name, value in self._staged:
                    self.engine.poke(name, value)
            self._staged = None
            return None
        raise TypeError(f"replica: unhandled message {msg!r}")


class _ReplicatedBase:
    """Shared plumbing: one full copy per replica, transactions run as
    complete programs at their home replica."""

    def __init__(
        self,
        site_ids: Sequence[int],
        initial_db: Mapping[str, int],
        transactions: Mapping[str, Transaction],
        tx_home: Mapping[str, int],
        arrays: Mapping[str, tuple[int, ...]] | None = None,
    ) -> None:
        self.site_ids = tuple(site_ids)
        self.transactions = dict(transactions)
        self.tx_home = dict(tx_home)
        self.arrays = dict(arrays or {})
        self.transport = Transport()
        self.stats = ClusterStats(transport=self.transport)
        self.replicas: dict[int, _Replica] = {}
        for sid in self.site_ids:
            replica = _Replica()
            replica.engine.store.apply(initial_db)
            self.replicas[sid] = replica
            self.transport.register(sid, replica)

    def _run_at(self, sid: int, tx_name: str, params: Mapping[str, int] | None):
        tx = self.transactions[tx_name]
        engine = self.replicas[sid].engine
        txn = engine.begin()
        try:
            ctx = ExecContext(
                getobj=txn.read,
                setobj=txn.write,
                emit=txn.emit,
                params=dict(params or {}),
                arrays=self.arrays,
            )
            execute(tx.body, ctx)
            log = tuple(txn.log)
            written = set(txn.written)
            txn.commit()
            return log, written
        except BaseException:
            if txn.active:
                txn.abort()
            raise

    def _origin(self, tx_name: str) -> int:
        if tx_name not in self.tx_home:
            raise ProtocolError(f"unknown transaction {tx_name!r}")
        return self.tx_home[tx_name]

    # -- crash-stop and recovery (baseline flavour) ------------------------------

    def crash_site(self, sid: int) -> None:
        """Crash-stop one replica (transport-level; replica state is
        durable -- the baselines have no volatile protocol metadata)."""
        self.transport.crash(sid)

    def recover_site(self, sid: int) -> tuple[int, ...]:
        """Restart a crashed replica and catch it up.

        The 2PC baseline keeps consistent full copies, so recovery is
        a snapshot transfer from any live peer (there is no scoped
        treaty state to replay); a cohort that missed decisions while
        down converges here.  Returns the sites involved, for
        simulator pricing.  (``LocalCluster`` overrides this: its
        replicas diverge by design and must not be clobbered.)
        """
        self.transport.recover(sid)
        peers = [s for s in self.site_ids if s != sid and s not in self.transport.down]
        if not peers:
            return (sid,)
        donor = peers[0]
        self.replicas[sid].engine.store.apply(
            self.replicas[donor].engine.store.snapshot()
        )
        return tuple(sorted({sid, donor}))


class LocalCluster(_ReplicatedBase):
    """LOCAL mode: execute at the origin replica, never communicate."""

    def submit(self, tx_name: str, params: Mapping[str, int] | None = None) -> ClusterResult:
        origin = self._origin(tx_name)
        self.stats.submitted += 1
        if self.transport.is_down(origin):
            raise Unavailable(
                f"origin replica {origin} is down", sites=frozenset({origin})
            )
        log, _written = self._run_at(origin, tx_name, params)
        self.stats.committed_local += 1
        return ClusterResult(log=log, site=origin, synced=False)

    def recover_site(self, sid: int) -> tuple[int, ...]:
        """LOCAL replicas diverge by design, so recovery is just
        reconnection: the replica's own (durable) state is the only
        state it has, and a peer snapshot would overwrite committed
        writes the crash-stop model says must survive."""
        self.transport.recover(sid)
        return (sid,)

    def replica_state(self, sid: int) -> dict[str, int]:
        return self.replicas[sid].engine.store.snapshot()


class TwoPhaseCommitCluster(_ReplicatedBase):
    """2PC mode: synchronous write-set replication on every commit.

    The local commit is **deferred past the prepare phase**: the
    transaction executes inside an open storage transaction, cohort
    replicas are prepared, and only then does the origin commit and
    ship the decision.  An unreachable cohort therefore aborts the
    local execution cleanly (undo-journal rollback), sends abort
    decisions to the cohorts already prepared, and surfaces as
    :class:`~repro.protocol.homeostasis.Unavailable` -- the classical
    "2PC blocks while any participant is down" failure mode, with no
    replica left holding a half-committed write set.
    """

    def submit(self, tx_name: str, params: Mapping[str, int] | None = None) -> ClusterResult:
        origin = self._origin(tx_name)
        self.stats.submitted += 1
        if self.transport.is_down(origin):
            raise Unavailable(
                f"origin replica {origin} is down", sites=frozenset({origin})
            )
        cohorts = [sid for sid in self.site_ids if sid != origin]
        known_down = frozenset(c for c in cohorts if self.transport.is_down(c))
        if known_down:
            # Fast refusal: 2PC cannot commit anywhere while any
            # replica is unreachable, so don't even execute.
            raise Unavailable(
                f"2PC blocked: replica(s) {sorted(known_down)} are down",
                sites=known_down,
            )
        tx = self.transactions[tx_name]
        engine = self.replicas[origin].engine
        txn = engine.begin()
        try:
            ctx = ExecContext(
                getobj=txn.read,
                setobj=txn.write,
                emit=txn.emit,
                params=dict(params or {}),
                arrays=self.arrays,
            )
            execute(tx.body, ctx)
        except BaseException:
            if txn.active:
                txn.abort()
            raise
        # Writes are applied in place (undo-journaled), so the store
        # already holds the post-transaction values the cohort must
        # replicate; rollback restores the before-images if any cohort
        # is unreachable.
        payload = tuple(sorted((name, engine.peek(name)) for name in txn.written))
        trace = self.transport.begin("2pc", origin)
        prepared: list[int] = []
        try:
            for sid in cohorts:
                self.transport.send(Prepare(src=origin, dst=sid, updates=payload))
                prepared.append(sid)
        except UnreachableError as exc:
            txn.abort()
            for sid in prepared:
                try:
                    self.transport.send(Decision(src=origin, dst=sid, commit=False))
                except UnreachableError:
                    pass  # that cohort just died too; it recovers via catch-up
            self.transport.abort(trace)
            raise Unavailable(
                f"2PC blocked mid-prepare: {exc}", sites=frozenset({exc.dst})
            ) from exc
        for sid in cohorts:
            try:
                self.transport.send(Decision(src=origin, dst=sid, commit=True))
            except UnreachableError:
                # Unanimous votes make the decision commit regardless
                # (presumed commit); a cohort that dies between its
                # vote and the decision learns the outcome through
                # recovery's snapshot catch-up.
                pass
        log = tuple(txn.log)
        txn.commit()
        self.transport.end(trace)
        self.stats.negotiations += 1  # every transaction coordinates
        return ClusterResult(
            log=log, site=origin, synced=True, participants=tuple(self.site_ids)
        )

    def replica_state(self, sid: int) -> dict[str, int]:
        return self.replicas[sid].engine.store.snapshot()
