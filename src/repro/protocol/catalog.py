"""Stored procedures compiled from symbolic tables (Section 5.1).

"For every partially evaluated transaction in the symbolic tables
produced by the analyzer, [the protocol initializer] creates and
registers a stored procedure which executes this partially evaluated
transaction.  The stored procedure also includes checks for the
satisfaction of the corresponding treaty [...] and returns a boolean
flag indicating whether the local treaty is violated after execution."

A :class:`StoredProcedure` wraps one symbolic-table row; the
:class:`StoredProcedureCatalog` maps a transaction name to its row
procedures plus the dispatch logic (guard evaluation on the current
local state picks the unique applicable row).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

from repro.analysis.symbolic import Row, SymbolicTable
from repro.lang.ast import Com, Transaction
from repro.lang.interp import ExecContext, execute
from repro.logic.compile import FormulaCheck, compile_formula


class CatalogError(Exception):
    """Unknown transactions or non-matching guards."""


@dataclass(frozen=True)
class StoredProcedure:
    """One registered row procedure.

    The row guard is compiled to a closure at construction time, so
    per-transaction dispatch never walks the guard AST (guards are
    evaluated once per registered row on *every* submission -- they
    are as hot as the treaty check itself).
    """

    tx_name: str
    row_index: int
    row: Row
    guard_check: FormulaCheck | None = None

    def __post_init__(self) -> None:
        if self.guard_check is None:
            object.__setattr__(self, "guard_check", compile_formula(self.row.guard))

    def run(self, ctx: ExecContext) -> None:
        """Execute the partially evaluated transaction's effects."""
        execute(self.row.residual, ctx)


@dataclass
class StoredProcedureCatalog:
    """Per-site registry: transaction name -> row procedures."""

    procedures: dict[str, list[StoredProcedure]] = field(default_factory=dict)
    tables: dict[str, SymbolicTable] = field(default_factory=dict)
    transactions: dict[str, Transaction] = field(default_factory=dict)

    def register(self, table: SymbolicTable) -> None:
        name = table.transaction.name
        if name in self.procedures:
            raise CatalogError(f"transaction {name!r} already registered")
        self.tables[name] = table
        self.transactions[name] = table.transaction
        self.procedures[name] = [
            StoredProcedure(tx_name=name, row_index=i, row=row)
            for i, row in enumerate(table.rows)
        ]

    def names(self) -> list[str]:
        return sorted(self.procedures)

    def dispatch(
        self,
        tx_name: str,
        getobj: Callable[[str], int],
        params: Mapping[str, int] | None = None,
    ) -> StoredProcedure:
        """Select the unique row procedure whose guard matches (via
        the compiled guard checks)."""
        if tx_name not in self.procedures:
            raise CatalogError(f"unknown transaction {tx_name!r}")
        matches = [
            proc
            for proc in self.procedures[tx_name]
            if proc.guard_check(getobj, params)
        ]
        if len(matches) != 1:
            raise CatalogError(
                f"{tx_name}: expected exactly one applicable stored procedure, "
                f"found {len(matches)}"
            )
        return matches[0]

    def full_transaction(self, tx_name: str) -> Transaction:
        if tx_name not in self.transactions:
            raise CatalogError(f"unknown transaction {tx_name!r}")
        return self.transactions[tx_name]

    def residual_body(self, tx_name: str, row_index: int) -> Com:
        return self.procedures[tx_name][row_index].row.residual
