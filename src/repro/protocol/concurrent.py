"""The concurrent cleanup runtime: racing violators and a real vote.

:meth:`HomeostasisCluster.submit` runs one transaction at a time, so
a treaty violation is always unopposed and the Section 3.3 vote is a
trivial broadcast.  :class:`ConcurrentCluster` accepts a *window* of
interleaved submissions from multiple origin sites, which makes the
cleanup phase's election real:

1. **optimistic execution** -- every transaction in the window runs
   disconnected at its origin site; commits are final, violators
   abort and become *contenders* (several can violate in the same
   window, on the same or on overlapping objects);
2. **conflict grouping** -- each contender's participant closure is
   computed (same fixpoint as the sequential path); contenders whose
   closures overlap are merged into one conflict group, because their
   negotiations would touch common sites and cannot proceed
   independently;
3. **vote phase** -- inside each group the contenders exchange
   :class:`~repro.protocol.messages.Vote` messages carrying their
   ``(timestamp, -credit, site, txn_seq)`` priority tuples; the
   lowest tuple wins deterministically, every loser concedes with a
   :class:`~repro.protocol.messages.VoteReply`, and the winner
   announces itself to the non-contender participants of its closure.
   Under the budgeted-credit arbitration policy
   (:class:`~repro.protocol.paxos_commit.NegotiationSpec` with
   ``policy="credit"``) each lost election accrues priority credit
   that strictly improves the loser's next bid, bounding consecutive
   losses; the legacy priority policy bids zero credit everywhere and
   reproduces the historical ordering exactly;
4. **parallel negotiations** -- the winners of *disjoint* groups run
   their cleanup rounds concurrently: their transport contexts are
   all opened before any closes, and the sync / re-run / install
   phases are interleaved message-by-message (the trace's
   ``opened_at``/``closed_at`` stamps prove the rounds overlap);
5. **losers re-run** -- after the wave's treaties install, every
   loser re-executes from scratch; it either commits under the new
   treaties or contends again in the next wave (keeping its original
   timestamp, so seniority is preserved).

With adaptive reallocation enabled, *proactive treaty refreshes*
arbitrate through the same machinery: a committed transaction that
pushes a clause below the low-watermark becomes a rebalance contender
in the next election, its closure conflict-grouped with the wave's
violators.  A winning refresh runs sync + regeneration (no T' -- it
aborted nothing); a losing refresh concedes with a
:class:`~repro.protocol.messages.VoteReply` like any loser and
re-checks the watermark after the winner's treaties install (which
usually clears the breach).

Every step iterates in sorted deterministic order, so two runs over
the same window produce identical traces and states -- the seeded
arbitration order the simulator's determinism tests rely on.

Under the fault-tolerant runtime, a window degrades per conflict
group instead of wholesale: submissions whose origin site is down
fail immediately (``WindowOutcome.failed``); a group whose merged
scope contains a known-crashed site is refused before its round
opens; and a crash discovered mid-round (an
:class:`~repro.protocol.transport.UnreachableError` during the vote
or sync phase -- the abortable prefix, before any T' re-executes)
aborts that group's round cleanly while the wave's *other* groups,
whose disjoint closures cannot contain the crashed site, continue
unaffected.  Failed violators do not re-run within the window: their
negotiation needs the crashed site by definition, so the client
retries after recovery.  Losing *refresh* desires of a failed group
are dropped silently -- their transactions already committed.

Optimistic execution inherits the per-site commit check unchanged:
each origin site's :class:`~repro.protocol.site.SiteServer` decides
admission through the escrow headroom counters
(:mod:`repro.treaty.escrow`) when its installed treaty is
escrow-eligible, falling back to the compiled closure otherwise, so a
window's violators are exactly the transactions whose decrements
would drive a counter negative.  Wave installs route through
``install_treaty`` and so re-lower the counters; the sync phase's
pokes bump the engine epoch, which lazily resynchronizes any site
whose counters a concurrent wave made stale.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping, Sequence

from repro.analysis.symbolic import SymbolicTable
from repro.protocol.homeostasis import (
    AdaptiveSettings,
    HomeostasisCluster,
    ProtocolError,
    TreatyGenerator,
)
from repro.protocol.messages import Outcome, Vote, VoteReply
from repro.protocol.paxos_commit import NegotiationSpec, QuorumUnreachable
from repro.protocol.site import SiteResult
from repro.protocol.transport import (
    NegotiationTrace,
    Transport,
    UnreachableError,
)

if TYPE_CHECKING:
    from typing import Callable


@dataclass
class WindowOutcome:
    """What the client observes for one transaction of a window."""

    index: int  # position in the submitted window
    tx_name: str
    log: tuple[int, ...] = ()
    site: int = -1
    synced: bool = False
    #: sites of the negotiation this transaction won (empty otherwise)
    participants: tuple[int, ...] = ()
    #: wave whose negotiation this transaction won (-1: never won one)
    wave: int = -1
    #: elections this transaction lost before completing
    lost_votes: int = 0
    #: global commit order within the window (serial-equivalence order)
    commit_seq: int = -1
    #: transport-trace index of the won negotiation (-1 otherwise)
    negotiation_index: int = -1
    #: proactive treaty refreshes this *committed* transaction won by
    #: breaching the adaptive low-watermark
    rebalances: int = 0
    #: participants of the won refresh (empty when none ran)
    rebalance_participants: tuple[int, ...] = ()
    #: unified result status (see
    #: :class:`~repro.protocol.messages.Outcome`): ``REFUSED`` when a
    #: site the transaction needed was *known* down before its round
    #: opened (origin down, or a crashed site inside its conflict
    #: group's scope), ``UNAVAILABLE`` when a vote/sync timeout
    #: discovered the crash mid-round; the client retries after
    #: recovery either way
    status: Outcome = Outcome.COMMITTED

    @property
    def failed(self) -> bool:
        """The transaction did not complete (derived from ``status``,
        so the two surfaces cannot disagree)."""
        return self.status in (Outcome.REFUSED, Outcome.UNAVAILABLE)


@dataclass
class GroupOutcome:
    """One conflict group's resolved election."""

    wave: int
    winner: int  # request index
    losers: tuple[int, ...]  # request indices of losing *violators*
    #: origin sites of every contender (the electorate)
    contender_sites: tuple[int, ...]
    #: participant set of the winner's negotiation
    participants: tuple[int, ...]
    #: merged closure scope the transport round was opened with
    scope: tuple[int, ...]
    negotiation_index: int
    #: True when the group's winner was a proactive treaty refresh
    #: (adaptive reallocation) rather than a violation cleanup
    rebalance: bool = False
    #: request indices of committed transactions whose refresh desire
    #: lost this election (they concede and re-check next wave)
    rebalance_losers: tuple[int, ...] = ()

    @property
    def members(self) -> tuple[int, ...]:
        return (self.winner,) + self.losers + self.rebalance_losers


@dataclass
class WindowResult:
    """Everything one window of interleaved submissions produced."""

    outcomes: list[WindowOutcome]
    #: wave -> conflict groups resolved in that wave (groups within a
    #: wave have disjoint scopes and ran their negotiations in parallel)
    waves: list[list[GroupOutcome]] = field(default_factory=list)
    #: request indices in the order their effects committed (the
    #: serial-equivalent execution order of the window)
    commit_order: list[int] = field(default_factory=list)

    @property
    def contended(self) -> bool:
        return any(len(g.members) > 1 for wave in self.waves for g in wave)


@dataclass
class _Contender:
    """A violator -- or a proactive-refresh desire -- awaiting election."""

    index: int
    tx_name: str
    params: Mapping[str, int] | None
    origin: int
    timestamp: int
    txn_seq: int
    #: True for a proactive rebalance: the transaction at ``index``
    #: already committed but breached the adaptive low-watermark, and
    #: its refresh must win a slot like any other negotiation
    rebalance: bool = False
    #: closure seed (violation seed, or breached clause objects plus
    #: the origin's dirty set for a rebalance)
    seed: set[str] = field(default_factory=set)
    #: elections this refresh desire has lost (retries are capped)
    lost: int = 0
    participants: set[int] = field(default_factory=set)
    affected: set[str] = field(default_factory=set)
    #: priority credit bid this election (0 under the legacy policy;
    #: refreshed from the credit ledger at grouping time otherwise)
    credit: int = 0

    @property
    def priority(self) -> tuple[int, int, int, int]:
        # Credit is folded in *ahead of the site id* (negated: more
        # credit = higher priority), closing the latent tie where equal
        # ``(timestamp, txn_seq)`` bids always favored low-numbered
        # sites.  With zero credit everywhere (the legacy policy) the
        # ordering is exactly the historical one.
        return (self.timestamp, -self.credit, self.origin, self.txn_seq)


@dataclass
class _WaveRound:
    """One conflict group's in-flight negotiation within a wave."""

    group: list[_Contender]
    trace: NegotiationTrace
    alive: bool = True
    dirty: set[str] = field(default_factory=set)
    reference: tuple[int, ...] | None = None
    written: set[str] = field(default_factory=set)
    #: site driving the round past the decision (the winner's origin,
    #: or the survivor that completed a crashed coordinator's round)
    decided_origin: int = -1
    #: participants still live after the decision phase (empty: all)
    live: set[int] = field(default_factory=set)


class ConcurrentCluster(HomeostasisCluster):
    """A homeostasis cluster whose kernel accepts interleaved
    submissions and resolves racing violators with a real vote phase.

    ``submit`` (inherited) still runs single transactions; windows go
    through :meth:`submit_window`.
    """

    def __init__(
        self,
        site_ids: Sequence[int],
        locate: "Callable[[str], int]",
        initial_db: Mapping[str, int],
        tables: Sequence[SymbolicTable],
        tx_home: Mapping[str, int],
        generator: TreatyGenerator,
        arrays: Mapping[str, tuple[int, ...]] | None = None,
        post_sync_hooks: Sequence["Callable[[HomeostasisCluster], None]"] = (),
        validate: bool = False,
        deterministic_solver: bool = True,
        adaptive: AdaptiveSettings | None = None,
        transport: Transport | None = None,
        negotiation: NegotiationSpec | None = None,
    ) -> None:
        super().__init__(
            site_ids=site_ids,
            locate=locate,
            initial_db=initial_db,
            tables=tables,
            tx_home=tx_home,
            generator=generator,
            arrays=arrays,
            post_sync_hooks=post_sync_hooks,
            validate=validate,
            deterministic_solver=deterministic_solver,
            adaptive=adaptive,
            transport=transport,
            negotiation=negotiation,
        )

    def _setup(self, *args, **kwargs) -> None:
        super()._setup(*args, **kwargs)
        self._txn_seq = itertools.count()

    # -- fault handling ------------------------------------------------------------

    def _fail_group(
        self,
        group: list[_Contender],
        outcomes,
        status: Outcome = Outcome.REFUSED,
    ) -> None:
        """A group's negotiation cannot run (its scope contains an
        unreachable site).  Violator members fail -- their cleanup
        needs that site by definition, so re-running them this window
        would only fail again; the client retries after recovery.
        Refresh desires are dropped silently: their transactions
        already committed, and the watermark re-triggers later."""
        for contender in group:
            if not contender.rebalance:
                outcomes[contender.index].status = status

    def _abort_wave_round(self, rnd: _WaveRound, outcomes) -> None:
        """A crash was discovered mid-round (vote/sync timeout): close
        the round's transport context as aborted and fail its members.
        Only this group degrades -- same-wave groups have disjoint
        closures, so the crashed site cannot be in theirs."""
        self.transport.abort(rnd.trace)
        self.stats.timeouts += 1
        self._fail_group(rnd.group, outcomes, status=Outcome.UNAVAILABLE)
        rnd.alive = False

    # -- window machinery ----------------------------------------------------------

    def _execute_round(
        self, entries: list[_Contender]
    ) -> tuple[
        list[tuple[_Contender, SiteResult]],
        list[tuple[_Contender, SiteResult]],
        list[_Contender],
    ]:
        """Optimistically execute the entries at their origin sites in
        window order; return (committed, violators, unreachable).
        Entries whose origin site is down cannot even attempt their
        local execution -- they fail without touching any state."""
        committed: list[tuple[_Contender, SiteResult]] = []
        violators: list[tuple[_Contender, SiteResult]] = []
        unreachable: list[_Contender] = []
        for entry in entries:
            if self.transport.is_down(entry.origin):
                unreachable.append(entry)
                continue
            result = self.sites[entry.origin].execute(entry.tx_name, entry.params)
            if result.committed:
                self.demand.observe(result.written)
                committed.append((entry, result))
            else:
                self.demand.observe(result.attempted_writes)
                violators.append((entry, result))
        return committed, violators, unreachable

    def _rebalance_contenders(
        self,
        committed: list[tuple[_Contender, SiteResult]],
        carried: list[_Contender],
    ) -> list[_Contender]:
        """Proactive-refresh desires entering this wave's elections.

        Fresh desires come from commits that just breached the
        low-watermark (one per origin site per wave -- a refresh
        re-splits every hot clause of that site at once); carried
        desires are last wave's election losers, re-checked against
        the treaties the winners installed (a refresh that covered
        their sites usually cleared the breach) and dropped after
        three lost elections -- the next window re-triggers if the
        pressure persists.
        """
        if self.adaptive is None:
            return []
        out: list[_Contender] = []
        claimed: set[int] = set()
        for entry in carried:
            breached = self._watermark_breaches(
                self.sites[entry.origin], set(entry.seed)
            )
            if breached and entry.lost < 3 and entry.origin not in claimed:
                claimed.add(entry.origin)
                entry.seed = breached | set(
                    self.sites[entry.origin].dirty_owned_values()
                )
                out.append(entry)
        for entry, result in committed:
            if entry.origin in claimed:
                continue
            breached = self._watermark_breaches(
                self.sites[entry.origin], result.written
            )
            if breached:
                claimed.add(entry.origin)
                out.append(
                    _Contender(
                        index=entry.index,
                        tx_name=entry.tx_name,
                        params=entry.params,
                        origin=entry.origin,
                        timestamp=entry.timestamp,
                        txn_seq=next(self._txn_seq),
                        rebalance=True,
                        seed=breached
                        | set(self.sites[entry.origin].dirty_owned_values()),
                    )
                )
        return out

    def _conflict_groups(
        self, contenders: list[_Contender]
    ) -> list[list[_Contender]]:
        """Partition contenders into groups of transitively-overlapping
        participant closures (disjoint groups negotiate in parallel).
        Every contender's ``seed`` must already be set; violation
        cleanups and proactive refreshes arbitrate in the same groups.
        """
        entries: list[_Contender] = []
        for entry in contenders:
            participants, closure = self._participants_for(
                entry.origin, set(entry.seed)
            )
            entry.participants = participants
            entry.affected = self.generator.objects_touching(closure) | closure
            # Refresh the bid from the credit ledger at grouping time:
            # a site that lost last wave's election bids the improved
            # priority this wave (0 under the legacy policy).
            entry.credit = self.fairness.bid_credit(entry.origin)
            entries.append(entry)
        groups: list[list[_Contender]] = []
        scopes: list[set[int]] = []
        for entry in entries:
            hits = [
                i for i, scope in enumerate(scopes) if scope & entry.participants
            ]
            if not hits:
                groups.append([entry])
                scopes.append(set(entry.participants))
                continue
            # Merge every overlapped group (the entry bridges them).
            target = hits[0]
            groups[target].append(entry)
            scopes[target] |= entry.participants
            for i in reversed(hits[1:]):
                groups[target].extend(groups.pop(i))
                scopes[target] |= scopes.pop(i)
        for group in groups:
            group.sort(key=lambda c: c.priority)
        groups.sort(key=lambda g: g[0].priority)
        return groups

    def _vote_phase(self, group: list[_Contender]) -> None:
        """Contenders exchange votes; losers concede to the winner.

        The winner is the lowest ``(timestamp, -credit, site,
        txn_seq)`` tuple; every contender computes it independently
        from the exchanged votes -- the credit term rides inside each
        :class:`Vote` -- so arbitration needs no extra coordinator.
        """
        winner = group[0]  # groups are priority-sorted
        if len(group) > 1:
            # Co-located contenders arbitrate site-locally for free;
            # only cross-site claims and concessions hit the wire.
            for voter in group:
                for other in group:
                    if other is voter or other.origin == voter.origin:
                        continue
                    self.transport.send(
                        Vote(
                            src=voter.origin,
                            dst=other.origin,
                            tx_name=voter.tx_name,
                            timestamp=voter.timestamp,
                            txn_seq=voter.txn_seq,
                            credit=voter.credit,
                        )
                    )
            for loser in group[1:]:
                if loser.origin == winner.origin:
                    continue
                self.transport.send(
                    VoteReply(
                        src=loser.origin,
                        dst=winner.origin,
                        winner_site=winner.origin,
                        winner_txn=winner.txn_seq,
                    )
                )
        # The winner announces itself to its non-contender
        # participants: T' for a cleanup, the refresh for a rebalance.
        electorate = {c.origin for c in group}
        announce = set(winner.participants) - electorate
        if winner.rebalance:
            self._announce_rebalance(
                winner.origin, announce | {winner.origin}, set(winner.seed)
            )
        else:
            self._announce_winner(
                winner.origin,
                winner.tx_name,
                announce | {winner.origin},
                timestamp=winner.timestamp,
                txn_seq=winner.txn_seq,
            )

    def submit_window(
        self,
        requests: Sequence[tuple[str, Mapping[str, int] | None]],
        timestamps: Sequence[int] | None = None,
    ) -> WindowResult:
        """Run a window of interleaved transactions to completion.

        ``timestamps`` are the arrival stamps feeding vote priorities;
        by default every transaction in the window raced in at stamp 0,
        so elections fall through to the (site, txn_seq) tiebreaks.
        """
        if timestamps is None:
            timestamps = [0] * len(requests)
        if len(timestamps) != len(requests):
            raise ProtocolError("one timestamp per windowed request")
        entries: list[_Contender] = []
        for index, (tx_name, params) in enumerate(requests):
            if tx_name not in self.tx_home:
                raise ProtocolError(f"unknown transaction {tx_name!r}")
            self.stats.submitted += 1
            entries.append(
                _Contender(
                    index=index,
                    tx_name=tx_name,
                    params=params,
                    origin=self.tx_home[tx_name],
                    timestamp=timestamps[index],
                    txn_seq=next(self._txn_seq),
                )
            )

        outcomes = [
            WindowOutcome(index=e.index, tx_name=e.tx_name, site=e.origin)
            for e in entries
        ]
        result = WindowResult(outcomes=outcomes)
        commit_seq = itertools.count()
        pending = entries
        carried_rebalances: list[_Contender] = []
        wave = 0
        while pending or carried_rebalances:
            # Rebalance retries are capped, so waves are bounded by the
            # violator chains plus a constant tail of refreshes.
            if wave > 2 * (len(requests) + 1):
                raise ProtocolError(
                    "window did not quiesce: livelocked elections"
                )
            committed, violators, unreachable = self._execute_round(pending)
            for entry in unreachable:
                outcomes[entry.index].status = Outcome.REFUSED
            for entry, res in committed:
                self.stats.committed_local += 1
                out = outcomes[entry.index]
                out.log = res.log
                out.commit_seq = next(commit_seq)
                result.commit_order.append(entry.index)
            contenders: list[_Contender] = []
            for entry, res in violators:
                entry.seed = self._violation_seed(self.sites[entry.origin], res)
                contenders.append(entry)
            contenders.extend(
                self._rebalance_contenders(committed, carried_rebalances)
            )
            carried_rebalances = []
            if not contenders:
                break
            groups = self._conflict_groups(contenders)
            rounds: list[_WaveRound] = []
            # Open every group's round before any closes: disjoint
            # closures negotiate in parallel, and the transport rejects
            # the wave outright if the scopes were not disjoint.
            # Groups whose scope contains a known-crashed site are
            # refused before their round opens (no messages wasted).
            for group in groups:
                winner = group[0]
                scope = frozenset().union(*(c.participants for c in group))
                if scope & self.transport.down:
                    self.stats.timeouts += 1
                    self._fail_group(group, outcomes)
                    continue
                trace = self.transport.begin(
                    "cleanup", winner.origin, scope=scope, wave=wave
                )
                rounds.append(_WaveRound(group=group, trace=trace))
            # Abortable prefix (vote + sync): a timeout here aborts
            # only the affected group's round, cleanly.
            for rnd in rounds:
                try:
                    self._vote_phase(rnd.group)
                except UnreachableError:
                    self._abort_wave_round(rnd, outcomes)
            for rnd in rounds:
                if not rnd.alive:
                    continue
                winner = rnd.group[0]
                try:
                    _updates, rnd.dirty = self._synchronize(
                        winner.participants, affected=winner.affected
                    )
                except UnreachableError:
                    self._abort_wave_round(rnd, outcomes)
            # Decision phase (NegotiationSpec attached): each alive
            # round makes its commit decision quorum-durable through
            # Paxos Commit before anything irreversible runs.  A round
            # that loses its acceptor quorum aborts cleanly like a
            # sync timeout; a round whose *winner* crashes mid-quorum
            # is completed by a surviving participant, and the rest of
            # the wave finishes it over the live participants.
            # Rebalance rounds stay on the legacy path: they install
            # from already-committed state, are best-effort by
            # contract, and abort harmlessly on any crash.
            for rnd in rounds:
                if not rnd.alive:
                    continue
                winner = rnd.group[0]
                if self._paxos is None or winner.rebalance:
                    continue
                try:
                    try:
                        self._paxos.decide(
                            winner.origin, rnd.trace.index, winner.participants
                        )
                    except UnreachableError:
                        if not self.transport.is_down(winner.origin):
                            raise
                        rnd.decided_origin = self._survivor_complete(
                            rnd.trace.index,
                            winner.origin,
                            set(winner.participants),
                            winner.tx_name,
                        )
                except (QuorumUnreachable, UnreachableError):
                    self._abort_wave_round(rnd, outcomes)
                    continue
                rnd.live = set(winner.participants) - self.transport.down
                for down_sid in set(winner.participants) - rnd.live:
                    # The decision is durable; the dead participant
                    # re-runs T' deterministically at recovery.
                    self._missed_runs[down_sid] = (
                        winner.tx_name,
                        dict(winner.params or {}),
                    )
            # Commit point: the surviving rounds run to completion
            # (same contract as the sequential path -- T' commits site
            # by site; the quorum decision above is what lets a round
            # outlive its coordinator past this line).
            alive = [rnd for rnd in rounds if rnd.alive]
            for rnd in alive:
                winner = rnd.group[0]
                if winner.rebalance:
                    # A refresh aborts nothing, so there is no T' to
                    # re-run -- the round is sync + regeneration only.
                    continue
                if rnd.decided_origin < 0:
                    rnd.decided_origin = winner.origin
                if not rnd.live:
                    rnd.live = set(winner.participants)
                rnd.reference, rnd.written = self._cleanup_execute(
                    rnd.decided_origin, winner.tx_name, winner.params, rnd.live
                )
            # Closure coverage is checked against the pre-wave treaty
            # table, before any group installs its replacement.
            for rnd in alive:
                winner = rnd.group[0]
                if not winner.rebalance:
                    self._check_closure_covered(
                        winner.tx_name, rnd.written, winner.participants
                    )
            for rnd in alive:
                winner = rnd.group[0]
                self._install_new_treaty(
                    dirty=rnd.dirty
                    | rnd.written
                    | set(winner.seed if winner.rebalance else ()),
                    participants=rnd.live or set(winner.participants),
                    origin=(
                        rnd.decided_origin
                        if rnd.decided_origin >= 0
                        else winner.origin
                    ),
                )
            for rnd in alive:
                self.transport.end(rnd.trace)

            losers: list[_Contender] = []
            wave_groups: list[GroupOutcome] = []
            for rnd in alive:
                group, trace, reference = rnd.group, rnd.trace, rnd.reference
                winner = group[0]
                out = outcomes[winner.index]
                if winner.rebalance:
                    self.stats.rebalances += 1
                    out.rebalances += 1
                    out.rebalance_participants = tuple(sorted(winner.participants))
                else:
                    self.stats.negotiations += 1
                    out.log = reference
                    out.synced = True
                    out.participants = tuple(
                        sorted(rnd.live or winner.participants)
                    )
                    out.wave = wave
                    out.commit_seq = next(commit_seq)
                    out.negotiation_index = trace.index
                    result.commit_order.append(winner.index)
                violator_losers: list[_Contender] = []
                rebalance_losers: list[_Contender] = []
                for loser in group[1:]:
                    if loser.rebalance:
                        # The refresh concedes; it re-checks next wave
                        # against the treaties this wave installed.
                        loser.lost += 1
                        rebalance_losers.append(loser)
                        carried_rebalances.append(loser)
                    else:
                        outcomes[loser.index].lost_votes += 1
                        violator_losers.append(loser)
                        losers.append(loser)
                # Settle the election in the credit ledger: the winner
                # spends its credit (closing its losing streak), every
                # losing *site* accrues -- the fairness counters behind
                # ``fairness_stats()`` and the benchmark gate.  The
                # ledger tracks site-level starvation, so a site racing
                # against itself (several clients of one replica in the
                # group) is not its own loser.
                self.fairness.record_election(
                    winner.origin,
                    sorted({c.origin for c in group[1:]} - {winner.origin}),
                )
                wave_groups.append(
                    GroupOutcome(
                        wave=wave,
                        winner=winner.index,
                        losers=tuple(c.index for c in violator_losers),
                        contender_sites=tuple(sorted({c.origin for c in group})),
                        participants=tuple(sorted(winner.participants)),
                        scope=tuple(sorted(trace.scope or ())),
                        negotiation_index=trace.index,
                        rebalance=winner.rebalance,
                        rebalance_losers=tuple(c.index for c in rebalance_losers),
                    )
                )
            result.waves.append(wave_groups)
            pending = sorted(losers, key=lambda c: c.index)
            wave += 1
        return result
