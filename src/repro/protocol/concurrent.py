"""The concurrent cleanup runtime: racing violators and a real vote.

:meth:`HomeostasisCluster.submit` runs one transaction at a time, so
a treaty violation is always unopposed and the Section 3.3 vote is a
trivial broadcast.  :class:`ConcurrentCluster` accepts a *window* of
interleaved submissions from multiple origin sites, which makes the
cleanup phase's election real:

1. **optimistic execution** -- every transaction in the window runs
   disconnected at its origin site; commits are final, violators
   abort and become *contenders* (several can violate in the same
   window, on the same or on overlapping objects);
2. **conflict grouping** -- each contender's participant closure is
   computed (same fixpoint as the sequential path); contenders whose
   closures overlap are merged into one conflict group, because their
   negotiations would touch common sites and cannot proceed
   independently;
3. **vote phase** -- inside each group the contenders exchange
   :class:`~repro.protocol.messages.Vote` messages carrying their
   ``(timestamp, site, txn_seq)`` priority tuples; the lowest tuple
   wins deterministically, every loser concedes with a
   :class:`~repro.protocol.messages.VoteReply`, and the winner
   announces itself to the non-contender participants of its closure
   (this is the winner-election that Consensus on Transaction Commit
   frames as the degenerate single-coordinator case);
4. **parallel negotiations** -- the winners of *disjoint* groups run
   their cleanup rounds concurrently: their transport contexts are
   all opened before any closes, and the sync / re-run / install
   phases are interleaved message-by-message (the trace's
   ``opened_at``/``closed_at`` stamps prove the rounds overlap);
5. **losers re-run** -- after the wave's treaties install, every
   loser re-executes from scratch; it either commits under the new
   treaties or contends again in the next wave (keeping its original
   timestamp, so seniority is preserved).

Every step iterates in sorted deterministic order, so two runs over
the same window produce identical traces and states -- the seeded
arbitration order the simulator's determinism tests rely on.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.protocol.homeostasis import HomeostasisCluster, ProtocolError
from repro.protocol.messages import Vote, VoteReply
from repro.protocol.site import SiteResult


@dataclass
class WindowOutcome:
    """What the client observes for one transaction of a window."""

    index: int  # position in the submitted window
    tx_name: str
    log: tuple[int, ...] = ()
    site: int = -1
    synced: bool = False
    #: sites of the negotiation this transaction won (empty otherwise)
    participants: tuple[int, ...] = ()
    #: wave whose negotiation this transaction won (-1: never won one)
    wave: int = -1
    #: elections this transaction lost before completing
    lost_votes: int = 0
    #: global commit order within the window (serial-equivalence order)
    commit_seq: int = -1
    #: transport-trace index of the won negotiation (-1 otherwise)
    negotiation_index: int = -1


@dataclass
class GroupOutcome:
    """One conflict group's resolved election."""

    wave: int
    winner: int  # request index
    losers: tuple[int, ...]  # request indices
    #: origin sites of every contender (the electorate)
    contender_sites: tuple[int, ...]
    #: participant set of the winner's negotiation
    participants: tuple[int, ...]
    #: merged closure scope the transport round was opened with
    scope: tuple[int, ...]
    negotiation_index: int

    @property
    def members(self) -> tuple[int, ...]:
        return (self.winner,) + self.losers


@dataclass
class WindowResult:
    """Everything one window of interleaved submissions produced."""

    outcomes: list[WindowOutcome]
    #: wave -> conflict groups resolved in that wave (groups within a
    #: wave have disjoint scopes and ran their negotiations in parallel)
    waves: list[list[GroupOutcome]] = field(default_factory=list)
    #: request indices in the order their effects committed (the
    #: serial-equivalent execution order of the window)
    commit_order: list[int] = field(default_factory=list)

    @property
    def contended(self) -> bool:
        return any(len(g.members) > 1 for wave in self.waves for g in wave)


@dataclass
class _Contender:
    """A violator awaiting election."""

    index: int
    tx_name: str
    params: Mapping[str, int] | None
    origin: int
    timestamp: int
    txn_seq: int
    participants: set[int] = field(default_factory=set)
    affected: set[str] = field(default_factory=set)

    @property
    def priority(self) -> tuple[int, int, int]:
        return (self.timestamp, self.origin, self.txn_seq)


class ConcurrentCluster(HomeostasisCluster):
    """A homeostasis cluster whose kernel accepts interleaved
    submissions and resolves racing violators with a real vote phase.

    ``submit`` (inherited) still runs single transactions; windows go
    through :meth:`submit_window`.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._txn_seq = itertools.count()

    # -- window machinery ----------------------------------------------------------

    def _execute_round(
        self, entries: list[_Contender]
    ) -> tuple[list[tuple[_Contender, tuple[int, ...]]], list[tuple[_Contender, SiteResult]]]:
        """Optimistically execute the entries at their origin sites in
        window order; return (committed, violators)."""
        committed: list[tuple[_Contender, tuple[int, ...]]] = []
        violators: list[tuple[_Contender, SiteResult]] = []
        for entry in entries:
            result = self.sites[entry.origin].execute(entry.tx_name, entry.params)
            if result.committed:
                committed.append((entry, result.log))
            else:
                violators.append((entry, result))
        return committed, violators

    def _conflict_groups(
        self, contenders: list[tuple[_Contender, SiteResult]]
    ) -> list[list[_Contender]]:
        """Partition contenders into groups of transitively-overlapping
        participant closures (disjoint groups negotiate in parallel)."""
        entries: list[_Contender] = []
        for entry, result in contenders:
            server = self.sites[entry.origin]
            seed = self._violation_seed(server, result)
            participants, closure = self._participants_for(entry.origin, seed)
            entry.participants = participants
            entry.affected = self.generator.objects_touching(closure) | closure
            entries.append(entry)
        groups: list[list[_Contender]] = []
        scopes: list[set[int]] = []
        for entry in entries:
            hits = [
                i for i, scope in enumerate(scopes) if scope & entry.participants
            ]
            if not hits:
                groups.append([entry])
                scopes.append(set(entry.participants))
                continue
            # Merge every overlapped group (the entry bridges them).
            target = hits[0]
            groups[target].append(entry)
            scopes[target] |= entry.participants
            for i in reversed(hits[1:]):
                groups[target].extend(groups.pop(i))
                scopes[target] |= scopes.pop(i)
        for group in groups:
            group.sort(key=lambda c: c.priority)
        groups.sort(key=lambda g: g[0].priority)
        return groups

    def _vote_phase(self, group: list[_Contender]) -> None:
        """Contenders exchange votes; losers concede to the winner.

        The winner is the lowest ``(timestamp, site, txn_seq)`` tuple;
        every contender computes it independently from the exchanged
        votes, so arbitration needs no extra coordinator.
        """
        winner = group[0]  # groups are priority-sorted
        if len(group) > 1:
            # Co-located contenders arbitrate site-locally for free;
            # only cross-site claims and concessions hit the wire.
            for voter in group:
                for other in group:
                    if other is voter or other.origin == voter.origin:
                        continue
                    self.transport.send(
                        Vote(
                            src=voter.origin,
                            dst=other.origin,
                            tx_name=voter.tx_name,
                            timestamp=voter.timestamp,
                            txn_seq=voter.txn_seq,
                        )
                    )
            for loser in group[1:]:
                if loser.origin == winner.origin:
                    continue
                self.transport.send(
                    VoteReply(
                        src=loser.origin,
                        dst=winner.origin,
                        winner_site=winner.origin,
                        winner_txn=winner.txn_seq,
                    )
                )
        # The winner announces T' to its non-contender participants.
        electorate = {c.origin for c in group}
        announce = set(winner.participants) - electorate
        self._announce_winner(
            winner.origin,
            winner.tx_name,
            announce | {winner.origin},
            timestamp=winner.timestamp,
            txn_seq=winner.txn_seq,
        )

    def submit_window(
        self,
        requests: Sequence[tuple[str, Mapping[str, int] | None]],
        timestamps: Sequence[int] | None = None,
    ) -> WindowResult:
        """Run a window of interleaved transactions to completion.

        ``timestamps`` are the arrival stamps feeding vote priorities;
        by default every transaction in the window raced in at stamp 0,
        so elections fall through to the (site, txn_seq) tiebreaks.
        """
        if timestamps is None:
            timestamps = [0] * len(requests)
        if len(timestamps) != len(requests):
            raise ProtocolError("one timestamp per windowed request")
        entries: list[_Contender] = []
        for index, (tx_name, params) in enumerate(requests):
            if tx_name not in self.tx_home:
                raise ProtocolError(f"unknown transaction {tx_name!r}")
            self.stats.submitted += 1
            entries.append(
                _Contender(
                    index=index,
                    tx_name=tx_name,
                    params=params,
                    origin=self.tx_home[tx_name],
                    timestamp=timestamps[index],
                    txn_seq=next(self._txn_seq),
                )
            )

        outcomes = [
            WindowOutcome(index=e.index, tx_name=e.tx_name, site=e.origin)
            for e in entries
        ]
        result = WindowResult(outcomes=outcomes)
        commit_seq = itertools.count()
        pending = entries
        wave = 0
        while pending:
            if wave > len(requests) + 1:
                raise ProtocolError(
                    "window did not quiesce: livelocked elections"
                )
            committed, violators = self._execute_round(pending)
            for entry, log in committed:
                self.stats.committed_local += 1
                out = outcomes[entry.index]
                out.log = log
                out.commit_seq = next(commit_seq)
                result.commit_order.append(entry.index)
            if not violators:
                break
            groups = self._conflict_groups(violators)
            group_traces = []
            # Open every group's round before any closes: disjoint
            # closures negotiate in parallel, and the transport rejects
            # the wave outright if the scopes were not disjoint.
            for group in groups:
                winner = group[0]
                scope = frozenset().union(*(c.participants for c in group))
                trace = self.transport.begin(
                    "cleanup", winner.origin, scope=scope, wave=wave
                )
                group_traces.append((group, trace))
            for group, _trace in group_traces:
                self._vote_phase(group)
            synced_state = []
            for group, _trace in group_traces:
                winner = group[0]
                _updates, dirty = self._synchronize(
                    winner.participants, affected=winner.affected
                )
                synced_state.append(dirty)
            executed = []
            for (group, _trace), dirty in zip(group_traces, synced_state):
                winner = group[0]
                reference, written = self._cleanup_execute(
                    winner.origin, winner.tx_name, winner.params, winner.participants
                )
                executed.append((reference, written, dirty))
            # Closure coverage is checked against the pre-wave treaty
            # table, before any group installs its replacement.
            for (group, _trace), (_ref, written, _dirty) in zip(
                group_traces, executed
            ):
                winner = group[0]
                self._check_closure_covered(
                    winner.tx_name, written, winner.participants
                )
            for (group, _trace), (_ref, written, dirty) in zip(
                group_traces, executed
            ):
                winner = group[0]
                self._install_new_treaty(
                    dirty=dirty | written,
                    participants=winner.participants,
                    origin=winner.origin,
                )
            for _group, trace in group_traces:
                self.transport.end(trace)

            losers: list[_Contender] = []
            wave_groups: list[GroupOutcome] = []
            for (group, trace), (reference, _written, _dirty) in zip(
                group_traces, executed
            ):
                winner = group[0]
                self.stats.negotiations += 1
                out = outcomes[winner.index]
                out.log = reference
                out.synced = True
                out.participants = tuple(sorted(winner.participants))
                out.wave = wave
                out.commit_seq = next(commit_seq)
                out.negotiation_index = trace.index
                result.commit_order.append(winner.index)
                for loser in group[1:]:
                    outcomes[loser.index].lost_votes += 1
                    losers.append(loser)
                wave_groups.append(
                    GroupOutcome(
                        wave=wave,
                        winner=winner.index,
                        losers=tuple(c.index for c in group[1:]),
                        contender_sites=tuple(sorted({c.origin for c in group})),
                        participants=tuple(sorted(winner.participants)),
                        scope=tuple(sorted(trace.scope or ())),
                        negotiation_index=trace.index,
                    )
                )
            result.waves.append(wave_groups)
            pending = sorted(losers, key=lambda c: c.index)
            wave += 1
        return result
