"""Cluster construction facade: :class:`ClusterSpec` + :func:`build_cluster`.

The protocol kernels grew out of a 12-positional-argument constructor
that no server can be configured through.  A :class:`ClusterSpec` is
the declarative replacement: one frozen value naming the sites, the
analysis products (symbolic tables, ground tables, object placement),
and every protocol option -- reusable, inspectable, and independent
of which kernel executes it.  :func:`build_cluster` turns a spec into
a running cluster:

- ``kernel="sequential"`` -- the one-transaction-at-a-time
  :class:`~repro.protocol.homeostasis.HomeostasisCluster` (the
  deterministic reference kernel and differential oracle);
- ``kernel="concurrent"`` -- the windowed
  :class:`~repro.protocol.concurrent.ConcurrentCluster` with a real
  vote phase between racing violators;
- ``kernel="async"`` -- the wall-clock
  :class:`~repro.runtime.cluster.AsyncClusterHost`, where each site
  runs as an asyncio task and every inter-site message crosses an
  event loop as encoded wire frames.

The spec builds a *fresh* :class:`TreatyGenerator` per cluster
(generators carry per-round caches), so one spec can configure a
cluster and its differential oracle side by side.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Mapping

from repro.analysis.symbolic import SymbolicTable
from repro.lang.ast import Transaction
from repro.protocol.homeostasis import (
    AdaptiveSettings,
    HomeostasisCluster,
    OptimizerSettings,
    TreatyGenerator,
)
from repro.protocol.messages import Outcome
from repro.protocol.paxos_commit import NegotiationSpec
from repro.protocol.transport import Transport

if TYPE_CHECKING:  # pragma: no cover - runtime imports protocol, not back
    from repro.runtime.cluster import AsyncClusterHost

__all__ = ["ClusterSpec", "NegotiationSpec", "Outcome", "build_cluster"]

#: Kernels :func:`build_cluster` can instantiate.
KERNELS = ("sequential", "concurrent", "async")


@dataclass(frozen=True)
class ClusterSpec:
    """Everything needed to construct a homeostasis cluster, as data.

    The analysis products (``tables``, ``ground_tables``,
    ``families``) come out of the workload builders -- see e.g.
    :meth:`repro.workloads.micro.MicroWorkload.cluster_spec` -- and the
    remaining fields are the protocol options that used to be
    constructor keywords.
    """

    #: participating site ids
    sites: tuple[int, ...]
    #: object placement: object name -> owning site
    locate: Callable[[str], int]
    #: initial database contents (applied at every site, then
    #: checkpointed)
    initial_db: Mapping[str, int]
    #: runtime symbolic tables, one per registered transaction variant
    tables: tuple[SymbolicTable, ...]
    #: transaction name -> origin (home) site
    tx_home: Mapping[str, int]
    #: per-ground-instance symbolic tables with home sites, the treaty
    #: generator's input
    ground_tables: tuple[tuple[SymbolicTable, int], ...]
    #: family transactions, for optimizer workload simulation
    families: Mapping[str, Transaction] = field(default_factory=dict)
    #: declared array domains (parameterized object families)
    arrays: Mapping[str, tuple[int, ...]] = field(default_factory=dict)
    #: treaty configuration strategy:
    #: 'default' | 'equal-split' | 'optimized' | 'demand'
    strategy: str = "default"
    #: Algorithm 1 knobs (required by strategy='optimized')
    optimizer: OptimizerSettings | None = None
    #: adaptive-reallocation knobs (enables watermark refreshes)
    adaptive: AdaptiveSettings | None = None
    #: non-blocking negotiation knobs: attach a
    #: :class:`~repro.protocol.paxos_commit.NegotiationSpec` to run
    #: cleanup-round commit decisions through a Paxos Commit acceptor
    #: quorum (survivor-completable) and to pick the arbitration
    #: policy; None keeps the legacy single-coordinator decision
    negotiation: NegotiationSpec | None = None
    #: run the validation oracles (H1/H2, sync agreement, escrow
    #: cross-checks) next to every protocol step
    validate: bool = False
    #: deterministic treaty solver: participants regenerate treaties
    #: locally, eliding the install round (Section 5.1)
    deterministic_solver: bool = True
    #: hooks invoked after every synchronization round
    post_sync_hooks: tuple[Callable[[HomeostasisCluster], None], ...] = ()

    def make_generator(self) -> TreatyGenerator:
        """A fresh treaty generator for one cluster instance.

        Fresh per call on purpose: generators carry per-round caches
        and the online demand estimator, which must not be shared
        between a cluster and its differential oracle.
        """
        return TreatyGenerator(
            ground_tables=list(self.ground_tables),
            locate=self.locate,
            sites=tuple(self.sites),
            strategy=self.strategy,
            optimizer=self.optimizer,
            families=dict(self.families),
            arrays=dict(self.arrays),
        )


def build_cluster(
    spec: ClusterSpec,
    *,
    kernel: str = "sequential",
    transport: Transport | None = None,
    **kernel_options: Any,
) -> "HomeostasisCluster | AsyncClusterHost":
    """Instantiate the cluster a :class:`ClusterSpec` describes.

    ``transport`` overrides the message fabric (fault plans attach
    here); the async kernel builds its own wall-clock transport and
    accepts fault/timeout knobs through ``kernel_options`` (see
    :class:`~repro.runtime.cluster.AsyncClusterHost`), which the
    in-process kernels reject.
    """
    if kernel == "sequential" or kernel == "concurrent":
        if kernel_options:
            unknown = ", ".join(sorted(kernel_options))
            raise TypeError(
                f"kernel {kernel!r} takes no extra options (got {unknown})"
            )
        if kernel == "sequential":
            return HomeostasisCluster._from_spec(spec, transport=transport)
        from repro.protocol.concurrent import ConcurrentCluster

        return ConcurrentCluster._from_spec(spec, transport=transport)
    if kernel == "async":
        # Imported lazily: the asyncio runtime is a consumer of the
        # protocol layer, not a dependency of it.
        from repro.runtime.cluster import AsyncClusterHost

        return AsyncClusterHost(spec, transport=transport, **kernel_options)
    raise ValueError(f"unknown kernel {kernel!r}; expected one of {KERNELS}")
