"""Deterministic fault injection for the message transport.

The correctness kernel is synchronous and fault-free by default: every
:meth:`~repro.protocol.transport.Transport.send` delivers instantly.
Production systems are not so lucky, and the homeostasis protocol's
headline property -- sites coordinate only when a treaty is violated
-- has a fault-tolerance corollary worth measuring: a site that
cannot be reached blocks *only* the negotiations whose participant
closure includes it, while every other site keeps committing on its
local treaty.  (Contrast 2PC, which Gray & Lamport's *Consensus on
Transaction Commit* shows blocks globally the moment one participant
is unreachable.)

A :class:`FaultPlan` is a **deterministic, seedable** schedule of
three fault classes, all expressed on the transport's own clock (the
monotone event counter bumped by every open/send/close), so two runs
over the same workload produce byte-identical fault histories:

- **message loss** (``drop_rate``): each message independently drops
  with the given probability.  The draw hashes ``(seed, message
  index)`` instead of consuming a sequential RNG, so the fate of
  message *n* does not depend on how many other messages were sent --
  schedules are stable under refactors that add or remove traffic.
- **message delay** (``delay_rate`` / ``delay_ms``): a delayed message
  still arrives, carrying a latency annotation recorded on the
  transport trace (``NegotiationTrace.delay_ms``) for analysis; a
  delay at or past ``timeout_ms`` is indistinguishable from a drop to
  the sender (the classic lossy-link equivalence) and is surfaced the
  same way.
- **site crash-stop** (``crash_after``): site *s* halts immediately
  after handling its *k*-th inbound message -- the state change (and
  any write-ahead logging) of that message happened, but the reply
  never leaves the site.  This is exactly the "install logged but ack
  never sent" window recovery must handle.
- **network partition** (:class:`Partition`): a set of undirected
  edges is severed during an event-counter interval; messages routed
  over a severed edge are unreachable until the interval ends.

Faults never hang the synchronous kernel: anything a real deployment
would discover by waiting out a timer surfaces immediately as
:class:`UnreachableError` ("timeout surfacing"), which the protocol
layer converts into a clean round abort and the simulator prices as a
``sync_timeout_ms`` stall.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.protocol.transport import UnreachableError

__all__ = ["FaultPlan", "Partition", "UnreachableError"]


@dataclass(frozen=True)
class Partition:
    """A network partition over an explicit edge set.

    ``edges`` are undirected ``(a, b)`` site pairs (``a < b``) severed
    while the transport's event counter lies in ``[start, stop)``.
    Expressing partitions in event time (not wall time) keeps the
    synchronous kernel deterministic: the same workload hits the same
    partition boundary at the same message.
    """

    start: int
    stop: int
    edges: frozenset[tuple[int, int]]

    @staticmethod
    def separating(
        group_a, group_b, start: int = 0, stop: int = 1 << 62
    ) -> "Partition":
        """The partition that severs every edge between two site
        groups (the usual "split-brain" shape)."""
        edges = frozenset(
            (min(a, b), max(a, b)) for a in group_a for b in group_b if a != b
        )
        return Partition(start=start, stop=stop, edges=edges)

    def severs(self, edge: tuple[int, int], at_event: int) -> bool:
        return self.start <= at_event < self.stop and edge in self.edges


@dataclass
class FaultPlan:
    """A deterministic fault schedule for one transport.

    All randomness is derived by hashing ``(seed, message index)``, so
    the plan is a pure function of the trace position -- reproducible
    and order-independent.
    """

    seed: int = 0
    #: independent per-message drop probability
    drop_rate: float = 0.0
    #: independent per-message delay probability and magnitude
    delay_rate: float = 0.0
    delay_ms: float = 0.0
    #: the sender's patience: a delay at or beyond this is a drop
    timeout_ms: float = 1_000.0
    #: site -> inbound-message count after which the site crash-stops
    #: (the crashing message IS handled; its reply is lost)
    crash_after: dict[int, int] = field(default_factory=dict)
    #: severed edge sets over event-counter intervals
    partitions: tuple[Partition, ...] = ()

    def _draw(self, index: int, salt: str) -> float:
        # String seeds hash through sha512 (PYTHONHASHSEED-independent),
        # so the schedule is stable across processes and machines.
        return random.Random(f"{self.seed}:{index}:{salt}").random()

    def drops(self, index: int) -> bool:
        """Does the ``index``-th message drop outright?"""
        return self.drop_rate > 0.0 and self._draw(index, "drop") < self.drop_rate

    def delay_of(self, index: int) -> float:
        """Extra latency of the ``index``-th message (0.0 for most)."""
        if self.delay_rate <= 0.0:
            return 0.0
        if self._draw(index, "delay") >= self.delay_rate:
            return 0.0
        return self.delay_ms

    def severed(self, edge: tuple[int, int], at_event: int) -> bool:
        return any(p.severs(edge, at_event) for p in self.partitions)

    def crashes_after_handling(self, site: int, handled: int) -> bool:
        """Does ``site`` crash-stop upon handling its ``handled``-th
        inbound message?  Exact equality, so a site that is recovered
        (and keeps counting) does not immediately re-crash."""
        return self.crash_after.get(site) == handled
