"""The homeostasis protocol coordinator (Section 3.3).

Rounds have three phases:

- **treaty generation**: look up the joint-table row psi matching the
  synchronized database, linearize it (Appendix C.1), pin objects
  remote-read by the matched residuals (Appendix C.3 / Assumption
  4.1), split into per-site templates, instantiate a configuration
  (Theorem 4.3 default, demarcation equal-split, or Algorithm 1
  optimized), install local treaties at every site;

- **normal execution**: sites run stored procedures disconnected;
  each commit checks only the site's local treaty;

- **cleanup**: on a violation, the aborted transaction T' stands for
  election: racing violators exchange :class:`Vote` messages and the
  lowest ``(timestamp, site, txn)`` priority tuple wins (with a single
  violator -- the only case :meth:`HomeostasisCluster.submit` can
  produce -- the election is trivial; the concurrent runtime in
  :mod:`repro.protocol.concurrent` produces real contenders).  The
  *participant set* of the winner's violation is computed -- the
  fixpoint closure of the dirty objects' owners, the sites named in
  the affected treaty factors, and the homes/owners of every treaty
  instance depending on those objects -- the participants broadcast
  their dirty owned objects to each other, T' is executed in full at
  every participant, and a new round begins; losers abort and re-run
  under the new treaties.  Sites outside the closure keep their state
  and treaties untouched (the incremental generator guarantees their
  pieces are unchanged), which is the coordination-avoidance lever: a
  violation between two nearby sites never involves, or waits for,
  the far side of the cluster -- and negotiations over disjoint
  closures proceed in parallel.

The kernel is synchronous -- it performs the real state changes and
sends every message a distributed deployment would send through a
typed :class:`~repro.protocol.transport.Transport`; the discrete-
event simulator prices the recorded trace with per-edge RTTs.

**Adaptive reallocation** (the ``demand`` strategy plus
:class:`AdaptiveSettings`) closes the loop between execution and
configuration: a :class:`DemandEstimator` tracks per-object write
rates from the commit trace, negotiations size each site's split of
the invariant slack proportionally to its observed rate (with
starvation floors; see
:func:`repro.treaty.optimize.demand_configuration`), and a commit
that pushes a clause below its low-watermark triggers a proactive,
participant-scoped *rebalance* round (``RebalanceRequest`` + scoped
sync + regeneration) that shifts hoarded budget from cold sites to
hot ones before any transaction has to abort.

Treaty generation is *incremental*: factors of the joint table whose
objects did not change since the previous round keep their clauses
and configuration verbatim (their per-factor treaty is a pure
function of factor-local state, so regeneration would reproduce it;
for the stochastic optimizer the cached configuration remains one of
the valid optima).  This is an engineering optimization -- validity
(H1/H2) is untouched -- that turns per-round cost from O(database)
into O(touched factors).

**Fault tolerance** (crash-stop model, durable storage + treaty WAL):
a crashed site blocks only the rounds whose participant closure
includes it -- those refuse fast when the crash is known
(:class:`Unavailable`) or abort cleanly on a vote/sync timeout; every
other site keeps committing disconnected, which is the availability
argument against 2PC's global blocking.  Recovery
(:meth:`HomeostasisCluster.recover_site`) replays the site's treaty
WAL, announces a :class:`~repro.protocol.messages.Rejoin`, and
re-syncs the factor state its treaty generation depends on; validate
mode asserts the replayed treaty matches the cluster's and that
H1/H2 survive.
"""

from __future__ import annotations

import random
import warnings
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Mapping, Sequence

from repro.analysis.residual import residual_reads
from repro.analysis.symbolic import SymbolicTable
from repro.lang.ast import Transaction
from repro.logic.linear import LinearConstraint, LinearExpr
from repro.logic.linearize import LinearizedTreaty, linearize_for_treaty
from repro.logic.terms import ObjT
from repro.protocol.messages import (
    CleanupRun,
    MessageStats,
    Outcome,
    RebalanceRequest,
    Rejoin,
    SyncBroadcast,
    TreatyInstall,
    Vote,
)
from repro.protocol.paxos_commit import (
    CreditLedger,
    NegotiationSpec,
    PaxosCommitDriver,
    QuorumUnreachable,
)
from repro.protocol.site import SiteResult, SiteServer, clause_slack
from repro.protocol.transport import Transport, UnreachableError
from repro.treaty.config import (
    Configuration,
    check_h1_algebraic,
    default_configuration,
    equal_split_configuration,
)
from repro.treaty.optimize import (
    OptimizerStats,
    WorkloadModel,
    configure_from_samples,
    demand_configuration,
    sample_executions,
)
from repro.treaty.table import TreatyTable
from repro.treaty.templates import TreatyTemplates, build_templates

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (config imports us)
    from repro.protocol.config import ClusterSpec

#: Recognized treaty strategies.
TreatyStrategy = str  # 'default' | 'equal-split' | 'optimized' | 'demand'


class ProtocolError(Exception):
    """Violations of protocol invariants (indicate bugs, not workload)."""


class Unavailable(Exception):
    """A submission could not complete because a site it needs is
    unreachable (its origin crashed, or its negotiation's participant
    closure includes a crashed/partitioned site).

    This is the protocol behaving correctly under faults, not a bug:
    the round aborted cleanly, no state or treaty changed, and the
    transaction can be retried once the missing site recovers.  The
    simulator prices each occurrence as a timeout stall; contrast 2PC,
    where *every* transaction raises this while any replica is down.
    """

    def __init__(
        self,
        reason: str,
        sites: frozenset[int] = frozenset(),
        status: Outcome = Outcome.UNAVAILABLE,
    ) -> None:
        super().__init__(reason)
        self.sites = sites
        #: how the facade reports this failure: ``REFUSED`` when the
        #: needed site was *known* down (fast refusal, no messages
        #: wasted), ``UNAVAILABLE`` when a timeout discovered the
        #: crash mid-round
        self.status = status


@dataclass
class ClusterResult:
    """What the client observes for one submitted transaction."""

    log: tuple[int, ...]
    site: int
    synced: bool  # did this transaction trigger a treaty negotiation?
    row_index: int | None = None
    #: sites the negotiation involved (empty for local commits); the
    #: simulator prices the round from the RTT edges between them
    participants: tuple[int, ...] = ()
    #: participants of the proactive treaty refresh this *committed*
    #: transaction triggered by breaching the adaptive low-watermark
    #: (empty when no refresh ran); priced like any negotiation
    rebalanced: tuple[int, ...] = ()
    #: unified result status (see :class:`~repro.protocol.messages.Outcome`);
    #: :meth:`HomeostasisCluster.submit` raises on unavailability, so
    #: results it returns are always ``COMMITTED`` --
    #: :meth:`HomeostasisCluster.try_submit` maps the exception into
    #: ``REFUSED``/``UNAVAILABLE`` results instead
    status: Outcome = Outcome.COMMITTED


@dataclass
class DemandEstimator:
    """Online per-object write-rate estimator over the commit trace.

    The negotiation input of the adaptive (``demand``) strategy: every
    committed or violating attempt bumps an exponentially-decayed
    counter per written object, and
    :func:`~repro.treaty.optimize.demand_configuration` sums the rates
    of each site's clause objects to weight its share of the slack.
    Because treaty objects are site-owned (the Appendix B transform
    gives every site its own delta objects), per-object rates *are*
    per-site, per-template consumption rates.

    This replaces the a-priori :class:`SequenceWorkloadModel` as the
    thing negotiations are configured from: the model guessed the
    future workload at build time, the estimator measures the one
    actually running.  Decay is lazy (applied on access from the step
    distance), so ``observe`` is O(write set).
    """

    #: observations after which an unrefreshed count loses half its
    #: weight -- the window the estimator "remembers" demand over
    halflife: int = 512
    _counts: dict[str, tuple[float, int]] = field(default_factory=dict)
    _step: int = 0
    #: total observations (commits + violating attempts) seen
    observed: int = 0

    def __post_init__(self) -> None:
        self._decay = 0.5 ** (1.0 / self.halflife)

    def observe(self, written) -> None:
        """Record one attempt's write set."""
        self._step += 1
        self.observed += 1
        for name in written:
            count, last = self._counts.get(name, (0.0, self._step))
            decayed = count * self._decay ** (self._step - last)
            self._counts[name] = (decayed + 1.0, self._step)

    def rate(self, name: str) -> float:
        """The decayed write count of one object (0.0 if never seen)."""
        entry = self._counts.get(name)
        if entry is None:
            return 0.0
        count, last = entry
        return count * self._decay ** (self._step - last)


@dataclass
class AdaptiveSettings:
    """Knobs of the adaptive reallocation subsystem.

    ``watermark`` is the proactive-refresh trigger: after a commit, if
    any ``<=``-clause of the origin's local treaty touched by the
    write set has remaining slack below ``watermark`` times the slack
    it was granted at install time, the site requests a
    participant-scoped rebalance *before* the budget runs out --
    Soethout-style local coordination avoidance: pay a scoped refresh
    now instead of an abort + cleanup round later.  Clauses whose
    install-time grant was below ``min_headroom`` are exempt (a
    refresh cannot stretch a budget the global slack cannot fund; the
    violation path handles those).
    """

    watermark: float = 0.25
    min_headroom: int = 4
    #: estimator memory, in observations (see :class:`DemandEstimator`)
    halflife: int = 512


@dataclass
class OptimizerSettings:
    """Algorithm 1 knobs (Appendix C.2)."""

    model: WorkloadModel
    lookahead: int = 20
    cost_factor: int = 3
    engine: str = "fast"
    rng: random.Random = field(default_factory=lambda: random.Random(0))


@dataclass
class _InstanceTreaty:
    """Cached per-ground-instance treaty piece."""

    constraints: list[LinearConstraint]
    #: per constraint: site -> configuration value
    per_clause_config: list[dict[int, int]]
    pinned: set


@dataclass
class TreatyGenerator:
    """Builds (incrementally) a fresh treaty table from a synchronized
    database.

    The generator works *lazily* over the per-ground-instance symbolic
    tables rather than a materialized joint table: the joint row
    matching the current database is, by the cross-product
    construction of Section 2.2, exactly the conjunction of the rows
    each member table matches, so the conjunction can be assembled
    per-instance without ever materializing the product (whose size
    is exponential for workloads like TPC-C where one transaction
    spans several otherwise-independent object groups).
    """

    ground_tables: list[tuple[SymbolicTable, int]]  # (table, home site)
    locate: Callable[[str], int]
    sites: tuple[int, ...]
    strategy: TreatyStrategy = "default"
    optimizer: OptimizerSettings | None = None
    #: online demand estimator feeding the 'demand' strategy (the
    #: cluster wires its own estimator in at construction)
    demand: DemandEstimator | None = None
    #: family transactions, for optimizer workload simulation
    families: dict[str, Transaction] = field(default_factory=dict)
    arrays: Mapping[str, tuple[int, ...]] = field(default_factory=dict)
    last_optimizer_stats: OptimizerStats | None = None
    #: cumulative count of instance recomputations (observability)
    instances_recomputed: int = 0

    _cache: dict[int, _InstanceTreaty] = field(default_factory=dict)
    _instance_objects: list[set[str]] | None = None
    #: value-keyed memo: an instance piece is a function of the values
    #: of the objects it depends on, and stock levels recur across
    #: refill cycles, so pieces are reused across rounds.  (For the
    #: stochastic optimizer this reuses one valid optimum instead of
    #: re-sampling; H1/H2 validity is a per-piece property.)
    _memo: dict[tuple[int, tuple[int, ...]], _InstanceTreaty] = field(
        default_factory=dict
    )
    _instance_keys: list[tuple[str, ...]] | None = None
    #: workload samples shared by all instances within one generate()
    _sampled_runs: list[list[dict[str, int]]] | None = None
    #: lazy reverse index: object name -> instances depending on it
    _object_to_instances: dict[str, list[int]] | None = None

    # -- instance/object indexing -------------------------------------------------

    def _objects_of_instance(self, idx: int) -> set[str]:
        """Objects whose values the instance's treaty piece depends on.

        These are exactly (a) objects mentioned by any row guard --
        they select the row and parameterize clause bounds/configs --
        and (b) remote reads of any row residual -- they become
        Appendix C.3 equality pins at their current values.  Objects
        the instance merely *writes* or reads locally do not influence
        the generated piece, so changes to them must not trigger
        recomputation (e.g. a New Order bumps its district's
        unfulfilled-order count, but its stock treaty is untouched).
        """
        if self._instance_objects is None:
            self._instance_objects = []
            for table, home in self.ground_tables:
                names: set[str] = set()
                for row in table.rows:
                    for obj in row.guard.objects():
                        names.add(obj.name)
                    for indexed in row.guard.indexed_objects():
                        grounded = indexed.try_ground()
                        if grounded is None:
                            raise ProtocolError(
                                f"ground instance {table.transaction.name} has a "
                                "parameterized guard; ground the workload fully"
                            )
                        names.add(grounded.name)
                    for read in residual_reads(row.residual):
                        if isinstance(read, str) and self.locate(read) != home:
                            names.add(read)
                self._instance_objects.append(names)
        return self._instance_objects[idx]

    def instances_touching(self, names) -> set[int]:
        """Instances whose treaty piece depends on any of the objects."""
        if self._object_to_instances is None:
            index: dict[str, list[int]] = {}
            for idx in range(len(self.ground_tables)):
                for name in self._objects_of_instance(idx):
                    index.setdefault(name, []).append(idx)
            self._object_to_instances = index
        out: set[int] = set()
        for name in names:
            out.update(self._object_to_instances.get(name, ()))
        return out

    def objects_touching(self, names) -> set[str]:
        """Union of the object sets of every instance touching ``names``
        (the state a negotiation over ``names`` must refresh)."""
        out: set[str] = set()
        for idx in self.instances_touching(names):
            out |= self._objects_of_instance(idx)
        return out

    def sites_touching(self, names) -> set[int]:
        """Sites a change to ``names`` drags into a negotiation: the
        home site of every affected instance (its snapshots of the
        changed objects parameterize its piece) plus the owners of
        every object those instances depend on (their current values
        feed the recomputation)."""
        sites: set[int] = set()
        for idx in self.instances_touching(names):
            sites.add(self.ground_tables[idx][1])
            for name in self._objects_of_instance(idx):
                sites.add(self.locate(name))
        return sites

    # -- per-instance computation ---------------------------------------------------

    def _compute_instance(
        self,
        idx: int,
        getobj: Callable[[str], int],
        db_snapshot: Mapping[str, int],
    ) -> _InstanceTreaty:
        self.instances_recomputed += 1
        table, home = self.ground_tables[idx]
        row = table.lookup(getobj)
        lin = linearize_for_treaty(row.guard, getobj)
        constraints = list(lin.constraints)
        pinned = set(lin.pinned)
        # Appendix C.3: pin objects remote-read by the matched residual.
        pinned_names: set[str] = set()
        for read in residual_reads(row.residual):
            if not isinstance(read, str):
                raise ProtocolError(
                    f"ground instance {table.transaction.name} has "
                    f"parameterized residual read {read!r}"
                )
            if self.locate(read) != home and read not in pinned_names:
                pinned_names.add(read)
                constraints.append(
                    LinearConstraint.make(
                        LinearExpr.variable(ObjT(read)), "=", getobj(read)
                    )
                )
                pinned.add(ObjT(read))

        constraints = [c for c in constraints if not c.is_trivially_true()]
        lin_piece = LinearizedTreaty(constraints=constraints, pinned=pinned)
        templates = build_templates(lin_piece, self.locate, self.sites)
        config = self._configure(templates, getobj, db_snapshot)
        per_clause = [
            {site: config.values[clause.config_var(site)] for site in clause.sites}
            for clause in templates.clauses
        ]
        return _InstanceTreaty(
            constraints=constraints, per_clause_config=per_clause, pinned=pinned
        )

    def _configure(
        self, templates: TreatyTemplates, getobj, db_snapshot
    ) -> Configuration:
        if self.strategy == "default":
            return default_configuration(templates, getobj)
        if self.strategy == "equal-split":
            return equal_split_configuration(templates, getobj)
        if self.strategy == "demand":
            if self.demand is None:
                raise ProtocolError("strategy 'demand' requires a DemandEstimator")
            return demand_configuration(templates, getobj, self.demand.rate)
        if self.strategy == "optimized":
            if self.optimizer is None:
                raise ProtocolError("strategy 'optimized' requires OptimizerSettings")
            if self._sampled_runs is None:
                self._sampled_runs = sample_executions(
                    db_snapshot,
                    self.families,
                    self.optimizer.model,
                    self.optimizer.lookahead,
                    self.optimizer.cost_factor,
                    self.optimizer.rng,
                    self.arrays,
                )
            config, stats = configure_from_samples(
                templates, getobj, self._sampled_runs, engine=self.optimizer.engine
            )
            self.last_optimizer_stats = stats
            return config
        raise ProtocolError(f"unknown treaty strategy {self.strategy!r}")

    # -- assembly --------------------------------------------------------------------

    def generate(
        self,
        getobj: Callable[[str], int],
        db_snapshot: Mapping[str, int],
        round_number: int,
        dirty: set[str] | None = None,
    ) -> TreatyTable:
        """Build the treaty table; with ``dirty`` given, reuse cached
        instances whose objects are untouched.

        Assembly dedups identical clauses and drops ``<=``-clauses
        dominated by a tighter clause over the same expression (e.g.
        grounding one transaction over quantities 1..5 yields the
        nested guards ``stock >= 11 .. stock >= 15``; only the tightest
        needs enforcing, and it implies the rest).
        """
        self._sampled_runs = None  # fresh samples per generation
        if self._instance_keys is None:
            self._instance_keys = [
                tuple(sorted(self._objects_of_instance(i)))
                for i in range(len(self.ground_tables))
            ]
        for idx in range(len(self.ground_tables)):
            if (
                dirty is not None
                and idx in self._cache
                and not (self._objects_of_instance(idx) & dirty)
            ):
                continue
            if self.strategy == "demand":
                # The demand-weighted configuration is a function of
                # the *estimator*, not just the instance's object
                # values, so value-keyed memoization would resurrect
                # splits computed under stale demand (exactly what a
                # rebalance exists to replace).  Dirty instances
                # recompute unconditionally; clean ones still reuse
                # their cached piece via the check above.
                self._cache[idx] = self._compute_instance(idx, getobj, db_snapshot)
                continue
            memo_key = (idx, tuple(getobj(n) for n in self._instance_keys[idx]))
            piece = self._memo.get(memo_key)
            if piece is None:
                piece = self._compute_instance(idx, getobj, db_snapshot)
                self._memo[memo_key] = piece
            self._cache[idx] = piece

        # keyed by coefficient vector + op: keep the tightest bound.
        chosen: dict[tuple, tuple[LinearConstraint, dict[int, int]]] = {}
        order: list[tuple] = []
        pinned: set = set()
        for idx in range(len(self.ground_tables)):
            piece = self._cache[idx]
            pinned |= piece.pinned
            for con, cfg in zip(piece.constraints, piece.per_clause_config):
                key = (con.expr.coeffs, con.op)
                incumbent = chosen.get(key)
                if incumbent is None:
                    chosen[key] = (con, cfg)
                    order.append(key)
                    continue
                held, _ = incumbent
                if con.op == "=" and held.bound != con.bound:
                    raise ProtocolError(
                        f"contradictory equality clauses: {held.pretty()} "
                        f"vs {con.pretty()}"
                    )
                if con.op == "<=" and con.bound < held.bound:
                    chosen[key] = (con, cfg)

        constraints = [chosen[key][0] for key in order]
        config_rows = [chosen[key][1] for key in order]
        lin_all = LinearizedTreaty(constraints=constraints, pinned=pinned)
        templates = build_templates(lin_all, self.locate, self.sites)
        config = Configuration(strategy=self.strategy)
        for clause, cfg in zip(templates.clauses, config_rows):
            for site in clause.sites:
                config.values[clause.config_var(site)] = cfg[site]
        return TreatyTable.assemble(lin_all, templates, config, round_number=round_number)


@dataclass
class SyncRound:
    """What the most recent synchronization round covered.

    Exposed to post-sync hooks so they can confine their rewrites to
    the participant set (non-participant sites saw none of this
    round's messages and must not be mutated behind their backs).
    """

    participants: frozenset[int]
    #: the broadcast update set (object -> synchronized value)
    updates: dict[str, int]
    #: the subset of updates that actually changed since their owner's
    #: last checkpoint
    dirty: set[str]


@dataclass
class ClusterStats:
    """Aggregate protocol statistics.

    ``messages`` is a derived view over the transport trace -- the
    kernel sends typed messages and never maintains counters by hand.
    """

    submitted: int = 0
    committed_local: int = 0
    negotiations: int = 0
    #: proactive adaptive treaty refreshes (no violation, no abort)
    rebalances: int = 0
    #: rounds that could not run because a participant was unreachable
    #: (known-down fast refusal, or a timeout discovered mid-round)
    timeouts: int = 0
    #: rejoin rounds run by recovered sites (WAL replay + re-sync)
    recoveries: int = 0
    rounds: int = 0
    transport: Transport = field(default_factory=Transport)

    @property
    def messages(self) -> MessageStats:
        return self.transport.message_stats()

    @property
    def sync_ratio(self) -> float:
        if self.submitted == 0:
            return 0.0
        return self.negotiations / self.submitted


class HomeostasisCluster:
    """K sites executing a known workload under the homeostasis protocol.

    Construct through :func:`repro.protocol.config.build_cluster` (a
    :class:`~repro.protocol.config.ClusterSpec` names every option);
    the positional constructor below is a deprecated compatibility
    shim.
    """

    def __init__(
        self,
        site_ids: Sequence[int],
        locate: Callable[[str], int],
        initial_db: Mapping[str, int],
        tables: Sequence[SymbolicTable],
        tx_home: Mapping[str, int],
        generator: TreatyGenerator,
        arrays: Mapping[str, tuple[int, ...]] | None = None,
        post_sync_hooks: Sequence[Callable[["HomeostasisCluster"], None]] = (),
        validate: bool = False,
        deterministic_solver: bool = True,
        adaptive: AdaptiveSettings | None = None,
        transport: Transport | None = None,
        negotiation: NegotiationSpec | None = None,
    ) -> None:
        warnings.warn(
            f"constructing {type(self).__name__} directly is deprecated; "
            "build a repro.protocol.config.ClusterSpec and call "
            "build_cluster(spec) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        self._setup(
            site_ids=site_ids,
            locate=locate,
            initial_db=initial_db,
            tables=tables,
            tx_home=tx_home,
            generator=generator,
            arrays=arrays,
            post_sync_hooks=post_sync_hooks,
            validate=validate,
            deterministic_solver=deterministic_solver,
            adaptive=adaptive,
            transport=transport,
            negotiation=negotiation,
        )

    @classmethod
    def _from_spec(
        cls, spec: "ClusterSpec", transport: Transport | None = None
    ) -> "HomeostasisCluster":
        """Construct from a :class:`~repro.protocol.config.ClusterSpec`
        without tripping the deprecation shim (the
        :func:`~repro.protocol.config.build_cluster` entry point)."""
        self = cls.__new__(cls)
        self._setup(
            site_ids=spec.sites,
            locate=spec.locate,
            initial_db=spec.initial_db,
            tables=spec.tables,
            tx_home=spec.tx_home,
            generator=spec.make_generator(),
            arrays=dict(spec.arrays) or None,
            post_sync_hooks=spec.post_sync_hooks,
            validate=spec.validate,
            deterministic_solver=spec.deterministic_solver,
            adaptive=spec.adaptive,
            transport=transport,
            negotiation=spec.negotiation,
        )
        return self

    def _setup(
        self,
        site_ids: Sequence[int],
        locate: Callable[[str], int],
        initial_db: Mapping[str, int],
        tables: Sequence[SymbolicTable],
        tx_home: Mapping[str, int],
        generator: TreatyGenerator,
        arrays: Mapping[str, tuple[int, ...]] | None = None,
        post_sync_hooks: Sequence[Callable[["HomeostasisCluster"], None]] = (),
        validate: bool = False,
        deterministic_solver: bool = True,
        adaptive: AdaptiveSettings | None = None,
        transport: Transport | None = None,
        negotiation: NegotiationSpec | None = None,
    ) -> None:
        self.site_ids = tuple(site_ids)
        self.locate = locate
        self.tx_home = dict(tx_home)
        self.generator = generator
        self.adaptive = adaptive
        # The estimator always runs (observation is O(write set)); the
        # 'demand' strategy reads it at negotiation time and the
        # watermark refresh path is gated on ``adaptive``.
        self.demand = DemandEstimator(
            halflife=adaptive.halflife if adaptive else DemandEstimator.halflife
        )
        if generator.demand is None:
            generator.demand = self.demand
        self.transport = transport if transport is not None else Transport()
        self.stats = ClusterStats(transport=self.transport)
        self.treaty_table: TreatyTable | None = None
        # Non-blocking negotiation: with a NegotiationSpec the cleanup
        # round's commit decision runs through a Paxos Commit acceptor
        # quorum (None keeps the legacy single-coordinator decision).
        # The credit ledger always exists -- fairness is observed under
        # either policy so the two can be compared on one workload.
        self.negotiation = negotiation
        self.fairness = CreditLedger(
            spec=negotiation if negotiation is not None else NegotiationSpec()
        )
        self._paxos: PaxosCommitDriver | None = None
        #: rounds completed by a survivor while their coordinator was
        #: down: site -> (tx_name, params) of the T' it must re-run
        #: deterministically at recovery to catch up
        self._missed_runs: dict[int, tuple[str, dict[str, int]]] = {}
        self.post_sync_hooks = list(post_sync_hooks)
        self.validate = validate
        self.deterministic_solver = deterministic_solver
        self.last_sync: SyncRound | None = None
        arrays = arrays or {}

        self.sites: dict[int, SiteServer] = {}
        for sid in self.site_ids:
            server = SiteServer(site_id=sid, locate=locate, arrays=arrays)
            # Validate mode runs the compiled oracle next to every
            # escrow fast-path check and asserts the verdicts agree.
            server.validate_escrow = validate
            for table in tables:
                server.catalog.register(table)
            server.engine.store.apply(initial_db)
            server.engine.checkpoint()
            self.sites[sid] = server
            self.transport.register(sid, server)

        if negotiation is not None:
            self._paxos = PaxosCommitDriver(
                transport=self.transport, sites=self.sites, spec=negotiation
            )

        self._install_new_treaty(dirty=None)

    # -- round machinery ----------------------------------------------------------

    def _reference_site(self) -> SiteServer:
        return self.sites[self.site_ids[0]]

    def _participants_for(
        self, origin: int, seed: set[str]
    ) -> tuple[set[int], set[str]]:
        """The participant set of a negotiation seeded by ``seed``.

        Fixpoint closure: a changed object drags in its owner, every
        site whose installed treaty enforces a clause over it (the
        per-site factor index), and the home site and object owners of
        every treaty-generation instance depending on it.  Each newly
        joined site contributes its own accumulated dirty objects --
        they ride along in the same broadcast and may widen the circle
        further.  Sites outside the fixpoint keep their treaties and
        state untouched; the incremental generator guarantees their
        pieces would regenerate verbatim.
        """
        site_set = set(self.site_ids)
        participants = {origin}
        closure: set[str] = set()
        pending = set(seed)
        while pending:
            closure |= pending
            sites = {self.locate(name) for name in pending}
            sites |= self.generator.sites_touching(pending)
            if self.treaty_table is not None:
                sites |= self.treaty_table.sites_for_objects(pending)
            new_sites = (sites & site_set) - participants
            participants |= new_sites
            pending = set()
            for sid in new_sites:
                pending |= set(self.sites[sid].dirty_owned_values())
            pending -= closure
        return participants, closure

    def _refuse_if_down(self, participants: set[int], what: str) -> None:
        """Fast-path refusal for rounds whose closure includes a
        known-crashed site: no messages are wasted and no timeout is
        paid discovering what the cluster already knows.  Counted with
        the timeouts (it is the same unavailability, discovered
        cheaper)."""
        down = participants & self.transport.down
        if down:
            self.stats.timeouts += 1
            raise Unavailable(
                f"{what} needs unreachable site(s) {sorted(down)}",
                sites=frozenset(down),
                status=Outcome.REFUSED,
            )

    def _install_new_treaty(
        self,
        dirty: set[str] | None,
        participants: set[int] | None = None,
        origin: int | None = None,
    ) -> None:
        if participants is None:
            participants = set(self.site_ids)
        if origin is None or origin not in participants:
            origin = min(participants)
        ref = self.sites[origin]
        getobj = ref.engine.peek
        snapshot = ref.engine.store.data  # read-only use
        self.stats.rounds += 1
        table = self.generator.generate(getobj, snapshot, self.stats.rounds, dirty=dirty)
        self.treaty_table = table
        for sid in sorted(participants):
            treaty = table.local_for(sid)
            if self.deterministic_solver or sid == origin:
                # A deterministic solver lets every participant
                # regenerate the identical treaty from the synchronized
                # state, eliding the second communication round
                # (Section 5.1); otherwise the coordinator ships it.
                self.sites[sid].install_treaty(
                    treaty,
                    round_number=table.round_number,
                )
            else:
                self.transport.send(
                    TreatyInstall(
                        src=origin,
                        dst=sid,
                        round_number=table.round_number,
                        treaty=treaty,
                    )
                )
        for sid in sorted(participants):
            # Observability mirror of each participant's static-tier
            # partition (built inside install_treaty either way --
            # direct install or shipped).
            table.record_paths(sid, self.sites[sid].path_checks)
        if self.validate:
            # The global treaty is never weakened: every install --
            # violation cleanup, forced sync, or adaptive rebalance --
            # must produce locals that still imply the global treaty
            # (H1, a state-independent identity over the configuration)
            # and hold on the current database (H2).  H2 is checked
            # per site against its *own* authoritative state: a site's
            # local treaty mentions only objects it owns, and scoped
            # negotiations leave non-participants' remote snapshots
            # legitimately stale, so evaluating everything through one
            # origin would reject valid installs.
            if not check_h1_algebraic(table.templates, table.configuration):
                raise ProtocolError(
                    f"H1 violated by round {table.round_number}: local "
                    "treaties no longer imply the global treaty"
                )
            self._assert_h2_locally(participants, table.round_number)
            self._assert_untouched_locals(participants, table)

    def _assert_h2_locally(self, sites: set[int], round_number: int) -> None:
        """H2 over the given sites: each one's installed local treaty
        holds on its own state.  Checked for a round's participants at
        install time (their state is final); sites outside the round
        hold inductively -- or are mid-phase in a parallel group of
        the same wave, whose own install asserts them.  With H1 this
        implies the global treaty holds on the authoritative database.
        """
        for sid in sorted(sites):
            server = self.sites[sid]
            treaty = server.local_treaty
            if treaty is not None and not treaty.holds(server.engine.peek):
                raise ProtocolError(
                    f"H2 violated by round {round_number}: site {sid}'s "
                    "local treaty fails on its own state"
                )

    def _synchronize(
        self,
        participants: set[int],
        affected: set[str] | None = None,
        full: bool = False,
    ) -> tuple[dict[str, int], set[str]]:
        """Participant-scoped state exchange.

        Each participant broadcasts its dirty owned objects plus its
        owned objects among ``affected`` (the state feeding recomputed
        treaty factors -- possibly clean, but the coordinator must see
        current values to regenerate from).  ``full`` upgrades the
        share to the complete owned partition (forced global syncs at
        experiment boundaries).
        """
        ordered = sorted(participants)
        shares: dict[int, dict[str, int]] = {}
        dirty: set[str] = set()
        for sid in ordered:
            server = self.sites[sid]
            share = dict(server.dirty_owned_values())
            dirty |= set(share)
            if full:
                for name in server.engine.store.support():
                    if server.owns(name) and name not in share:
                        share[name] = server.engine.peek(name)
            elif affected:
                for name in affected:
                    if self.locate(name) == sid and name not in share:
                        share[name] = server.engine.peek(name)
            shares[sid] = share
        for src in ordered:
            payload = tuple(sorted(shares[src].items()))
            for dst in ordered:
                if dst != src:
                    self.transport.send(
                        SyncBroadcast(src=src, dst=dst, updates=payload)
                    )
        for sid in ordered:
            self.sites[sid].finish_sync()
        updates: dict[str, int] = {}
        for share in shares.values():
            updates.update(share)
        self.last_sync = SyncRound(
            participants=frozenset(participants), updates=updates, dirty=set(dirty)
        )
        for hook in self.post_sync_hooks:
            hook(self)
        if self.validate:
            self._assert_sync_agreement(participants, updates)
        return updates, dirty

    def _assert_sync_agreement(
        self, participants: set[int], updates: Mapping[str, int]
    ) -> None:
        """Every participant agrees with each object's owner on every
        synchronized value (non-participants are allowed to lag)."""
        if participants == set(self.site_ids):
            self._assert_sites_agree()
            return
        for name in updates:
            owner_value = self.sites[self.locate(name)].engine.peek(name)
            for sid in participants:
                value = self.sites[sid].engine.peek(name)
                if value != owner_value:
                    raise ProtocolError(
                        f"post-sync divergence on {name!r}: participant {sid} "
                        f"has {value}, owner has {owner_value}"
                    )

    def _assert_untouched_locals(
        self, participants: set[int], table: TreatyTable
    ) -> None:
        """Sites outside the participant set must already enforce the
        exact piece the new table assigns them (the incremental
        generator reuses their factors verbatim).  Crashed sites are
        exempt: their volatile treaty is gone by definition -- a
        coordinator that died mid-decision sat the install out, and the
        recovered-treaty oracle holds it to the table's entry once it
        replays its WAL and catches up."""
        for sid in self.site_ids:
            if sid in participants or sid in self.transport.down:
                continue
            installed = self.sites[sid].local_treaty
            have = {c.pretty() for c in installed.constraints} if installed else set()
            expect = {c.pretty() for c in table.local_for(sid).constraints}
            if have != expect:
                raise ProtocolError(
                    f"non-participant site {sid} treaty drifted: "
                    f"{sorted(have)} vs {sorted(expect)}"
                )

    def _assert_sites_agree(self) -> None:
        ref = self._reference_site().state_snapshot()
        names = set(ref)
        for server in self.sites.values():
            names |= set(server.state_snapshot())
        for server in self.sites.values():
            snap = server.state_snapshot()
            for name in names:
                if snap.get(name, 0) != ref.get(name, 0):
                    raise ProtocolError(
                        f"post-sync divergence on {name!r}: site "
                        f"{server.site_id} has {snap.get(name, 0)}, reference "
                        f"has {ref.get(name, 0)}"
                    )

    # -- cleanup-phase building blocks --------------------------------------------
    #
    # The cleanup round decomposes into phases so the sequential path
    # below and the concurrent runtime (repro.protocol.concurrent) can
    # share them: the concurrent driver interleaves the phases of
    # disjoint-closure negotiations instead of running each round
    # start-to-finish.

    def _violation_seed(self, server: SiteServer, result: SiteResult) -> set[str]:
        """Seed of the participant closure: the violated treaty
        factors, everything the aborted attempt tried to write (T'
        re-runs after sync and its write set must be covered), and the
        origin's accumulated dirty set."""
        return (
            set(result.violated_objects)
            | set(result.attempted_writes)
            | set(server.dirty_owned_values())
        )

    def _announce_winner(
        self,
        origin: int,
        tx_name: str,
        participants: set[int],
        timestamp: int = 0,
        txn_seq: int = 0,
    ) -> None:
        """The winning violator announces itself to the participants
        of its negotiation (the trivial election when unopposed)."""
        for sid in sorted(participants):
            if sid != origin:
                self.transport.send(
                    Vote(
                        src=origin,
                        dst=sid,
                        tx_name=tx_name,
                        timestamp=timestamp,
                        txn_seq=txn_seq,
                    )
                )

    def _cleanup_execute(
        self,
        origin: int,
        tx_name: str,
        params: Mapping[str, int] | None,
        participants: set[int],
    ) -> tuple[tuple[int, ...], set[str]]:
        """Run T' in full at every participant; cross-check the logs
        agree and return (reference log, union of written objects)."""
        params_payload = tuple(sorted((params or {}).items()))
        logs: dict[int, tuple[int, ...]] = {}
        written_union: set[str] = set()
        for sid in sorted(participants):
            if sid == origin:
                log, written = self.sites[origin].run_cleanup_transaction(
                    tx_name, params
                )
            else:
                log, written = self.transport.send(
                    CleanupRun(
                        src=origin,
                        dst=sid,
                        tx_name=tx_name,
                        params=params_payload,
                    )
                )
            logs[sid] = log
            written_union |= written
        reference = logs[origin]
        if any(log != reference for log in logs.values()):
            raise ProtocolError(f"cleanup runs of {tx_name} diverged: {logs}")
        return reference, written_union

    def _check_closure_covered(
        self, tx_name: str, written_union: set[str], participants: set[int]
    ) -> None:
        """The closure was computed before T' ran; verify its
        overapproximation covered everything T' actually wrote (owners
        of written objects and sites whose treaty factors depend on
        them must all have participated).  Must run against the
        *pre-install* treaty table."""
        needed = self.generator.sites_touching(written_union)
        needed |= {self.locate(name) for name in written_union}
        needed |= self.treaty_table.sites_for_objects(written_union)
        uncovered = (needed & set(self.site_ids)) - participants
        if uncovered:
            raise ProtocolError(
                f"cleanup of {tx_name} wrote objects involving "
                f"non-participant sites {sorted(uncovered)}"
            )

    def _survivor_complete(
        self,
        round_index: int,
        origin: int,
        participants: set[int],
        tx_name: str,
    ) -> int:
        """Finish a round whose coordinator crashed mid-decision: walk
        the live participants (lowest site first) until one drives the
        Paxos completion to a quorum, and return it as the round's new
        origin.  Raises :class:`QuorumUnreachable` when no survivor can
        complete the round (every live candidate failed, or none are
        left) -- the caller aborts cleanly; the decision either never
        became durable or will be completed after recovery."""
        assert self._paxos is not None
        tried: set[int] = set()
        while True:
            candidates = sorted(
                set(participants) - self.transport.down - tried - {origin}
            )
            if not candidates:
                raise QuorumUnreachable(
                    f"no surviving participant of {sorted(participants)} "
                    "could complete the round"
                )
            survivor = candidates[0]
            tried.add(survivor)
            try:
                self._paxos.complete_as_survivor(
                    survivor, round_index, participants, tx_name
                )
            except UnreachableError:
                # The survivor itself died mid-completion; the next
                # candidate solicits the same durable acceptor state.
                continue
            return survivor

    # -- adaptive reallocation ----------------------------------------------------
    #
    # Demand-proportional slack (Bailis-style coordination avoidance)
    # needs two runtime pieces on top of the 'demand' strategy: the
    # estimator observing the commit trace, and a proactive refresh
    # that rebalances a clause *before* its budget runs out.  The
    # refresh reuses the cleanup round's phases (announce, scoped
    # synchronize, regenerate + install) minus the vote and the T'
    # re-run: nothing aborted, so there is nothing to re-execute.

    def _watermark_breaches(
        self, server: SiteServer, written: frozenset[str] | set[str]
    ) -> set[str]:
        """Objects of every ``<=``-clause of ``server``'s local treaty
        that a commit just pushed below the low-watermark.

        A clause breaches when its remaining slack drops below
        ``watermark`` times the slack it was granted at install time
        (clauses granted less than ``min_headroom`` are exempt -- the
        global slack cannot fund a useful refresh for them).  Only
        clauses touching the write set are checked, via the same
        per-object clause index the commit check uses.
        """
        treaty = server.local_treaty
        if treaty is None or self.adaptive is None:
            return set()
        settings = self.adaptive
        peek = server.engine.peek
        index = treaty._object_index()
        seen: set[int] = set()
        breached: set[str] = set()
        for name in written:
            for con, _check in index.get(name, ()):
                if con.op != "<=" or id(con) in seen:
                    continue
                seen.add(id(con))
                granted = server.install_headroom.get(con)
                if granted is None or granted < settings.min_headroom:
                    continue
                if clause_slack(con, peek) < settings.watermark * granted:
                    for var in con.variables():
                        breached.add(var.name)
        return breached

    def _announce_rebalance(
        self, origin: int, participants: set[int], breached: set[str]
    ) -> None:
        """The refreshing site announces the rebalance to the other
        participants of its closure (the adaptive analogue of the
        winner announcement)."""
        objects = tuple(sorted(breached))
        for sid in sorted(participants):
            if sid != origin:
                self.transport.send(
                    RebalanceRequest(src=origin, dst=sid, objects=objects)
                )

    def _rebalance(self, origin: int, breached: set[str]) -> tuple[int, ...]:
        """One proactive refresh round: scoped sync + demand-weighted
        regeneration over the participant closure of the breached
        clauses.  Returns the participant set (for simulator pricing).

        A refresh is best-effort under faults: the triggering
        transaction already committed, so if the closure includes an
        unreachable site the refresh is simply skipped (empty return)
        -- the watermark re-triggers on a later commit, or the
        violation path handles it the expensive way.
        """
        server = self.sites[origin]
        seed = set(breached) | set(server.dirty_owned_values())
        participants, closure = self._participants_for(origin, seed)
        if participants & self.transport.down:
            self.stats.timeouts += 1
            return ()
        affected = self.generator.objects_touching(closure) | closure
        trace = self.transport.begin("rebalance", origin)
        try:
            # Abortable prefix only (announce + sync), as in the
            # cleanup path: a timeout here precedes any treaty change.
            self._announce_rebalance(origin, participants, breached)
            _updates, dirty = self._synchronize(participants, affected=affected)
        except UnreachableError:
            # Same best-effort contract, discovered the expensive way.
            self.transport.abort(trace)
            self.stats.timeouts += 1
            return ()
        # Commit point: the install must run to completion.  Under the
        # deterministic solver it is all-local (no messages); with a
        # shipped install, a crash mid-phase escapes loudly with the
        # round open rather than being swallowed as a no-op while some
        # participants already hold the new treaty.
        self._install_new_treaty(
            dirty=dirty | seed, participants=participants, origin=origin
        )
        self.transport.end(trace)
        self.stats.rebalances += 1
        return tuple(sorted(participants))

    # -- client API ---------------------------------------------------------------

    def submit(self, tx_name: str, params: Mapping[str, int] | None = None) -> ClusterResult:
        """Run one transaction to completion under the protocol.

        Raises :class:`Unavailable` -- without changing any state or
        treaty -- when the origin site is down, or when the
        transaction violates its treaty and the negotiation's
        participant closure includes an unreachable site (known-down
        sites are refused up front; a crash discovered mid-round
        surfaces as a timeout and aborts the round cleanly).  Every
        other submission proceeds exactly as in the fault-free kernel:
        a crash blocks only the closures that include it.
        """
        if tx_name not in self.tx_home:
            raise ProtocolError(f"unknown transaction {tx_name!r}")
        origin = self.tx_home[tx_name]
        server = self.sites[origin]
        self.stats.submitted += 1
        if self.transport.is_down(origin):
            raise Unavailable(
                f"origin site {origin} is down",
                sites=frozenset({origin}),
                status=Outcome.REFUSED,
            )

        result: SiteResult = server.execute(tx_name, params)
        if result.committed:
            self.stats.committed_local += 1
            self.demand.observe(result.written)
            rebalanced: tuple[int, ...] = ()
            if self.adaptive is not None:
                breached = self._watermark_breaches(server, result.written)
                if breached:
                    rebalanced = self._rebalance(origin, breached)
            return ClusterResult(
                log=result.log,
                site=origin,
                synced=False,
                row_index=result.row_index,
                rebalanced=rebalanced,
            )

        # Cleanup phase: T' was aborted; submit() is one-at-a-time so
        # it wins the election unopposed.  The round is scoped to the
        # participant closure of the violation -- untouched sites
        # neither hear about it nor change state, and their installed
        # treaties stay valid.
        # A violating attempt is demand too -- the re-negotiation's
        # configuration should see the burst that exhausted the budget.
        self.demand.observe(result.attempted_writes)
        seed = self._violation_seed(server, result)
        participants, closure = self._participants_for(origin, seed)
        self._refuse_if_down(participants, f"cleanup of {tx_name}")
        affected = self.generator.objects_touching(closure) | closure
        trace = self.transport.begin("cleanup", origin)
        try:
            # Abortable prefix: nothing irreversible happens before T'
            # re-executes.  The announcement is stateless and the sync
            # exchange only refreshes snapshots with owner-authoritative
            # values, so a vote/sync timeout aborts the round cleanly
            # and the transaction simply retries after recovery.
            self._announce_winner(origin, tx_name, participants)
            updates, dirty = self._synchronize(participants, affected=affected)
        except UnreachableError as exc:
            self.transport.abort(trace)
            self.stats.timeouts += 1
            raise Unavailable(
                f"cleanup of {tx_name} timed out: {exc}",
                sites=frozenset({exc.dst}),
            ) from exc
        # Decision phase (NegotiationSpec attached): make the round's
        # commit decision quorum-durable through Paxos Commit before
        # anything irreversible runs.  The phase extends the abortable
        # prefix -- a round that loses its acceptor quorum aborts
        # cleanly (T' has not run anywhere) -- and removes the
        # coordinator as a single point of failure: if the origin dies
        # mid-quorum, a surviving participant completes the round from
        # the acceptors' logged state and the cluster finishes T' and
        # the install over the live participants.
        decided_origin, live = origin, set(participants)
        if self._paxos is not None:
            try:
                try:
                    self._paxos.decide(origin, trace.index, participants)
                except UnreachableError:
                    if not self.transport.is_down(origin):
                        raise
                    decided_origin = self._survivor_complete(
                        trace.index, origin, participants, tx_name
                    )
            except (QuorumUnreachable, UnreachableError) as exc:
                self.transport.abort(trace)
                self.stats.timeouts += 1
                raise Unavailable(
                    f"cleanup of {tx_name} lost its decision quorum: {exc}",
                    sites=frozenset(self.transport.down) or frozenset({origin}),
                ) from exc
            # The decision is durable: participants that died during
            # the phase re-run T' deterministically at recovery.
            live = set(participants) - self.transport.down
            for down_sid in set(participants) - live:
                self._missed_runs[down_sid] = (tx_name, dict(params or {}))
        # Commit point: from here the round must run to completion.
        # Without a NegotiationSpec, a crash discovered during the T'
        # re-execution or install phases would leave participants
        # divergent (T' commits site by site), so it is *not* converted
        # into a clean Unavailable -- it escapes as UnreachableError
        # with the round still open, which trips the transport's
        # nesting invariant loudly on the next round.  The quorum
        # decision above is how a deployment closes the window that
        # used to need coordinator redo logging: once decided, any
        # participant can finish the round.
        reference, written_union = self._cleanup_execute(
            decided_origin, tx_name, params, live
        )
        self._check_closure_covered(tx_name, written_union, participants)
        # Hooks (e.g. delta rebasing) only rewrite bases/deltas of
        # objects whose deltas were already dirty, and those factors
        # are recomputed anyway, so dirty | written covers everything.
        self._install_new_treaty(
            dirty=dirty | written_union, participants=live, origin=decided_origin
        )
        self.transport.end(trace)
        self.stats.negotiations += 1
        return ClusterResult(
            log=reference,
            site=origin,
            synced=True,
            participants=tuple(sorted(live)),
        )

    def try_submit(
        self, tx_name: str, params: Mapping[str, int] | None = None
    ) -> ClusterResult:
        """:meth:`submit`, with unavailability mapped into the result.

        The facade entry point for callers that branch on
        :class:`~repro.protocol.messages.Outcome` instead of catching
        :class:`Unavailable`: a refused or timed-out submission comes
        back as an empty result carrying ``REFUSED``/``UNAVAILABLE``
        (no state or treaty changed; retry after recovery).
        """
        try:
            return self.submit(tx_name, params)
        except Unavailable as exc:
            return ClusterResult(
                log=(),
                site=self.tx_home[tx_name],
                synced=False,
                status=exc.status,
            )

    def precompile_checks(self) -> int:
        """Warm every compiled hot-path check; returns closures warmed.

        Guards compile at catalog registration and treaty checks
        compile lazily on first use; the simulator calls this up front
        so no measured transaction pays the one-time lowering cost.
        Works for any kernel built on this class (including the
        concurrent runtime).
        """
        warmed = 0
        if self.treaty_table is not None:
            warmed += self.treaty_table.precompile()
        for server in self.sites.values():
            if server.local_treaty is not None:
                server.local_treaty.compiled_check()
                server.local_treaty._object_index()
                warmed += 1
        return warmed

    def escrow_stats(self) -> dict:
        """Cluster-wide escrow fast-path statistics.

        ``eligible_ratio`` is the fraction of treaty installs (over the
        whole run, across every site) that lowered to escrow counters;
        the commit counters aggregate live accounts and every retired
        one, so reinstalls do not erase history.  Deterministic under a
        fixed seed, which is what lets the benchmark gate on it.
        """
        totals: dict[str, int] = {}
        installs = eligible = sites_with_treaty = sites_on_escrow = 0
        for server in self.sites.values():
            installs += server.escrow_installs + server.escrow_ineligible_installs
            eligible += server.escrow_installs
            if server.local_treaty is not None:
                sites_with_treaty += 1
                if server.escrow is not None:
                    sites_on_escrow += 1
            for key, value in server.escrow_stats().items():
                totals[key] = totals.get(key, 0) + value
        return {
            "installs": installs,
            "eligible_installs": eligible,
            "eligible_ratio": round(eligible / installs, 5) if installs else 0.0,
            "sites_with_treaty": sites_with_treaty,
            "sites_on_escrow": sites_on_escrow,
            **totals,
        }

    def classifier_stats(self) -> dict:
        """Cluster-wide static-tier (path-check) statistics.

        ``free_ratio`` is the fraction of treaty-bearing executions
        that bypassed the check entirely (``free`` + monotone-safe
        ``absorbed`` paths); ``checks_per_commit`` is the mean number
        of treaty clauses left in scope per execution -- the quantity
        path-sensitivity shrinks and the benchmark gates.  Both are
        deterministic under a fixed seed.
        """
        totals: dict[str, int] = {}
        for server in self.sites.values():
            for key, value in server.check_stats.items():
                totals[key] = totals.get(key, 0) + value
        checked = totals.get("checked", 0)
        bypassed = totals.get("free", 0) + totals.get("absorbed", 0)
        return {
            **totals,
            "free_ratio": round(bypassed / checked, 5) if checked else 0.0,
            "checks_per_commit": (
                round(totals.get("clauses_in_scope", 0) / checked, 5)
                if checked
                else 0.0
            ),
        }

    def fairness_stats(self) -> dict:
        """Cluster-wide arbitration-fairness statistics.

        Derived from the credit ledger: the active policy, contested
        elections resolved, the longest consecutive-loss streak any
        site suffered (the starvation measure the contention benchmark
        gates), and per-site win/loss counts, streaks, live credit
        balances, and wait percentiles (elections lost before finally
        winning).  Recorded under either policy, so a priority-only
        run and a credit run expose comparable numbers.  The
        sequential kernel resolves every election unopposed; real
        contention (and hence nonzero streaks) comes from the
        concurrent runtime's vote phase.
        """
        return self.fairness.stats()

    def free_transactions(self) -> frozenset[str]:
        """Transactions whose *every* execution path at their home site
        bypasses the treaty check under the currently installed
        treaties (the classifier's FREE verdict).  The simulator reads
        this once at run start to price such transactions at zero
        check cost."""
        out: set[str] = set()
        for tx_name, home in self.tx_home.items():
            checks = self.sites[home].path_checks.get(tx_name)
            if checks and all(check.bypasses_check for check in checks):
                out.add(tx_name)
        return frozenset(out)

    def check_mechanism(self) -> str:
        """The commit-check mechanism this kernel is running on:
        ``"escrow"`` when every treaty-bearing site holds lowered
        headroom counters, ``"compiled"`` otherwise.  The simulator
        reads this once at run start to price the per-commit check
        service component."""
        bearing = [s for s in self.sites.values() if s.local_treaty is not None]
        if bearing and all(s.escrow is not None for s in bearing):
            return "escrow"
        return "compiled"

    # -- inspection ----------------------------------------------------------------

    def global_state(self) -> dict[str, int]:
        """The authoritative global database: each object from its owner."""
        out: dict[str, int] = {}
        for sid, server in self.sites.items():
            for name, value in server.engine.store.items():
                if self.locate(name) == sid:
                    out[name] = value
        return out

    def force_synchronize(self) -> None:
        """External sync request (used at experiment boundaries).

        A true global barrier: every site participates and exchanges
        its complete owned partition, so even values whose owners last
        synchronized inside a narrower participant set converge
        everywhere.  Like any global barrier it is unavailable while
        any site is down.
        """
        origin = self.site_ids[0]
        participants = set(self.site_ids)
        self._refuse_if_down(participants, "global synchronization")
        with self.transport.negotiation("sync", origin):
            _updates, dirty = self._synchronize(participants, full=True)
            self._install_new_treaty(dirty=dirty, participants=participants, origin=origin)

    # -- crash-stop and recovery --------------------------------------------------
    #
    # The fault model is crash-stop with durable storage: a crashed
    # site loses its *volatile* protocol state (the installed
    # LocalTreaty object, the adaptive headroom snapshot) but keeps
    # its storage engine (the database -- durable through the engine's
    # journaling) and its treaty WAL.  Recovery replays the WAL,
    # announces a Rejoin, and re-syncs the factor state its treaty
    # generation depends on; the validate mode proves the replayed
    # treaty is byte-identical to what the cluster believes the site
    # holds, and that H1/H2 still hold afterwards.

    def crash_site(self, sid: int) -> None:
        """Crash-stop one site: cut it off the transport and lose its
        volatile treaty state.  Everything it owned stays durable (the
        engine's store and the WAL); in-flight rounds that need it
        will time out and abort."""
        if sid not in self.sites:
            raise ProtocolError(f"unknown site {sid}")
        self.transport.crash(sid)
        server = self.sites[sid]
        server.local_treaty = None
        server.install_headroom = {}
        server.treaty_round = -1
        server.path_checks = {}
        server.drop_escrow()

    def recover_site(self, sid: int) -> tuple[int, ...]:
        """Restart a crashed site: WAL replay, Rejoin, scoped re-sync.

        1. **Replay** the durable treaty WAL (torn tail dropped): the
           site resumes enforcing exactly the local treaty its peers
           believe it holds, with the recorded headroom snapshot.
        2. **Rejoin**: announce recovery to the reachable sites whose
           treaty factors it shares (``wal_round`` lets peers spot a
           stale epoch -- impossible here because rounds touching this
           site's factors were refused while it was down, which the
           validate mode double-checks).
        3. **Re-sync factor state**: a scoped synchronization over the
           rejoiner's closure refreshes its snapshots of remote
           objects feeding its treaty-generation instances.

        Returns the rejoin round's participant set (for simulator
        pricing).  In validate mode, asserts the replayed treaty is
        identical to the cluster's treaty table entry and that H1/H2
        hold after the rejoin.
        """
        if sid not in self.sites:
            raise ProtocolError(f"unknown site {sid}")
        if not self.transport.is_down(sid):
            raise ProtocolError(f"site {sid} is not down")
        server = self.sites[sid]
        replayed_round = server.replay_wal()
        # A round this site coordinated (or participated in) may have
        # been completed by a survivor while it was down: the decision
        # was quorum-durable, so the live participants ran T' and
        # installed the round's treaty without it.  Catch up
        # deterministically -- the coordinator crash window is
        # post-synchronization, so the replayed state *is* the
        # synchronized state and re-running T' reproduces the round's
        # writes exactly; then adopt the round's treaty entry (logged
        # to the WAL like any install) before rejoining.
        missed = self._missed_runs.pop(sid, None)
        if missed is not None:
            missed_tx, missed_params = missed
            server.run_cleanup_transaction(missed_tx, missed_params)
            if self.treaty_table is not None:
                server.install_treaty(
                    self.treaty_table.local_for(sid),
                    round_number=self.treaty_table.round_number,
                )
        self.transport.recover(sid)
        self.stats.recoveries += 1

        seed = set(server.dirty_owned_values())
        if server.local_treaty is not None:
            seed |= server.local_treaty.objects()
        participants, closure = self._participants_for(sid, seed)
        # Peers still down sit the rejoin out; their factor state
        # refreshes when they themselves rejoin.
        participants -= self.transport.down
        affected = self.generator.objects_touching(closure) | closure
        try:
            with self.transport.negotiation("rejoin", sid):
                for dst in sorted(participants - {sid}):
                    self.transport.send(
                        Rejoin(src=sid, dst=dst, wal_round=replayed_round),
                    )
                self._synchronize(participants, affected=affected)
        except UnreachableError as exc:
            # A peer became unreachable during the rejoin (lossy link,
            # fresh crash).  The site itself is safely back -- its WAL
            # treaty is installed and correct, and stale remote
            # snapshots are legal under the execution model -- but the
            # factor re-sync did not complete; surface it as the typed
            # unavailability so callers can retry the rejoin round.
            self.stats.timeouts += 1
            raise Unavailable(
                f"rejoin of site {sid} timed out: {exc}",
                sites=frozenset({exc.dst}),
            ) from exc

        if self.validate:
            self._assert_recovered_treaty(sid)
            if self.treaty_table is not None and not check_h1_algebraic(
                self.treaty_table.templates, self.treaty_table.configuration
            ):
                raise ProtocolError(f"H1 violated after site {sid} rejoined")
            self._assert_h2_locally(participants, self.treaty_table.round_number)
        return tuple(sorted(participants))

    def _assert_recovered_treaty(self, sid: int) -> None:
        """The WAL-replayed treaty must match the treaty table's entry
        for the site exactly -- recovery must not resurrect a stale
        epoch or lose clauses (the acceptance check of WAL-backed
        durability)."""
        if self.treaty_table is None:
            return
        expected = {c.pretty() for c in self.treaty_table.local_for(sid).constraints}
        replayed_treaty = self.sites[sid].local_treaty
        replayed = (
            {c.pretty() for c in replayed_treaty.constraints}
            if replayed_treaty is not None
            else set()
        )
        if replayed != expected:
            raise ProtocolError(
                f"site {sid} rejoined with a treaty that does not match the "
                f"cluster's: {sorted(replayed)} vs {sorted(expected)}"
            )
