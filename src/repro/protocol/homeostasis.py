"""The homeostasis protocol coordinator (Section 3.3).

Rounds have three phases:

- **treaty generation**: look up the joint-table row psi matching the
  synchronized database, linearize it (Appendix C.1), pin objects
  remote-read by the matched residuals (Appendix C.3 / Assumption
  4.1), split into per-site templates, instantiate a configuration
  (Theorem 4.3 default, demarcation equal-split, or Algorithm 1
  optimized), install local treaties at every site;

- **normal execution**: sites run stored procedures disconnected;
  each commit checks only the site's local treaty;

- **cleanup**: on a violation, the aborted transaction T' wins the
  vote (the kernel is sequential, so there is exactly one violator;
  the simulator serializes racing violators and re-runs losers), all
  sites broadcast their dirty owned objects, everyone installs the
  union, T' is executed in full at every site, and a new round
  begins.

The kernel is synchronous -- it performs the real state changes and
*counts* the messages a distributed deployment would send; the
discrete-event simulator prices those counts with RTTs.

Treaty generation is *incremental*: factors of the joint table whose
objects did not change since the previous round keep their clauses
and configuration verbatim (their per-factor treaty is a pure
function of factor-local state, so regeneration would reproduce it;
for the stochastic optimizer the cached configuration remains one of
the valid optima).  This is an engineering optimization -- validity
(H1/H2) is untouched -- that turns per-round cost from O(database)
into O(touched factors).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from repro.analysis.residual import residual_reads
from repro.analysis.symbolic import SymbolicTable
from repro.lang.ast import Transaction, transaction_reads, transaction_writes
from repro.logic.linear import LinearConstraint, LinearExpr
from repro.logic.linearize import LinearizedTreaty, linearize_for_treaty
from repro.logic.terms import ObjT
from repro.protocol.messages import MessageStats
from repro.protocol.site import SiteResult, SiteServer
from repro.treaty.config import (
    Configuration,
    default_configuration,
    equal_split_configuration,
)
from repro.treaty.optimize import (
    OptimizerStats,
    WorkloadModel,
    configure_from_samples,
    sample_executions,
)
from repro.treaty.table import TreatyTable
from repro.treaty.templates import TreatyTemplates, build_templates

#: Recognized treaty strategies.
TreatyStrategy = str  # 'default' | 'equal-split' | 'optimized'


class ProtocolError(Exception):
    """Violations of protocol invariants (indicate bugs, not workload)."""


@dataclass
class ClusterResult:
    """What the client observes for one submitted transaction."""

    log: tuple[int, ...]
    site: int
    synced: bool  # did this transaction trigger a treaty negotiation?
    row_index: int | None = None


@dataclass
class OptimizerSettings:
    """Algorithm 1 knobs (Appendix C.2)."""

    model: WorkloadModel
    lookahead: int = 20
    cost_factor: int = 3
    engine: str = "fast"
    rng: random.Random = field(default_factory=lambda: random.Random(0))


@dataclass
class _InstanceTreaty:
    """Cached per-ground-instance treaty piece."""

    constraints: list[LinearConstraint]
    #: per constraint: site -> configuration value
    per_clause_config: list[dict[int, int]]
    pinned: set


@dataclass
class TreatyGenerator:
    """Builds (incrementally) a fresh treaty table from a synchronized
    database.

    The generator works *lazily* over the per-ground-instance symbolic
    tables rather than a materialized joint table: the joint row
    matching the current database is, by the cross-product
    construction of Section 2.2, exactly the conjunction of the rows
    each member table matches, so the conjunction can be assembled
    per-instance without ever materializing the product (whose size
    is exponential for workloads like TPC-C where one transaction
    spans several otherwise-independent object groups).
    """

    ground_tables: list[tuple[SymbolicTable, int]]  # (table, home site)
    locate: Callable[[str], int]
    sites: tuple[int, ...]
    strategy: TreatyStrategy = "default"
    optimizer: OptimizerSettings | None = None
    #: family transactions, for optimizer workload simulation
    families: dict[str, Transaction] = field(default_factory=dict)
    arrays: Mapping[str, tuple[int, ...]] = field(default_factory=dict)
    last_optimizer_stats: OptimizerStats | None = None
    #: cumulative count of instance recomputations (observability)
    instances_recomputed: int = 0

    _cache: dict[int, _InstanceTreaty] = field(default_factory=dict)
    _instance_objects: list[set[str]] | None = None
    #: value-keyed memo: an instance piece is a function of the values
    #: of the objects it depends on, and stock levels recur across
    #: refill cycles, so pieces are reused across rounds.  (For the
    #: stochastic optimizer this reuses one valid optimum instead of
    #: re-sampling; H1/H2 validity is a per-piece property.)
    _memo: dict[tuple[int, tuple[int, ...]], _InstanceTreaty] = field(
        default_factory=dict
    )
    _instance_keys: list[tuple[str, ...]] | None = None
    #: workload samples shared by all instances within one generate()
    _sampled_runs: list[list[dict[str, int]]] | None = None

    # -- instance/object indexing -------------------------------------------------

    def _objects_of_instance(self, idx: int) -> set[str]:
        """Objects whose values the instance's treaty piece depends on.

        These are exactly (a) objects mentioned by any row guard --
        they select the row and parameterize clause bounds/configs --
        and (b) remote reads of any row residual -- they become
        Appendix C.3 equality pins at their current values.  Objects
        the instance merely *writes* or reads locally do not influence
        the generated piece, so changes to them must not trigger
        recomputation (e.g. a New Order bumps its district's
        unfulfilled-order count, but its stock treaty is untouched).
        """
        if self._instance_objects is None:
            self._instance_objects = []
            for table, home in self.ground_tables:
                names: set[str] = set()
                for row in table.rows:
                    for obj in row.guard.objects():
                        names.add(obj.name)
                    for indexed in row.guard.indexed_objects():
                        grounded = indexed.try_ground()
                        if grounded is None:
                            raise ProtocolError(
                                f"ground instance {table.transaction.name} has a "
                                "parameterized guard; ground the workload fully"
                            )
                        names.add(grounded.name)
                    for read in residual_reads(row.residual):
                        if isinstance(read, str) and self.locate(read) != home:
                            names.add(read)
                self._instance_objects.append(names)
        return self._instance_objects[idx]

    # -- per-instance computation ---------------------------------------------------

    def _compute_instance(
        self,
        idx: int,
        getobj: Callable[[str], int],
        db_snapshot: Mapping[str, int],
    ) -> _InstanceTreaty:
        self.instances_recomputed += 1
        table, home = self.ground_tables[idx]
        row = table.lookup(getobj)
        lin = linearize_for_treaty(row.guard, getobj)
        constraints = list(lin.constraints)
        pinned = set(lin.pinned)
        # Appendix C.3: pin objects remote-read by the matched residual.
        pinned_names: set[str] = set()
        for read in residual_reads(row.residual):
            if not isinstance(read, str):
                raise ProtocolError(
                    f"ground instance {table.transaction.name} has "
                    f"parameterized residual read {read!r}"
                )
            if self.locate(read) != home and read not in pinned_names:
                pinned_names.add(read)
                constraints.append(
                    LinearConstraint.make(
                        LinearExpr.variable(ObjT(read)), "=", getobj(read)
                    )
                )
                pinned.add(ObjT(read))

        constraints = [c for c in constraints if not c.is_trivially_true()]
        lin_piece = LinearizedTreaty(constraints=constraints, pinned=pinned)
        templates = build_templates(lin_piece, self.locate, self.sites)
        config = self._configure(templates, getobj, db_snapshot)
        per_clause = [
            {site: config.values[clause.config_var(site)] for site in clause.sites}
            for clause in templates.clauses
        ]
        return _InstanceTreaty(
            constraints=constraints, per_clause_config=per_clause, pinned=pinned
        )

    def _configure(
        self, templates: TreatyTemplates, getobj, db_snapshot
    ) -> Configuration:
        if self.strategy == "default":
            return default_configuration(templates, getobj)
        if self.strategy == "equal-split":
            return equal_split_configuration(templates, getobj)
        if self.strategy == "optimized":
            if self.optimizer is None:
                raise ProtocolError("strategy 'optimized' requires OptimizerSettings")
            if self._sampled_runs is None:
                self._sampled_runs = sample_executions(
                    db_snapshot,
                    self.families,
                    self.optimizer.model,
                    self.optimizer.lookahead,
                    self.optimizer.cost_factor,
                    self.optimizer.rng,
                    self.arrays,
                )
            config, stats = configure_from_samples(
                templates, getobj, self._sampled_runs, engine=self.optimizer.engine
            )
            self.last_optimizer_stats = stats
            return config
        raise ProtocolError(f"unknown treaty strategy {self.strategy!r}")

    # -- assembly --------------------------------------------------------------------

    def generate(
        self,
        getobj: Callable[[str], int],
        db_snapshot: Mapping[str, int],
        round_number: int,
        dirty: set[str] | None = None,
    ) -> TreatyTable:
        """Build the treaty table; with ``dirty`` given, reuse cached
        instances whose objects are untouched.

        Assembly dedups identical clauses and drops ``<=``-clauses
        dominated by a tighter clause over the same expression (e.g.
        grounding one transaction over quantities 1..5 yields the
        nested guards ``stock >= 11 .. stock >= 15``; only the tightest
        needs enforcing, and it implies the rest).
        """
        self._sampled_runs = None  # fresh samples per generation
        if self._instance_keys is None:
            self._instance_keys = [
                tuple(sorted(self._objects_of_instance(i)))
                for i in range(len(self.ground_tables))
            ]
        for idx in range(len(self.ground_tables)):
            if (
                dirty is not None
                and idx in self._cache
                and not (self._objects_of_instance(idx) & dirty)
            ):
                continue
            memo_key = (idx, tuple(getobj(n) for n in self._instance_keys[idx]))
            piece = self._memo.get(memo_key)
            if piece is None:
                piece = self._compute_instance(idx, getobj, db_snapshot)
                self._memo[memo_key] = piece
            self._cache[idx] = piece

        # keyed by coefficient vector + op: keep the tightest bound.
        chosen: dict[tuple, tuple[LinearConstraint, dict[int, int]]] = {}
        order: list[tuple] = []
        pinned: set = set()
        for idx in range(len(self.ground_tables)):
            piece = self._cache[idx]
            pinned |= piece.pinned
            for con, cfg in zip(piece.constraints, piece.per_clause_config):
                key = (con.expr.coeffs, con.op)
                incumbent = chosen.get(key)
                if incumbent is None:
                    chosen[key] = (con, cfg)
                    order.append(key)
                    continue
                held, _ = incumbent
                if con.op == "=" and held.bound != con.bound:
                    raise ProtocolError(
                        f"contradictory equality clauses: {held.pretty()} "
                        f"vs {con.pretty()}"
                    )
                if con.op == "<=" and con.bound < held.bound:
                    chosen[key] = (con, cfg)

        constraints = [chosen[key][0] for key in order]
        config_rows = [chosen[key][1] for key in order]
        lin_all = LinearizedTreaty(constraints=constraints, pinned=pinned)
        templates = build_templates(lin_all, self.locate, self.sites)
        config = Configuration(strategy=self.strategy)
        for clause, cfg in zip(templates.clauses, config_rows):
            for site in clause.sites:
                config.values[clause.config_var(site)] = cfg[site]
        return TreatyTable.assemble(lin_all, templates, config, round_number=round_number)


@dataclass
class ClusterStats:
    """Aggregate protocol statistics."""

    submitted: int = 0
    committed_local: int = 0
    negotiations: int = 0
    rounds: int = 0
    messages: MessageStats = field(default_factory=MessageStats)

    @property
    def sync_ratio(self) -> float:
        if self.submitted == 0:
            return 0.0
        return self.negotiations / self.submitted


class HomeostasisCluster:
    """K sites executing a known workload under the homeostasis protocol."""

    def __init__(
        self,
        site_ids: Sequence[int],
        locate: Callable[[str], int],
        initial_db: Mapping[str, int],
        tables: Sequence[SymbolicTable],
        tx_home: Mapping[str, int],
        generator: TreatyGenerator,
        arrays: Mapping[str, tuple[int, ...]] | None = None,
        post_sync_hooks: Sequence[Callable[["HomeostasisCluster"], None]] = (),
        validate: bool = False,
    ) -> None:
        self.site_ids = tuple(site_ids)
        self.locate = locate
        self.tx_home = dict(tx_home)
        self.generator = generator
        self.stats = ClusterStats()
        self.treaty_table: TreatyTable | None = None
        self.post_sync_hooks = list(post_sync_hooks)
        self.validate = validate
        arrays = arrays or {}

        self.sites: dict[int, SiteServer] = {}
        for sid in self.site_ids:
            server = SiteServer(site_id=sid, locate=locate, arrays=arrays)
            for table in tables:
                server.catalog.register(table)
            server.engine.store.apply(initial_db)
            server.engine.checkpoint()
            self.sites[sid] = server

        self._install_new_treaty(dirty=None)

    # -- round machinery ----------------------------------------------------------

    def _reference_site(self) -> SiteServer:
        return self.sites[self.site_ids[0]]

    def _install_new_treaty(self, dirty: set[str] | None) -> None:
        ref = self._reference_site()
        getobj = ref.engine.peek
        snapshot = ref.engine.store.data  # read-only use
        self.stats.rounds += 1
        table = self.generator.generate(getobj, snapshot, self.stats.rounds, dirty=dirty)
        self.treaty_table = table
        for sid, server in self.sites.items():
            server.install_treaty(table.local_for(sid))
        self.stats.messages.record_treaty_round(
            len(self.site_ids), deterministic_solver=True
        )

    def _synchronize(self) -> set[str]:
        updates: dict[str, int] = {}
        for server in self.sites.values():
            updates.update(server.dirty_owned_values())
        for server in self.sites.values():
            server.apply_sync(updates)
        self.stats.messages.record_sync_round(len(self.site_ids))
        for hook in self.post_sync_hooks:
            hook(self)
        if self.validate:
            self._assert_sites_agree()
        return set(updates)

    def _assert_sites_agree(self) -> None:
        ref = self._reference_site().state_snapshot()
        names = set(ref)
        for server in self.sites.values():
            names |= set(server.state_snapshot())
        for server in self.sites.values():
            snap = server.state_snapshot()
            for name in names:
                if snap.get(name, 0) != ref.get(name, 0):
                    raise ProtocolError(
                        f"post-sync divergence on {name!r}: site "
                        f"{server.site_id} has {snap.get(name, 0)}, reference "
                        f"has {ref.get(name, 0)}"
                    )

    # -- client API ---------------------------------------------------------------

    def submit(self, tx_name: str, params: Mapping[str, int] | None = None) -> ClusterResult:
        """Run one transaction to completion under the protocol."""
        if tx_name not in self.tx_home:
            raise ProtocolError(f"unknown transaction {tx_name!r}")
        origin = self.tx_home[tx_name]
        server = self.sites[origin]
        self.stats.submitted += 1

        result: SiteResult = server.execute(tx_name, params)
        if result.committed:
            self.stats.committed_local += 1
            return ClusterResult(
                log=result.log, site=origin, synced=False, row_index=result.row_index
            )

        # Cleanup phase: T' was aborted; it wins the (trivial) vote.
        self.stats.negotiations += 1
        self.stats.messages.record_vote(len(self.site_ids))
        dirty = self._synchronize()
        logs: dict[int, tuple[int, ...]] = {}
        written_union: set[str] = set()
        for sid, other in self.sites.items():
            log, written = other.run_cleanup_transaction(tx_name, params)
            logs[sid] = log
            written_union |= written
        reference = logs[origin]
        if any(log != reference for log in logs.values()):
            raise ProtocolError(f"cleanup runs of {tx_name} diverged: {logs}")
        # Hooks (e.g. delta rebasing) only rewrite bases/deltas of
        # objects whose deltas were already dirty, and those factors
        # are recomputed anyway, so dirty | written covers everything.
        self._install_new_treaty(dirty=dirty | written_union)
        return ClusterResult(log=reference, site=origin, synced=True)

    # -- inspection ----------------------------------------------------------------

    def global_state(self) -> dict[str, int]:
        """The authoritative global database: each object from its owner."""
        out: dict[str, int] = {}
        for sid, server in self.sites.items():
            for name, value in server.engine.store.items():
                if self.locate(name) == sid:
                    out[name] = value
        return out

    def force_synchronize(self) -> None:
        """External sync request (used at experiment boundaries)."""
        dirty = self._synchronize()
        self._install_new_treaty(dirty=dirty)
