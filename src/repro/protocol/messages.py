"""Inter-site message vocabulary and accounting.

The correctness kernel executes synchronously but *counts* every
message the real distributed system would send; the discrete-event
simulator prices the same counts with network latencies.  The message
complexity of one treaty negotiation matches Section 5.1: "every
treaty negotiation requires two rounds of global communication -- one
for synchronizing database state across nodes and one for
communicating the new treaties" (the second round is elided when the
solver is deterministic, which ours is; we count it separately so
both accounting styles are available).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class MessageStats:
    """Counters for the communication a protocol run would incur."""

    sync_broadcasts: int = 0  # state-synchronization messages
    treaty_updates: int = 0  # new-treaty propagation messages
    vote_messages: int = 0  # violation-winner election messages
    prepare_messages: int = 0  # 2PC phase-one messages
    decision_messages: int = 0  # 2PC phase-two messages
    negotiations: int = 0  # treaty negotiation events (round ends)

    def total(self) -> int:
        return (
            self.sync_broadcasts
            + self.treaty_updates
            + self.vote_messages
            + self.prepare_messages
            + self.decision_messages
        )

    def record_sync_round(self, num_sites: int) -> None:
        """All-to-all state exchange: each site broadcasts to the rest."""
        self.sync_broadcasts += num_sites * (num_sites - 1)
        self.negotiations += 1

    def record_treaty_round(self, num_sites: int, deterministic_solver: bool) -> None:
        """Treaty propagation; free when every site solves identically."""
        if not deterministic_solver:
            self.treaty_updates += num_sites - 1

    def record_vote(self, num_sites: int) -> None:
        self.vote_messages += num_sites - 1

    def record_2pc(self, num_sites: int) -> None:
        """One prepare round and one decision round across replicas."""
        self.prepare_messages += num_sites - 1
        self.decision_messages += num_sites - 1
