"""Inter-site message vocabulary.

The correctness kernel executes synchronously but sends every message
the real distributed system would send through a typed
:class:`~repro.protocol.transport.Transport`; the discrete-event
simulator prices the recorded trace with per-edge network latencies.
The message complexity of one treaty negotiation matches Section 5.1:
"every treaty negotiation requires two rounds of global communication
-- one for synchronizing database state across nodes and one for
communicating the new treaties" (the second round is elided when the
solver is deterministic, because every participant recomputes the
identical treaty locally; with a nondeterministic solver the
coordinator ships :class:`TreatyInstall` messages instead).

With participant-scoped synchronization the "global" in the quote
shrinks to the participant set of the violation: a cleanup round over
``p`` participants costs ``p*(p-1)`` :class:`SyncBroadcast` messages,
``p-1`` votes and ``p-1`` cleanup-run instructions -- independent of
the cluster size.

When several transactions violate treaties in the same window (the
concurrent runtime), the vote phase is real: each racing violator
broadcasts its :class:`Vote` -- carrying its ``(timestamp, site,
txn_seq)`` priority tuple -- to every other contender, the lowest
tuple wins deterministically, and each loser concedes with a
:class:`VoteReply` before aborting and re-running after the winner's
negotiation installs new treaties.

With a :class:`~repro.protocol.paxos_commit.NegotiationSpec`
attached, the round's commit decision itself becomes non-blocking:
the coordinator drives a Paxos Commit decision phase
(:class:`Phase2a` accept requests to a 2F+1 acceptor set,
:class:`Phase2b` acks back) between synchronization and the T'
re-run, and a surviving participant can finish a round whose
coordinator crashed mid-quorum (:class:`Complete`).

Two message families sit outside the violation path: the adaptive
subsystem's :class:`RebalanceRequest` (a proactive treaty refresh,
no abort involved) and the fault-tolerant runtime's :class:`Rejoin`
(a recovered site re-entering the cluster after replaying its
write-ahead log).  The 2PC baseline speaks :class:`Prepare` /
:class:`Decision` over the same transport so its message complexity
is measured by the same trace.

Each message class documents its **sender**, **receiver(s)**, and
**when** it is sent; together they specify the whole wire protocol
(see ``docs/ARCHITECTURE.md`` for a worked message-flow example).

:class:`MessageStats` is a *derived view* over a transport trace, not
a set of live counters: the kernel never increments anything by hand,
it just sends messages.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.treaty.table import LocalTreaty


class Outcome(enum.Enum):
    """Final status of one submitted transaction, shared by every
    result surface (:class:`~repro.protocol.homeostasis.ClusterResult`,
    :class:`~repro.protocol.concurrent.WindowOutcome`, and the serve
    wire protocol), so callers stop fingerprinting exception types
    against ``failed`` flags.

    - ``COMMITTED``: the transaction's effects are durable -- either a
      local disconnected commit or a commit through a cleanup round.
    - ``ABORTED``: the submission was rejected before any protocol
      round ran (e.g. an unknown transaction name at the serve layer);
      no state changed.
    - ``REFUSED``: a site the submission needs is *known* to be down
      (its origin, or a known-crashed member of its negotiation's
      participant closure), so the round was refused up front without
      wasting messages.  Retry after recovery.
    - ``UNAVAILABLE``: a crash was discovered mid-round by waiting out
      a timeout; the round aborted cleanly and nothing changed.  Retry
      after recovery.
    """

    COMMITTED = "committed"
    ABORTED = "aborted"
    UNAVAILABLE = "unavailable"
    REFUSED = "refused"


@dataclass(frozen=True)
class Message:
    """One directed inter-site message (src and dst are site ids)."""

    src: int
    dst: int

    @property
    def edge(self) -> tuple[int, int]:
        """The undirected network edge this message crosses."""
        a, b = self.src, self.dst
        return (a, b) if a <= b else (b, a)


@dataclass(frozen=True)
class SyncBroadcast(Message):
    """State exchange: the sender's share of the round's update set
    (its dirty owned objects plus its owned objects that feed
    recomputed treaty factors).

    **Sender**: every participant of a synchronization round.
    **Receiver**: every other participant (all-to-all, ``p*(p-1)``
    messages for ``p`` participants).  **When**: the synchronize phase
    of any cleanup, forced-sync, rebalance, or rejoin round.
    """

    updates: tuple[tuple[str, int], ...] = ()


@dataclass(frozen=True)
class TreatyInstall(Message):
    """New local treaty shipped to a participant.

    **Sender**: the round's origin (coordinator).  **Receiver**: each
    other participant of the negotiation.  **When**: the install phase
    of a negotiation, and only when the treaty solver is
    nondeterministic -- a deterministic solver lets every participant
    regenerate the identical treaty locally, eliding this round
    (Section 5.1).  The receiving site **logs the install to its
    write-ahead log before acknowledging**, so a crash between the
    ack and the next checkpoint cannot lose the treaty.
    """

    round_number: int = 0
    treaty: "LocalTreaty | None" = None


@dataclass(frozen=True)
class Vote(Message):
    """Violation-winner election message for the cleanup phase.

    **Sender**: a contender (racing violator, or -- in the adaptive
    runtime -- a committed transaction whose refresh desire contends).
    **Receiver**: every other contender of its conflict group, then
    the non-contender participants of the winner's closure.  **When**:
    the vote phase, after optimistic execution and before any state
    is exchanged.

    ``(timestamp, -credit, src, txn_seq)`` is the sender's priority
    tuple; among racing violators the lowest tuple wins.  ``credit``
    is the sender's accrued priority credit under the budgeted-credit
    arbitration policy (always 0 under the legacy priority policy):
    folding it in *ahead of the site id* closes the starvation hole
    where equal-timestamp ties always favored low-numbered sites.
    The credit rides inside the bid so the election stays a
    deterministic function of the exchanged messages.  A winner also
    broadcasts its Vote to the non-contender participants of its
    negotiation, announcing which transaction the round re-runs.
    """

    tx_name: str = ""
    #: arrival timestamp of the violating transaction (window order)
    timestamp: int = 0
    #: cluster-wide transaction sequence number (final tiebreak)
    txn_seq: int = 0
    #: accrued priority credit bid by the sender (credit policy only)
    credit: int = 0


@dataclass(frozen=True)
class VoteReply(Message):
    """Arbitration reply: a losing contender concedes the election.

    **Sender**: each losing contender of a conflict group.
    **Receiver**: the group's winner.  **When**: immediately after the
    vote exchange, before the winner's negotiation begins.

    The loser will abort and re-run after the winner's negotiation
    installs new treaties (a losing *refresh* desire instead re-checks
    its watermark next wave).  A concession is never withheld -- the
    election is a deterministic function of the exchanged priority
    tuples, so every contender computes the same winner."""

    winner_site: int = -1
    winner_txn: int = -1


@dataclass(frozen=True)
class RebalanceRequest(Message):
    """Proactive treaty-refresh announcement (adaptive reallocation).

    **Sender**: a site whose remaining slack on a treaty clause fell
    below the low-watermark.  **Receiver**: each other participant of
    the refresh's closure.  **When**: right after the triggering
    commit, before the scoped synchronization; the receiver logs the
    request to its write-ahead log before acknowledging.

    Sent by a site whose remaining slack on a treaty clause fell below
    the low-watermark *before* any violation occurred: the origin asks
    the participants of the affected factors to run a scoped
    synchronization + treaty regeneration round so the demand-weighted
    configuration can shift unused budget from cold sites to the hot
    one.  ``objects`` names the clause objects that breached the
    watermark (the seed of the participant closure).  No transaction
    aborts and no cleanup re-run happens -- the round is sync +
    install only.
    """

    objects: tuple[str, ...] = ()


@dataclass(frozen=True)
class CleanupRun(Message):
    """Instruction to re-run the winning transaction T' in full on the
    synchronized state (carries the transaction id and parameters).

    **Sender**: the round's origin (the winner's site).  **Receiver**:
    each other participant.  **When**: the execute phase of a cleanup
    round, after state synchronization; the reply carries the
    ``(log, written)`` pair the coordinator cross-checks against its
    own run (T' is deterministic, so all runs must agree).
    """

    tx_name: str = ""
    params: tuple[tuple[str, int], ...] = ()


@dataclass(frozen=True)
class Rejoin(Message):
    """A recovered site announces it is re-entering the cluster.

    **Sender**: a site that crash-stopped, restarted, and replayed its
    write-ahead log (its installed treaty is already restored
    locally).  **Receiver**: each other participant of its rejoin
    round -- the sites whose treaty factors it shares.  **When**: at
    recovery, before the scoped re-synchronization that refreshes the
    rejoiner's snapshots of remote factor state.  ``wal_round`` is the
    treaty round number the WAL replayed to, so peers can detect a
    site rejoining with a stale (pre-crash) treaty epoch.
    """

    wal_round: int = -1


@dataclass(frozen=True)
class Phase2a(Message):
    """Paxos Commit accept-request: the coordinator (or a completing
    survivor) asks an acceptor to make the round's verdicts durable.

    **Sender**: the negotiation's coordinator at ballot 0; a surviving
    participant at a higher ballot when completing a round whose
    coordinator crashed.  **Receiver**: each remote member of the
    round's 2F+1 acceptor set (acceptors are co-located on participant
    sites; the sender's own acceptor accepts locally).  **When**: the
    decision phase of a quorum-negotiated cleanup round, after state
    synchronization and before T' re-executes -- the Gray & Lamport
    replacement for the single-coordinator commit decision.

    ``verdicts`` carries one ``(participant, prepared)`` pair per
    paxos instance (every participant was prepared once the sync
    completed).  An **empty** ``verdicts`` at a higher ballot is the
    survivor's promise-and-report solicitation: the acceptor promises
    the ballot and replies with the verdicts it accepted earlier (or
    ``None`` if it never accepted), instead of accepting anything new.
    The acceptor **logs every accept to its write-ahead log before
    acking**, which is what makes a quorum of acks a durable decision.
    """

    round_number: int = 0
    ballot: int = 0
    verdicts: tuple[tuple[int, bool], ...] = ()


@dataclass(frozen=True)
class Phase2b(Message):
    """Paxos Commit accept-acknowledgement crossing back to the driver.

    **Sender**: an acceptor that just logged a
    :class:`Phase2a` accept (the kernel sends on the acceptor's
    behalf, like a :class:`VoteReply`).  **Receiver**: the round's
    coordinator -- or the completing survivor.  **When**: immediately
    after the WAL append; the decision becomes durable once a quorum
    of these arrive.  Because the *coordinator handles* these acks,
    a fault plan can crash it mid-quorum -- the non-blocking window
    this message family exists to survive.
    """

    round_number: int = 0
    ballot: int = 0
    acked: bool = True


@dataclass(frozen=True)
class Complete(Message):
    """Survivor-completion announcement of a decided round.

    **Sender**: the surviving participant that completed a round whose
    coordinator crashed mid-decision.  **Receiver**: each other live
    participant.  **When**: after the survivor re-drove the accepts at
    its higher ballot and reached a quorum; the receiver logs a
    ``round_complete`` record so recovery can see the round was
    decided without its coordinator.
    """

    round_number: int = 0
    committed: bool = True
    tx_name: str = ""


@dataclass(frozen=True)
class Prepare(Message):
    """2PC phase one: write set shipped to a cohort replica.

    **Sender**: the transaction's origin replica (coordinator).
    **Receiver**: every other replica (ROWA).  **When**: on every 2PC
    commit, after local execution; the reply is the cohort's vote.
    An unreachable cohort blocks the commit -- the availability
    failure mode homeostasis avoids (Gray & Lamport).
    """

    updates: tuple[tuple[str, int], ...] = ()


@dataclass(frozen=True)
class Decision(Message):
    """2PC phase two: commit/abort decision.

    **Sender**: the coordinator.  **Receiver**: every cohort that was
    prepared.  **When**: after all votes arrive (commit), or as soon
    as any cohort is unreachable or votes no (abort).
    """

    commit: bool = True


@dataclass
class MessageStats:
    """Counters for the communication a protocol run incurred.

    Build one with :meth:`from_trace`; the fields mirror the message
    vocabulary above.  ``negotiations`` counts synchronization rounds
    (cleanup-phase and forced), which is how the paper reports
    communication frequency.
    """

    sync_broadcasts: int = 0  # state-synchronization messages
    treaty_updates: int = 0  # new-treaty propagation messages
    vote_messages: int = 0  # violation-winner election messages
    vote_replies: int = 0  # arbitration concessions from losing contenders
    rebalance_requests: int = 0  # proactive treaty-refresh announcements
    rejoin_messages: int = 0  # recovered-site re-entry announcements
    cleanup_messages: int = 0  # cleanup-run (re-execute T') messages
    phase2a_messages: int = 0  # Paxos Commit accept requests / solicitations
    phase2b_messages: int = 0  # Paxos Commit accept acknowledgements
    complete_messages: int = 0  # survivor-completion announcements
    prepare_messages: int = 0  # 2PC phase-one messages
    decision_messages: int = 0  # 2PC phase-two messages
    negotiations: int = 0  # treaty negotiation events (round ends)

    _COUNTER_FOR = {
        SyncBroadcast: "sync_broadcasts",
        TreatyInstall: "treaty_updates",
        Vote: "vote_messages",
        VoteReply: "vote_replies",
        RebalanceRequest: "rebalance_requests",
        Rejoin: "rejoin_messages",
        CleanupRun: "cleanup_messages",
        Phase2a: "phase2a_messages",
        Phase2b: "phase2b_messages",
        Complete: "complete_messages",
        Prepare: "prepare_messages",
        Decision: "decision_messages",
    }

    def total(self) -> int:
        return (
            self.sync_broadcasts
            + self.treaty_updates
            + self.vote_messages
            + self.vote_replies
            + self.rebalance_requests
            + self.rejoin_messages
            + self.cleanup_messages
            + self.phase2a_messages
            + self.phase2b_messages
            + self.complete_messages
            + self.prepare_messages
            + self.decision_messages
        )

    @classmethod
    def from_trace(
        cls, messages: Iterable[Message], negotiations: int = 0
    ) -> "MessageStats":
        """Derive the counters from a transport trace."""
        stats = cls(negotiations=negotiations)
        for msg in messages:
            counter = cls._COUNTER_FOR.get(type(msg))
            if counter is None:
                raise TypeError(f"unknown message type {type(msg).__name__}")
            setattr(stats, counter, getattr(stats, counter) + 1)
        return stats
