"""Inter-site message vocabulary.

The correctness kernel executes synchronously but sends every message
the real distributed system would send through a typed
:class:`~repro.protocol.transport.Transport`; the discrete-event
simulator prices the recorded trace with per-edge network latencies.
The message complexity of one treaty negotiation matches Section 5.1:
"every treaty negotiation requires two rounds of global communication
-- one for synchronizing database state across nodes and one for
communicating the new treaties" (the second round is elided when the
solver is deterministic, because every participant recomputes the
identical treaty locally; with a nondeterministic solver the
coordinator ships :class:`TreatyInstall` messages instead).

With participant-scoped synchronization the "global" in the quote
shrinks to the participant set of the violation: a cleanup round over
``p`` participants costs ``p*(p-1)`` :class:`SyncBroadcast` messages,
``p-1`` votes and ``p-1`` cleanup-run instructions -- independent of
the cluster size.

When several transactions violate treaties in the same window (the
concurrent runtime), the vote phase is real: each racing violator
broadcasts its :class:`Vote` -- carrying its ``(timestamp, site,
txn_seq)`` priority tuple -- to every other contender, the lowest
tuple wins deterministically, and each loser concedes with a
:class:`VoteReply` before aborting and re-running after the winner's
negotiation installs new treaties.

:class:`MessageStats` is a *derived view* over a transport trace, not
a set of live counters: the kernel never increments anything by hand,
it just sends messages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.treaty.table import LocalTreaty


@dataclass(frozen=True)
class Message:
    """One directed inter-site message (src and dst are site ids)."""

    src: int
    dst: int

    @property
    def edge(self) -> tuple[int, int]:
        """The undirected network edge this message crosses."""
        a, b = self.src, self.dst
        return (a, b) if a <= b else (b, a)


@dataclass(frozen=True)
class SyncBroadcast(Message):
    """Cleanup-phase state exchange: the sender's share of the round's
    update set (its dirty owned objects plus its owned objects that
    feed recomputed treaty factors)."""

    updates: tuple[tuple[str, int], ...] = ()


@dataclass(frozen=True)
class TreatyInstall(Message):
    """New local treaty shipped by the coordinator (only sent when the
    treaty solver is nondeterministic; a deterministic solver lets
    every participant regenerate the identical treaty locally)."""

    round_number: int = 0
    treaty: "LocalTreaty | None" = None


@dataclass(frozen=True)
class Vote(Message):
    """Violation-winner election message for the cleanup phase.

    ``(timestamp, src, txn_seq)`` is the sender's priority tuple;
    among racing violators the lowest tuple wins.  A winner also
    broadcasts its Vote to the non-contender participants of its
    negotiation, announcing which transaction the round re-runs.
    """

    tx_name: str = ""
    #: arrival timestamp of the violating transaction (window order)
    timestamp: int = 0
    #: cluster-wide transaction sequence number (final tiebreak)
    txn_seq: int = 0


@dataclass(frozen=True)
class VoteReply(Message):
    """Arbitration reply: a losing contender concedes the election to
    the winner (it will abort and re-run after the winner's
    negotiation installs new treaties).  A concession is never
    withheld -- the election is a deterministic function of the
    exchanged priority tuples, so every contender computes the same
    winner."""

    winner_site: int = -1
    winner_txn: int = -1


@dataclass(frozen=True)
class RebalanceRequest(Message):
    """Proactive treaty-refresh announcement (adaptive reallocation).

    Sent by a site whose remaining slack on a treaty clause fell below
    the low-watermark *before* any violation occurred: the origin asks
    the participants of the affected factors to run a scoped
    synchronization + treaty regeneration round so the demand-weighted
    configuration can shift unused budget from cold sites to the hot
    one.  ``objects`` names the clause objects that breached the
    watermark (the seed of the participant closure).  No transaction
    aborts and no cleanup re-run happens -- the round is sync +
    install only.
    """

    objects: tuple[str, ...] = ()


@dataclass(frozen=True)
class CleanupRun(Message):
    """Instruction to re-run the winning transaction T' in full on the
    synchronized state (carries the transaction id and parameters)."""

    tx_name: str = ""
    params: tuple[tuple[str, int], ...] = ()


@dataclass(frozen=True)
class Prepare(Message):
    """2PC phase one: write set shipped to a cohort replica."""

    updates: tuple[tuple[str, int], ...] = ()


@dataclass(frozen=True)
class Decision(Message):
    """2PC phase two: commit/abort decision."""

    commit: bool = True


@dataclass
class MessageStats:
    """Counters for the communication a protocol run incurred.

    Build one with :meth:`from_trace`; the fields mirror the message
    vocabulary above.  ``negotiations`` counts synchronization rounds
    (cleanup-phase and forced), which is how the paper reports
    communication frequency.
    """

    sync_broadcasts: int = 0  # state-synchronization messages
    treaty_updates: int = 0  # new-treaty propagation messages
    vote_messages: int = 0  # violation-winner election messages
    vote_replies: int = 0  # arbitration concessions from losing contenders
    rebalance_requests: int = 0  # proactive treaty-refresh announcements
    cleanup_messages: int = 0  # cleanup-run (re-execute T') messages
    prepare_messages: int = 0  # 2PC phase-one messages
    decision_messages: int = 0  # 2PC phase-two messages
    negotiations: int = 0  # treaty negotiation events (round ends)

    _COUNTER_FOR = {
        SyncBroadcast: "sync_broadcasts",
        TreatyInstall: "treaty_updates",
        Vote: "vote_messages",
        VoteReply: "vote_replies",
        RebalanceRequest: "rebalance_requests",
        CleanupRun: "cleanup_messages",
        Prepare: "prepare_messages",
        Decision: "decision_messages",
    }

    def total(self) -> int:
        return (
            self.sync_broadcasts
            + self.treaty_updates
            + self.vote_messages
            + self.vote_replies
            + self.rebalance_requests
            + self.cleanup_messages
            + self.prepare_messages
            + self.decision_messages
        )

    @classmethod
    def from_trace(
        cls, messages: Iterable[Message], negotiations: int = 0
    ) -> "MessageStats":
        """Derive the counters from a transport trace."""
        stats = cls(negotiations=negotiations)
        for msg in messages:
            counter = cls._COUNTER_FOR.get(type(msg))
            if counter is None:
                raise TypeError(f"unknown message type {type(msg).__name__}")
            setattr(stats, counter, getattr(stats, counter) + 1)
        return stats
