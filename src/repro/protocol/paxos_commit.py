"""Non-blocking negotiation: Paxos Commit decisions + fair arbitration.

Two mechanisms that remove the last single points of failure and
starvation from the cleanup round, both configured through one frozen
:class:`NegotiationSpec` on the cluster facade:

**Paxos Commit** (Gray & Lamport, *Consensus on Transaction Commit*).
The classic cleanup round dies with its initiator: after the
participant-scoped synchronization, the winner's origin single-
handedly decides the round commits, re-runs T' and installs treaties
-- a crash in that window leaves the conflict group aborted and the
treaty un-refreshed until the origin returns.  With a
:class:`NegotiationSpec` attached, the commit decision becomes a
quorum property instead: each participant's *prepared* verdict is one
paxos instance, a 2F+1 **acceptor set co-located on the participant
sites** makes the joint decision durable (every accept is logged to
the acceptor's write-ahead log *before* it is acknowledged), and the
decision exists once a quorum of :class:`~repro.protocol.messages.
Phase2b` acks reach the driver.  Because the coordinator *handles*
those acks, a fault plan can crash it mid-quorum -- and any surviving
participant then completes the round: it solicits the acceptors'
logged state at a higher ballot (an empty-verdict
:class:`~repro.protocol.messages.Phase2a` doubles as promise +
report), re-drives the accepts, announces
:class:`~repro.protocol.messages.Complete`, and the cluster runs T'
and the install over the live participants with the survivor as
origin.  The crashed origin catches up at recovery: it replays its
WAL, re-executes the missed T' on its (already synchronized) state --
T' is deterministic, so the re-run reproduces the round's writes
exactly -- and receives the round's treaty before rejoining.

The decision phase sits strictly **between** synchronization and the
T' re-run, which is what makes every failure mode clean: a round that
never reaches a quorum aborts having changed nothing (the sync only
refreshed snapshots with owner-authoritative values), and a round
whose decision is quorum-durable always runs to completion -- by its
origin or by a survivor.

**Budgeted priority credit** (the conviction-staking idea from the
roundtable-consensus design).  The vote phase's
``(timestamp, site, txn_seq)`` priority tuple has a starvation hole:
on equal timestamps the site id decides, so a hot low-numbered site
wins every election and a remote contender can lose unboundedly
often.  Under ``policy="credit"`` each election loss accrues
``credit_unit`` of priority credit (capped at ``credit_cap``), the
credit term is folded into the bid *ahead of the site id* --
``(timestamp, -credit, site, txn_seq)`` -- and winning spends the
balance back to zero.  A loser's next bid therefore strictly improves
until it beats any equal-timestamp rival, bounding the maximum number
of consecutive losses; arbitration stays deterministic because the
credit rides inside the :class:`~repro.protocol.messages.Vote`
message, so every contender computes the same winner from the
exchanged bids.  ``policy="priority"`` keeps the legacy ordering
(credit is tracked for observability but never bid).

:class:`CreditLedger` is also the fairness meter: per-site win/loss
counters, consecutive-loss streaks, and wait samples (elections lost
before finally winning) feed ``fairness_stats()`` on the cluster
facade and the contention benchmark's fairness gate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Mapping

from repro.protocol.messages import Complete, Phase2a, Phase2b
from repro.protocol.transport import Transport, UnreachableError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.protocol.site import SiteServer

__all__ = [
    "CreditLedger",
    "NegotiationSpec",
    "PaxosCommitDriver",
    "QuorumUnreachable",
]

#: Arbitration policies a :class:`NegotiationSpec` can name.
POLICIES = ("priority", "credit")


class QuorumUnreachable(Exception):
    """The decision round could not become (or be proven) durable: too
    few acceptors are reachable, or no acceptor of a crashed
    coordinator's round ever logged an accept.  Nothing irreversible
    has happened -- T' only runs after a quorum-durable decision -- so
    the caller aborts the round cleanly and the transaction retries
    after recovery."""


@dataclass(frozen=True)
class NegotiationSpec:
    """Facade-level configuration of the negotiation's decision and
    arbitration machinery (attach to
    :class:`~repro.protocol.config.ClusterSpec` via ``negotiation=``).

    With a spec attached, cleanup rounds run the Paxos Commit decision
    phase described in the module docstring; without one (the
    default), the kernel keeps the legacy single-coordinator decision
    and the legacy priority ordering -- byte-identical traces to
    earlier releases.
    """

    #: arbitration policy: ``"priority"`` is the legacy
    #: ``(timestamp, site, txn_seq)`` ordering; ``"credit"`` folds the
    #: budgeted priority credit in ahead of the site id
    policy: str = "priority"
    #: acceptor-set size (2F+1; co-located on the first ``acceptors``
    #: participant sites, clamped to the participant count)
    acceptors: int = 3
    #: the decision driver's patience per acceptor exchange, priced by
    #: the simulator as part of the quorum round
    quorum_timeout_ms: float = 1_000.0
    #: credit accrued per lost election under ``policy="credit"``
    credit_unit: int = 1
    #: accrual ceiling -- the budget that bounds how far a streak of
    #: losses can escalate one site's priority
    credit_cap: int = 8

    def __post_init__(self) -> None:
        if self.policy not in POLICIES:
            raise ValueError(
                f"unknown arbitration policy {self.policy!r}; "
                f"expected one of {POLICIES}"
            )
        if self.acceptors < 1 or self.acceptors % 2 == 0:
            raise ValueError(
                f"acceptors must be odd and positive (2F+1), got {self.acceptors}"
            )
        if self.quorum_timeout_ms <= 0:
            raise ValueError("quorum_timeout_ms must be positive")
        if self.credit_unit < 1:
            raise ValueError("credit_unit must be at least 1")
        if self.credit_cap < self.credit_unit:
            raise ValueError("credit_cap must be at least credit_unit")


def _percentile(samples: list[int], q: float) -> float:
    """Nearest-rank percentile of a small sample list (0.0 if empty)."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = max(0, min(len(ordered) - 1, int(round(q * (len(ordered) - 1)))))
    return float(ordered[rank])


@dataclass
class CreditLedger:
    """Per-site priority-credit balances and fairness counters.

    The ledger is the arbitration's memory: losing an election accrues
    ``credit_unit`` (capped), winning spends the balance back to zero,
    and under ``policy="credit"`` the balance is bid (negated) ahead
    of the site id.  It is also the fairness meter behind
    ``fairness_stats()``: consecutive-loss streaks and wait samples
    (elections a site lost before finally winning one) are recorded
    regardless of policy, so the two policies can be compared on
    identical workloads.
    """

    spec: NegotiationSpec = field(default_factory=NegotiationSpec)
    _credit: dict[int, int] = field(default_factory=dict)
    _streak: dict[int, int] = field(default_factory=dict)
    _max_streak: dict[int, int] = field(default_factory=dict)
    _wins: dict[int, int] = field(default_factory=dict)
    _losses: dict[int, int] = field(default_factory=dict)
    _waits: dict[int, list[int]] = field(default_factory=dict)
    #: contested elections resolved (groups with more than one bid)
    elections: int = 0

    def bid_credit(self, site: int) -> int:
        """The credit a site folds into its next bid (0 under the
        legacy policy -- the ordering must stay byte-identical)."""
        if self.spec.policy != "credit":
            return 0
        return self._credit.get(site, 0)

    def record_election(self, winner_site: int, loser_sites: Iterable[int]) -> None:
        """Settle one resolved election: the winner spends its credit
        and closes its losing streak (the streak length becomes a wait
        sample); each loser accrues credit and extends its streak."""
        losers = list(loser_sites)
        if losers:
            self.elections += 1
        self._wins[winner_site] = self._wins.get(winner_site, 0) + 1
        self._waits.setdefault(winner_site, []).append(
            self._streak.get(winner_site, 0)
        )
        self._streak[winner_site] = 0
        self._credit[winner_site] = 0
        for site in losers:
            self._losses[site] = self._losses.get(site, 0) + 1
            streak = self._streak.get(site, 0) + 1
            self._streak[site] = streak
            if streak > self._max_streak.get(site, 0):
                self._max_streak[site] = streak
            self._credit[site] = min(
                self.spec.credit_cap,
                self._credit.get(site, 0) + self.spec.credit_unit,
            )

    def max_consecutive_losses(self) -> int:
        """The longest losing streak any site suffered (the quantity
        the fairness gate bounds)."""
        return max(self._max_streak.values(), default=0)

    def stats(self) -> dict:
        """The fairness report ``fairness_stats()`` surfaces."""
        sites = (
            set(self._wins) | set(self._losses) | set(self._max_streak)
        )
        per_site = {}
        for site in sorted(sites):
            waits = self._waits.get(site, [])
            per_site[site] = {
                "wins": self._wins.get(site, 0),
                "losses": self._losses.get(site, 0),
                "max_consecutive_losses": self._max_streak.get(site, 0),
                "credit": self._credit.get(site, 0),
                "wait_p50": _percentile(waits, 0.50),
                "wait_p99": _percentile(waits, 0.99),
            }
        return {
            "policy": self.spec.policy,
            "elections": self.elections,
            "max_consecutive_losses": self.max_consecutive_losses(),
            "per_site": per_site,
        }


@dataclass
class PaxosCommitDriver:
    """Drives the quorum decision phase of one cleanup round.

    The driver is a kernel-side orchestrator over the typed transport:
    it speaks :class:`~repro.protocol.messages.Phase2a` /
    :class:`~repro.protocol.messages.Phase2b` /
    :class:`~repro.protocol.messages.Complete` to the acceptor state
    machines hosted on the :class:`~repro.protocol.site.SiteServer`s
    (same co-location the paper's deployment would use).  Paxos
    instance ids are transport negotiation indices -- unique per
    round, shared knowledge of every participant.
    """

    transport: Transport
    sites: Mapping[int, "SiteServer"]
    spec: NegotiationSpec

    def acceptors_for(self, participants: Iterable[int]) -> tuple[int, ...]:
        """The round's acceptor set: the lowest ``spec.acceptors``
        participant sites (deterministic, co-located, and inside the
        round's transport scope by construction)."""
        ordered = sorted(participants)
        return tuple(ordered[: min(self.spec.acceptors, len(ordered))])

    def quorum_of(self, acceptors: tuple[int, ...]) -> int:
        return len(acceptors) // 2 + 1

    # -- the coordinator path ------------------------------------------------------

    def decide(
        self, origin: int, round_number: int, participants: Iterable[int]
    ) -> int:
        """Make the round's commit decision quorum-durable.

        Every participant is *prepared* (the synchronization
        completed), so the coordinator proposes all-prepared verdicts
        at ballot 0 to each acceptor; an acceptor logs the accept to
        its WAL before acking, and the ack crosses back to the origin
        as a :class:`~repro.protocol.messages.Phase2b` (sent on the
        acceptor's behalf, like a
        :class:`~repro.protocol.messages.VoteReply`).  Returns the ack
        count (>= quorum).

        Raises :class:`UnreachableError` when the **coordinator
        itself** crashes mid-quorum (the survivable window -- the
        caller runs survivor completion), and
        :class:`QuorumUnreachable` when too many *acceptors* are lost
        for the decision to become durable (the caller aborts the
        round cleanly; T' has not run anywhere).
        """
        members = sorted(set(participants))
        verdicts = tuple((p, True) for p in members)
        acceptors = self.acceptors_for(members)
        acks = 0
        for acceptor in acceptors:
            try:
                if acceptor == origin:
                    if not self.sites[origin].paxos_accept(
                        round_number, 0, verdicts
                    ):
                        continue
                else:
                    accepted = self.transport.send(
                        Phase2a(
                            src=origin,
                            dst=acceptor,
                            round_number=round_number,
                            ballot=0,
                            verdicts=verdicts,
                        )
                    )
                    if not accepted:
                        continue
                    self.transport.send(
                        Phase2b(
                            src=acceptor,
                            dst=origin,
                            round_number=round_number,
                            ballot=0,
                            acked=True,
                        )
                    )
                acks += 1
            except UnreachableError:
                if self.transport.is_down(origin):
                    # The coordinator died handling an ack (or before
                    # it could even send): the non-blocking window.
                    raise
                # A lost acceptor: its accept may or may not have been
                # logged; either way the quorum can still form from
                # the others.
                continue
        if acks < self.quorum_of(acceptors):
            raise QuorumUnreachable(
                f"decision round {round_number}: {acks} acks from "
                f"{len(acceptors)} acceptors (quorum {self.quorum_of(acceptors)})"
            )
        return acks

    # -- the survivor path ---------------------------------------------------------

    def complete_as_survivor(
        self,
        survivor: int,
        round_number: int,
        participants: Iterable[int],
        tx_name: str = "",
    ) -> bool:
        """Finish a round whose coordinator crashed mid-decision.

        The survivor solicits every live acceptor's logged state at
        ballot 1 (an empty-verdict :class:`Phase2a` is promise +
        report), adopts the reported verdicts if any acceptor accepted
        at ballot 0, re-drives the accepts at ballot 1 until a quorum
        acks, and announces :class:`Complete` to the other live
        participants.  Returns the decision (always commit here: the
        only proposable verdicts are all-prepared).

        Raises :class:`QuorumUnreachable` when no live acceptor ever
        logged an accept (the decision provably never became durable
        against the promised quorum -- the round aborts cleanly, T'
        never ran) or when fewer than a quorum of acceptors remain;
        raises :class:`UnreachableError` when the survivor itself
        crashes mid-completion (the caller tries the next survivor).
        """
        members = sorted(set(participants))
        acceptors = self.acceptors_for(members)
        quorum = self.quorum_of(acceptors)
        adopted: tuple[tuple[int, bool], ...] | None = None
        promised = 0
        for acceptor in acceptors:
            if self.transport.is_down(acceptor):
                continue
            try:
                if acceptor == survivor:
                    state = self.sites[acceptor].paxos_promise(round_number, 1)
                else:
                    state = self.transport.send(
                        Phase2a(
                            src=survivor,
                            dst=acceptor,
                            round_number=round_number,
                            ballot=1,
                            verdicts=(),
                        )
                    )
            except UnreachableError:
                if self.transport.is_down(survivor):
                    raise
                continue
            promised += 1
            if state is not None and adopted is None:
                adopted = tuple(state)
        if adopted is None:
            # No live acceptor logged an accept.  With a quorum of
            # promises at ballot 1, ballot 0 can never complete behind
            # our back, so declaring the round undecided is safe; with
            # fewer, nothing can be proven either way -- same clean
            # abort (T' only runs after an observed quorum, and the
            # crashed coordinator observed none it could act on).
            raise QuorumUnreachable(
                f"round {round_number}: no live acceptor logged an accept "
                f"({promised} promises)"
            )
        acks = 0
        for acceptor in acceptors:
            if self.transport.is_down(acceptor):
                continue
            try:
                if acceptor == survivor:
                    if self.sites[acceptor].paxos_accept(round_number, 1, adopted):
                        acks += 1
                    continue
                accepted = self.transport.send(
                    Phase2a(
                        src=survivor,
                        dst=acceptor,
                        round_number=round_number,
                        ballot=1,
                        verdicts=adopted,
                    )
                )
                if not accepted:
                    continue
                self.transport.send(
                    Phase2b(
                        src=acceptor,
                        dst=survivor,
                        round_number=round_number,
                        ballot=1,
                        acked=True,
                    )
                )
                acks += 1
            except UnreachableError:
                if self.transport.is_down(survivor):
                    raise
                continue
        if acks < quorum:
            raise QuorumUnreachable(
                f"round {round_number}: survivor {survivor} re-drove only "
                f"{acks} acks (quorum {quorum})"
            )
        committed = all(ok for _p, ok in adopted)
        for peer in members:
            if peer == survivor or self.transport.is_down(peer):
                continue
            try:
                self.transport.send(
                    Complete(
                        src=survivor,
                        dst=peer,
                        round_number=round_number,
                        committed=committed,
                        tx_name=tx_name,
                    )
                )
            except UnreachableError:
                if self.transport.is_down(survivor):
                    raise
                # A peer lost after the decision became durable: it
                # catches up at recovery like the crashed coordinator.
                continue
        return committed
