"""The Appendix B transform: eliminating remote writes.

Replicated objects break Assumption 3.1 (all writes local).  The
transform restores it: for a replicated object ``x`` and each site
``i`` that writes it, introduce a fresh *delta* object ``dx_i`` local
to site ``i`` and initialized to 0, maintaining the invariant

    value(x) = x + sum_i dx_i .

Rewrites applied to a transaction bound for site ``i``:

    read(x)       ->  read(x) + sum_j read(dx_j)
    write(x = e)  ->  write(dx_i = e' - read(x) - sum_{j != i} read(dx_j))

where ``e'`` is ``e`` with its own reads rewritten.  Arrays transform
slot-wise: the delta of array base ``qty`` at site ``i`` is the array
base ``qty__d{i}`` with identical index structure, so parameterized
accesses stay parameterized.

After the transform, the linear-cancellation residual pass
(:mod:`repro.analysis.residual`) removes the reintroduced remote
reads wherever they cancel -- turning Figure 23b into Figure 23c --
and the treaty generator pins whatever remote reads remain.

Section B's closing remark on data types: the transform generalizes
to any Abelian-group merge; integers under addition are the instance
this system implements (matching the paper's formal model, where all
objects are integers).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from repro.lang.ast import (
    ABin,
    AExp,
    ANeg,
    ARead,
    ArrayRef,
    Assign,
    BAnd,
    BCmp,
    BExp,
    BNot,
    BOr,
    Com,
    ForEach,
    GroundRef,
    If,
    ObjRef,
    Print,
    Seq,
    Skip,
    Transaction,
    Write,
)
from repro.logic.terms import parse_ground_name


def delta_base(base: str, site: int) -> str:
    """The delta namespace of a replicated base at one site."""
    return f"{base}__d{site}"


def is_delta_name(name: str) -> bool:
    base = name.split("[", 1)[0]
    return "__d" in base


@dataclass
class ReplicationSpec:
    """Which bases are replicated, and across which writer sites.

    ``bases`` maps a scalar object name or an array base to the tuple
    of sites holding write deltas.  ``home`` places the base copy
    (it never changes after initialization, since every write goes to
    a delta).
    """

    bases: dict[str, tuple[int, ...]] = field(default_factory=dict)
    home: dict[str, int] = field(default_factory=dict)

    def sites_for(self, base: str) -> tuple[int, ...] | None:
        return self.bases.get(base)

    def base_of(self, name: str) -> str:
        parsed = parse_ground_name(name)
        return parsed[0] if parsed else name

    def is_replicated(self, name: str) -> bool:
        return self.base_of(name) in self.bases

    def locate(self, name: str, fallback: int = 0) -> int:
        """Placement for both bases and deltas."""
        base = self.base_of(name)
        if "__d" in base:
            origin, _sep, site = base.rpartition("__d")
            if origin in self.bases and site.isdigit():
                return int(site)
        if base in self.bases:
            return self.home.get(base, self.bases[base][0])
        return fallback


def _delta_ref(ref: ObjRef, site: int) -> ObjRef:
    if isinstance(ref, GroundRef):
        parsed = parse_ground_name(ref.name)
        if parsed is not None:
            base, indices = parsed
            from repro.logic.terms import ground_name

            return GroundRef(ground_name(delta_base(base, site), indices))
        return GroundRef(delta_base(ref.name, site))
    return ArrayRef(delta_base(ref.base, site), ref.index)


def _ref_base(ref: ObjRef) -> str:
    if isinstance(ref, GroundRef):
        parsed = parse_ground_name(ref.name)
        return parsed[0] if parsed else ref.name
    return ref.base


class _Rewriter:
    def __init__(self, spec: ReplicationSpec, site: int) -> None:
        self.spec = spec
        self.site = site

    # -- expressions --------------------------------------------------------

    def read_sum(self, ref: ObjRef) -> AExp:
        """``read(x) + sum_j read(dx_j)`` for a replicated reference."""
        sites = self.spec.sites_for(_ref_base(ref))
        assert sites is not None
        expr: AExp = ARead(ref)
        for j in sites:
            expr = ABin("+", expr, ARead(_delta_ref(ref, j)))
        return expr

    def aexp(self, expr: AExp) -> AExp:
        if isinstance(expr, ARead):
            ref = self._rewrite_ref_indices(expr.ref)
            if self.spec.sites_for(_ref_base(ref)) is not None:
                return self.read_sum(ref)
            return ARead(ref)
        if isinstance(expr, ABin):
            return ABin(expr.op, self.aexp(expr.left), self.aexp(expr.right))
        if isinstance(expr, ANeg):
            return ANeg(self.aexp(expr.operand))
        return expr

    def _rewrite_ref_indices(self, ref: ObjRef) -> ObjRef:
        if isinstance(ref, ArrayRef):
            return ArrayRef(ref.base, tuple(self.aexp(ix) for ix in ref.index))
        return ref

    def bexp(self, expr: BExp) -> BExp:
        if isinstance(expr, BCmp):
            return BCmp(expr.op, self.aexp(expr.left), self.aexp(expr.right))
        if isinstance(expr, BAnd):
            return BAnd(self.bexp(expr.left), self.bexp(expr.right))
        if isinstance(expr, BOr):
            return BOr(self.bexp(expr.left), self.bexp(expr.right))
        if isinstance(expr, BNot):
            return BNot(self.bexp(expr.operand))
        return expr

    # -- commands -------------------------------------------------------------

    def com(self, node: Com) -> Com:
        if isinstance(node, Skip):
            return node
        if isinstance(node, Assign):
            return Assign(node.temp, self.aexp(node.expr))
        if isinstance(node, Seq):
            return Seq(self.com(node.first), self.com(node.second))
        if isinstance(node, If):
            return If(
                self.bexp(node.cond),
                self.com(node.then_branch),
                self.com(node.else_branch),
            )
        if isinstance(node, Print):
            return Print(self.aexp(node.expr))
        if isinstance(node, ForEach):
            return ForEach(node.var, node.array, self.com(node.body))
        if isinstance(node, Write):
            ref = self._rewrite_ref_indices(node.ref)
            value = self.aexp(node.expr)
            sites = self.spec.sites_for(_ref_base(ref))
            if sites is None:
                return Write(ref, value)
            if self.site not in sites:
                raise ValueError(
                    f"site {self.site} writes replicated base "
                    f"{_ref_base(ref)!r} but holds no delta for it"
                )
            # e' - read(x) - sum_{j != i} read(dx_j)
            adjusted: AExp = ABin("-", value, ARead(ref))
            for j in sites:
                if j != self.site:
                    adjusted = ABin("-", adjusted, ARead(_delta_ref(ref, j)))
            return Write(_delta_ref(ref, self.site), adjusted)
        raise TypeError(f"unknown command node {node!r}")


def transform_for_site(
    tx: Transaction, site: int, spec: ReplicationSpec, rename: bool = True
) -> Transaction:
    """Rewrite a transaction to run at ``site`` with only local writes."""
    body = _Rewriter(spec, site).com(tx.body)
    name = f"{tx.name}@s{site}" if rename else tx.name
    return Transaction(name, tx.params, body, tx.assume_distinct)


def replicate_workload(
    transactions: Iterable[Transaction],
    sites: Sequence[int],
    spec: ReplicationSpec,
) -> dict[str, Transaction]:
    """Per-site variants ``T@s{i}`` of every transaction."""
    out: dict[str, Transaction] = {}
    for tx in transactions:
        for site in sites:
            variant = transform_for_site(tx, site, spec)
            out[variant.name] = variant
    return out


def initial_replicated_db(
    values: Mapping[str, int], spec: ReplicationSpec, sites: Sequence[int]
) -> dict[str, int]:
    """Initial store: base copies carry the values, deltas start at 0.

    Deltas are materialized eagerly so finite-support snapshots list
    them explicitly (readers would default them to 0 anyway).
    """
    out = dict(values)
    from repro.logic.terms import ground_name

    for name, value in values.items():
        parsed = parse_ground_name(name)
        base = parsed[0] if parsed else name
        writer_sites = spec.sites_for(base)
        if writer_sites is None:
            continue
        for site in writer_sites:
            if parsed is not None:
                out[ground_name(delta_base(base, site), parsed[1])] = 0
            else:
                out[delta_base(name, site)] = 0
    return out


def rebase_deltas_hook(spec: ReplicationSpec):
    """Post-sync hook folding deltas into bases and zeroing them.

    "In practice, we might initialize the dx objects to 0 and reset
    them to 0 at the end of each protocol round" (Appendix B).  Every
    participant applies the same deterministic fold on identical
    synced state, so no extra communication is needed.

    Under participant-scoped synchronization the fold is confined to
    the round: only deltas that were part of the broadcast update set
    (``cluster.last_sync.updates``) and whose owner *and* base home
    participated are folded, and the owners record the rewrites as
    dirty so a later round re-broadcasts them to sites that sat this
    one out.
    """

    def hook(cluster) -> None:
        all_sites = set(cluster.site_ids)
        sync = getattr(cluster, "last_sync", None)
        scoped = sync is not None and set(sync.participants) != all_sites
        participants = set(sync.participants) if scoped else all_sites
        ref = cluster.sites[min(participants)]
        candidates = (
            list(sync.updates) if scoped else list(ref.engine.store.support())
        )
        folds: dict[str, int] = {}
        zeroes: list[tuple[str, int]] = []
        for name in candidates:
            parsed = parse_ground_name(name)
            base = parsed[0] if parsed else name
            if "__d" not in base:
                continue
            origin_base, _sep, site_txt = base.rpartition("__d")
            if origin_base not in spec.bases or not site_txt.isdigit():
                continue
            owner = int(site_txt)
            if parsed is not None:
                from repro.logic.terms import ground_name

                origin_name = ground_name(origin_base, parsed[1])
            else:
                origin_name = origin_base
            if scoped and (
                owner not in participants
                or cluster.locate(origin_name) not in participants
            ):
                # Folding would rewrite state behind a non-participant
                # owner's back; leave the delta standing for a later
                # round that includes it.
                continue
            folds[origin_name] = folds.get(origin_name, 0) + ref.engine.peek(name)
            zeroes.append((name, owner))
        for sid in sorted(participants):
            server = cluster.sites[sid]
            for origin_name, total in folds.items():
                if total == 0:
                    continue
                value = server.engine.peek(origin_name) + total
                if scoped and cluster.locate(origin_name) == sid:
                    server.engine.poke_dirty(origin_name, value)
                else:
                    server.engine.poke(origin_name, value)
            for name, owner in zeroes:
                if scoped and owner == sid and server.engine.peek(name) != 0:
                    server.engine.poke_dirty(name, 0)
                else:
                    server.engine.poke(name, 0)

    return hook
