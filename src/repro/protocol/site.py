"""A homeostasis site server.

Each site owns a partition of the database (authoritative values for
objects with ``Loc(x) = site``) and keeps *snapshot* values for every
remote object it may read (Section 3.2's model of disconnected
execution: local reads are current, remote reads see a possibly stale
snapshot refreshed at synchronization points).  Both live in one
storage engine -- the protocol guarantees writes only touch owned
objects during normal execution (Assumption 3.1).

``execute`` implements the online path of Section 5.1: dispatch to
the stored procedure whose guard matches, run it inside a storage
transaction, check the local treaty before commit, and either commit
(returning the log) or abort and report the treaty violation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

from repro.lang.interp import ExecContext, execute
from repro.logic.linear import LinearConstraint
from repro.protocol.catalog import StoredProcedureCatalog
from repro.protocol.messages import (
    CleanupRun,
    Message,
    RebalanceRequest,
    SyncBroadcast,
    TreatyInstall,
    Vote,
    VoteReply,
)
from repro.storage.engine import LocalEngine
from repro.treaty.table import LocalTreaty


def clause_slack(con: LinearConstraint, getobj: Callable[[str], int]) -> int:
    """Remaining headroom of one ``<=``-clause on the given state:
    ``bound - sum(d_i * D(x_i))`` (negative means violated)."""
    value = 0
    for var, coeff in con.expr.coeffs:
        value += coeff * getobj(var.name)
    return con.bound - value


@dataclass
class SiteResult:
    """Outcome of one transaction attempt at one site."""

    committed: bool
    violated: bool
    log: tuple[int, ...] = ()
    row_index: int | None = None
    #: objects of the violated treaty clauses (seeds the cleanup
    #: phase's participant computation)
    violated_objects: frozenset[str] = frozenset()
    #: write set of the aborted attempt -- T' re-runs after sync and
    #: its writes must be covered by the participant closure up front
    attempted_writes: frozenset[str] = frozenset()
    #: write set of a *committed* attempt -- feeds the online demand
    #: estimator and the adaptive low-watermark slack check
    written: frozenset[str] = frozenset()


@dataclass
class SiteServer:
    site_id: int
    locate: Callable[[str], int]
    engine: LocalEngine = field(default_factory=LocalEngine)
    catalog: StoredProcedureCatalog = field(default_factory=StoredProcedureCatalog)
    local_treaty: LocalTreaty | None = None
    arrays: Mapping[str, tuple[int, ...]] = field(default_factory=dict)

    def owns(self, name: str) -> bool:
        return self.locate(name) == self.site_id

    #: per-clause headroom at install time (the allocation the adaptive
    #: low-watermark compares remaining slack against)
    install_headroom: dict[LinearConstraint, int] = field(default_factory=dict)

    def install_treaty(self, treaty: LocalTreaty) -> None:
        """Install a new local treaty and checkpoint each ``<=``-clause's
        headroom on the install-time (synchronized) state.

        The headroom snapshot is what makes the low-watermark check a
        *relative* trigger: "this clause has burned through 1 - w of
        the budget the last negotiation granted", independent of the
        clause's absolute scale.
        """
        self.local_treaty = treaty
        peek = self.engine.peek
        self.install_headroom = {
            con: clause_slack(con, peek)
            for con in treaty.constraints
            if con.op == "<="
        }

    # -- the online execution path (Section 5.1) ---------------------------------

    def execute(self, tx_name: str, params: Mapping[str, int] | None = None) -> SiteResult:
        """Run a transaction disconnected; commit iff the local treaty
        still holds afterwards."""
        txn = self.engine.begin()
        getobj = txn.read
        try:
            proc = self.catalog.dispatch(tx_name, getobj, params=params)
            ctx = ExecContext(
                getobj=getobj,
                setobj=txn.write,
                emit=txn.emit,
                params=dict(params or {}),
                arrays=self.arrays,
            )
            proc.run(ctx)
            self._assert_writes_local(txn.written, tx_name)
            if self.local_treaty is not None:
                violated = self.local_treaty.violations_after_writes(
                    getobj, txn.written
                )
                if violated:
                    attempted = frozenset(txn.written)
                    txn.abort()
                    return SiteResult(
                        committed=False,
                        violated=True,
                        row_index=proc.row_index,
                        violated_objects=frozenset(violated),
                        attempted_writes=attempted,
                    )
            log = tuple(txn.log)
            written = frozenset(txn.written)
            txn.commit()
            return SiteResult(
                committed=True,
                violated=False,
                log=log,
                row_index=proc.row_index,
                written=written,
            )
        except BaseException:
            if txn.active:
                txn.abort()
            raise

    def _assert_writes_local(self, written: set[str], tx_name: str) -> None:
        foreign = sorted(name for name in written if not self.owns(name))
        if foreign:
            raise AssertionError(
                f"{tx_name} at site {self.site_id} wrote non-local objects "
                f"{foreign}; apply the Appendix B transform first "
                "(Assumption 3.1)"
            )

    # -- cleanup-phase helpers -----------------------------------------------------

    def dirty_owned_values(self) -> dict[str, int]:
        """Values of owned objects updated since the round checkpoint."""
        return {
            name: self.engine.peek(name)
            for name in self.engine.dirty_objects()
            if self.owns(name)
        }

    def apply_sync(self, updates: Mapping[str, int]) -> None:
        """Install broadcast values (both snapshots and owned objects;
        owned entries are no-ops since the site is their source)."""
        for name, value in updates.items():
            self.engine.poke(name, value)
        self.engine.checkpoint()

    def finish_sync(self) -> None:
        """End of a sync round this site participated in: the dirty
        set was broadcast, so reset the round-level dirty tracking."""
        self.engine.checkpoint()

    # -- the transport endpoint ------------------------------------------------------

    def handle(self, msg: Message):
        """Receive one typed transport message.

        - ``SyncBroadcast`` installs the sender's share of the round's
          update set into this site's store (snapshots for remote
          objects, no-ops for owned ones);
        - ``TreatyInstall`` installs the shipped local treaty;
        - ``Vote`` acknowledges a contender's priority claim in the
          violation-winner election;
        - ``VoteReply`` records a losing contender's concession;
        - ``RebalanceRequest`` acknowledges a proactive treaty-refresh
          announcement (adaptive reallocation);
        - ``CleanupRun`` executes T' in full and replies with the
          (log, written) pair the coordinator cross-checks.
        """
        if isinstance(msg, SyncBroadcast):
            for name, value in msg.updates:
                self.engine.poke(name, value)
            return None
        if isinstance(msg, TreatyInstall):
            assert msg.treaty is not None
            self.install_treaty(msg.treaty)
            return None
        if isinstance(msg, Vote):
            return True
        if isinstance(msg, VoteReply):
            return True
        if isinstance(msg, RebalanceRequest):
            # Acknowledge the proactive refresh; the actual state
            # exchange and treaty install arrive as the round's
            # SyncBroadcast / regeneration, like any negotiation.
            return True
        if isinstance(msg, CleanupRun):
            return self.run_cleanup_transaction(msg.tx_name, dict(msg.params))
        raise TypeError(f"site {self.site_id}: unhandled message {msg!r}")

    def run_cleanup_transaction(
        self, tx_name: str, params: Mapping[str, int] | None = None
    ) -> tuple[tuple[int, ...], set[str]]:
        """Execute the violating transaction T' in full after sync.

        T' runs as the *complete* transaction (not a residual): the
        synchronized state may match a different symbolic row than the
        one that detected the violation.  T' is exempt from Assumption
        3.1 (see the remark after Theorem 3.8), so writes may touch
        any object; non-owned writes update this site's snapshots with
        values every other site computes identically (T' is
        deterministic).
        """
        tx = self.catalog.full_transaction(tx_name)
        txn = self.engine.begin()
        try:
            ctx = ExecContext(
                getobj=txn.read,
                setobj=txn.write,
                emit=txn.emit,
                params=dict(params or {}),
                arrays=self.arrays,
            )
            execute(tx.body, ctx)
            log = tuple(txn.log)
            written = set(txn.written)
            txn.commit()
            return log, written
        except BaseException:
            if txn.active:
                txn.abort()
            raise

    def state_snapshot(self) -> dict[str, int]:
        return self.engine.store.snapshot()
