"""A homeostasis site server.

Each site owns a partition of the database (authoritative values for
objects with ``Loc(x) = site``) and keeps *snapshot* values for every
remote object it may read (Section 3.2's model of disconnected
execution: local reads are current, remote reads see a possibly stale
snapshot refreshed at synchronization points).  Both live in one
storage engine -- the protocol guarantees writes only touch owned
objects during normal execution (Assumption 3.1).

``execute`` implements the online path of Section 5.1: dispatch to
the stored procedure whose guard matches, run it inside a storage
transaction, check the local treaty before commit, and either commit
(returning the log) or abort and report the treaty violation.

The treaty check itself is tiered.  A **static tier** runs first: at
install time the site partitions every stored procedure's execution
paths against the new treaty (:mod:`repro.analysis.pathsplit`), so a
commit on a path whose writes provably cannot move any clause
(``free`` / ``free-absorb``) skips the check -- and the write-delta
computation -- outright, and a path with a statically known ground
write set (``partition``) checks one precompiled clause subset.
Everything else lands on the dynamic tiers: treaties whose clauses
are all linear ``<=``-bounds are lowered at install time into
**escrow headroom counters** (:mod:`repro.treaty.escrow`): the commit
check becomes counter subtractions driven by the undo journal's write
deltas, with batched window settlement.  The rest -- and every commit
in ``validate_escrow`` mode, which runs the bypassed tiers next to
the full check and asserts agreement -- goes through the
compiled-closure check
(:meth:`~repro.treaty.table.LocalTreaty.violations_after_writes`).

Treaty installs are **durable**: every install (and every rebalance
request this site acknowledges) is appended to the site's
:class:`~repro.storage.wal.TreatyWAL` *before* it is applied or
acked, so a crash-stopped site restarted via :meth:`SiteServer.
replay_wal` resumes enforcing exactly the local treaty its peers
believe it holds -- H1 (locals imply the global treaty) survives the
crash because no site can come back with a forgotten, weaker
invariant.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

from repro.analysis.classify import PathCheckDivergence
from repro.analysis.pathsplit import PathCheck, build_path_checks
from repro.lang.interp import ExecContext, execute
from repro.logic.compile import lower_to_escrow
from repro.logic.linear import LinearConstraint
from repro.protocol.catalog import StoredProcedureCatalog
from repro.protocol.messages import (
    CleanupRun,
    Complete,
    Message,
    Phase2a,
    Phase2b,
    RebalanceRequest,
    Rejoin,
    SyncBroadcast,
    TreatyInstall,
    Vote,
    VoteReply,
)
from repro.storage.engine import LocalEngine
from repro.storage.wal import (
    TreatyWAL,
    decode_local_treaty,
    decode_recorded_paths,
    encode_local_treaty,
)
from repro.treaty.escrow import EscrowAccount, EscrowDivergence
from repro.treaty.table import LocalTreaty

#: static-tier check kinds -> their counter names in ``check_stats``
_KIND_COUNTER = {
    "free": "free",
    "free-absorb": "absorbed",
    "partition": "partition",
    "full": "full",
}


def _fresh_check_stats() -> dict[str, int]:
    return {
        "free": 0,
        "absorbed": 0,
        "partition": 0,
        "full": 0,
        "checked": 0,
        "clauses_in_scope": 0,
    }


def clause_slack(con: LinearConstraint, getobj: Callable[[str], int]) -> int:
    """Remaining headroom of one ``<=``-clause on the given state:
    ``bound - sum(d_i * D(x_i))`` (negative means violated)."""
    value = 0
    for var, coeff in con.expr.coeffs:
        value += coeff * getobj(var.name)
    return con.bound - value


@dataclass
class SiteResult:
    """Outcome of one transaction attempt at one site."""

    committed: bool
    violated: bool
    log: tuple[int, ...] = ()
    row_index: int | None = None
    #: objects of the violated treaty clauses (seeds the cleanup
    #: phase's participant computation)
    violated_objects: frozenset[str] = frozenset()
    #: write set of the aborted attempt -- T' re-runs after sync and
    #: its writes must be covered by the participant closure up front
    attempted_writes: frozenset[str] = frozenset()
    #: write set of a *committed* attempt -- feeds the online demand
    #: estimator and the adaptive low-watermark slack check
    written: frozenset[str] = frozenset()


@dataclass
class SiteServer:
    site_id: int
    locate: Callable[[str], int]
    engine: LocalEngine = field(default_factory=LocalEngine)
    catalog: StoredProcedureCatalog = field(default_factory=StoredProcedureCatalog)
    local_treaty: LocalTreaty | None = None
    arrays: Mapping[str, tuple[int, ...]] = field(default_factory=dict)

    def owns(self, name: str) -> bool:
        return self.locate(name) == self.site_id

    #: per-clause headroom at install time (the allocation the adaptive
    #: low-watermark compares remaining slack against)
    install_headroom: dict[LinearConstraint, int] = field(default_factory=dict)
    #: append-only durable log of treaty installs / rebalance acks;
    #: survives a crash-stop of the (volatile) server object
    wal: TreatyWAL = field(default_factory=TreatyWAL)
    #: round number of the currently installed treaty (-1 before any)
    treaty_round: int = -1
    #: escrow fast-path account for the installed treaty; None when no
    #: treaty is installed or the treaty is escrow-ineligible (any
    #: clause over non-object variables keeps the compiled slow path)
    escrow: EscrowAccount | None = None
    #: run the compiled oracle next to every escrow check and raise
    #: :class:`~repro.treaty.escrow.EscrowDivergence` on disagreement
    #: (the cluster's validate mode turns this on)
    validate_escrow: bool = False
    #: stats folded out of replaced/dropped escrow accounts, so
    #: run-level counters survive treaty reinstalls
    escrow_retired: dict[str, int] = field(default_factory=dict)
    #: installs that produced an escrow account vs. ones that fell back
    #: to the compiled path (the eligibility ratio the benchmark gates)
    escrow_installs: int = 0
    escrow_ineligible_installs: int = 0
    #: per-(tx, path) treaty-check partition of the installed treaty
    #: (the static tier; rebuilt on every install, cleared on crash)
    path_checks: dict[str, tuple[PathCheck, ...]] = field(default_factory=dict)
    #: static-tier accounting: which check kind each treaty-bearing
    #: execution landed on, plus the number of treaty clauses left in
    #: scope for it (what the checks-per-commit benchmark gate reads)
    check_stats: dict[str, int] = field(default_factory=_fresh_check_stats)
    #: Paxos Commit acceptor state, keyed by decision-round instance
    #: id: the highest ballot promised, and the (ballot, verdicts)
    #: last accepted.  Volatile mirrors of the WAL's ``paxos_promise``
    #: / ``paxos_accept`` records -- a crash loses the dicts, replay
    #: rebuilds them, so a restarted acceptor can never accept behind
    #: a promise it already made durable.
    paxos_promised: dict[int, int] = field(default_factory=dict)
    paxos_accepted: dict[int, tuple[int, tuple[tuple[int, bool], ...]]] = field(
        default_factory=dict
    )

    def install_treaty(
        self, treaty: LocalTreaty, round_number: int = -1, log: bool = True
    ) -> None:
        """Install a new local treaty and checkpoint each ``<=``-clause's
        headroom on the install-time (synchronized) state.

        The headroom snapshot is what makes the low-watermark check a
        *relative* trigger: "this clause has burned through 1 - w of
        the budget the last negotiation granted", independent of the
        clause's absolute scale.

        The install is **logged to the WAL before it is applied** (and
        therefore before any transport-level acknowledgement returns to
        the coordinator): once a peer believes this site holds the
        treaty, a crash-stop cannot unhold it.  ``log=False`` is the
        replay path only -- reinstalling a recovered treaty must not
        re-append it.
        """
        peek = self.engine.peek
        headroom = {
            con: clause_slack(con, peek)
            for con in treaty.constraints
            if con.op == "<="
        }
        # The static tier: partition every registered procedure's
        # execution paths against the new clauses.  Deterministic given
        # (catalog, treaty), so the WAL record doubles as a recovery
        # cross-check.
        paths = build_path_checks(self.catalog, treaty)
        if log:
            record = {"kind": "treaty_install", "round": round_number}
            record.update(encode_local_treaty(treaty, headroom, paths))
            self.wal.append(record)
        self.local_treaty = treaty
        self.install_headroom = headroom
        self.treaty_round = round_number
        self.path_checks = paths
        self._rebuild_escrow(headroom)

    def replay_wal(self) -> int:
        """Restart path: restore the treaty state from the durable log.

        Reduces the log to its last *complete* install record (a torn
        tail -- crash mid-append -- is dropped; it was never acked, so
        no peer assumes this site has it) and reinstalls that treaty
        with its recorded headroom snapshot.  Idempotent: replaying
        again reinstalls the same record.  Returns the replayed round
        number (-1 for a fresh log).
        """
        self._replay_paxos_state()
        record = self.wal.last_treaty_install()
        if record is None:
            self.local_treaty = None
            self.install_headroom = {}
            self.treaty_round = -1
            self.path_checks = {}
            self.drop_escrow()
            return -1
        treaty, headroom = decode_local_treaty(record)
        self.local_treaty = treaty
        # The path partition is re-derived, not restored: it is a pure
        # function of (catalog, treaty), and re-deriving keeps it
        # consistent with the code actually running after a restart.
        # Validate mode cross-checks the re-derivation against what was
        # recorded at install time.
        self.path_checks = build_path_checks(self.catalog, treaty)
        if self.validate_escrow:
            recorded = decode_recorded_paths(record)
            if recorded is not None and recorded != self.path_checks:
                raise PathCheckDivergence(
                    f"site {self.site_id}: replayed path partition does not "
                    "match the install-time record"
                )
        # The recorded snapshot, not a recomputation: slack already
        # consumed before the crash must stay consumed, or the adaptive
        # low-watermark would silently reset at every recovery.
        self.install_headroom = headroom
        self.treaty_round = record["round"]
        # The escrow counters take the opposite stance: the recorded
        # grants are the *install-time* slack, and everything consumed
        # since lives in the durable store -- so recovery rebuilds the
        # account from the WAL record and then resynchronizes it
        # against the store, leaving counters identical to a freshly
        # lowered treaty on the recovered state.
        self._rebuild_escrow(headroom)
        if self.escrow is not None:
            self.escrow.resync(self.engine.peek, self.engine.epoch)
        return self.treaty_round

    def _replay_paxos_state(self) -> None:
        """Rebuild the acceptor dicts from the durable log (the records
        were appended before the corresponding acks left the site, so
        the replayed state is at least as strong as anything a peer
        ever observed)."""
        promised: dict[int, int] = {}
        accepted: dict[int, tuple[int, tuple[tuple[int, bool], ...]]] = {}
        for record in self.wal.records():
            kind = record.get("kind")
            if kind == "paxos_promise":
                rnd = record["round"]
                promised[rnd] = max(promised.get(rnd, -1), record["ballot"])
            elif kind == "paxos_accept":
                rnd = record["round"]
                promised[rnd] = max(promised.get(rnd, -1), record["ballot"])
                accepted[rnd] = (
                    record["ballot"],
                    tuple((int(p), bool(ok)) for p, ok in record["verdicts"]),
                )
        self.paxos_promised = promised
        self.paxos_accepted = accepted

    # -- Paxos Commit acceptor state machine ---------------------------------------

    def paxos_accept(
        self,
        round_number: int,
        ballot: int,
        verdicts: tuple[tuple[int, bool], ...],
    ) -> bool:
        """Phase 2 accept: adopt the proposed verdict vector unless a
        higher ballot was already promised.  The accept is **logged to
        the WAL before it is acknowledged** -- that ordering is the
        whole point of Paxos Commit: once the proposer counts this
        ack toward its quorum, no crash of this site can un-log the
        verdicts a survivor would need to finish the round."""
        if ballot < self.paxos_promised.get(round_number, -1):
            return False
        self.wal.append(
            {
                "kind": "paxos_accept",
                "round": round_number,
                "ballot": ballot,
                "verdicts": [[p, ok] for p, ok in verdicts],
            }
        )
        self.paxos_promised[round_number] = ballot
        self.paxos_accepted[round_number] = (ballot, tuple(verdicts))
        return True

    def paxos_promise(
        self, round_number: int, ballot: int
    ) -> tuple[tuple[int, bool], ...] | None:
        """Phase 1 promise + report (a survivor's empty-verdict
        solicitation): promise the ballot, logged before the reply,
        and report the verdicts this acceptor last accepted (None if
        it never accepted -- or if the promise is refused because a
        higher ballot holds)."""
        if ballot < self.paxos_promised.get(round_number, -1):
            return None
        self.wal.append(
            {"kind": "paxos_promise", "round": round_number, "ballot": ballot}
        )
        self.paxos_promised[round_number] = ballot
        accepted = self.paxos_accepted.get(round_number)
        return accepted[1] if accepted is not None else None

    # -- escrow fast-path plumbing -------------------------------------------------

    def _rebuild_escrow(self, headroom: Mapping[LinearConstraint, int]) -> None:
        """Lower the installed treaty to a fresh escrow account (or
        fall back to the compiled path when ineligible).

        A ``<=``-clause row starts at the install-time grant (the same
        snapshot the adaptive watermark keeps); rows with no grant --
        an equality pin's opposing pair -- take their slack straight
        from the synchronized store.
        """
        self._fold_escrow_stats()
        program = (
            lower_to_escrow(tuple(self.local_treaty.constraints))
            if self.local_treaty is not None
            else None
        )
        if program is None:
            self.escrow = None
            if self.local_treaty is not None:
                self.escrow_ineligible_installs += 1
            return
        peek = self.engine.peek
        self.escrow = EscrowAccount(
            program,
            [
                headroom[row] if row in headroom else clause_slack(row, peek)
                for row in program.rows
            ],
            epoch=self.engine.epoch,
        )
        self.escrow_installs += 1

    def drop_escrow(self) -> None:
        """Retire the current escrow account (crash-stop, treaty
        removal); its counters fold into the run-level stats."""
        self._fold_escrow_stats()
        self.escrow = None

    def _fold_escrow_stats(self) -> None:
        if self.escrow is None:
            return
        for key, value in self.escrow.stats().items():
            self.escrow_retired[key] = self.escrow_retired.get(key, 0) + value

    def escrow_stats(self) -> dict[str, int]:
        """Run-level escrow counters: retired accounts plus the live
        one."""
        out = dict(self.escrow_retired)
        if self.escrow is not None:
            for key, value in self.escrow.stats().items():
                out[key] = out.get(key, 0) + value
        return out

    # -- the online execution path (Section 5.1) ---------------------------------

    def execute(self, tx_name: str, params: Mapping[str, int] | None = None) -> SiteResult:
        """Run a transaction disconnected; commit iff the local treaty
        still holds afterwards."""
        txn = self.engine.begin()
        getobj = txn.read
        try:
            proc = self.catalog.dispatch(tx_name, getobj, params=params)
            ctx = ExecContext(
                getobj=getobj,
                setobj=txn.write,
                emit=txn.emit,
                params=dict(params or {}),
                arrays=self.arrays,
            )
            proc.run(ctx)
            self._assert_writes_local(txn.written, tx_name)
            if self.local_treaty is not None:
                treaty = self.local_treaty
                check = self._path_check(tx_name, proc.row_index)
                kind = check.kind if check is not None else "full"
                stats = self.check_stats
                stats["checked"] += 1
                stats[_KIND_COUNTER[kind]] += 1
                if kind == "partition":
                    assert check is not None
                    stats["clauses_in_scope"] += len(check.clause_indices)
                elif kind == "full":
                    stats["clauses_in_scope"] += len(treaty.constraints)
                escrow = self.escrow
                if kind == "free":
                    # The path's writes touch no base any clause
                    # mentions: under H2 the treaty still holds, and
                    # the escrow counters (if any) would not have
                    # staged these deltas either (max_coeff == 0), so
                    # the delta computation is skipped along with the
                    # check.
                    violated: set[str] | frozenset[str] = frozenset()
                    if self.validate_escrow:
                        oracle = treaty.violations_after_writes(
                            getobj, txn.written
                        )
                        if oracle:
                            raise PathCheckDivergence(
                                f"site {self.site_id}, {tx_name} path "
                                f"{proc.row_index}: FREE bypass but full "
                                f"check violates {sorted(oracle)}"
                            )
                elif escrow is not None:
                    engine = self.engine
                    if escrow.synced_epoch != engine.epoch:
                        # Non-transactional writes (sync broadcasts,
                        # post-sync hooks, cleanup runs) moved values
                        # under the counters; recompute before trusting
                        # them.  The store already holds *this*
                        # transaction's writes, so the recomputation
                        # must read its before-images -- resyncing on
                        # the post-state would charge the deltas twice.
                        before_images = {
                            name: before
                            for name, before, _existed in txn.undo.entries
                        }
                        peek = engine.peek
                        escrow.resync(
                            lambda name: before_images[name]
                            if name in before_images
                            else peek(name),
                            engine.epoch,
                        )
                    store_get = engine.store.get
                    deltas = {
                        name: store_get(name) - before
                        for name, before, _existed in txn.undo.entries
                    }
                    viol_idx = escrow.commit(deltas)
                    violated = (
                        escrow.violated_objects(viol_idx)
                        if viol_idx is not None
                        else frozenset()
                    )
                    if kind == "free-absorb" and viol_idx is not None:
                        # Monotone-safe deltas cannot consume slack;
                        # the account must have absorbed them.
                        raise PathCheckDivergence(
                            f"site {self.site_id}, {tx_name} path "
                            f"{proc.row_index}: monotone-safe path "
                            f"rejected by escrow ({sorted(violated)})"
                        )
                    if self.validate_escrow:
                        oracle = treaty.violations_after_writes(
                            getobj, txn.written
                        )
                        if set(violated) != oracle:
                            raise EscrowDivergence(
                                f"site {self.site_id}, {tx_name}: escrow says "
                                f"{sorted(violated)}, compiled oracle says "
                                f"{sorted(oracle)} (deltas {deltas})"
                            )
                elif kind == "free-absorb":
                    # Compiled mode: the verdict is static (every
                    # write moves its clauses away from their bounds),
                    # so the judgment is skipped outright.
                    violated = frozenset()
                    if self.validate_escrow:
                        oracle = treaty.violations_after_writes(
                            getobj, txn.written
                        )
                        if oracle:
                            raise PathCheckDivergence(
                                f"site {self.site_id}, {tx_name} path "
                                f"{proc.row_index}: monotone-safe bypass "
                                f"but full check violates {sorted(oracle)}"
                            )
                elif kind == "partition":
                    assert check is not None
                    subset_ok = treaty.subset_check(check.clause_indices)(getobj)
                    violated = (
                        frozenset()
                        if subset_ok
                        else treaty.violations_after_writes(getobj, txn.written)
                    )
                    if self.validate_escrow:
                        oracle = treaty.violations_after_writes(
                            getobj, txn.written
                        )
                        if subset_ok != (not oracle):
                            raise PathCheckDivergence(
                                f"site {self.site_id}, {tx_name} path "
                                f"{proc.row_index}: subset check says "
                                f"{'ok' if subset_ok else 'violated'}, full "
                                f"check says {sorted(oracle)}"
                            )
                else:
                    violated = treaty.violations_after_writes(
                        getobj, txn.written
                    )
                if violated:
                    attempted = frozenset(txn.written)
                    txn.abort()
                    return SiteResult(
                        committed=False,
                        violated=True,
                        row_index=proc.row_index,
                        violated_objects=frozenset(violated),
                        attempted_writes=attempted,
                    )
            log = tuple(txn.log)
            written = frozenset(txn.written)
            txn.commit()
            return SiteResult(
                committed=True,
                violated=False,
                log=log,
                row_index=proc.row_index,
                written=written,
            )
        except BaseException:
            if txn.active:
                txn.abort()
            raise

    def _path_check(self, tx_name: str, row_index: int | None) -> PathCheck | None:
        """The installed static-tier check for one dispatched path
        (None when the procedure was registered after the install --
        the caller falls back to the full dynamic check)."""
        checks = self.path_checks.get(tx_name)
        if checks is None or row_index is None:
            return None
        for check in checks:
            if check.row_index == row_index:
                return check
        return None

    def _assert_writes_local(self, written: set[str], tx_name: str) -> None:
        foreign = sorted(name for name in written if not self.owns(name))
        if foreign:
            raise AssertionError(
                f"{tx_name} at site {self.site_id} wrote non-local objects "
                f"{foreign}; apply the Appendix B transform first "
                "(Assumption 3.1)"
            )

    # -- cleanup-phase helpers -----------------------------------------------------

    def dirty_owned_values(self) -> dict[str, int]:
        """Values of owned objects updated since the round checkpoint."""
        return {
            name: self.engine.peek(name)
            for name in self.engine.dirty_objects()
            if self.owns(name)
        }

    def apply_sync(self, updates: Mapping[str, int]) -> None:
        """Install broadcast values (both snapshots and owned objects;
        owned entries are no-ops since the site is their source)."""
        for name, value in updates.items():
            self.engine.poke(name, value)
        self.engine.checkpoint()

    def finish_sync(self) -> None:
        """End of a sync round this site participated in: the dirty
        set was broadcast, so reset the round-level dirty tracking."""
        self.engine.checkpoint()

    # -- the transport endpoint ------------------------------------------------------

    def handle(self, msg: Message):
        """Receive one typed transport message.

        - ``SyncBroadcast`` installs the sender's share of the round's
          update set into this site's store (snapshots for remote
          objects, no-ops for owned ones);
        - ``TreatyInstall`` installs the shipped local treaty (logged
          to the WAL before the ack returns);
        - ``Vote`` acknowledges a contender's priority claim in the
          violation-winner election;
        - ``VoteReply`` records a losing contender's concession;
        - ``RebalanceRequest`` logs, then acknowledges, a proactive
          treaty-refresh announcement (adaptive reallocation);
        - ``Rejoin`` acknowledges a recovered peer re-entering the
          cluster (the state refresh arrives as the rejoin round's
          SyncBroadcast exchange);
        - ``CleanupRun`` executes T' in full and replies with the
          (log, written) pair the coordinator cross-checks;
        - ``Phase2a`` drives the Paxos Commit acceptor: non-empty
          verdicts are an accept (WAL-logged before the ack), empty
          verdicts are a survivor's promise + report solicitation;
        - ``Phase2b`` is the quorum ack crossing back to the decision
          driver (this handler runs at the *coordinator*, which is
          what makes a mid-quorum coordinator crash schedulable);
        - ``Complete`` records a survivor-announced round completion
          in the WAL.
        """
        if isinstance(msg, SyncBroadcast):
            for name, value in msg.updates:
                self.engine.poke(name, value)
            return None
        if isinstance(msg, TreatyInstall):
            assert msg.treaty is not None
            self.install_treaty(msg.treaty, round_number=msg.round_number)
            return None
        if isinstance(msg, Vote):
            return True
        if isinstance(msg, VoteReply):
            return True
        if isinstance(msg, RebalanceRequest):
            # Log before ack, then acknowledge the proactive refresh;
            # the actual state exchange and treaty install arrive as
            # the round's SyncBroadcast / regeneration, like any
            # negotiation.  The logged request lets recovery see that
            # a refresh round was in flight at the crash.
            self.wal.append(
                {
                    "kind": "rebalance_request",
                    "origin": msg.src,
                    "objects": list(msg.objects),
                }
            )
            return True
        if isinstance(msg, Rejoin):
            return True
        if isinstance(msg, CleanupRun):
            return self.run_cleanup_transaction(msg.tx_name, dict(msg.params))
        if isinstance(msg, Phase2a):
            if msg.verdicts:
                return self.paxos_accept(msg.round_number, msg.ballot, msg.verdicts)
            return self.paxos_promise(msg.round_number, msg.ballot)
        if isinstance(msg, Phase2b):
            return True
        if isinstance(msg, Complete):
            self.wal.append(
                {
                    "kind": "round_complete",
                    "round": msg.round_number,
                    "committed": msg.committed,
                    "tx": msg.tx_name,
                }
            )
            return True
        raise TypeError(f"site {self.site_id}: unhandled message {msg!r}")

    def run_cleanup_transaction(
        self, tx_name: str, params: Mapping[str, int] | None = None
    ) -> tuple[tuple[int, ...], set[str]]:
        """Execute the violating transaction T' in full after sync.

        T' runs as the *complete* transaction (not a residual): the
        synchronized state may match a different symbolic row than the
        one that detected the violation.  T' is exempt from Assumption
        3.1 (see the remark after Theorem 3.8), so writes may touch
        any object; non-owned writes update this site's snapshots with
        values every other site computes identically (T' is
        deterministic).
        """
        tx = self.catalog.full_transaction(tx_name)
        txn = self.engine.begin()
        try:
            ctx = ExecContext(
                getobj=txn.read,
                setobj=txn.write,
                emit=txn.emit,
                params=dict(params or {}),
                arrays=self.arrays,
            )
            execute(tx.body, ctx)
            log = tuple(txn.log)
            written = set(txn.written)
            txn.commit()
            # T' commits without a treaty check (the new treaty is
            # installed right after), so the escrow counters never saw
            # these writes: invalidate them like any non-transactional
            # mutation.
            self.engine.epoch += 1
            return log, written
        except BaseException:
            if txn.active:
                txn.abort()
            raise

    def state_snapshot(self) -> dict[str, int]:
        return self.engine.store.snapshot()
