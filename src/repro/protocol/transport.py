"""The typed message transport between site endpoints.

The kernel is synchronous, so the transport is a loopback fabric:
:meth:`Transport.send` records the message in the trace and delivers
it immediately to the destination endpoint's ``handle`` method,
returning the handler's reply (request/response collapses into one
call).  What makes it more than a function call is the *trace*: every
message the distributed deployment would put on the wire is recorded
with its source and destination, so

- :class:`~repro.protocol.messages.MessageStats` is derived by
  counting the trace (no scattered ``record_*`` bookkeeping), and
- the discrete-event simulator prices each negotiation from the
  *edges actually used* -- a violation involving only sites A and B
  pays the A<->B round-trip time from the configured RTT matrix, not
  the cluster-wide worst edge.

Messages sent inside a :meth:`Transport.negotiation` context are
additionally grouped into a :class:`NegotiationTrace`, which exposes
the participant set and undirected edge set of that round.

Negotiations over **disjoint participant closures** may be open
concurrently (:meth:`Transport.begin` with a ``scope``): the runtime
interleaves their messages, each message is attributed to the open
context whose scope contains its source, and every trace records the
global event counter at open and close time -- overlapping
``(opened_at, closed_at)`` intervals are the proof that two rounds
did *not* serialize against each other.  Opening a context whose
scope intersects an already-open one raises: overlapping closures
must race through the vote phase instead, and only the winner's
negotiation runs.

The fabric is **fault-aware**: attach a
:class:`~repro.protocol.faults.FaultPlan` (or call
:meth:`Transport.crash` directly) and delivery can fail -- the
destination crash-stopped, the edge is inside an active partition, or
the lossy link dropped/over-delayed the message.  Failed deliveries
never hang the synchronous kernel: they surface immediately as
:class:`~repro.protocol.faults.UnreachableError` (what a real
deployment learns by waiting out a timer), are recorded in
``undelivered`` rather than the trace, and the protocol layer aborts
the surrounding round cleanly (its trace is marked ``aborted`` and
excluded from the synchronization-round counts).  A site crashed by
the plan handles the fatal message *before* halting -- state changes
and write-ahead logging happen, the reply is lost -- which is the
mid-install window WAL recovery exists for.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterator, Protocol

from repro.protocol.messages import Message, MessageStats, SyncBroadcast

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (faults imports us)
    from repro.protocol.faults import FaultPlan


class TransportError(Exception):
    """Misrouted messages or misuse of the transport."""


class UnreachableError(TransportError):
    """A message could not be delivered: the destination crash-stopped,
    the edge sits inside an active partition, or the lossy link dropped
    (or over-delayed) the message.  In a real deployment the sender
    discovers this by waiting out a timeout; the synchronous kernel
    surfaces it immediately so rounds abort cleanly instead of hanging.
    """

    def __init__(self, src: int, dst: int, reason: str) -> None:
        super().__init__(f"message {src}->{dst} undeliverable: {reason}")
        self.src = src
        self.dst = dst
        self.reason = reason


class Endpoint(Protocol):
    """Anything that can receive messages (usually a site server)."""

    def handle(self, msg: Message) -> Any: ...


#: Negotiation kinds that constitute a synchronization round (the
#: quantity the paper reports as "negotiations"); '2pc' groups are
#: per-transaction commits, not treaty negotiations.  'rebalance' is
#: the adaptive proactive refresh -- no transaction aborted, but the
#: round exchanges state and installs treaties like any other, so it
#: counts as coordination.  'rejoin' is the recovery round a crashed
#: site runs to re-enter the cluster: state is exchanged, so it is
#: honest to count it (fault tolerance is not free coordination).
SYNC_KINDS = ("cleanup", "sync", "rebalance", "rejoin")


@dataclass
class NegotiationTrace:
    """The messages of one negotiation (or 2PC commit) round."""

    index: int
    kind: str  # 'cleanup' | 'sync' | '2pc'
    origin: int
    messages: list[Message] = field(default_factory=list)
    #: declared participant scope (None for exclusive rounds, which
    #: own the whole transport while open)
    scope: frozenset[int] | None = None
    #: global event-counter stamps; two rounds with overlapping
    #: [opened_at, closed_at] intervals ran concurrently
    opened_at: int = -1
    closed_at: int = -1
    #: concurrent wave this round ran in (-1 for exclusive rounds)
    wave: int = -1
    #: True when the round was abandoned mid-flight (a participant
    #: became unreachable); aborted rounds do not count as
    #: synchronizations and installed nothing
    aborted: bool = False
    #: injected link latency accumulated by this round's messages
    #: (recorded for analysis; sub-timeout delays do not change the
    #: kernel's behaviour -- the sender-visible fault surface is the
    #: timeout equivalence, where a delay past the plan's ``timeout_ms``
    #: is indistinguishable from a drop)
    delay_ms: float = 0.0

    @property
    def participants(self) -> tuple[int, ...]:
        """Every site that sent or received a message this round, plus
        the origin (a single-site round has no messages at all)."""
        sites = {self.origin}
        for msg in self.messages:
            sites.add(msg.src)
            sites.add(msg.dst)
        return tuple(sorted(sites))

    @property
    def edges(self) -> tuple[tuple[int, int], ...]:
        """Undirected network edges actually crossed this round."""
        return tuple(sorted({m.edge for m in self.messages if m.src != m.dst}))

    @property
    def sync_message_count(self) -> int:
        return sum(1 for m in self.messages if isinstance(m, SyncBroadcast))

    def overlaps(self, other: "NegotiationTrace") -> bool:
        """Did this round's open interval overlap ``other``'s (i.e.
        did the two rounds proceed in parallel)?"""
        if min(self.opened_at, self.closed_at, other.opened_at, other.closed_at) < 0:
            return False
        return self.opened_at < other.closed_at and other.opened_at < self.closed_at


@dataclass
class Transport:
    """Loopback message fabric with a full trace."""

    endpoints: dict[int, Endpoint] = field(default_factory=dict)
    trace: list[Message] = field(default_factory=list)
    negotiations: list[NegotiationTrace] = field(default_factory=list)
    #: deterministic fault schedule (None = the fault-free fabric)
    faults: FaultPlan | None = None
    #: currently crash-stopped sites (by plan or explicit :meth:`crash`)
    down: set[int] = field(default_factory=set)
    #: messages that never reached their destination, with the reason
    undelivered: list[tuple[Message, str]] = field(default_factory=list)
    #: total injected link latency over delivered messages
    total_delay_ms: float = 0.0
    _open: list[NegotiationTrace] = field(default_factory=list)
    #: monotone event counter: bumped on every open, send, and close
    _events: int = 0
    _next_index: int = 0
    #: send-attempt counter (the FaultPlan's per-message index; counts
    #: undelivered attempts too, unlike ``len(trace)``)
    _attempts: int = 0
    #: inbound messages handled per site (drives plan crash-stops)
    _handled: dict[int, int] = field(default_factory=dict)

    def register(self, site_id: int, endpoint: Endpoint) -> None:
        if site_id in self.endpoints:
            raise TransportError(f"site {site_id} already registered")
        self.endpoints[site_id] = endpoint

    # -- fault surface -------------------------------------------------------------

    def crash(self, site_id: int) -> None:
        """Crash-stop a site: every message to it is undeliverable
        until :meth:`recover`.  Idempotent."""
        if site_id not in self.endpoints:
            raise TransportError(f"no endpoint registered for site {site_id}")
        self.down.add(site_id)

    def recover(self, site_id: int) -> None:
        """Mark a crashed site reachable again.  The transport only
        restores connectivity; state recovery (WAL replay, rejoin
        synchronization) is the protocol layer's job."""
        self.down.discard(site_id)

    def is_down(self, site_id: int) -> bool:
        return site_id in self.down

    def _undeliverable(self, msg: Message, reason: str) -> UnreachableError:
        self.undelivered.append((msg, reason))
        return UnreachableError(msg.src, msg.dst, reason)

    def _attribute(self, msg: Message) -> NegotiationTrace | None:
        """The open context this message belongs to.

        With one open context everything belongs to it; with several
        (concurrent disjoint rounds), attribution is by the sender's
        membership in the declared scope -- unambiguous because open
        scopes never intersect.
        """
        if not self._open:
            return None
        if len(self._open) == 1:
            owner = self._open[0]
        else:
            owners = [
                t for t in self._open if t.scope is not None and msg.src in t.scope
            ]
            if len(owners) != 1:
                raise TransportError(
                    f"cannot attribute message from site {msg.src} to an open "
                    f"negotiation: {len(owners)} candidate scopes"
                )
            owner = owners[0]
        if owner.scope is not None:
            # Isolation holds on both endpoints: a scoped round must
            # neither accept out-of-scope senders nor leak messages to
            # sites outside its closure.
            outside = {msg.src, msg.dst} - owner.scope
            if outside:
                raise TransportError(
                    f"message {msg.src}->{msg.dst} crosses the open "
                    f"negotiation's scope {sorted(owner.scope)}"
                )
        return owner

    def send(self, msg: Message) -> Any:
        """Record the message and deliver it to the destination.

        Delivery can fail (:class:`UnreachableError`): the sender or
        destination is crash-stopped, the edge is severed by an active
        partition, or the fault plan drops / over-delays the message.
        Failed attempts are recorded in ``undelivered`` (never in the
        trace -- the destination did not see them).  A plan-scheduled
        crash-stop fires *after* the destination handles the fatal
        message: its state changed and its WAL was written, but the
        reply is lost, so the sender still observes a timeout.
        """
        endpoint = self.endpoints.get(msg.dst)
        if endpoint is None:
            raise TransportError(f"no endpoint registered for site {msg.dst}")
        self._events += 1
        index = self._attempts
        self._attempts += 1
        if msg.src in self.down:
            raise self._undeliverable(msg, "sender crash-stopped")
        if msg.dst in self.down:
            raise self._undeliverable(msg, "destination crash-stopped")
        delay = 0.0
        if self.faults is not None:
            if self.faults.severed(msg.edge, self._events):
                raise self._undeliverable(msg, "edge severed by partition")
            if self.faults.drops(index):
                raise self._undeliverable(msg, "dropped by lossy link")
            delay = self.faults.delay_of(index)
            if delay >= self.faults.timeout_ms:
                raise self._undeliverable(msg, "delayed past the timeout")
        self.trace.append(msg)
        active = self._attribute(msg)
        if active is not None:
            active.messages.append(msg)
            active.delay_ms += delay
        self.total_delay_ms += delay
        reply = endpoint.handle(msg)
        handled = self._handled.get(msg.dst, 0) + 1
        self._handled[msg.dst] = handled
        if self.faults is not None and self.faults.crashes_after_handling(
            msg.dst, handled
        ):
            # The message WAS delivered (it stays in the trace, its
            # state changes and WAL appends happened); what the crash
            # loses is the *reply*, so the sender still observes a
            # timeout.  Not recorded in ``undelivered`` -- that list is
            # strictly for messages the destination never saw.
            self.down.add(msg.dst)
            raise UnreachableError(
                msg.src, msg.dst, "destination crashed after handling"
            )
        return reply

    # -- negotiation contexts ------------------------------------------------------

    def begin(
        self,
        kind: str,
        origin: int,
        scope: frozenset[int] | None = None,
        wave: int = -1,
    ) -> NegotiationTrace:
        """Open a negotiation context.

        Without a ``scope`` the round is *exclusive*: no other context
        may be open (the seed behaviour -- "negotiation rounds do not
        nest").  With a ``scope`` the round is *concurrent*: other
        scoped rounds may already be open, provided every open scope
        is disjoint from the new one.
        """
        if scope is None:
            if self._open:
                raise TransportError("negotiation rounds do not nest")
        else:
            for other in self._open:
                if other.scope is None:
                    raise TransportError(
                        "cannot open a scoped round inside an exclusive one"
                    )
                common = other.scope & scope
                if common:
                    raise TransportError(
                        f"concurrent negotiations overlap on sites "
                        f"{sorted(common)}: rounds over intersecting "
                        "closures must vote, not run in parallel"
                    )
        self._events += 1
        trace = NegotiationTrace(
            index=self._next_index,
            kind=kind,
            origin=origin,
            scope=scope,
            opened_at=self._events,
            wave=wave,
        )
        self._next_index += 1
        self._open.append(trace)
        return trace

    def end(self, trace: NegotiationTrace) -> None:
        """Close an open negotiation context."""
        if trace not in self._open:
            raise TransportError("ending a negotiation that is not open")
        self._events += 1
        trace.closed_at = self._events
        self._open.remove(trace)
        self.negotiations.append(trace)

    def abort(self, trace: NegotiationTrace) -> None:
        """Close an open negotiation that gave up mid-flight (a
        participant became unreachable).  The trace is kept for
        post-mortems but marked ``aborted``: it installed nothing and
        does not count as a synchronization round."""
        trace.aborted = True
        self.end(trace)

    @contextmanager
    def negotiation(self, kind: str, origin: int) -> Iterator[NegotiationTrace]:
        """Group the messages of one exclusive round under a shared
        trace entry.  A round abandoned by an escaping exception (an
        unreachable participant, a validation failure) is closed as
        ``aborted`` -- it must not count as a completed
        synchronization."""
        trace = self.begin(kind, origin)
        try:
            yield trace
        except BaseException:
            self.abort(trace)
            raise
        self.end(trace)

    # -- derived views ------------------------------------------------------------

    def message_stats(self) -> MessageStats:
        """The kernel's message accounting, derived from the trace."""
        rounds = sum(
            1 for n in self.negotiations if n.kind in SYNC_KINDS and not n.aborted
        )
        return MessageStats.from_trace(self.trace, negotiations=rounds)

    def last_negotiation(self) -> NegotiationTrace | None:
        return self.negotiations[-1] if self.negotiations else None

    def cleanup_rounds(self) -> list[NegotiationTrace]:
        return [n for n in self.negotiations if n.kind == "cleanup" and not n.aborted]

    def aborted_rounds(self) -> list[NegotiationTrace]:
        """Rounds abandoned because a participant was unreachable."""
        return [n for n in self.negotiations if n.aborted]
