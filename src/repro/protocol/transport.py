"""The typed message transport between site endpoints.

The kernel is synchronous, so the transport is a loopback fabric:
:meth:`Transport.send` records the message in the trace and delivers
it immediately to the destination endpoint's ``handle`` method,
returning the handler's reply (request/response collapses into one
call).  What makes it more than a function call is the *trace*: every
message the distributed deployment would put on the wire is recorded
with its source and destination, so

- :class:`~repro.protocol.messages.MessageStats` is derived by
  counting the trace (no scattered ``record_*`` bookkeeping), and
- the discrete-event simulator prices each negotiation from the
  *edges actually used* -- a violation involving only sites A and B
  pays the A<->B round-trip time from the configured RTT matrix, not
  the cluster-wide worst edge.

Messages sent inside a :meth:`Transport.negotiation` context are
additionally grouped into a :class:`NegotiationTrace`, which exposes
the participant set and undirected edge set of that round.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator, Protocol

from repro.protocol.messages import Message, MessageStats, SyncBroadcast


class TransportError(Exception):
    """Misrouted messages or misuse of the transport."""


class Endpoint(Protocol):
    """Anything that can receive messages (usually a site server)."""

    def handle(self, msg: Message) -> Any: ...


#: Negotiation kinds that constitute a synchronization round (the
#: quantity the paper reports as "negotiations"); '2pc' groups are
#: per-transaction commits, not treaty negotiations.
SYNC_KINDS = ("cleanup", "sync")


@dataclass
class NegotiationTrace:
    """The messages of one negotiation (or 2PC commit) round."""

    index: int
    kind: str  # 'cleanup' | 'sync' | '2pc'
    origin: int
    messages: list[Message] = field(default_factory=list)

    @property
    def participants(self) -> tuple[int, ...]:
        """Every site that sent or received a message this round, plus
        the origin (a single-site round has no messages at all)."""
        sites = {self.origin}
        for msg in self.messages:
            sites.add(msg.src)
            sites.add(msg.dst)
        return tuple(sorted(sites))

    @property
    def edges(self) -> tuple[tuple[int, int], ...]:
        """Undirected network edges actually crossed this round."""
        return tuple(sorted({m.edge for m in self.messages if m.src != m.dst}))

    @property
    def sync_message_count(self) -> int:
        return sum(1 for m in self.messages if isinstance(m, SyncBroadcast))


@dataclass
class Transport:
    """Loopback message fabric with a full trace."""

    endpoints: dict[int, Endpoint] = field(default_factory=dict)
    trace: list[Message] = field(default_factory=list)
    negotiations: list[NegotiationTrace] = field(default_factory=list)
    _active: NegotiationTrace | None = None

    def register(self, site_id: int, endpoint: Endpoint) -> None:
        if site_id in self.endpoints:
            raise TransportError(f"site {site_id} already registered")
        self.endpoints[site_id] = endpoint

    def send(self, msg: Message) -> Any:
        """Record the message and deliver it to the destination."""
        endpoint = self.endpoints.get(msg.dst)
        if endpoint is None:
            raise TransportError(f"no endpoint registered for site {msg.dst}")
        self.trace.append(msg)
        if self._active is not None:
            self._active.messages.append(msg)
        return endpoint.handle(msg)

    @contextmanager
    def negotiation(self, kind: str, origin: int) -> Iterator[NegotiationTrace]:
        """Group the messages of one round under a shared trace entry."""
        if self._active is not None:
            raise TransportError("negotiation rounds do not nest")
        trace = NegotiationTrace(
            index=len(self.negotiations), kind=kind, origin=origin
        )
        self._active = trace
        try:
            yield trace
        finally:
            self._active = None
            self.negotiations.append(trace)

    # -- derived views ------------------------------------------------------------

    def message_stats(self) -> MessageStats:
        """The kernel's message accounting, derived from the trace."""
        rounds = sum(1 for n in self.negotiations if n.kind in SYNC_KINDS)
        return MessageStats.from_trace(self.trace, negotiations=rounds)

    def last_negotiation(self) -> NegotiationTrace | None:
        return self.negotiations[-1] if self.negotiations else None
