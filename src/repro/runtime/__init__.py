"""The asyncio runtime: sites as tasks, messages as wire frames.

Everything below :mod:`repro.protocol` executes the homeostasis
protocol in one deterministic thread; this package runs the *same*
kernel against real concurrency.  Each
:class:`~repro.protocol.site.SiteServer` is owned by an independent
asyncio inbox task (single-writer discipline: all message handling
for a site happens inside its task, so site state needs no locks),
every inter-site message crosses the event loop as a length-prefixed
JSON frame (:mod:`repro.runtime.codec`), and fault injection is
physical -- a dropped frame is simply never delivered and the sender
discovers the loss by waiting out a wall-clock timeout
(:class:`~repro.runtime.transport.AsyncTransport`).

:class:`~repro.runtime.cluster.AsyncClusterHost` assembles the pieces
behind the :func:`~repro.protocol.config.build_cluster` facade
(``kernel="async"``), :mod:`repro.runtime.serve` exposes the cluster
over loopback sockets (the ``repro-serve`` console entry point) with
:class:`~repro.runtime.client.ServeClient` as the matching client,
and :mod:`repro.runtime.differential` cross-checks the whole stack
against the deterministic kernel on identical schedules.
"""

from repro.runtime.client import ServeClient
from repro.runtime.cluster import AsyncClusterHost
from repro.runtime.codec import (
    WIRE_VERSION,
    CodecError,
    TruncatedFrame,
    UnknownMessageType,
    UnknownWireVersion,
    decode_message,
    encode_message,
)
from repro.runtime.differential import DifferentialReport, run_differential
from repro.runtime.transport import AsyncTransport

__all__ = [
    "WIRE_VERSION",
    "AsyncClusterHost",
    "AsyncTransport",
    "CodecError",
    "DifferentialReport",
    "ServeClient",
    "TruncatedFrame",
    "UnknownMessageType",
    "UnknownWireVersion",
    "decode_message",
    "encode_message",
    "run_differential",
]
