"""Blocking client for a ``repro-serve`` listener.

:class:`ServeClient` is the synchronous counterpart of the serve
protocol (see :mod:`repro.runtime.serve` for the request/response
vocabulary): one TCP connection, length-prefixed frames, one reply per
request.  Deliberately thread-dumb -- benchmark and smoke harnesses
open one client per worker thread, which is also how the serve layer
is meant to be loaded (concurrent connections, serialized kernel).
"""

from __future__ import annotations

import socket
from typing import Any, Mapping

from repro.runtime.codec import (
    CodecError,
    decode_payload,
    encode_payload,
    read_frame_from_socket,
)


class ServeError(Exception):
    """The server answered with an error frame (or hung up mid-reply)."""


class ServeClient:
    """One blocking connection to a ``repro-serve`` listener."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = 7737, *, timeout_s: float = 30.0
    ) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout_s)

    # -- request primitives --------------------------------------------------------

    def request(self, payload: Mapping[str, Any]) -> dict[str, Any]:
        """Send one frame, wait for the matching reply frame."""
        self._sock.sendall(encode_payload(payload))
        frame = read_frame_from_socket(self._sock)
        if frame is None:
            raise ServeError("server closed the connection before replying")
        reply = decode_payload(frame)
        if reply.get("t") == "error":
            raise ServeError(reply.get("reason", "unspecified server error"))
        return reply

    # -- serve protocol ------------------------------------------------------------

    def ping(self) -> bool:
        return self.request({"t": "ping"}).get("t") == "ok"

    def submit(
        self, tx_name: str, params: Mapping[str, int] | None = None
    ) -> dict[str, Any]:
        """Submit one transaction; returns the result dict (``status``
        is an :class:`~repro.protocol.messages.Outcome` value string)."""
        reply = self.request(
            {"t": "submit", "tx": tx_name, "params": dict(params or {})}
        )
        if reply.get("t") != "result":
            raise ServeError(f"expected a result frame, got {reply!r}")
        return reply

    def stats(self) -> dict[str, Any]:
        reply = self.request({"t": "stats"})
        if reply.get("t") != "stats":
            raise ServeError(f"expected a stats frame, got {reply!r}")
        return reply

    def shutdown(self) -> None:
        """Ask the server to drain and exit (reply arrives first)."""
        self.request({"t": "shutdown"})

    # -- lifecycle -----------------------------------------------------------------

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


__all__ = ["CodecError", "ServeClient", "ServeError"]
