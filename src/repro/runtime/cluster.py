""":class:`AsyncClusterHost`: the protocol kernel over real concurrency.

The host assembles the asyncio runtime around an unmodified protocol
kernel:

- a dedicated **event-loop thread** runs every site's inbox task (one
  task per :class:`~repro.protocol.site.SiteServer`, single-writer
  discipline -- see :mod:`repro.runtime.transport`);
- a single-worker **kernel executor** runs the protocol driver: all
  submissions funnel through it, so the kernel code stays exactly the
  code the deterministic tests verify, while its every inter-site
  message crosses the loop as a wire frame and its every timeout is
  wall-clock real.  Concurrent clients (the serve layer) pipeline
  through this executor: their transactions *queue* at the driver but
  their sockets, parsing, and replies overlap on the loop;
- the :class:`~repro.runtime.transport.AsyncTransport` bridges the
  two worlds.

Because the kernel serializes submissions, a fault-free host is
*deterministic given the submission order*: feeding the same schedule
to a host and to the in-process kernel must produce identical
commits, treaty installs, and final stores.  That is not an accident
but the correctness argument -- :mod:`repro.runtime.differential`
gates on it.
"""

from __future__ import annotations

import asyncio
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import TYPE_CHECKING, Any, Callable, Mapping, Sequence

from repro.protocol.homeostasis import ClusterResult, HomeostasisCluster
from repro.runtime.transport import AsyncTransport

if TYPE_CHECKING:
    from repro.protocol.concurrent import WindowResult
    from repro.protocol.config import ClusterSpec


class AsyncClusterHost:
    """A homeostasis cluster whose sites live on an asyncio event loop.

    Constructed through :func:`repro.protocol.config.build_cluster`
    with ``kernel="async"``; accepts the same :class:`ClusterSpec` as
    the in-process kernels plus the wall-clock knobs below.  Use as a
    context manager (or call :meth:`close`) -- the host owns threads.

    ``driver`` picks the kernel the driver thread runs:
    ``"sequential"`` (default, one transaction at a time -- the
    differential-oracle twin) or ``"concurrent"`` (windowed
    submissions with a real vote phase, via :meth:`submit_window`).
    """

    def __init__(
        self,
        spec: "ClusterSpec",
        *,
        transport: AsyncTransport | None = None,
        driver: str = "sequential",
        timeout_s: float = 5.0,
        delay_unit_s: float = 0.001,
        faults: Any = None,
    ) -> None:
        if transport is None:
            transport = AsyncTransport(
                timeout_s=timeout_s, delay_unit_s=delay_unit_s, faults=faults
            )
        elif not isinstance(transport, AsyncTransport):
            raise TypeError(
                "the async kernel needs an AsyncTransport, got "
                f"{type(transport).__name__}"
            )
        self.spec = spec
        self.transport = transport
        self._loop = asyncio.new_event_loop()
        self._loop_thread = threading.Thread(
            target=self._run_loop, name="repro-loop", daemon=True
        )
        self._loop_thread.start()
        transport.bind_loop(self._loop)
        self._kernel_pool = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-kernel"
        )
        self._closed = False
        kernel_cls: type[HomeostasisCluster]
        if driver == "sequential":
            kernel_cls = HomeostasisCluster
        elif driver == "concurrent":
            from repro.protocol.concurrent import ConcurrentCluster

            kernel_cls = ConcurrentCluster
        else:
            raise ValueError(f"unknown driver {driver!r}")
        try:
            # Construction runs on the kernel thread too: with a
            # nondeterministic solver the initial install already
            # ships TreatyInstall frames through the loop.
            self.cluster: HomeostasisCluster = self._run(
                lambda: kernel_cls._from_spec(spec, transport=transport)
            )
        except BaseException:
            self._teardown_threads()
            raise

    def _run_loop(self) -> None:
        asyncio.set_event_loop(self._loop)
        self._loop.run_forever()

    # -- kernel-thread funnel ------------------------------------------------------

    def _run(self, fn: Callable[..., Any], *args: Any, **kwargs: Any) -> Any:
        """Run ``fn`` on the kernel driver thread and wait for it."""
        if self._closed:
            raise RuntimeError("AsyncClusterHost is closed")
        return self._kernel_pool.submit(fn, *args, **kwargs).result()

    async def run_on_kernel(
        self, fn: Callable[..., Any], *args: Any
    ) -> Any:
        """Awaitable twin of :meth:`_run` for loop-side callers (the
        serve layer submits client transactions through this)."""
        return await asyncio.wrap_future(self._kernel_pool.submit(fn, *args))

    # -- client API ----------------------------------------------------------------

    def submit(
        self, tx_name: str, params: Mapping[str, int] | None = None
    ) -> ClusterResult:
        """Run one transaction to completion (raises
        :class:`~repro.protocol.homeostasis.Unavailable` like the
        in-process kernel)."""
        return self._run(self.cluster.submit, tx_name, params)

    def try_submit(
        self, tx_name: str, params: Mapping[str, int] | None = None
    ) -> ClusterResult:
        """:meth:`submit` with unavailability mapped into
        ``result.status`` (see :class:`~repro.protocol.messages.Outcome`)."""
        return self._run(self.cluster.try_submit, tx_name, params)

    def submit_window(
        self,
        requests: Sequence[tuple[str, Mapping[str, int] | None]],
        timestamps: Sequence[int] | None = None,
    ) -> "WindowResult":
        """Windowed submission (``driver="concurrent"`` hosts only)."""
        submit_window = getattr(self.cluster, "submit_window", None)
        if submit_window is None:
            raise TypeError(
                "submit_window needs driver='concurrent' (this host runs "
                "the sequential driver)"
            )
        return self._run(submit_window, requests, timestamps)

    # -- protocol passthroughs -----------------------------------------------------

    def crash_site(self, sid: int) -> None:
        self._run(self.cluster.crash_site, sid)

    def recover_site(self, sid: int) -> tuple[int, ...]:
        return self._run(self.cluster.recover_site, sid)

    def force_synchronize(self) -> None:
        self._run(self.cluster.force_synchronize)

    def global_state(self) -> dict[str, int]:
        return self._run(self.cluster.global_state)

    def precompile_checks(self) -> int:
        return self._run(self.cluster.precompile_checks)

    def fairness_stats(self) -> dict:
        """Arbitration-fairness counters from the kernel's credit
        ledger (policy, contested elections, per-site streaks and
        wait percentiles)."""
        return self._run(self.cluster.fairness_stats)

    @property
    def stats(self):
        return self.cluster.stats

    def wire_stats(self) -> dict[str, int]:
        """Frames and bytes that actually crossed the event loop."""
        return {
            "frames_sent": self.transport.frames_sent,
            "bytes_sent": self.transport.bytes_sent,
        }

    # -- lifecycle -----------------------------------------------------------------

    def close(self) -> None:
        """Stop the site tasks, the loop thread, and the kernel pool
        (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self.transport.close()
        self._teardown_threads()

    def _teardown_threads(self) -> None:
        self._kernel_pool.shutdown(wait=True)
        if not self._loop.is_closed():
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._loop_thread.join(timeout=5.0)
            self._loop.close()

    def __enter__(self) -> "AsyncClusterHost":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
