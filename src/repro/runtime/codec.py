"""Length-prefixed JSON wire codec for the asyncio runtime.

One frame on the wire is::

    +----------------+---------+------------------------------+
    | length (4B BE) | version | canonical JSON payload (UTF-8) |
    +----------------+---------+------------------------------+

``length`` counts the version byte plus the payload, so a reader can
consume frames from a stream without parsing JSON; the version byte
lets the wire format evolve without ambiguity (a reader refuses
frames from a future protocol with :class:`UnknownWireVersion`
instead of misparsing them).

The JSON payload is *canonical* -- sorted keys, no whitespace -- so
encode -> decode -> encode is byte-identical, which is what the codec
round-trip tests pin down.  Two payload families share the framing:

- **protocol messages** (``{"t": "<MessageType>", ...}``): the typed
  vocabulary of :mod:`repro.protocol.messages`, one tag per dataclass,
  with tuples/treaties lowered to JSON and reconstructed exactly on
  decode (:func:`encode_message` / :func:`decode_message`);
- **reply / client payloads**: handler replies are plain values
  (``None``, ``True``, ``(log, written)``) carried through the tagged
  value codec (:func:`value_to_wire` / :func:`value_from_wire`), and
  the serve layer's client dicts ride :func:`encode_payload` /
  :func:`decode_payload` directly.

A :class:`~repro.treaty.table.LocalTreaty` inside a ``TreatyInstall``
reuses the WAL record codec (:func:`repro.storage.wal.
encode_local_treaty`) -- the wire and the log agree on what a treaty
looks like serialized.
"""

from __future__ import annotations

import json
import struct
from typing import Any, Mapping

from repro.protocol.messages import (
    CleanupRun,
    Complete,
    Decision,
    Message,
    Phase2a,
    Phase2b,
    Prepare,
    RebalanceRequest,
    Rejoin,
    SyncBroadcast,
    TreatyInstall,
    Vote,
    VoteReply,
)
from repro.storage.wal import decode_local_treaty, encode_local_treaty

#: Current wire protocol version (the byte after the length prefix).
WIRE_VERSION = 1

#: 4-byte big-endian unsigned frame length.
_HEADER = struct.Struct(">I")

#: Frames above this are refused outright (a corrupt length prefix
#: must not make a reader try to allocate gigabytes).
MAX_FRAME_BYTES = 8 * 1024 * 1024


class CodecError(Exception):
    """The bytes on the wire are not a well-formed frame."""


class TruncatedFrame(CodecError):
    """The stream ended (or the buffer ran out) mid-frame."""


class UnknownWireVersion(CodecError):
    """The frame's version byte names a protocol this codec does not
    speak."""


class UnknownMessageType(CodecError):
    """The payload's type tag names no known message."""


_MESSAGE_TYPES: dict[str, type[Message]] = {
    cls.__name__: cls
    for cls in (
        SyncBroadcast,
        TreatyInstall,
        Vote,
        VoteReply,
        RebalanceRequest,
        CleanupRun,
        Rejoin,
        Phase2a,
        Phase2b,
        Complete,
        Prepare,
        Decision,
    )
}

#: Message fields carrying ``tuple[tuple[str, int], ...]`` payloads
#: (JSON lowers them to nested lists; decode restores the tuples).
_PAIR_TUPLE_FIELDS = {"updates", "params"}
#: Message fields carrying flat ``tuple[str, ...]`` payloads.
_FLAT_TUPLE_FIELDS = {"objects"}
#: Message fields carrying ``tuple[tuple[int, bool], ...]`` payloads
#: (Paxos Commit per-participant verdicts).
_VERDICT_TUPLE_FIELDS = {"verdicts"}


# -- framing -------------------------------------------------------------------


def encode_payload(obj: Mapping[str, Any]) -> bytes:
    """Frame one JSON-able payload dict: length + version + canonical
    JSON."""
    body = bytes([WIRE_VERSION]) + json.dumps(
        obj, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise CodecError(f"frame of {len(body)} bytes exceeds the wire maximum")
    return _HEADER.pack(len(body)) + body


def decode_payload(data: bytes) -> dict[str, Any]:
    """Parse one complete frame back into its payload dict.

    Raises :class:`TruncatedFrame` when ``data`` is shorter than its
    length prefix promises (or too short to hold a prefix at all),
    :class:`CodecError` when trailing bytes follow the frame, and
    :class:`UnknownWireVersion` on a version byte this codec does not
    speak.
    """
    if len(data) < _HEADER.size:
        raise TruncatedFrame(
            f"{len(data)} bytes cannot hold a {_HEADER.size}-byte length prefix"
        )
    (length,) = _HEADER.unpack_from(data)
    if length > MAX_FRAME_BYTES:
        raise CodecError(f"frame length {length} exceeds the wire maximum")
    body = data[_HEADER.size :]
    if len(body) < length:
        raise TruncatedFrame(f"frame promises {length} bytes, got {len(body)}")
    if len(body) > length:
        raise CodecError(f"{len(body) - length} trailing bytes after the frame")
    if length == 0:
        raise TruncatedFrame("empty frame (no version byte)")
    version = body[0]
    if version != WIRE_VERSION:
        raise UnknownWireVersion(
            f"wire version {version} (this codec speaks {WIRE_VERSION})"
        )
    try:
        payload = json.loads(body[1:length].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CodecError(f"frame payload is not canonical JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise CodecError(f"frame payload must be an object, got {type(payload).__name__}")
    return payload


# -- protocol messages ---------------------------------------------------------


def message_to_wire(msg: Message) -> dict[str, Any]:
    """Lower one typed message to its JSON payload dict."""
    name = type(msg).__name__
    if name not in _MESSAGE_TYPES:
        raise UnknownMessageType(f"cannot encode message type {name}")
    payload: dict[str, Any] = {"t": name, "src": msg.src, "dst": msg.dst}
    for field_name in _message_fields(type(msg)):
        value = getattr(msg, field_name)
        if isinstance(msg, TreatyInstall) and field_name == "treaty":
            value = None if value is None else encode_local_treaty(value)
        elif field_name in _PAIR_TUPLE_FIELDS:
            value = [[k, v] for k, v in value]
        elif field_name in _FLAT_TUPLE_FIELDS:
            value = list(value)
        elif field_name in _VERDICT_TUPLE_FIELDS:
            value = [[p, ok] for p, ok in value]
        payload[field_name] = value
    return payload


def message_from_wire(payload: Mapping[str, Any]) -> Message:
    """Rebuild the typed message a payload dict encodes (exact field
    types restored, so the dataclass equality round-trips)."""
    tag = payload.get("t")
    cls = _MESSAGE_TYPES.get(tag)  # type: ignore[arg-type]
    if cls is None:
        raise UnknownMessageType(f"unknown message type tag {tag!r}")
    kwargs: dict[str, Any] = {}
    try:
        kwargs["src"] = int(payload["src"])
        kwargs["dst"] = int(payload["dst"])
        for field_name in _message_fields(cls):
            value = payload[field_name]
            if cls is TreatyInstall and field_name == "treaty":
                value = None if value is None else decode_local_treaty(value)[0]
            elif field_name in _PAIR_TUPLE_FIELDS:
                value = tuple((str(k), int(v)) for k, v in value)
            elif field_name in _FLAT_TUPLE_FIELDS:
                value = tuple(str(v) for v in value)
            elif field_name in _VERDICT_TUPLE_FIELDS:
                value = tuple((int(p), bool(ok)) for p, ok in value)
            kwargs[field_name] = value
    except (KeyError, TypeError, ValueError) as exc:
        raise CodecError(f"malformed {tag} payload: {exc!r}") from exc
    return cls(**kwargs)


def _message_fields(cls: type[Message]) -> tuple[str, ...]:
    """Payload fields of a message class, beyond src/dst."""
    return tuple(
        name for name in cls.__dataclass_fields__ if name not in ("src", "dst")
    )


def encode_message(msg: Message) -> bytes:
    """One typed message as a complete wire frame."""
    return encode_payload(message_to_wire(msg))


def decode_message(data: bytes) -> Message:
    """Parse one complete frame as a typed protocol message."""
    return message_from_wire(decode_payload(data))


# -- reply values --------------------------------------------------------------

_VALUE_TAGS = {"tuple": tuple, "set": set, "frozenset": frozenset}


def value_to_wire(value: Any) -> Any:
    """Lower a handler reply value to JSON, tagging the container
    types JSON cannot represent (tuples, sets, frozensets)."""
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, tuple):
        return {"__": "tuple", "v": [value_to_wire(v) for v in value]}
    if isinstance(value, (set, frozenset)):
        tag = "set" if isinstance(value, set) else "frozenset"
        return {"__": tag, "v": sorted(value_to_wire(v) for v in value)}
    raise CodecError(f"cannot encode reply value of type {type(value).__name__}")


def value_from_wire(value: Any) -> Any:
    """Rebuild a tagged reply value (exact container types restored)."""
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, dict):
        tag = value.get("__")
        build = _VALUE_TAGS.get(tag)
        if build is None or "v" not in value:
            raise CodecError(f"malformed tagged value {value!r}")
        return build(value_from_wire(v) for v in value["v"])
    raise CodecError(f"cannot decode reply value {value!r}")


# -- stream helpers ------------------------------------------------------------


async def read_frame(reader: Any) -> bytes | None:
    """Read one complete frame from an asyncio stream reader.

    Returns the frame bytes (prefix included, ready for
    :func:`decode_payload`), or ``None`` on a clean EOF at a frame
    boundary.  EOF mid-frame raises :class:`TruncatedFrame`.
    """
    header = await reader.read(_HEADER.size)
    if not header:
        return None
    while len(header) < _HEADER.size:
        chunk = await reader.read(_HEADER.size - len(header))
        if not chunk:
            raise TruncatedFrame("stream ended inside a frame length prefix")
        header += chunk
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise CodecError(f"frame length {length} exceeds the wire maximum")
    body = b""
    while len(body) < length:
        chunk = await reader.read(length - len(body))
        if not chunk:
            raise TruncatedFrame(
                f"stream ended inside a frame ({len(body)}/{length} bytes)"
            )
        body += chunk
    return header + body


def read_frame_from_socket(sock: Any) -> bytes | None:
    """Blocking-socket twin of :func:`read_frame` (the sync client)."""
    header = _recv_exact(sock, _HEADER.size, allow_eof=True)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise CodecError(f"frame length {length} exceeds the wire maximum")
    body = _recv_exact(sock, length, allow_eof=False)
    assert body is not None
    return header + body


def _recv_exact(sock: Any, count: int, allow_eof: bool) -> bytes | None:
    data = b""
    while len(data) < count:
        chunk = sock.recv(count - len(data))
        if not chunk:
            if allow_eof and not data:
                return None
            raise TruncatedFrame(
                f"connection closed inside a frame ({len(data)}/{count} bytes)"
            )
        data += chunk
    return data
