"""Differential oracle: the asyncio runtime vs. the deterministic kernel.

The correctness argument for :class:`~repro.runtime.cluster.
AsyncClusterHost` is behavioural, not structural: on a fault-free
schedule the host serializes submissions through one driver thread, so
it must be *observationally identical* to the in-process
:class:`~repro.protocol.homeostasis.HomeostasisCluster` fed the same
schedule -- same per-transaction outcomes and logs, same treaty
installs (round numbers and clause sets per site), same final stores,
same protocol counters.  Anything the wire codec mangles, any
reordering the inbox tasks introduce, any reply the transport
misroutes shows up as a divergence here.

:func:`run_differential` runs one schedule against both kernels and
reports every divergence; :func:`micro_case` / :func:`geo_case` build
small, violation-dense (spec factory, schedule) pairs from the
standard workloads.  Spec *factories*, not specs: an ``optimized``
strategy carries a seeded RNG inside its
:class:`~repro.protocol.homeostasis.OptimizerSettings`, so each kernel
must get its own freshly-built spec for the pair to stay twins.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.protocol.config import ClusterSpec
from repro.protocol.homeostasis import HomeostasisCluster
from repro.runtime.cluster import AsyncClusterHost

#: One schedule entry: (transaction name, bound parameters).
Request = tuple[str, dict[str, int]]


@dataclass(frozen=True)
class DifferentialReport:
    """Outcome of one oracle run."""

    #: schedule length that was replayed against both kernels
    transactions: int
    #: human-readable divergences; empty means the kernels agree
    mismatches: tuple[str, ...]
    #: transactions the schedule committed (same on both sides when ok)
    committed: int
    #: negotiation rounds the schedule triggered -- a schedule that
    #: never violates exercises nothing; the tests gate on this > 0
    negotiations: int

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def summary(self) -> str:
        verdict = "agree" if self.ok else f"DIVERGE ({len(self.mismatches)})"
        return (
            f"{self.transactions} txns, {self.committed} committed, "
            f"{self.negotiations} negotiations: kernels {verdict}"
        )


def run_differential(
    spec_factory: Callable[[], ClusterSpec],
    schedule: Sequence[Request],
    *,
    timeout_s: float = 5.0,
) -> DifferentialReport:
    """Replay ``schedule`` on the async host and the deterministic
    kernel, and compare everything observable.

    ``spec_factory`` is invoked once per kernel so mutable spec
    internals (optimizer RNGs, generator caches) are never shared.
    The schedule must be fault-free -- both kernels run with no fault
    plan, so ``timeout_s`` is never actually paid.
    """
    mismatches: list[str] = []
    oracle = HomeostasisCluster._from_spec(spec_factory())
    with AsyncClusterHost(spec_factory(), timeout_s=timeout_s) as host:
        for i, (tx_name, params) in enumerate(schedule):
            want = oracle.try_submit(tx_name, params)
            got = host.try_submit(tx_name, params)
            for field_name in ("status", "log", "synced", "site"):
                w, g = getattr(want, field_name), getattr(got, field_name)
                if w != g:
                    mismatches.append(
                        f"txn {i} ({tx_name}): {field_name} "
                        f"oracle={w!r} async={g!r}"
                    )
        _compare_treaties(oracle, host.cluster, mismatches)
        _compare_stores(oracle, host.cluster, mismatches)
        _compare_stats(oracle, host.cluster, mismatches)
        stats = host.stats
        report = DifferentialReport(
            transactions=len(schedule),
            mismatches=tuple(mismatches),
            committed=stats.committed_local,
            negotiations=stats.negotiations,
        )
    return report


def _compare_treaties(
    oracle: HomeostasisCluster, cluster: HomeostasisCluster, out: list[str]
) -> None:
    for sid in oracle.site_ids:
        want = _treaty_fingerprint(oracle.sites[sid])
        got = _treaty_fingerprint(cluster.sites[sid])
        if want != got:
            out.append(f"site {sid}: treaty oracle={want!r} async={got!r}")


def _treaty_fingerprint(server: Any) -> tuple[int, frozenset[str] | None]:
    treaty = server.local_treaty
    clauses = (
        None
        if treaty is None
        else frozenset(c.pretty() for c in treaty.constraints)
    )
    return (server.treaty_round, clauses)


def _compare_stores(
    oracle: HomeostasisCluster, cluster: HomeostasisCluster, out: list[str]
) -> None:
    for sid in oracle.site_ids:
        want = oracle.sites[sid].state_snapshot()
        got = cluster.sites[sid].state_snapshot()
        if want != got:
            diff = {
                k: (want.get(k), got.get(k))
                for k in set(want) | set(got)
                if want.get(k) != got.get(k)
            }
            out.append(f"site {sid}: store diverges on {diff!r}")


def _compare_stats(
    oracle: HomeostasisCluster, cluster: HomeostasisCluster, out: list[str]
) -> None:
    for field_name in (
        "submitted",
        "committed_local",
        "negotiations",
        "rebalances",
        "timeouts",
        "rounds",
    ):
        w = getattr(oracle.stats, field_name)
        g = getattr(cluster.stats, field_name)
        if w != g:
            out.append(f"stats.{field_name}: oracle={w} async={g}")


# -- canned cases ---------------------------------------------------------------


def micro_case(
    seed: int, txns: int = 40, *, validate: bool = False
) -> tuple[Callable[[], ClusterSpec], list[Request]]:
    """A small, violation-dense microbenchmark schedule.

    Tight stock (refill 6 split across 3 sites) makes treaties violate
    within a handful of buys, so the schedule exercises negotiation,
    re-execution, and treaty reinstall -- not just the local fast path.
    """
    from repro.workloads.micro import MicroWorkload

    workload = MicroWorkload(num_items=8, refill=6, num_sites=3)

    def factory() -> ClusterSpec:
        return workload.cluster_spec(
            strategy="equal-split", seed=seed, validate=validate
        )

    rng = random.Random(seed)
    schedule = [
        (req.tx_name, dict(req.params))
        for req in (workload.next_request(rng) for _ in range(txns))
    ]
    return factory, schedule


def geo_case(
    seed: int, txns: int = 40, *, validate: bool = False
) -> tuple[Callable[[], ClusterSpec], list[Request]]:
    """A replication-group schedule: two disjoint groups, so cleanup
    scopes stay participant-local while both groups churn."""
    from repro.workloads.geo import GeoMicroWorkload

    workload = GeoMicroWorkload(
        groups=((0, 1), (2, 3)), items_per_group=4, refill=6
    )

    def factory() -> ClusterSpec:
        return workload.cluster_spec(
            strategy="equal-split", seed=seed, validate=validate
        )

    rng = random.Random(seed)
    schedule = [
        (req.tx_name, dict(req.params))
        for req in (workload.next_request(rng) for _ in range(txns))
    ]
    return factory, schedule
