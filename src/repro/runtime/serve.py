"""``repro-serve``: a homeostasis cluster behind loopback sockets.

The console entry point (``[project.scripts]``) boots an
:class:`~repro.runtime.cluster.AsyncClusterHost` for one of the
standard workloads and accepts client connections on a TCP listener.
Clients speak the same length-prefixed frame format as the inter-site
wire (:mod:`repro.runtime.codec`), carrying small request/response
dicts:

==============  =======================================  ==============================
request ``t``   fields                                   response ``t``
==============  =======================================  ==============================
``submit``      ``tx`` (str), ``params`` (str -> int)    ``result`` (status, site, log,
                                                         synced) -- unknown transactions
                                                         come back ``status="aborted"``
``stats``       --                                       ``stats`` (protocol counters,
                                                         wire accounting, global state)
``ping``        --                                       ``ok``
``shutdown``    --                                       ``ok``, then the server drains
                                                         and exits
==============  =======================================  ==============================

Malformed frames get an ``{"t": "error"}`` reply and the connection
is closed (a framing error leaves no boundary to resynchronize on).
Each connection is one asyncio task; submissions from concurrent
clients interleave at the kernel driver, which serializes them --
clients contend for the protocol, not for locks.

The listener prints ``repro-serve listening on HOST:PORT`` on stdout
once bound (``--port 0`` picks an ephemeral port; harnesses scrape
the line).
"""

from __future__ import annotations

import argparse
import asyncio
import sys
from typing import Any

from repro.protocol.messages import Outcome
from repro.runtime.cluster import AsyncClusterHost
from repro.runtime.codec import (
    CodecError,
    decode_payload,
    encode_payload,
    read_frame,
)

#: Workload names ``--workload`` accepts.
WORKLOADS = ("micro", "geo", "tpcc")


def _build_host(
    workload: str,
    *,
    strategy: str | None,
    seed: int,
    timeout_s: float,
    items: int | None = None,
    refill: int | None = None,
) -> AsyncClusterHost:
    """Boot the named workload's cluster (``items``/``refill`` shrink
    the stock so short runs still violate treaties and exercise the
    negotiation wire path)."""
    if workload == "micro":
        from repro.workloads.micro import MicroWorkload

        spec = MicroWorkload(
            num_items=items if items is not None else 100,
            refill=refill if refill is not None else 100,
        ).cluster_spec(strategy=strategy or "optimized", seed=seed)
    elif workload == "geo":
        from repro.workloads.geo import GeoMicroWorkload

        spec = GeoMicroWorkload(
            items_per_group=items if items is not None else 12,
            refill=refill if refill is not None else 24,
        ).cluster_spec(strategy=strategy or "equal-split", seed=seed)
    elif workload == "tpcc":
        from repro.workloads.tpcc import TpccWorkload

        spec = TpccWorkload().cluster_spec(
            strategy=strategy or "optimized", seed=seed
        )
    else:
        raise ValueError(f"unknown workload {workload!r}; expected {WORKLOADS}")
    return AsyncClusterHost(spec, timeout_s=timeout_s)


class _Server:
    """One listener bound to one host (the serve loop's state)."""

    def __init__(self, host: AsyncClusterHost) -> None:
        self.host = host
        self.shutdown = asyncio.Event()
        self.connections = 0

    async def handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.connections += 1
        try:
            while not self.shutdown.is_set():
                try:
                    frame = await read_frame(reader)
                except CodecError as exc:
                    writer.write(
                        encode_payload({"t": "error", "reason": str(exc)})
                    )
                    await writer.drain()
                    break
                if frame is None:  # client hung up cleanly
                    break
                try:
                    request = decode_payload(frame)
                    reply = await self.dispatch(request)
                except CodecError as exc:
                    writer.write(
                        encode_payload({"t": "error", "reason": str(exc)})
                    )
                    await writer.drain()
                    break
                writer.write(encode_payload(reply))
                await writer.drain()
                if reply.get("t") == "ok" and request.get("t") == "shutdown":
                    break
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def dispatch(self, request: dict[str, Any]) -> dict[str, Any]:
        kind = request.get("t")
        if kind == "ping":
            return {"t": "ok"}
        if kind == "shutdown":
            self.shutdown.set()
            return {"t": "ok"}
        if kind == "stats":
            return await self.host.run_on_kernel(self.snapshot_stats)
        if kind == "submit":
            tx_name = request.get("tx")
            params = request.get("params") or {}
            if not isinstance(tx_name, str) or not isinstance(params, dict):
                raise CodecError("submit needs 'tx' (str) and 'params' (object)")
            return await self.host.run_on_kernel(
                self.run_submit, tx_name, {str(k): int(v) for k, v in params.items()}
            )
        raise CodecError(f"unknown request type {kind!r}")

    # -- kernel-thread bodies (run via run_on_kernel) ------------------------------

    def run_submit(self, tx_name: str, params: dict[str, int]) -> dict[str, Any]:
        cluster = self.host.cluster
        if tx_name not in cluster.tx_home:
            # The serve layer's own rejection: never reached the
            # protocol, so it is an abort, not an unavailability.
            return {
                "t": "result",
                "status": Outcome.ABORTED.value,
                "site": -1,
                "log": [],
                "synced": False,
            }
        result = cluster.try_submit(tx_name, params)
        return {
            "t": "result",
            "status": result.status.value,
            "site": result.site,
            "log": list(result.log),
            "synced": result.synced,
        }

    def snapshot_stats(self) -> dict[str, Any]:
        stats = self.host.cluster.stats
        return {
            "t": "stats",
            "submitted": stats.submitted,
            "committed": stats.committed_local,
            "negotiations": stats.negotiations,
            "rebalances": stats.rebalances,
            "timeouts": stats.timeouts,
            "recoveries": stats.recoveries,
            "rounds": stats.rounds,
            "sync_ratio": stats.sync_ratio,
            "wire": self.host.wire_stats(),
            "global_state": self.host.cluster.global_state(),
        }


async def serve(
    host: AsyncClusterHost, bind_host: str, port: int
) -> None:
    """Accept and serve connections until a client sends ``shutdown``."""
    server_state = _Server(host)
    server = await asyncio.start_server(
        server_state.handle_connection, bind_host, port
    )
    addr = server.sockets[0].getsockname()
    print(f"repro-serve listening on {addr[0]}:{addr[1]}", flush=True)
    async with server:
        await server_state.shutdown.wait()
    print(
        f"repro-serve shutting down after {server_state.connections} "
        "connection(s)",
        flush=True,
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description=(
            "Serve a homeostasis cluster over loopback sockets: each site "
            "is an asyncio task, each inter-site message a wire frame."
        ),
    )
    parser.add_argument(
        "--workload", choices=WORKLOADS, default="micro",
        help="workload whose cluster to boot (default: micro)",
    )
    parser.add_argument(
        "--strategy", default=None,
        help="treaty strategy override (default: the workload's own)",
    )
    parser.add_argument("--seed", type=int, default=0, help="optimizer seed")
    parser.add_argument(
        "--items", type=int, default=None,
        help="item count override (micro/geo); small values raise contention",
    )
    parser.add_argument(
        "--refill", type=int, default=None,
        help="stock refill override (micro/geo); small values force violations",
    )
    parser.add_argument(
        "--host", default="127.0.0.1", help="bind address (default loopback)"
    )
    parser.add_argument(
        "--port", type=int, default=7737,
        help="TCP port (0 picks an ephemeral port and prints it)",
    )
    parser.add_argument(
        "--timeout-s", type=float, default=5.0,
        help="inter-site reply timeout in wall seconds",
    )
    args = parser.parse_args(argv)

    cluster_host = _build_host(
        args.workload,
        strategy=args.strategy,
        seed=args.seed,
        timeout_s=args.timeout_s,
        items=args.items,
        refill=args.refill,
    )
    try:
        # The serve loop runs on the host's own event loop so client
        # tasks and site inbox tasks share one scheduler.
        asyncio.run_coroutine_threadsafe(
            serve(cluster_host, args.host, args.port), cluster_host._loop
        ).result()
    except KeyboardInterrupt:
        print("repro-serve interrupted", file=sys.stderr)
        return 130
    finally:
        cluster_host.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
