"""Wall-clock transport: frames across an event loop, timeouts for real.

:class:`AsyncTransport` implements the :class:`~repro.protocol.
transport.Transport` contract (trace, negotiation contexts, scope
isolation, fault surface) against a running asyncio event loop.  The
synchronous kernel keeps calling :meth:`AsyncTransport.send` from its
single driver thread; what changes is what a send *is*:

- the message is lowered to a wire frame (:mod:`repro.runtime.codec`)
  and posted onto the destination site's **inbox queue**;
- one **inbox task** per site -- spawned at :meth:`register` time --
  drains that queue, decodes each frame, calls the site's ``handle``
  and resolves the sender's reply future with the encoded reply.
  Because every message for a site is handled inside its one inbox
  task, site state keeps the single-writer discipline without locks
  (the kernel thread's own accesses to site state never overlap a
  handle: it is blocked on the reply future while the task runs);
- the sender blocks on the reply future with a real wall-clock
  timeout.  Fault injection is physical: a dropped or partition-
  severed frame is simply never delivered and the sender raises
  :class:`~repro.protocol.transport.UnreachableError` only after
  waiting out its timer, exactly like a deployment discovering loss;
  a sub-timeout plan delay is an actual ``asyncio.sleep`` before the
  destination handles the frame.

Known crash-stops (``down`` sites) still refuse immediately -- the
failure detector already knows, no timer needed -- matching the
deterministic fabric, which is what keeps the two transports
producing identical traces on identical schedules (the differential
oracle's premise).
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import time
from typing import Any

from repro.protocol.messages import Message
from repro.protocol.transport import Transport, TransportError, UnreachableError
from repro.runtime.codec import (
    decode_message,
    decode_payload,
    encode_message,
    encode_payload,
    value_from_wire,
    value_to_wire,
)

#: Inbox queue sentinel that shuts a site task down.
_CLOSE = object()

#: One queued delivery: (frame bytes or the close sentinel, the
#: sender's reply future, injected delay in wall seconds).
_InboxItem = tuple[object, "concurrent.futures.Future[bytes] | None", float]


class AsyncTransport(Transport):
    """A :class:`Transport` whose deliveries cross an asyncio loop as
    encoded wire frames, with wall-clock fault discovery."""

    def __init__(
        self,
        *,
        timeout_s: float = 5.0,
        delay_unit_s: float = 0.001,
        faults: Any = None,
    ) -> None:
        super().__init__(faults=faults)
        #: how long a sender waits on a reply before declaring the
        #: destination unreachable (the failure detector's timer)
        self.timeout_s = timeout_s
        #: wall seconds per fault-plan delay unit (plans speak ms of
        #: simulated latency; 0.001 injects them as real milliseconds)
        self.delay_unit_s = delay_unit_s
        #: wire accounting: every frame that crossed the loop
        self.frames_sent = 0
        self.bytes_sent = 0
        self._loop: asyncio.AbstractEventLoop | None = None
        self._inboxes: dict[int, asyncio.Queue[_InboxItem]] = {}
        self._site_tasks: dict[int, asyncio.Task[None]] = {}

    # -- lifecycle -----------------------------------------------------------------

    def bind_loop(self, loop: asyncio.AbstractEventLoop) -> None:
        """Attach the running event loop (before any registration)."""
        self._loop = loop

    def register(self, site_id: int, endpoint: Any) -> None:
        """Register a site and spawn its inbox task on the loop."""
        if self._loop is None:
            raise TransportError(
                "AsyncTransport has no event loop; call bind_loop() first"
            )
        super().register(site_id, endpoint)
        queue: asyncio.Queue[_InboxItem] = asyncio.Queue()
        self._inboxes[site_id] = queue
        task = asyncio.run_coroutine_threadsafe(
            self._spawn_site(site_id, endpoint, queue), self._loop
        ).result()
        self._site_tasks[site_id] = task

    async def _spawn_site(
        self, site_id: int, endpoint: Any, queue: asyncio.Queue[_InboxItem]
    ) -> asyncio.Task[None]:
        return asyncio.get_running_loop().create_task(
            self._site_inbox(site_id, endpoint, queue),
            name=f"repro-site-{site_id}",
        )

    def close(self) -> None:
        """Stop every site inbox task (idempotent; loop must still run)."""
        if self._loop is None or self._loop.is_closed():
            return
        for sid, queue in self._inboxes.items():
            task = self._site_tasks.get(sid)
            if task is not None and not task.done():
                self._loop.call_soon_threadsafe(queue.put_nowait, (_CLOSE, None, 0.0))
        for task in self._site_tasks.values():
            if not task.done():
                asyncio.run_coroutine_threadsafe(
                    _join_or_cancel(task), self._loop
                ).result(timeout=5.0)

    # -- the site side -------------------------------------------------------------

    async def _site_inbox(
        self, site_id: int, endpoint: Any, queue: asyncio.Queue[_InboxItem]
    ) -> None:
        """One site's single-writer message loop.

        Frames are handled strictly in arrival order; a plan delay
        sleeps *inside* the task, so a delayed frame also delays the
        frames queued behind it (FIFO links, like a TCP stream).
        """
        while True:
            frame, reply, delay_s = await queue.get()
            if frame is _CLOSE:
                break
            if delay_s > 0.0:
                await asyncio.sleep(delay_s)
            try:
                msg = decode_message(frame)
                result = endpoint.handle(msg)
                wire_reply = encode_payload(
                    {"t": "reply", "v": value_to_wire(result)}
                )
            except BaseException as exc:  # propagate to the sender
                _resolve(reply, error=exc)
                continue
            _resolve(reply, result=wire_reply)

    # -- the sender side -------------------------------------------------------------

    def send(self, msg: Message) -> Any:
        """Deliver one message across the loop and await its reply.

        Same contract as the deterministic fabric -- undeliverable
        messages raise :class:`UnreachableError` and are recorded in
        ``undelivered``, delivered ones land in the trace -- but the
        discovery of silent loss (drops, partitions, over-delays)
        costs real wall-clock time: the sender waits out
        ``timeout_s`` before giving up, like any failure detector
        without an oracle.
        """
        if msg.dst not in self.endpoints:
            raise TransportError(f"no endpoint registered for site {msg.dst}")
        assert self._loop is not None
        self._events += 1
        index = self._attempts
        self._attempts += 1
        # Known crash-stops refuse immediately: the sender (or its
        # failure detector) already knows, so no timer is paid.
        if msg.src in self.down:
            raise self._undeliverable(msg, "sender crash-stopped")
        if msg.dst in self.down:
            raise self._undeliverable(msg, "destination crash-stopped")
        delay = 0.0
        if self.faults is not None:
            if self.faults.severed(msg.edge, self._events):
                return self._lose(msg, "edge severed by partition")
            if self.faults.drops(index):
                return self._lose(msg, "dropped by lossy link")
            delay = self.faults.delay_of(index)
            if delay >= self.faults.timeout_ms:
                return self._lose(msg, "delayed past the timeout")

        frame = encode_message(msg)
        reply_future: concurrent.futures.Future[bytes] = concurrent.futures.Future()
        queue = self._inboxes[msg.dst]
        self._loop.call_soon_threadsafe(
            queue.put_nowait, (frame, reply_future, delay * self.delay_unit_s)
        )
        self.frames_sent += 1
        self.bytes_sent += len(frame)
        try:
            wire_reply = reply_future.result(
                timeout=self.timeout_s + delay * self.delay_unit_s
            )
        except concurrent.futures.TimeoutError:
            reply_future.cancel()
            raise self._undeliverable(msg, "timed out awaiting a reply") from None
        except UnreachableError:
            raise
        except BaseException:
            # The handler raised: the message *was* delivered (state
            # may have changed), so it belongs in the trace before the
            # error propagates -- same ordering as the sync fabric.
            self._record_delivered(msg, delay)
            raise
        self._record_delivered(msg, delay)
        handled = self._handled.get(msg.dst, 0) + 1
        self._handled[msg.dst] = handled
        if self.faults is not None and self.faults.crashes_after_handling(
            msg.dst, handled
        ):
            # Delivered and handled, but the destination halts before
            # replying: the sender still observes a timeout (charged
            # here without re-sleeping -- the reply future already
            # resolved, so the timer semantics are the plan's).
            self.down.add(msg.dst)
            raise UnreachableError(
                msg.src, msg.dst, "destination crashed after handling"
            )
        reply = decode_payload(wire_reply)
        return value_from_wire(reply["v"])

    def _record_delivered(self, msg: Message, delay: float) -> None:
        self.trace.append(msg)
        active = self._attribute(msg)
        if active is not None:
            active.messages.append(msg)
            active.delay_ms += delay
        self.total_delay_ms += delay

    def _lose(self, msg: Message, reason: str) -> None:
        """Silent loss: the frame never reaches the destination, and
        the sender only learns by waiting out its timer -- real
        seconds, the honesty this runtime exists for."""
        time.sleep(self.timeout_s)
        raise self._undeliverable(msg, reason)


async def _join_or_cancel(task: asyncio.Task[None]) -> None:
    """Wait briefly for a site task to drain its close sentinel, then
    cancel it (runs on the transport's own loop)."""
    try:
        await asyncio.wait_for(asyncio.shield(task), 2.0)
    except asyncio.TimeoutError:
        task.cancel()
    except (asyncio.CancelledError, Exception):  # already torn down
        pass


def _resolve(
    reply: "concurrent.futures.Future[bytes] | None",
    result: bytes | None = None,
    error: BaseException | None = None,
) -> None:
    """Resolve a sender's reply future, tolerating the race where the
    sender already timed out and cancelled it."""
    if reply is None:
        return
    try:
        if error is not None:
            reply.set_exception(error)
        else:
            reply.set_result(result)
    except concurrent.futures.InvalidStateError:  # sender gave up
        pass
