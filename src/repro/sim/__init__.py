"""Discrete-event performance harness (replaces the EC2 deployment).

The correctness kernel decides *what happens* (commit locally or
negotiate); the simulator decides *when*, pricing decisions with:

- network round trips (uniform RTT for the microbenchmark, the Table
  1 inter-datacenter matrix for TPC-C),
- a multi-core service model per replica (closed-loop clients,
  exponential service times, core saturation -- the Figure 17
  plateau),
- per-item lock queues with MySQL's 1-second lock-wait-timeout floor
  (the 2PC abort behaviour and the Figure 19/21 latency tails),
- cluster-wide quiescence during treaty negotiation (2 RTT + solver
  time, Section 5.1's two communication rounds),
- a solver-time model for Algorithm 1 (scales with the lookahead L,
  Figure 24).

Measured quantities match the paper's: latency percentiles,
throughput per replica, synchronization ratio, and the latency
breakdown of violating transactions.
"""

from repro.sim.metrics import LatencyStats, SimResult, percentile
from repro.sim.network import TABLE1_RTT_MS, rtt_matrix_for, uniform_rtt_matrix
from repro.sim.runner import SimConfig, simulate

__all__ = [
    "LatencyStats",
    "SimConfig",
    "SimResult",
    "TABLE1_RTT_MS",
    "percentile",
    "rtt_matrix_for",
    "simulate",
    "uniform_rtt_matrix",
]
