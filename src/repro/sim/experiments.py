"""Prepackaged experiment runners used by the benchmark suite.

Each function builds the workload, the kernel cluster for the chosen
mode, and runs the simulator, returning a :class:`SimResult`.

Scale note (documented in EXPERIMENTS.md): the paper's runs use
10,000 items / 100,000 stock rows and 300-500 s measurement windows
on real hardware; the reproduction runs scaled-down populations and
transaction counts so a full figure regenerates in seconds of wall
time.  All reported quantities are intensive (latency percentiles,
per-replica throughput, synchronization ratio), so shapes are
preserved under scaling.
"""

from __future__ import annotations

import random
from dataclasses import replace

from repro.protocol.homeostasis import AdaptiveSettings
from repro.protocol.paxos_commit import NegotiationSpec
from repro.sim.metrics import SimResult
from repro.treaty.optimize import demand_split
from repro.sim.network import rtt_matrix_for
from repro.sim.runner import FaultEvent, SimConfig, SimRequest, simulate
from repro.workloads.banking import BankingWorkload
from repro.workloads.flashsale import FlashSaleWorkload
from repro.workloads.geo import GeoMicroWorkload
from repro.workloads.micro import MicroWorkload
from repro.workloads.quota import QuotaWorkload
from repro.workloads.tpcc import TpccWorkload


def solver_time_model(lookahead: int, cost_factor: int = 3) -> float:
    """Milliseconds of treaty-search time per negotiation.

    Calibrated to the paper's observation of "an additional overhead
    of less than 50 ms to find new treaties using the solver" at the
    default settings, growing with the lookahead interval L
    (Figure 24's solver component).
    """
    return 2.0 + 0.5 * lookahead * max(cost_factor, 1) / 3.0


_STRATEGY_FOR_MODE = {"homeo": "optimized", "opt": "equal-split"}


def build_micro_cluster(workload: MicroWorkload, mode: str, lookahead: int,
                        cost_factor: int, seed: int):
    if mode in _STRATEGY_FOR_MODE:
        return workload.build_homeostasis(
            strategy=_STRATEGY_FOR_MODE[mode],
            lookahead=lookahead,
            cost_factor=cost_factor,
            seed=seed,
        )
    if mode == "2pc":
        return workload.build_2pc()
    if mode == "local":
        return workload.build_local()
    raise ValueError(f"unknown mode {mode!r}")


def run_micro(
    mode: str,
    rtt_ms: float = 100.0,
    num_replicas: int = 2,
    clients_per_replica: int = 16,
    num_items: int = 300,
    refill: int = 100,
    items_per_txn: int = 1,
    lookahead: int = 20,
    cost_factor: int = 3,
    max_txns: int = 8_000,
    seed: int = 0,
    audit_fraction: float = 0.0,
    config_overrides: dict | None = None,
) -> SimResult:
    """One microbenchmark point (Section 6.1 defaults scaled down).

    ``audit_fraction`` mixes in read-only ``Audit`` probes -- the
    traffic class the coordination-freedom classifier proves FREE, so
    it pays no treaty-check service component.
    """
    workload = MicroWorkload(
        num_items=num_items,
        refill=refill,
        num_sites=num_replicas,
        items_per_txn=items_per_txn,
        initial_qty="random",  # start at steady state
        init_seed=seed + 1,
        audit_fraction=audit_fraction,
    )
    cluster = build_micro_cluster(workload, mode, lookahead, cost_factor, seed)

    def request_fn(rng, replica: int) -> SimRequest:
        req = workload.next_request(rng, site=replica)
        family = req.tx_name.rsplit("@s", 1)[0]
        return SimRequest(req.tx_name, req.params, req.items, family=family)

    config = SimConfig(
        mode=mode,
        num_replicas=num_replicas,
        clients_per_replica=clients_per_replica,
        rtt_ms=rtt_ms,
        solver_ms=solver_time_model(lookahead, cost_factor) if mode == "homeo" else 0.0,
        max_txns=max_txns,
        seed=seed,
    )
    if config_overrides:
        config = replace(config, **config_overrides)
    return simulate(config, cluster, request_fn)


def run_geo(
    mode: str = "homeo",
    groups: tuple[tuple[int, ...], ...] = ((0, 1), (2, 3), (0, 4)),
    num_replicas: int = 5,
    clients_per_replica: int = 8,
    items_per_group: int = 30,
    refill: int = 50,
    lookahead: int = 20,
    cost_factor: int = 3,
    max_txns: int = 3_000,
    seed: int = 0,
    config_overrides: dict | None = None,
) -> SimResult:
    """One geo-partitioned microbenchmark point (Table 1 RTTs).

    Items live in replication groups (site subsets), so treaty
    negotiations are participant-scoped and the simulator prices each
    one from the slowest RTT edge *inside the violating group* -- the
    scenario the flat ``2 * max_rtt`` model could not express.
    """
    if mode not in _STRATEGY_FOR_MODE:
        raise ValueError(f"geo benchmark supports homeo/opt, not {mode!r}")
    workload = GeoMicroWorkload(
        groups=groups,
        num_sites=num_replicas,
        items_per_group=items_per_group,
        refill=refill,
        initial_qty="random",  # start at steady state
        init_seed=seed + 1,
    )
    cluster = workload.build_homeostasis(
        strategy=_STRATEGY_FOR_MODE[mode],
        lookahead=lookahead,
        cost_factor=cost_factor,
        seed=seed,
    )

    def request_fn(rng, replica: int) -> SimRequest:
        req = workload.next_request(rng, site=replica)
        return SimRequest(
            req.tx_name, req.params, req.items, family=f"Buy{req.group}"
        )

    config = SimConfig(
        mode=mode,
        num_replicas=num_replicas,
        clients_per_replica=clients_per_replica,
        rtt_matrix=rtt_matrix_for(num_replicas),
        solver_ms=solver_time_model(lookahead, cost_factor) if mode == "homeo" else 0.0,
        max_txns=max_txns,
        seed=seed,
    )
    if config_overrides:
        config = replace(config, **config_overrides)
    return simulate(config, cluster, request_fn)


def run_contention(
    mode: str = "homeo",
    rtt_ms: float = 100.0,
    num_replicas: int = 2,
    clients_per_replica: int = 8,
    num_items: int = 20,
    refill: int = 40,
    window_ms: float = 10.0,
    groups: tuple[tuple[int, ...], ...] | None = None,
    lookahead: int = 20,
    cost_factor: int = 3,
    max_txns: int = 2_000,
    seed: int = 0,
    skew: float = 0.0,
    negotiation: NegotiationSpec | None = None,
    config_overrides: dict | None = None,
) -> SimResult:
    """One racing-violator point under the concurrent runtime.

    Submissions are batched into ``window_ms`` arrival windows and
    handed to a :class:`~repro.protocol.concurrent.ConcurrentCluster`,
    so several transactions can violate treaties in the same window:
    the kernel's vote phase elects each conflict group's winner and
    losers re-run after the new treaties install.  Contention is
    swept by shrinking ``num_items`` (hotter items -> more racing
    violators) or widening ``window_ms``.  With ``groups`` given the
    item space is geo-partitioned (Table 1 RTTs) and disjoint groups'
    negotiations proceed in parallel waves.

    ``skew`` distributes the closed-loop client population over
    replicas by Zipf(``skew``) weights -- a hot low-id site then races
    in (and, under the legacy tie-break, wins) most elections, the
    regime where arbitration fairness separates the policies.
    ``negotiation`` attaches a :class:`NegotiationSpec`: the commit
    decision runs through the Paxos Commit quorum (priced as one extra
    scoped round trip) and ``policy="credit"`` turns on the budgeted
    priority credit; ``SimResult.fairness`` then reports the ledger.
    """
    if mode not in _STRATEGY_FOR_MODE:
        raise ValueError(f"contention experiment supports homeo/opt, not {mode!r}")
    strategy = _STRATEGY_FOR_MODE[mode]
    if groups is not None:
        workload = GeoMicroWorkload(
            groups=groups,
            num_sites=num_replicas,
            items_per_group=num_items,
            refill=refill,
            initial_qty="random",  # start at steady state
            init_seed=seed + 1,
        )
        cluster = workload.build_concurrent(
            strategy=strategy, lookahead=lookahead, cost_factor=cost_factor,
            seed=seed, negotiation=negotiation,
        )
        network = {"rtt_matrix": rtt_matrix_for(num_replicas)}

        def request_fn(rng, replica: int) -> SimRequest:
            req = workload.next_request(rng, site=replica)
            return SimRequest(
                req.tx_name, req.params, req.items, family=f"Buy{req.group}"
            )

    else:
        workload = MicroWorkload(
            num_items=num_items,
            refill=refill,
            num_sites=num_replicas,
            initial_qty="random",
            init_seed=seed + 1,
        )
        cluster = workload.build_concurrent(
            strategy=strategy, lookahead=lookahead, cost_factor=cost_factor,
            seed=seed, negotiation=negotiation,
        )
        network = {"rtt_ms": rtt_ms}

        def request_fn(rng, replica: int) -> SimRequest:
            req = workload.next_request(rng, site=replica)
            return SimRequest(req.tx_name, req.params, req.items, family="Buy")

    clients: int | tuple[int, ...] = clients_per_replica
    if skew > 0.0:
        clients = skewed_client_counts(
            clients_per_replica * num_replicas,
            zipf_weights(num_replicas, skew),
        )
    config = SimConfig(
        mode=mode,
        num_replicas=num_replicas,
        clients_per_replica=clients,
        window_ms=window_ms,
        solver_ms=solver_time_model(lookahead, cost_factor) if mode == "homeo" else 0.0,
        max_txns=max_txns,
        seed=seed,
        **network,
    )
    if config_overrides:
        config = replace(config, **config_overrides)
    return simulate(config, cluster, request_fn)


def zipf_weights(n: int, skew: float) -> list[float]:
    """Zipf(``skew``) popularity weights over ``n`` ranks (rank 0
    hottest); ``skew = 0`` is uniform."""
    return [1.0 / (rank + 1) ** skew for rank in range(n)]


def skewed_client_counts(
    total_clients: int, weights: list[float]
) -> tuple[int, ...]:
    """Distribute a closed-loop client population over replicas
    proportionally to the weights, each replica keeping at least one
    client, the total preserved exactly.  This is how the adaptive
    experiments skew *offered load by site* -- the closed loop issues
    requests at the replica that hosts the client, so site heat must
    come from where clients live, not from request routing.

    The apportionment is :func:`repro.treaty.optimize.demand_split`
    (the property-tested largest-remainder partition): one guaranteed
    client per replica, the remainder split by weight.
    """
    n = len(weights)
    if total_clients < n:
        raise ValueError(f"need at least {n} clients for {n} replicas")
    return tuple(1 + s for s in demand_split(total_clients - n, weights, 0))


#: adaptive-experiment kernel modes -> (treaty strategy, refresh on?)
_ADAPTIVE_MODES = {
    "adaptive": ("demand", True),
    "static": ("equal-split", False),
}


def run_adaptive_skew(
    mode: str,
    skew: float = 2.0,
    workload: str = "micro",
    num_replicas: int = 4,
    total_clients: int = 32,
    num_items: int = 60,
    refill: int = 80,
    initial_stock: int = 40,
    watermark: float = 0.25,
    max_txns: int = 2_500,
    seed: int = 0,
    validate: bool = False,
    config_overrides: dict | None = None,
) -> SimResult:
    """Adaptive vs static treaty allocation under Zipf site-load skew.

    Clients are distributed over replicas by Zipf(``skew``) weights,
    so one site consumes its treaty budgets much faster than the rest.
    ``mode``:

    - ``"adaptive"`` -- the demand-weighted strategy configured from
      the online :class:`~repro.protocol.homeostasis.DemandEstimator`,
      plus the proactive low-watermark refresh
      (:class:`~repro.protocol.homeostasis.AdaptiveSettings`);
    - ``"static"`` -- the equal-split (demarcation OPT) allocation the
      seed optimizer freezes between violations.

    Both modes face the identical offered load and pay identical
    per-edge negotiation prices; neither charges solver time (the
    demand configuration is closed-form).  ``workload`` selects the
    Section 6.1 microbenchmark or the Section 6.2 TPC-C subset.  The
    headline quantity is the sync ratio at high skew (plus
    ``SimResult.rebalances`` for the adaptive mode's refresh rounds,
    reported separately so the win cannot come from relabelling).
    """
    if mode not in _ADAPTIVE_MODES:
        raise ValueError(f"adaptive skew experiment modes: adaptive/static, not {mode!r}")
    strategy, refresh = _ADAPTIVE_MODES[mode]
    adaptive = AdaptiveSettings(watermark=watermark) if refresh else None
    clients = skewed_client_counts(total_clients, zipf_weights(num_replicas, skew))

    if workload == "micro":
        micro = MicroWorkload(
            num_items=num_items,
            refill=refill,
            num_sites=num_replicas,
            initial_qty="random",  # start at steady state
            init_seed=seed + 1,
        )
        cluster = micro.build_homeostasis(
            strategy=strategy, adaptive=adaptive, validate=validate, seed=seed
        )

        def request_fn(rng, replica: int) -> SimRequest:
            req = micro.next_request(rng, site=replica)
            return SimRequest(req.tx_name, req.params, req.items, family="Buy")

        network = {"rtt_ms": 100.0, "cores_per_replica": 32}
    elif workload == "tpcc":
        tpcc = TpccWorkload(
            num_warehouses=2,
            num_districts=2,
            items_per_district=num_items,
            num_sites=num_replicas,
            hotness=10,
            # Scarce stock makes allocation the binding constraint:
            # with the TPC-C default of 100 the per-site splits are so
            # generous that even a frozen equal split never violates
            # at this scale, and there is nothing to reallocate.
            initial_stock=initial_stock,
        )
        cluster = tpcc.build_homeostasis(
            strategy=strategy, adaptive=adaptive, validate=validate, seed=seed
        )

        def request_fn(rng, replica: int) -> SimRequest:
            req = tpcc.next_request(rng, site=replica)
            return SimRequest(req.tx_name, req.params, req.hot_key, family=req.family)

        network = {
            "rtt_matrix": rtt_matrix_for(num_replicas),
            "cores_per_replica": 16,
        }
    else:
        raise ValueError(f"adaptive skew experiment workloads: micro/tpcc, not {workload!r}")

    config = SimConfig(
        mode="homeo" if mode == "adaptive" else "opt",
        num_replicas=num_replicas,
        clients_per_replica=clients,
        solver_ms=0.0,
        max_txns=max_txns,
        seed=seed,
        **network,
    )
    if config_overrides:
        config = replace(config, **config_overrides)
    return simulate(config, cluster, request_fn)


def run_faults(
    mode: str,
    workload: str = "micro",
    crash_site: int = 1,
    crash_at_ms: float = 5_000.0,
    outage_ms: float = 10_000.0,
    cycles: int = 1,
    cycle_gap_ms: float = 2_000.0,
    num_replicas: int = 3,
    clients_per_replica: int = 8,
    num_items: int = 150,
    refill: int = 100,
    duration_ms: float = 25_000.0,
    max_txns: int = 100_000,
    seed: int = 0,
    validate: bool = False,
    config_overrides: dict | None = None,
) -> SimResult:
    """Availability under a site crash: homeostasis vs 2PC.

    Site ``crash_site`` crash-stops at ``crash_at_ms`` (losing its
    volatile treaty state; its database and treaty WAL are durable)
    and recovers ``outage_ms`` later via WAL replay plus a rejoin
    round; with ``cycles > 1`` the crash/recover pair repeats every
    ``outage_ms + cycle_gap_ms`` (the *crash rate* axis -- each cycle
    exercises the WAL replay and rejoin path again).  The run is
    **duration-bounded** so the outages are a fixed fraction of every
    mode's run and availabilities compare apples to apples.

    Expected contrast (the Gray & Lamport blocking argument made
    measurable): under ``mode="2pc"`` every commit needs every
    replica, so availability collapses to ~0 for the whole outage --
    clients cycle through ``sync_timeout_ms`` discovery stalls.  Under
    ``mode="homeo"`` the surviving sites keep committing on their
    local treaties; only transactions homed at the crashed site, or
    whose violation closure includes it, fail.  Read the gap with
    ``SimResult.availability_between(crash_at_ms, crash_at_ms +
    outage_ms)``.

    ``validate=True`` (homeo only) turns on the kernel's H1/H2 install
    assertions *and* the recovery assertion that the WAL-replayed
    treaty is identical to the cluster's treaty-table entry for the
    rejoining site.
    """
    fault_events = []
    for cycle in range(cycles):
        start = crash_at_ms + cycle * (outage_ms + cycle_gap_ms)
        fault_events.append(FaultEvent(at_ms=start, action="crash", site=crash_site))
        fault_events.append(
            FaultEvent(at_ms=start + outage_ms, action="recover", site=crash_site)
        )
    fault_events = tuple(fault_events)
    if workload == "micro":
        micro = MicroWorkload(
            num_items=num_items,
            refill=refill,
            num_sites=num_replicas,
            initial_qty="random",  # start at steady state
            init_seed=seed + 1,
        )
        if mode == "homeo":
            cluster = micro.build_homeostasis(
                strategy="equal-split", validate=validate, seed=seed
            )
        elif mode == "2pc":
            cluster = micro.build_2pc()
        else:
            raise ValueError(f"fault experiment modes: homeo/2pc, not {mode!r}")

        def request_fn(rng, replica: int) -> SimRequest:
            req = micro.next_request(rng, site=replica)
            return SimRequest(req.tx_name, req.params, req.items, family="Buy")

        network = {"rtt_ms": 100.0}
    elif workload == "tpcc":
        tpcc = TpccWorkload(
            num_warehouses=2,
            num_districts=2,
            items_per_district=num_items,
            num_sites=num_replicas,
            hotness=10,
        )
        if mode == "homeo":
            cluster = tpcc.build_homeostasis(
                strategy="equal-split", validate=validate, seed=seed
            )
        elif mode == "2pc":
            cluster = tpcc.build_2pc()
        else:
            raise ValueError(f"fault experiment modes: homeo/2pc, not {mode!r}")

        def request_fn(rng, replica: int) -> SimRequest:
            req = tpcc.next_request(rng, site=replica)
            return SimRequest(req.tx_name, req.params, req.hot_key, family=req.family)

        network = {
            "rtt_matrix": rtt_matrix_for(num_replicas),
            "cores_per_replica": 16,
        }
    else:
        raise ValueError(f"fault experiment workloads: micro/tpcc, not {workload!r}")

    config = SimConfig(
        mode="homeo" if mode == "homeo" else "2pc",
        num_replicas=num_replicas,
        clients_per_replica=clients_per_replica,
        solver_ms=0.0,
        duration_ms=duration_ms,
        max_txns=max_txns,
        fault_events=fault_events,
        seed=seed,
        **network,
    )
    if config_overrides:
        config = replace(config, **config_overrides)
    return simulate(config, cluster, request_fn)


def run_winner_crash(
    num_sites: int = 3,
    seed: int = 0,
    policy: str = "priority",
) -> dict:
    """The winner-crash fault scenario: a survivor completes the round.

    Builds a validate-mode sequential cluster with a
    :class:`NegotiationSpec` attached, locates a treaty-violating
    request with a fault-free twin (both clusters driven through the
    identical request prefix), then crash-stops the negotiation's
    *origin* right after the first ``Phase2b`` ack -- mid-quorum, with
    the install decision already durable at one acceptor but the round
    incomplete.  Under the legacy single-coordinator decision this is
    exactly the window where 2PC blocks; under Paxos Commit a
    surviving participant solicits the acceptors' WAL state, re-drives
    the accepted verdicts to a quorum at ballot 1, and finishes the
    round without the origin.  The crashed origin then recovers (WAL
    replay + missed cleanup re-run + rejoin, with the validate-mode
    recovered-treaty/H1/H2 oracles asserting along the way) and
    commits again.

    Returns the flat metric dict the benchmark harness folds into its
    fault gate -- everything in it must hold for the scenario to count
    as passed.
    """
    from repro.protocol.faults import FaultPlan

    spec = NegotiationSpec(policy=policy)

    def build(validate: bool, negotiation: NegotiationSpec | None):
        workload = MicroWorkload(
            num_items=18, refill=12, num_sites=num_sites, initial_qty="refill"
        )
        cluster = workload.build_homeostasis(
            strategy="equal-split", validate=validate, negotiation=negotiation
        )
        return workload, cluster

    twin_workload, twin = build(False, None)
    workload, cluster = build(True, spec)
    rng = random.Random(seed + 1)
    violating = None
    for _ in range(600):
        req = twin_workload.next_request(rng, site=rng.randrange(num_sites))
        if twin.submit(req.tx_name, req.params).synced:
            violating = req
            break
        cluster.submit(req.tx_name, req.params)
    if violating is None:  # pragma: no cover - deterministic workload
        raise RuntimeError("no treaty-violating request found")

    # The origin handles one SyncBroadcast from each peer during the
    # round before any Phase2b ack reaches it; +1 more lands the crash
    # right after the first acceptor's accept is WAL-durable.
    origin = violating.site
    handled = cluster.transport._handled.get(origin, 0)
    cluster.transport.faults = FaultPlan(
        crash_after={origin: handled + (num_sites - 1) + 1}
    )
    result = cluster.submit(violating.tx_name, violating.params)
    stats = cluster.transport.message_stats()
    survivor_done = {
        "committed": bool(result.synced),
        "origin_down_at_completion": cluster.transport.is_down(origin),
        "origin_excluded": origin not in result.participants,
        "survivors": len(result.participants),
        "complete_messages": stats.complete_messages,
        "phase2a_messages": stats.phase2a_messages,
        "phase2b_messages": stats.phase2b_messages,
    }

    # Recovery: WAL replay, the missed cleanup re-run, the rejoin
    # round -- validate mode asserts the recovered treaty equals the
    # table entry.  Then the crashed site commits again.
    cluster.transport.faults = None
    cluster.recover_site(origin)
    post = cluster.submit(violating.tx_name, violating.params)
    survivor_done["recovered_clean"] = not cluster._missed_runs
    survivor_done["post_recovery_committed"] = post.status.name == "COMMITTED"
    return survivor_done


def build_tpcc_cluster(workload: TpccWorkload, mode: str, lookahead: int,
                       cost_factor: int, seed: int):
    if mode in _STRATEGY_FOR_MODE:
        return workload.build_homeostasis(
            strategy=_STRATEGY_FOR_MODE[mode],
            lookahead=lookahead,
            cost_factor=cost_factor,
            seed=seed,
        )
    if mode == "2pc":
        return workload.build_2pc()
    if mode == "local":
        return workload.build_local()
    raise ValueError(f"unknown mode {mode!r}")


def run_tpcc(
    mode: str,
    hotness: int = 10,
    num_replicas: int = 2,
    clients_per_replica: int = 8,
    num_warehouses: int = 2,
    num_districts: int = 2,
    items_per_district: int = 60,
    mix: tuple[float, float, float] = (0.45, 0.45, 0.10),
    lookahead: int = 20,
    cost_factor: int = 3,
    max_txns: int = 1_500,
    seed: int = 0,
    config_overrides: dict | None = None,
) -> SimResult:
    """One TPC-C point (Section 6.2, scaled down; Table 1 RTTs)."""
    workload = TpccWorkload(
        num_warehouses=num_warehouses,
        num_districts=num_districts,
        items_per_district=items_per_district,
        num_sites=num_replicas,
        hotness=hotness,
        mix=mix,
    )
    cluster = build_tpcc_cluster(workload, mode, lookahead, cost_factor, seed)

    def request_fn(rng, replica: int) -> SimRequest:
        req = workload.next_request(rng, site=replica)
        return SimRequest(req.tx_name, req.params, req.hot_key, family=req.family)

    config = SimConfig(
        mode=mode,
        num_replicas=num_replicas,
        clients_per_replica=clients_per_replica,
        rtt_matrix=rtt_matrix_for(num_replicas),
        cores_per_replica=16,  # c3.4xlarge
        solver_ms=solver_time_model(lookahead, cost_factor) if mode == "homeo" else 0.0,
        max_txns=max_txns,
        seed=seed,
    )
    if config_overrides:
        config = replace(config, **config_overrides)
    return simulate(config, cluster, request_fn)


# -- scenario fleet ----------------------------------------------------------


def _fleet_cluster(workload, mode: str, lookahead: int, cost_factor: int,
                   seed: int, adaptive=None, negotiation=None,
                   validate: bool = False, window_ms: float = 0.0):
    """Kernel selection shared by the scenario-fleet runners.

    ``window_ms > 0`` selects the concurrent cleanup runtime (batched
    arrival windows, real vote phase) -- required for contested
    negotiations, and therefore for any fairness measurement.
    """
    if mode in _STRATEGY_FOR_MODE:
        build = (
            workload.build_concurrent if window_ms > 0.0
            else workload.build_homeostasis
        )
        return build(
            strategy=_STRATEGY_FOR_MODE[mode],
            lookahead=lookahead,
            cost_factor=cost_factor,
            seed=seed,
            adaptive=adaptive,
            negotiation=negotiation,
            validate=validate,
        )
    if mode == "2pc":
        return workload.build_2pc()
    if mode == "local":
        return workload.build_local()
    raise ValueError(f"unknown mode {mode!r}")


def run_flashsale(
    mode: str = "adaptive",
    rtt_ms: float = 100.0,
    num_replicas: int = 2,
    clients_per_replica: int = 8,
    num_skus: int = 8,
    hot_stock: int = 150,
    cold_stock: int = 60,
    hot_fraction: float = 0.9,
    restock_fraction: float = 0.05,
    peek_fraction: float = 0.1,
    watermark: float = 0.25,
    window_ms: float = 0.0,
    negotiation: NegotiationSpec | None = None,
    max_txns: int = 2_500,
    seed: int = 0,
    validate: bool = False,
    config_overrides: dict | None = None,
) -> SimResult:
    """One flash-sale point: a stock treaty draining toward zero.

    Unlike :func:`run_adaptive_skew`, which skews *site* load through
    client placement, the flash sale skews *object* load: every site
    hammers SKU 0, so the hot treaty's headroom collapses while the
    cold catalog idles.  ``mode``:

    - ``"adaptive"`` -- demand-weighted splits plus the low-watermark
      refresh of :class:`~repro.protocol.homeostasis.AdaptiveSettings`
      (headroom chases the sale);
    - ``"static"`` -- the frozen equal split (every violation of the
      hot treaty pays a full negotiation).

    ``window_ms > 0`` runs the concurrent kernel so violators race in
    arrival windows, and ``negotiation`` attaches a Paxos Commit
    arbitration policy -- the flash sale is the starvation regime the
    credit ledger was built for, so ``SimResult.fairness`` is the
    quantity of interest there.
    """
    if mode not in _ADAPTIVE_MODES:
        raise ValueError(f"flash-sale experiment modes: adaptive/static, not {mode!r}")
    strategy, refresh = _ADAPTIVE_MODES[mode]
    adaptive = AdaptiveSettings(watermark=watermark) if refresh else None
    workload = FlashSaleWorkload(
        num_skus=num_skus,
        hot_stock=hot_stock,
        cold_stock=cold_stock,
        num_sites=num_replicas,
        hot_fraction=hot_fraction,
        restock_fraction=restock_fraction,
        peek_fraction=peek_fraction,
        init_seed=seed + 1,
    )
    build = (
        workload.build_concurrent if window_ms > 0.0
        else workload.build_homeostasis
    )
    cluster = build(
        strategy=strategy,
        adaptive=adaptive,
        negotiation=negotiation,
        validate=validate,
        seed=seed,
    )

    def request_fn(rng, replica: int) -> SimRequest:
        req = workload.next_request(rng, site=replica)
        return SimRequest(req.tx_name, req.params, req.items, family=req.family)

    config = SimConfig(
        mode="homeo" if mode == "adaptive" else "opt",
        num_replicas=num_replicas,
        clients_per_replica=clients_per_replica,
        rtt_ms=rtt_ms,
        window_ms=window_ms,
        solver_ms=0.0,
        max_txns=max_txns,
        seed=seed,
    )
    if config_overrides:
        config = replace(config, **config_overrides)
    return simulate(config, cluster, request_fn)


def run_flashsale_sellout(
    num_sites: int = 2,
    hot_stock: int = 60,
    seed: int = 0,
) -> dict:
    """The oversell audit: drain the sale, count every unit.

    A validate-mode cluster (H1/H2 oracles on every install) takes
    three times as many hot-SKU checkouts as there is stock, spread
    round-robin over the sites.  The guarded decrement must sell
    *exactly* ``hot_stock`` units -- the treaty may defer coordination
    but never mint inventory -- and the tail of the sale, where every
    site's split has rounded down to nothing, must still terminate
    with the logical stock at exactly zero.

    Returns the flat metric dict the benchmark harness folds into the
    flash-sale gate; everything in it is deterministic.
    """
    workload = FlashSaleWorkload(
        num_skus=2,
        hot_stock=hot_stock,
        cold_stock=10,
        num_sites=num_sites,
        restock_fraction=0.0,
        init_seed=seed + 1,
    )
    cluster = workload.build_homeostasis(strategy="equal-split", validate=True)
    for i in range(3 * hot_stock):
        site = i % num_sites
        cluster.submit(f"Checkout@s{site}", {"item": 0})
    levels = workload.stock_levels(cluster.global_state())
    return {
        "hot_stock": hot_stock,
        "hot_remaining": levels[0],
        "sold_out": levels[0] == 0,
        "oversold_units": sum(-v for v in levels.values() if v < 0),
        "min_stock": min(levels.values()),
        "sync_ratio": round(cluster.stats.sync_ratio, 5),
    }


def run_banking(
    mode: str = "homeo",
    rtt_ms: float = 100.0,
    num_replicas: int = 2,
    clients_per_replica: int = 8,
    num_accounts: int = 8,
    initial_balance: int = 30,
    deposit_fraction: float = 0.1,
    audit_fraction: float = 0.05,
    hot_fraction: float = 0.0,
    lookahead: int = 20,
    cost_factor: int = 3,
    window_ms: float = 0.0,
    negotiation: NegotiationSpec | None = None,
    max_txns: int = 4_000,
    seed: int = 0,
    validate: bool = False,
    config_overrides: dict | None = None,
) -> SimResult:
    """One banking point: cross-site transfers, non-negative balances.

    The transfer's debit is the treaty-bearing write (``b >= amount``
    headroom split across sites); the credit and the ``Deposit``
    family are pure local deltas, and ``Audit`` probes are the
    classifier-FREE class.  ``mode`` selects homeo / opt / 2pc /
    local exactly as in :func:`run_micro`.
    """
    workload = BankingWorkload(
        num_accounts=num_accounts,
        num_sites=num_replicas,
        initial_balance=initial_balance,
        deposit_fraction=deposit_fraction,
        audit_fraction=audit_fraction,
        hot_fraction=hot_fraction,
        init_seed=seed + 1,
    )
    cluster = _fleet_cluster(
        workload, mode, lookahead, cost_factor, seed,
        negotiation=negotiation, validate=validate, window_ms=window_ms,
    )

    def request_fn(rng, replica: int) -> SimRequest:
        req = workload.next_request(rng, site=replica)
        return SimRequest(
            req.tx_name, req.params, req.accounts, family=req.family
        )

    config = SimConfig(
        mode=mode,
        num_replicas=num_replicas,
        clients_per_replica=clients_per_replica,
        rtt_ms=rtt_ms,
        window_ms=window_ms,
        solver_ms=solver_time_model(lookahead, cost_factor) if mode == "homeo" else 0.0,
        max_txns=max_txns,
        seed=seed,
    )
    if config_overrides:
        config = replace(config, **config_overrides)
    return simulate(config, cluster, request_fn)


def run_banking_conservation(
    num_sites: int = 3,
    num_accounts: int = 6,
    requests: int = 600,
    seed: int = 0,
) -> dict:
    """The money-supply audit: transfers conserve, balances stay >= 0.

    A validate-mode cluster takes a deterministic mixed stream
    (transfers, deposits, read-only audits); afterwards the logical
    money supply must equal the opening supply plus every committed
    deposit -- the protocol may defer writes into per-site deltas but
    may not mint or burn a unit -- and no account may be overdrawn.

    Returns the flat metric dict the benchmark harness folds into the
    banking gate; everything in it is deterministic.
    """
    workload = BankingWorkload(
        num_accounts=num_accounts,
        num_sites=num_sites,
        initial_balance=20,
        deposit_fraction=0.15,
        audit_fraction=0.05,
        init_seed=seed + 1,
    )
    cluster = workload.build_homeostasis(strategy="equal-split", validate=True)
    rng = random.Random(seed)
    deposited = 0
    for _ in range(requests):
        req = workload.next_request(rng)
        cluster.submit(req.tx_name, req.params)
        if req.family == "Deposit":
            deposited += req.params["amount"]
    state = cluster.global_state()
    problems = workload.conservation_violations(state, deposited)
    balances = workload.balances(state)
    return {
        "accounts": num_accounts,
        "requests": requests,
        "deposited": deposited,
        "expected_total": num_accounts * workload.initial_balance + deposited,
        "final_total": workload.total_money(state),
        "min_balance": min(balances.values()),
        "money_conserved": not problems,
        "conservation_problems": problems,
        "sync_ratio": round(cluster.stats.sync_ratio, 5),
    }


def run_quota(
    mode: str = "homeo",
    rtt_ms: float = 100.0,
    num_replicas: int = 2,
    clients_per_replica: int = 8,
    num_tenants: int = 150,
    limit: int = 12,
    usage_fraction: float = 0.05,
    hot_fraction: float = 0.0,
    lookahead: int = 20,
    cost_factor: int = 3,
    window_ms: float = 0.0,
    negotiation: NegotiationSpec | None = None,
    max_txns: int = 4_000,
    seed: int = 0,
    validate: bool = False,
    config_overrides: dict | None = None,
) -> SimResult:
    """One rate-limiter point: many small independent treaties.

    Every tenant carries its own ``used <= limit`` invariant, so the
    treaty table and the compiled-check cache hold one entry per
    tenant -- sweeping ``num_tenants`` stresses the per-commit
    metadata path rather than headroom arithmetic on one hot counter.
    """
    workload = QuotaWorkload(
        num_tenants=num_tenants,
        num_sites=num_replicas,
        limit=limit,
        usage_fraction=usage_fraction,
        hot_fraction=hot_fraction,
        init_seed=seed + 1,
    )
    cluster = _fleet_cluster(
        workload, mode, lookahead, cost_factor, seed,
        negotiation=negotiation, validate=validate, window_ms=window_ms,
    )

    def request_fn(rng, replica: int) -> SimRequest:
        req = workload.next_request(rng, site=replica)
        return SimRequest(
            req.tx_name, req.params, (req.tenant,), family=req.family
        )

    config = SimConfig(
        mode=mode,
        num_replicas=num_replicas,
        clients_per_replica=clients_per_replica,
        rtt_ms=rtt_ms,
        window_ms=window_ms,
        solver_ms=solver_time_model(lookahead, cost_factor) if mode == "homeo" else 0.0,
        max_txns=max_txns,
        seed=seed,
    )
    if config_overrides:
        config = replace(config, **config_overrides)
    return simulate(config, cluster, request_fn)


def run_quota_saturation(
    num_sites: int = 2,
    num_tenants: int = 30,
    limit: int = 8,
    requests: int = 600,
    seed: int = 0,
) -> dict:
    """The overrun audit: a hammered tenant never escapes its limit.

    A validate-mode cluster takes a deterministic stream with 90% of
    hits aimed at tenant 0 -- far more than one window's budget, so
    the counter must cycle through the rollover path repeatedly --
    and afterwards every tenant's logical counter must sit inside
    ``[0, limit]``.

    Returns the flat metric dict the benchmark harness folds into the
    quota gate; everything in it is deterministic.
    """
    workload = QuotaWorkload(
        num_tenants=num_tenants,
        num_sites=num_sites,
        limit=limit,
        hot_fraction=0.9,
        init_seed=seed + 1,
    )
    cluster = workload.build_homeostasis(strategy="equal-split", validate=True)
    rng = random.Random(seed)
    for _ in range(requests):
        req = workload.next_request(rng)
        cluster.submit(req.tx_name, req.params)
    levels = workload.usage_levels(cluster.global_state())
    overruns = workload.overruns(cluster.global_state())
    return {
        "tenants": num_tenants,
        "limit": limit,
        "requests": requests,
        "max_used": max(levels.values()),
        "min_used": min(levels.values()),
        "overrun_violations": len(overruns),
        "within_limits": not overruns,
        "sync_ratio": round(cluster.stats.sync_ratio, 5),
    }
