"""Measurement plumbing: latency records, percentiles, summaries."""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Sequence


def check_path_stats() -> dict[str, dict[str, int]]:
    """Process-wide commit-check observability: compiled-closure memo
    sizes and escrow lowering-cache hit/miss counters, in one place for
    the nightly figure sweeps and the benchmark harness."""
    from repro.logic.compile import compiled_counts, escrow_counts

    return {"compiled": compiled_counts(), "escrow": escrow_counts()}


def percentile(values: Sequence[float], pct: float) -> float:
    """Linear-interpolation percentile (pct in [0, 100])."""
    if not values:
        raise ValueError("percentile of empty sequence")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (pct / 100.0) * (len(ordered) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(ordered) - 1)
    if ordered[lo] == ordered[hi]:
        return ordered[lo]  # avoid float round-off on equal neighbours
    frac = rank - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


@dataclass
class TxnRecord:
    """One completed transaction as the simulator saw it."""

    start_ms: float
    end_ms: float
    kind: str  # 'local' | 'sync' | '2pc' | 'failed'
    replica: int
    family: str = ""
    #: latency decomposition (Figure 24): queueing/local/comm/solver
    wait_ms: float = 0.0
    local_ms: float = 0.0
    comm_ms: float = 0.0
    solver_ms: float = 0.0
    #: vote-exchange round trip among racing violators (concurrent
    #: runtime only; 0 for unopposed negotiations)
    vote_ms: float = 0.0
    #: proactive treaty refreshes this committed transaction triggered
    #: by breaching the adaptive low-watermark
    rebalances: int = 0
    #: scoped barrier-round cost of those refreshes (priced per edge,
    #: like any negotiation; charged to the triggering transaction)
    rebalance_ms: float = 0.0
    retries: int = 0
    #: True when the transaction failed because a site it needed was
    #: unreachable (crash-stop or partition); the record's latency is
    #: the unavailability-discovery timeout the client paid
    timed_out: bool = False
    #: sites the negotiation involved (empty for local commits or
    #: kernels that do not report participant-scoped rounds)
    participants: tuple[int, ...] = ()
    #: concurrent wave the won negotiation ran in (-1 outside the
    #: windowed runtime or for transactions that never won one)
    wave: int = -1

    @property
    def latency_ms(self) -> float:
        return self.end_ms - self.start_ms


@dataclass
class LatencyStats:
    """Percentile summary of a latency population (milliseconds)."""

    count: int
    mean: float
    p50: float
    p90: float
    p95: float
    p97: float
    p99: float
    p100: float

    @classmethod
    def of(cls, latencies: Sequence[float]) -> "LatencyStats":
        if not latencies:
            return cls(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
        return cls(
            count=len(latencies),
            mean=sum(latencies) / len(latencies),
            p50=percentile(latencies, 50),
            p90=percentile(latencies, 90),
            p95=percentile(latencies, 95),
            p97=percentile(latencies, 97),
            p99=percentile(latencies, 99),
            p100=max(latencies),
        )


@dataclass
class SimResult:
    """Everything a benchmark needs from one simulation run."""

    mode: str
    records: list[TxnRecord] = field(default_factory=list)
    committed: int = 0
    negotiations: int = 0
    #: proactive adaptive treaty refreshes (no violation, no abort)
    rebalances: int = 0
    aborted_attempts: int = 0
    failed: int = 0
    #: submissions that failed because a site they needed was
    #: unreachable (a subset of ``failed``; the rest are lock-wait
    #: timeouts under 2PC)
    timeouts: int = 0
    #: crashed-site recoveries performed during the run (WAL replay +
    #: rejoin round), and their total priced cost
    recoveries: int = 0
    recovery_ms: float = 0.0
    measured_from_ms: float = 0.0
    measured_to_ms: float = 0.0
    num_replicas: int = 1
    #: run-level escrow fast-path counters (from
    #: ``HomeostasisCluster.escrow_stats``; empty for kernels without
    #: the counter path, e.g. the 2PC baseline)
    escrow: dict = field(default_factory=dict)
    #: run-level static-tier counters (from
    #: ``HomeostasisCluster.classifier_stats``: FREE-path bypasses and
    #: clauses-in-scope per commit; empty for kernels without it)
    classifier: dict = field(default_factory=dict)
    #: run-level arbitration fairness counters (from
    #: ``HomeostasisCluster.fairness_stats``: elections, per-site
    #: win/loss streaks, credit balances, wait percentiles; empty for
    #: kernels without the credit ledger)
    fairness: dict = field(default_factory=dict)

    # -- derived metrics --------------------------------------------------------

    def _measured(self, family: str | None = None) -> list[TxnRecord]:
        out = [
            r
            for r in self.records
            if r.start_ms >= self.measured_from_ms and r.kind != "failed"
        ]
        if family is not None:
            out = [r for r in out if r.family == family]
        return out

    def latencies(self, family: str | None = None) -> list[float]:
        return [r.latency_ms for r in self._measured(family)]

    def latency_stats(self, family: str | None = None) -> LatencyStats:
        return LatencyStats.of(self.latencies(family))

    @property
    def duration_s(self) -> float:
        return max(self.measured_to_ms - self.measured_from_ms, 1e-9) / 1000.0

    def throughput_per_replica(self, family: str | None = None) -> float:
        """Committed transactions per second per replica."""
        return len(self._measured(family)) / self.duration_s / self.num_replicas

    def total_throughput(self, family: str | None = None) -> float:
        return len(self._measured(family)) / self.duration_s

    @property
    def sync_ratio(self) -> float:
        """Fraction of measured transactions that triggered a
        synchronization (Figures 12/15/18/26/29)."""
        measured = self._measured()
        if not measured:
            return 0.0
        synced = sum(1 for r in measured if r.kind == "sync")
        return synced / len(measured)

    @property
    def availability(self) -> float:
        """Fraction of completed submissions that committed (the
        Bailis-style first-class metric of the fault experiments).
        2PC's availability collapses to ~0 for the duration of any
        outage; homeostasis only loses the closures that touch the
        crashed site."""
        total = self.committed + self.failed
        if total == 0:
            return 1.0
        return self.committed / total

    @property
    def abort_ratio(self) -> float:
        """Complement of :attr:`availability` (failed submissions per
        completed submission)."""
        return 1.0 - self.availability

    def availability_between(self, t0_ms: float, t1_ms: float) -> float:
        """Availability restricted to submissions *starting* inside
        ``[t0_ms, t1_ms)`` -- used to read the availability floor
        during an outage window specifically, where the homeo-vs-2PC
        gap is sharpest."""
        committed = failed = 0
        for r in self.records:
            if t0_ms <= r.start_ms < t1_ms:
                if r.kind == "failed":
                    failed += 1
                else:
                    committed += 1
        total = committed + failed
        if total == 0:
            return 1.0
        return committed / total

    @property
    def rebalance_ratio(self) -> float:
        """Proactive refreshes per measured transaction.  Reported next
        to :attr:`sync_ratio` so adaptive runs cannot hide coordination
        by relabelling violations as refreshes -- the honest total is
        the sum of both ratios."""
        measured = self._measured()
        if not measured:
            return 0.0
        return sum(r.rebalances for r in measured) / len(measured)

    def participant_histogram(self) -> dict[int, int]:
        """Negotiation count by participant-set size (how scoped the
        cleanup rounds actually were)."""
        out: dict[int, int] = {}
        for r in self._measured():
            if r.kind == "sync" and r.participants:
                size = len(r.participants)
                out[size] = out.get(size, 0) + 1
        return out

    def breakdown_means(self) -> dict[str, float]:
        """Mean latency decomposition of *violating* transactions
        (Figure 24)."""
        synced = [r for r in self._measured() if r.kind == "sync"]
        if not synced:
            return {"local": 0.0, "comm": 0.0, "solver": 0.0, "wait": 0.0,
                    "vote": 0.0}
        n = len(synced)
        return {
            "local": sum(r.local_ms for r in synced) / n,
            "comm": sum(r.comm_ms for r in synced) / n,
            "solver": sum(r.solver_ms for r in synced) / n,
            "wait": sum(r.wait_ms for r in synced) / n,
            "vote": sum(r.vote_ms for r in synced) / n,
        }

    def latency_cdf(self, points: Sequence[float]) -> list[tuple[float, float]]:
        """(latency, cumulative probability) pairs at given latencies
        (Figure 27)."""
        lats = sorted(self.latencies())
        if not lats:
            return [(p, 0.0) for p in points]
        out = []
        for p in points:
            idx = bisect.bisect_right(lats, p)
            out.append((p, idx / len(lats)))
        return out
