"""Network latency models.

Table 1 of the paper: average round-trip times between the five
Amazon datacenters used in the TPC-C experiments (milliseconds).
Replicas are added in the paper's order UE, UW, IE, SG, BR
(Section 6.2), so ``rtt_matrix_for(n)`` returns the submatrix for the
first ``n`` datacenters.
"""

from __future__ import annotations

DATACENTERS = ("UE", "UW", "IE", "SG", "BR")

#: Table 1 (symmetric; diagonal < 1 ms modeled as 0.5 ms).
TABLE1_RTT_MS: dict[tuple[str, str], float] = {}


def _fill_table1() -> None:
    rows = {
        ("UE", "UE"): 0.5,
        ("UE", "UW"): 64.0,
        ("UE", "IE"): 80.0,
        ("UE", "SG"): 243.0,
        ("UE", "BR"): 164.0,
        ("UW", "UW"): 0.5,
        ("UW", "IE"): 170.0,
        ("UW", "SG"): 210.0,
        ("UW", "BR"): 227.0,
        ("IE", "IE"): 0.5,
        ("IE", "SG"): 285.0,
        ("IE", "BR"): 235.0,
        ("SG", "SG"): 0.5,
        ("SG", "BR"): 372.0,
        ("BR", "BR"): 0.5,
    }
    for (a, b), v in rows.items():
        TABLE1_RTT_MS[(a, b)] = v
        TABLE1_RTT_MS[(b, a)] = v


_fill_table1()


def uniform_rtt_matrix(n: int, rtt_ms: float) -> list[list[float]]:
    """All-pairs RTT of ``rtt_ms`` (the microbenchmark's simulated
    network, Section 6.1)."""
    return [
        [0.5 if i == j else rtt_ms for j in range(n)] for i in range(n)
    ]


def rtt_matrix_for(n: int) -> list[list[float]]:
    """Table 1 submatrix for the first ``n`` datacenters."""
    if not 1 <= n <= len(DATACENTERS):
        raise ValueError(f"supported replica counts: 1..{len(DATACENTERS)}")
    names = DATACENTERS[:n]
    return [[TABLE1_RTT_MS[(a, b)] for b in names] for a in names]


def max_rtt(matrix: list[list[float]]) -> float:
    """The slowest pairwise round trip (bounds a sync round)."""
    return max(max(row) for row in matrix)


def participants_rtt(matrix: list[list[float]], participants) -> float:
    """The slowest round trip among the given sites -- what bounds a
    barrier round scoped to that participant set."""
    sites = sorted(set(participants))
    if not sites:
        raise ValueError("participants_rtt of empty participant set")
    if len(sites) == 1:
        return matrix[sites[0]][sites[0]]
    return max(matrix[a][b] for a in sites for b in sites if a < b)


def negotiation_cost_ms(
    matrix: list[list[float]],
    participants,
    fallback_ms: float,
    rounds: float = 2.0,
) -> float:
    """Latency of one treaty negotiation, priced from the edges the
    transport trace actually used.

    A negotiation is ``rounds`` barrier rounds (state sync + cleanup
    re-run / treaty install) over the participant set, so it costs
    ``rounds`` times the slowest RTT *among the participants* -- a
    UE<->UW violation pays the 64 ms edge, not the cluster-wide SG<->BR
    372 ms diameter.  Kernels that do not report participants (stubs,
    legacy clusters) fall back to the cluster-wide bound.
    """
    if not participants:
        return fallback_ms
    return rounds * participants_rtt(matrix, participants)
