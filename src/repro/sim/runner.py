"""The closed-loop discrete-event simulator.

Clients per replica issue transactions back to back (zero think
time), matching the paper's harness.  Each transaction passes through

1. **a CPU core** -- each replica has ``cores_per_replica`` servers
   with exponential service times (the Figure 17 saturation model);
2. **item locks** -- same-key transactions serialize; under 2PC the
   lock is held for the full two network round trips, which is what
   collapses throughput on hot items, waits beyond the
   ``lock_timeout_ms`` floor abort and retry (MySQL's 1 s minimum,
   the Figure 19/21 tails), and a waiter releases its core while
   blocked (local-path lock waits are same-replica microsecond-scale
   queues and stay inside the core occupancy);
3. **the protocol decision** -- delegated to the *real* kernel
   (``HomeostasisCluster`` / baselines), so violations happen exactly
   where the treaty math says they do; the simulator only prices
   them: a violation costs two round trips over the *participant set
   of the negotiation* (state sync + rerun/treaty install; Section
   5.1) plus the solver-time model.  The participant set comes from
   the kernel's transport trace (``ClusterResult.participants``), and
   each round is priced at the slowest RTT edge actually used -- a
   violation between two nearby sites never pays the cluster
   diameter.  Kernels that do not report participants fall back to
   the cluster-wide ``2 * max_rtt`` bound.

Under homeostasis/OPT, non-violating transactions never wait for an
in-flight negotiation (only the ~2% violating transactions pay the
round trips -- the paper's own latency accounting, Section 6.1).  How
*racing violators* queue depends on the kernel: with a windowed
:class:`~repro.protocol.concurrent.ConcurrentCluster`
(``window_ms > 0``), submissions are batched into arrival windows,
the kernel's real vote phase elects each conflict group's winner, and
losers' queueing (``wait_ms``) comes from the elections they actually
lost -- negotiations over disjoint participant closures proceed in
parallel.  Per-transaction kernels (no ``submit_window``) fall back
to per-key negotiation gates that approximate the same serialization.

**Faults**: ``SimConfig.fault_events`` schedules site crash-stops and
recoveries on the simulated clock; the driver forwards them to the
kernel (``crash_site`` / ``recover_site``), prices each recovery's
rejoin round from its participant edges, and converts the kernel's
``Unavailable`` refusals into failed records costing the client
``sync_timeout_ms`` (the time a real client spends discovering the
site is unreachable before giving up).  ``SimResult.availability``
and ``availability_between`` report the resulting commit fraction --
the metric on which homeostasis (only closures touching the crashed
site block) separates from 2PC (everything blocks).

The clock is float milliseconds.  Determinism: one seeded RNG drives
request generation and service times; the heap breaks ties by client
id.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass
from typing import Callable, Protocol

from repro.protocol.homeostasis import Unavailable
from repro.sim.metrics import SimResult, TxnRecord
from repro.sim.network import (
    max_rtt,
    negotiation_cost_ms,
    participants_rtt,
    uniform_rtt_matrix,
)


@dataclass
class SimRequest:
    """What the workload hands the simulator for one client turn."""

    tx_name: str
    params: dict[str, int]
    lock_keys: tuple
    family: str = ""


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled site fault on the simulated clock.

    ``action`` is ``'crash'`` (the site crash-stops, losing volatile
    state) or ``'recover'`` (WAL replay + rejoin round; the kernel's
    ``recover_site`` returns the rejoin participants, which the
    simulator prices like any scoped negotiation).  Events fire just
    before the first submission whose ready time reaches ``at_ms``.
    """

    at_ms: float
    action: str  # 'crash' | 'recover'
    site: int


class SubmitTarget(Protocol):
    """The kernel interface the simulator drives."""

    def submit(self, tx_name: str, params: dict[str, int]): ...


@dataclass
class SimConfig:
    """Simulation knobs; defaults follow Section 6.1's defaults."""

    mode: str  # 'homeo' | 'opt' | '2pc' | 'local'
    num_replicas: int = 2
    #: closed-loop clients at each replica: one count for all, or a
    #: per-replica sequence (skewed offered load, e.g. the adaptive
    #: reallocation experiments' Zipf site weights)
    clients_per_replica: int | tuple[int, ...] = 16
    rtt_ms: float = 100.0
    rtt_matrix: list[list[float]] | None = None
    cores_per_replica: int = 32
    #: mean of the exponential *execution* service time (parse, locks,
    #: undo journal, store writes) -- the commit-time treaty check is
    #: priced separately below, by check mechanism
    local_service_ms: float = 1.5
    #: per-commit treaty-check cost when the kernel checks through the
    #: compiled closure (the pre-escrow model's 2.0 ms mean service
    #: was this plus ``local_service_ms``; kernels that do not report
    #: a mechanism -- 2PC, stubs -- price at this too)
    check_cost_ms: float = 0.5
    #: per-commit check cost when the kernel reports the escrow
    #: headroom counters engaged (the measured microbenchmark ratio,
    #: ~15x, applied to the modeled compiled cost)
    escrow_check_cost_ms: float = 0.03
    #: per-negotiation solver time (0 for OPT; grows with lookahead L)
    solver_ms: float = 0.0
    lock_timeout_ms: float = 1000.0
    max_retries: int = 5
    duration_ms: float = 60_000.0
    warmup_ms: float = 2_000.0
    max_txns: int = 20_000
    seed: int = 0
    #: arrival-window width for the concurrent runtime: submissions
    #: arriving within one window race through the kernel's real vote
    #: phase (requires a cluster with ``submit_window``; 0 keeps the
    #: per-transaction path)
    window_ms: float = 0.0
    #: scheduled site crashes/recoveries (see :class:`FaultEvent`);
    #: requires a kernel exposing ``crash_site`` / ``recover_site``
    fault_events: tuple[FaultEvent, ...] = ()
    #: what an unavailable submission costs its client: the time spent
    #: discovering the needed site is unreachable (vote/sync timeout)
    #: before giving up and re-entering the closed loop
    sync_timeout_ms: float = 500.0
    #: arbitration clock granularity for the windowed runtime: vote
    #: timestamps are quantized to this many milliseconds, so racing
    #: violators whose arrivals fall inside one quantum carry *equal*
    #: timestamps and the election is decided by the tie-break chain
    #: (credit, then site id).  0 keeps microsecond-distinct arrival
    #: timestamps, where ties -- and therefore the arbitration policy
    #: -- almost never matter.  Model of coarse per-site clocks; set it
    #: to ``window_ms`` to make every within-window race a tie.
    clock_quantum_ms: float = 0.0

    def matrix(self) -> list[list[float]]:
        if self.rtt_matrix is not None:
            return self.rtt_matrix
        return uniform_rtt_matrix(self.num_replicas, self.rtt_ms)

    def client_counts(self) -> list[int]:
        """Per-replica closed-loop client counts."""
        if isinstance(self.clients_per_replica, int):
            return [self.clients_per_replica] * self.num_replicas
        counts = [int(c) for c in self.clients_per_replica]
        if len(counts) != self.num_replicas:
            raise ValueError(
                f"clients_per_replica has {len(counts)} entries for "
                f"{self.num_replicas} replicas"
            )
        return counts


class _FaultSchedule:
    """Applies scheduled crash/recover events to the kernel as the
    simulated clock advances, pricing each recovery's rejoin round
    from its participant edges."""

    def __init__(
        self,
        events: tuple[FaultEvent, ...],
        cluster,
        matrix: list[list[float]],
        fallback_ms: float,
    ) -> None:
        self._pending = sorted(events, key=lambda e: (e.at_ms, e.site))
        self._cluster = cluster
        self._matrix = matrix
        self._fallback_ms = fallback_ms

    def apply_due(self, now_ms: float, result: SimResult) -> None:
        while self._pending and self._pending[0].at_ms <= now_ms:
            event = self._pending.pop(0)
            if event.action == "crash":
                self._cluster.crash_site(event.site)
            elif event.action == "recover":
                participants = self._cluster.recover_site(event.site)
                result.recoveries += 1
                result.recovery_ms += negotiation_cost_ms(
                    self._matrix, participants, fallback_ms=self._fallback_ms
                )
            else:
                raise ValueError(f"unknown fault action {event.action!r}")


def _collect_escrow(result: SimResult, cluster) -> None:
    """Fold the kernel's run-level escrow fast-path counters into the
    result (kernels without the counter path -- local, 2PC -- report
    nothing and the field stays empty)."""
    stats = getattr(cluster, "escrow_stats", None)
    if stats is not None:
        result.escrow = stats()


def _collect_classifier(result: SimResult, cluster) -> None:
    """Fold the kernel's static-tier (path-check) counters into the
    result (kernels without the classifier report nothing)."""
    stats = getattr(cluster, "classifier_stats", None)
    if stats is not None:
        result.classifier = stats()


def _collect_fairness(result: SimResult, cluster) -> None:
    """Fold the kernel's arbitration-fairness counters into the result
    (kernels without the credit ledger report nothing)."""
    stats = getattr(cluster, "fairness_stats", None)
    if stats is not None:
        result.fairness = stats()


def _quorum_round_ms(matrix: list[list[float]], cluster, participants) -> float:
    """Extra per-negotiation cost of the Paxos Commit decision round.

    With a :class:`~repro.protocol.paxos_commit.NegotiationSpec`
    attached, every won negotiation pays one more scoped round trip:
    the origin's Phase2a fan-out to the acceptor set and the Phase2b
    acks back.  The acceptors are co-located on the lowest participant
    sites, so the round is priced at the slowest RTT edge *inside the
    acceptor set* -- strictly no wider than the sync barrier already
    paid.  Legacy clusters (no spec) price zero here.
    """
    spec = getattr(cluster, "negotiation", None)
    if spec is None or not participants:
        return 0.0
    acceptors = tuple(sorted(participants)[: spec.acceptors])
    if len(acceptors) < 2:
        return 0.0
    return participants_rtt(matrix, acceptors)


def _free_transactions(cluster) -> frozenset:
    """Transactions the classifier proved coordination-free, read once
    at run start: their commits skip the treaty check at the site, so
    the simulator prices them with a zero check-cost component."""
    free = getattr(cluster, "free_transactions", None)
    return free() if free is not None else frozenset()


def _check_cost_ms(config: SimConfig, cluster) -> float:
    """Per-commit treaty-check service component, priced once at run
    start by the mechanism the kernel reports.

    The local baseline enforces no treaty, so it pays nothing; kernels
    that do not report a mechanism (2PC, test stubs) price at the
    compiled-closure cost, which keeps their total mean service equal
    to the pre-decomposition 2.0 ms model.  The constant is added to
    every service draw *after* the exponential sample, so it consumes
    no RNG draws -- the request sequence, and therefore the sync
    ratio, are unchanged by which mechanism is engaged.
    """
    if config.mode == "local":
        return 0.0
    mechanism = getattr(cluster, "check_mechanism", None)
    if mechanism is not None and mechanism() == "escrow":
        return config.escrow_check_cost_ms
    return config.check_cost_ms


def simulate(
    config: SimConfig,
    cluster: SubmitTarget,
    request_fn: Callable[[random.Random, int], SimRequest],
) -> SimResult:
    """Run one closed-loop simulation to ``max_txns`` or ``duration_ms``."""
    rng = random.Random(config.seed)
    matrix = config.matrix()
    # Warm the kernel's compiled treaty/guard checks before the first
    # arrival (covers both the per-transaction and the windowed
    # concurrent kernels): every in-run check is one closure call.
    warm = getattr(cluster, "precompile_checks", None)
    if warm is not None:
        warm()
    # Cluster-wide bound: the price of a round involving every site
    # (2PC's ROWA cohort always does; scoped negotiations price their
    # own participant edges and only degrade to this worst case).
    sync_cost_ms = 2.0 * max_rtt(matrix)
    check_ms = _check_cost_ms(config, cluster)
    free_txns = _free_transactions(cluster)

    result = SimResult(
        mode=config.mode,
        measured_from_ms=config.warmup_ms,
        num_replicas=config.num_replicas,
    )

    # Client heap: (ready_time, client_id, replica).
    clients: list[tuple[float, int, int]] = []
    cid = 0
    for replica, count in enumerate(config.client_counts()):
        for _ in range(count):
            # Small jitter avoids a lockstep start.
            clients.append((rng.uniform(0.0, 1.0), cid, replica))
            cid += 1
    heapq.heapify(clients)

    # Resources.
    cores: list[list[float]] = [
        [0.0] * config.cores_per_replica for _ in range(config.num_replicas)
    ]
    for pool in cores:
        heapq.heapify(pool)
    #: per (replica, key) lock-free time under homeo/opt/local;
    #: per key (cluster-wide) under 2PC.
    lock_free: dict[tuple, float] = {}
    now = 0.0
    faults = _FaultSchedule(config.fault_events, cluster, matrix, sync_cost_ms)

    if (
        config.mode in ("homeo", "opt")
        and config.window_ms > 0.0
        and hasattr(cluster, "submit_window")
    ):
        return _simulate_windows(
            config, cluster, request_fn, rng, matrix, sync_cost_ms,
            result, clients, cores, lock_free, faults,
        )

    while clients and result.committed < config.max_txns:
        ready, client, replica = heapq.heappop(clients)
        # Re-check the horizon *after* the pop: the popped client may
        # be scheduled past the end of the run, and no record may
        # start past ``duration_ms``.
        if ready >= config.duration_ms:
            break
        now = ready
        faults.apply_due(now, result)
        request = request_fn(rng, replica)
        service = rng.expovariate(1.0 / config.local_service_ms) + (
            0.0 if request.tx_name in free_txns else check_ms
        )

        if config.mode in ("homeo", "opt"):
            end, record = _run_protected(
                config, cluster, request, replica, ready, service,
                cores, lock_free, sync_cost_ms, matrix,
            )
        elif config.mode == "2pc":
            end, record = _run_2pc(
                config, cluster, request, replica, ready, service,
                cores, lock_free, sync_cost_ms, rng,
            )
        elif config.mode == "local":
            end, record = _run_local(
                config, cluster, request, replica, ready, service, cores, lock_free
            )
        else:
            raise ValueError(f"unknown mode {config.mode!r}")

        result.records.append(record)
        if record.kind != "failed":
            result.committed += 1
            if record.kind == "sync":
                result.negotiations += 1
        else:
            result.failed += 1
            if record.timed_out:
                result.timeouts += 1
        result.rebalances += record.rebalances
        result.aborted_attempts += record.retries
        heapq.heappush(clients, (end, client, replica))

    result.measured_to_ms = now
    # Transaction-count-bounded runs can finish before the nominal
    # warmup window; keep the warmup at 10% of the run in that case.
    result.measured_from_ms = min(config.warmup_ms, 0.1 * now)
    _collect_escrow(result, cluster)
    _collect_classifier(result, cluster)
    _collect_fairness(result, cluster)
    return result


@dataclass
class _WindowEntry:
    """One windowed submission's local-phase timing."""

    ready: float
    client: int
    replica: int
    request: SimRequest
    service: float
    start_exec: float
    local_end: float


def _simulate_windows(
    config: SimConfig,
    cluster,
    request_fn: Callable[[random.Random, int], SimRequest],
    rng: random.Random,
    matrix: list[list[float]],
    sync_cost_ms: float,
    result: SimResult,
    clients: list[tuple[float, int, int]],
    cores: list[list[float]],
    lock_free: dict[tuple, float],
    faults: _FaultSchedule,
) -> SimResult:
    """Drive a concurrent kernel with real interleaving.

    Submissions arriving within ``window_ms`` of each other form one
    window handed to ``cluster.submit_window``: several can violate
    treaties in the same window, the kernel's vote phase elects each
    conflict group's winner, and the timing model follows the
    *kernel's* resolution instead of per-key gates --

    - a group's election starts once its slowest contender discovers
      its violation (max of local finish times) and costs one vote
      round trip among the contender origins;
    - the winner then pays the two scoped barrier rounds plus solver
      time, priced per edge from its participant set;
    - each loser re-runs after the winning negotiation installs new
      treaties: its ``wait_ms`` is the election it actually lost, not
      a synthetic gate;
    - groups in the same wave have disjoint participant closures and
      do *not* serialize: each starts from its own contenders' finish
      times, never from another group's negotiation end.
    """
    solver = config.solver_ms if config.mode == "homeo" else 0.0
    check_ms = _check_cost_ms(config, cluster)
    free_txns = _free_transactions(cluster)
    now = 0.0
    while clients and result.committed < config.max_txns:
        if clients[0][0] >= config.duration_ms:
            break
        # Faults resolve at window boundaries: a crash lands between
        # windows, never inside one (within-window granularity would
        # need per-message timing the arrival-window model abstracts
        # away).
        faults.apply_due(clients[0][0], result)
        window_close = clients[0][0] + config.window_ms
        remaining = config.max_txns - result.committed

        entries: list[_WindowEntry] = []
        while (
            clients
            and clients[0][0] < window_close
            and clients[0][0] < config.duration_ms
            and len(entries) < remaining
        ):
            ready, client, replica = heapq.heappop(clients)
            now = ready
            request = request_fn(rng, replica)
            service = rng.expovariate(1.0 / config.local_service_ms) + (
                0.0 if request.tx_name in free_txns else check_ms
            )
            keys = [(replica, k) for k in request.lock_keys]
            start_exec, local_end = _local_attempt(
                cores, lock_free, replica, ready, service, keys
            )
            entries.append(
                _WindowEntry(ready, client, replica, request, service,
                             start_exec, local_end)
            )

        quantum = config.clock_quantum_ms
        window = cluster.submit_window(
            [(e.request.tx_name, e.request.params) for e in entries],
            timestamps=[
                round((e.ready // quantum) * quantum * 1000.0)
                if quantum > 0.0
                else round(e.ready * 1000.0)
                for e in entries
            ],
        )

        finish = [e.local_end for e in entries]
        wait = [e.start_exec - e.ready for e in entries]
        local = [e.service for e in entries]
        comm = [0.0] * len(entries)
        vote = [0.0] * len(entries)
        solver_of = [0.0] * len(entries)
        reb_count = [0] * len(entries)
        reb_ms = [0.0] * len(entries)
        for wave_groups in window.waves:
            for grp in wave_groups:
                # The election starts once every contender has locally
                # discovered its violation (or, for a proactive
                # refresh, committed past the watermark)...
                t0 = max(finish[m] for m in grp.members)
                vote_ms = (
                    participants_rtt(matrix, grp.contender_sites)
                    if len(grp.contender_sites) > 1
                    else 0.0
                )
                comm_ms = negotiation_cost_ms(
                    matrix, grp.participants, fallback_ms=sync_cost_ms
                )
                if not grp.rebalance:
                    # Paxos Commit decision round (Phase2a/Phase2b over
                    # the acceptor set); 0 for legacy clusters.
                    comm_ms += _quorum_round_ms(matrix, cluster, grp.participants)
                neg_end = t0 + vote_ms + comm_ms + solver
                w = grp.winner
                wait[w] += t0 - finish[w]
                if grp.rebalance:
                    # A won refresh: same barrier rounds, no abort and
                    # no re-run; charged to the triggering commit.
                    vote[w] += vote_ms
                    reb_count[w] += 1
                    reb_ms[w] += comm_ms + solver
                else:
                    vote[w], comm[w], solver_of[w] = vote_ms, comm_ms, solver
                finish[w] = neg_end
                # ...and each loser re-runs once the winner's treaty
                # installs: queueing from the election it really lost.
                # The re-run occupies a core (its CPU must be visible
                # to the saturation model) but does not publish into
                # ``lock_free`` -- those horizons describe arrival-time
                # queueing, and publishing negotiation-scale times
                # into them would make *non-violating* transactions of
                # later windows inherit waits they never pay (the
                # per-transaction path's non-violators never consult
                # negotiation gates either).
                for li in grp.losers:
                    entry = entries[li]
                    rerun_service = rng.expovariate(
                        1.0 / config.local_service_ms
                    ) + (
                        0.0
                        if entry.request.tx_name in free_txns
                        else check_ms
                    )
                    rerun_at = _acquire_core(cores, entry.replica, neg_end)
                    rerun_end = rerun_at + rerun_service
                    _release_core(cores, entry.replica, rerun_end)
                    wait[li] += rerun_at - finish[li]
                    local[li] += rerun_service
                    finish[li] = rerun_end

        for i, (entry, outcome) in enumerate(zip(entries, window.outcomes)):
            if outcome.failed:
                # Origin down, or the conflict group's scope contained
                # a crashed site: the client pays the discovery timeout
                # and retries after recovery.
                end = finish[i] + config.sync_timeout_ms
                result.records.append(
                    TxnRecord(
                        start_ms=entry.ready, end_ms=end, kind="failed",
                        replica=entry.replica, family=entry.request.family,
                        wait_ms=wait[i] + config.sync_timeout_ms,
                        local_ms=local[i], retries=outcome.lost_votes,
                        timed_out=True,
                    )
                )
                result.failed += 1
                result.timeouts += 1
                heapq.heappush(clients, (end, entry.client, entry.replica))
                continue
            kind = "sync" if outcome.synced else "local"
            record = TxnRecord(
                start_ms=entry.ready, end_ms=finish[i], kind=kind,
                replica=entry.replica, family=entry.request.family,
                wait_ms=wait[i], local_ms=local[i], comm_ms=comm[i],
                solver_ms=solver_of[i], vote_ms=vote[i],
                rebalances=reb_count[i], rebalance_ms=reb_ms[i],
                retries=outcome.lost_votes,
                participants=outcome.participants, wave=outcome.wave,
            )
            result.records.append(record)
            result.committed += 1
            if kind == "sync":
                result.negotiations += 1
            result.rebalances += reb_count[i]
            result.aborted_attempts += outcome.lost_votes
            heapq.heappush(clients, (finish[i], entry.client, entry.replica))

    result.measured_to_ms = now
    result.measured_from_ms = min(config.warmup_ms, 0.1 * now)
    _collect_escrow(result, cluster)
    _collect_classifier(result, cluster)
    _collect_fairness(result, cluster)
    return result


def _acquire_core(cores: list[list[float]], replica: int, at: float) -> float:
    free_at = heapq.heappop(cores[replica])
    return max(at, free_at)


def _release_core(cores: list[list[float]], replica: int, at: float) -> None:
    heapq.heappush(cores[replica], at)


def _local_attempt(
    cores: list[list[float]],
    lock_free: dict[tuple, float],
    replica: int,
    at: float,
    service: float,
    keys: list[tuple],
) -> tuple[float, float]:
    """One disconnected execution attempt: take a core, queue behind
    the per-(replica, key) locks, run, release.  Returns (start, end)."""
    start_exec = _acquire_core(cores, replica, at)
    for key in keys:
        start_exec = max(start_exec, lock_free.get(key, 0.0))
    end = start_exec + service
    _release_core(cores, replica, end)
    for key in keys:
        lock_free[key] = end
    return start_exec, end


def _run_protected(
    config: SimConfig,
    cluster: SubmitTarget,
    request: SimRequest,
    replica: int,
    ready: float,
    service: float,
    cores: list[list[float]],
    lock_free: dict[tuple, float],
    sync_cost_ms: float,
    matrix: list[list[float]],
) -> tuple[float, TxnRecord]:
    """Homeostasis / OPT, per-transaction kernels: local execution,
    negotiation on violation.

    Timing model: non-violating transactions never wait for an
    in-flight negotiation -- this matches the measured behaviour and
    the paper's own latency accounting ("4*0.98 + 200*0.02 =
    7.92 ms", Section 6.1), where only the ~2% violating transactions
    pay the two round trips.  Racing violators of one treaty
    serialize on a per-key negotiation gate -- an *approximation* of
    the vote phase for kernels that only expose ``submit``; a
    windowed :class:`~repro.protocol.concurrent.ConcurrentCluster`
    replaces the gates with real lost-vote queueing (see
    ``_simulate_windows``).  Treaties of unrelated objects
    renegotiate independently and in parallel, which is what keeps
    the protocol's aggregate throughput three orders of magnitude
    above 2PC.

    Each negotiation is priced from the participant set the kernel
    reports for it: two barrier rounds at the slowest RTT among the
    sites actually involved (per-edge latency pricing).
    """
    keys = [(replica, k) for k in request.lock_keys]
    start_exec, local_end = _local_attempt(
        cores, lock_free, replica, ready, service, keys
    )

    try:
        outcome = cluster.submit(request.tx_name, request.params)
    except Unavailable:
        # A site this transaction needs is unreachable (its origin
        # crashed, or its violation's closure touches a crashed site).
        # The client pays the discovery timeout and re-enters the
        # closed loop; everyone else's transactions are untouched --
        # the availability contrast with 2PC, where this branch fires
        # for *every* submission during an outage.
        end = local_end + config.sync_timeout_ms
        record = TxnRecord(
            start_ms=ready, end_ms=end, kind="failed", replica=replica,
            family=request.family,
            wait_ms=(start_exec - ready) + config.sync_timeout_ms,
            local_ms=service, timed_out=True,
        )
        return end, record
    if not outcome.synced:
        rebalanced = tuple(getattr(outcome, "rebalanced", ()) or ())
        if not rebalanced:
            record = TxnRecord(
                start_ms=ready, end_ms=local_end, kind="local", replica=replica,
                family=request.family,
                wait_ms=start_exec - ready, local_ms=service,
            )
            return local_end, record
        # The commit breached the adaptive low-watermark and triggered
        # a proactive refresh: two scoped barrier rounds priced from
        # the refresh's participant edges, charged to the triggering
        # transaction and serialized behind the same per-key
        # negotiation gates a cleanup round would use.
        comm = negotiation_cost_ms(matrix, rebalanced, fallback_ms=sync_cost_ms)
        refresh_start = local_end
        for k in request.lock_keys:
            refresh_start = max(refresh_start, lock_free.get(("neg", k), 0.0))
        end = refresh_start + comm
        for k in request.lock_keys:
            lock_free[("neg", k)] = end
        record = TxnRecord(
            start_ms=ready, end_ms=end, kind="local", replica=replica,
            family=request.family,
            wait_ms=(start_exec - ready) + (refresh_start - local_end),
            local_ms=service,
            rebalances=1, rebalance_ms=comm,
        )
        return end, record

    solver = config.solver_ms if config.mode == "homeo" else 0.0
    participants = tuple(getattr(outcome, "participants", ()) or ())
    comm = negotiation_cost_ms(
        matrix, participants, fallback_ms=sync_cost_ms
    ) + _quorum_round_ms(matrix, cluster, participants)
    negotiation_start = local_end
    for k in request.lock_keys:
        negotiation_start = max(negotiation_start, lock_free.get(("neg", k), 0.0))
    end = negotiation_start + comm + solver
    for k in request.lock_keys:
        lock_free[("neg", k)] = end
    record = TxnRecord(
        start_ms=ready, end_ms=end, kind="sync", replica=replica,
        family=request.family,
        wait_ms=(start_exec - ready) + (negotiation_start - local_end),
        local_ms=service,
        comm_ms=comm, solver_ms=solver,
        participants=participants,
    )
    return end, record


def _run_2pc(
    config: SimConfig,
    cluster: SubmitTarget,
    request: SimRequest,
    replica: int,
    ready: float,
    service: float,
    cores: list[list[float]],
    lock_free: dict[tuple, float],
    sync_cost_ms: float,
    rng: random.Random,
) -> tuple[float, TxnRecord]:
    """2PC: cluster-wide item locks held across execution and both
    commit rounds (the paper's model: the per-key hold is
    ``service + 2 RTT``).

    Core accounting: each attempt's CPU (``service``) is charged to a
    server at dispatch, and the core is *released while the
    transaction blocks on item locks* -- identically whether the wait
    ends in a commit or in a ``lock_timeout_ms`` abort (a retry
    re-runs the body, charging the CPU again).  Hot-key contention
    therefore saturates the lock chain, not the server pool.  (The
    seed model pinned a core through the whole lock wait on the
    commit path only -- up to ``lock_timeout_ms`` of phantom CPU per
    waiter -- which overstated CPU pressure exactly where Figures
    16-18 measure the client-count saturation knee.)
    """
    attempt_start = ready
    retries = 0
    while True:
        start_exec = _acquire_core(cores, replica, attempt_start)
        # CPU charged at dispatch; the lock wait costs no server time
        # on either path.
        _release_core(cores, replica, start_exec + service)
        lock_at = start_exec
        for key in request.lock_keys:
            lock_at = max(lock_at, lock_free.get(("2pc", key), 0.0))
        wait = lock_at - start_exec
        if wait > config.lock_timeout_ms:
            # MySQL-style lock wait timeout: abort, retry from scratch.
            abort_at = start_exec + config.lock_timeout_ms
            retries += 1
            if retries > config.max_retries:
                record = TxnRecord(
                    start_ms=ready, end_ms=abort_at, kind="failed",
                    replica=replica, family=request.family, retries=retries,
                )
                return abort_at, record
            attempt_start = abort_at
            continue
        # Execution sits inside the critical section, as in the seed:
        # the lock is held for service + two commit round trips.
        commit_end = lock_at + service + sync_cost_ms
        try:
            cluster.submit(request.tx_name, request.params)
        except Unavailable:
            # 2PC blocks: a cohort is unreachable, so the commit can
            # never finish.  The transaction holds its item locks for
            # the full wait-then-give-up window (propagating the
            # outage onto every waiter of the same keys) and fails.
            fail_end = lock_at + service + config.sync_timeout_ms
            for key in request.lock_keys:
                lock_free[("2pc", key)] = fail_end
            record = TxnRecord(
                start_ms=ready, end_ms=fail_end, kind="failed",
                replica=replica, family=request.family,
                wait_ms=(lock_at - ready) + config.sync_timeout_ms,
                local_ms=service, retries=retries, timed_out=True,
            )
            return fail_end, record
        for key in request.lock_keys:
            lock_free[("2pc", key)] = commit_end
        record = TxnRecord(
            start_ms=ready, end_ms=commit_end, kind="2pc", replica=replica,
            family=request.family,
            wait_ms=(lock_at - ready), local_ms=service,
            comm_ms=sync_cost_ms,
            retries=retries,
        )
        return commit_end, record


def _run_local(
    config: SimConfig,
    cluster: SubmitTarget,
    request: SimRequest,
    replica: int,
    ready: float,
    service: float,
    cores: list[list[float]],
    lock_free: dict[tuple, float],
) -> tuple[float, TxnRecord]:
    """LOCAL: uncoordinated execution at the origin replica."""
    keys = [(replica, k) for k in request.lock_keys]
    start_exec, end = _local_attempt(
        cores, lock_free, replica, ready, service, keys
    )
    cluster.submit(request.tx_name, request.params)
    record = TxnRecord(
        start_ms=ready, end_ms=end, kind="local", replica=replica,
        family=request.family,
        wait_ms=start_exec - ready, local_ms=service,
    )
    return end, record
