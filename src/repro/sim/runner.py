"""The closed-loop discrete-event simulator.

Clients per replica issue transactions back to back (zero think
time), matching the paper's harness.  Each transaction passes through

1. **admission** -- under homeostasis/OPT, new work waits for any
   in-flight treaty negotiation to finish (the cleanup phase quiesces
   the round before the next one starts);
2. **a CPU core** -- each replica has ``cores_per_replica`` servers
   with exponential service times (the Figure 17 saturation model);
3. **item locks** -- same-key transactions serialize; under 2PC the
   lock is held for the full two network round trips, which is what
   collapses throughput on hot items, and waits beyond the
   ``lock_timeout_ms`` floor abort and retry (MySQL's 1 s minimum,
   the Figure 19/21 tails);
4. **the protocol decision** -- delegated to the *real* kernel
   (``HomeostasisCluster`` / baselines), so violations happen exactly
   where the treaty math says they do; the simulator only prices
   them: a violation costs two round trips over the *participant set
   of the negotiation* (state sync + rerun/treaty install; Section
   5.1) plus the solver-time model.  The participant set comes from
   the kernel's transport trace (``ClusterResult.participants``), and
   each round is priced at the slowest RTT edge actually used -- a
   violation between two nearby sites never pays the cluster
   diameter.  Kernels that do not report participants fall back to
   the cluster-wide ``2 * max_rtt`` bound.

The clock is float milliseconds.  Determinism: one seeded RNG drives
request generation and service times; the heap breaks ties by client
id.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass, field
from typing import Callable, Protocol

from repro.sim.metrics import SimResult, TxnRecord
from repro.sim.network import max_rtt, negotiation_cost_ms, uniform_rtt_matrix


@dataclass
class SimRequest:
    """What the workload hands the simulator for one client turn."""

    tx_name: str
    params: dict[str, int]
    lock_keys: tuple
    family: str = ""


class SubmitTarget(Protocol):
    """The kernel interface the simulator drives."""

    def submit(self, tx_name: str, params: dict[str, int]): ...


@dataclass
class SimConfig:
    """Simulation knobs; defaults follow Section 6.1's defaults."""

    mode: str  # 'homeo' | 'opt' | '2pc' | 'local'
    num_replicas: int = 2
    clients_per_replica: int = 16
    rtt_ms: float = 100.0
    rtt_matrix: list[list[float]] | None = None
    cores_per_replica: int = 32
    local_service_ms: float = 2.0
    #: per-negotiation solver time (0 for OPT; grows with lookahead L)
    solver_ms: float = 0.0
    lock_timeout_ms: float = 1000.0
    max_retries: int = 5
    duration_ms: float = 60_000.0
    warmup_ms: float = 2_000.0
    max_txns: int = 20_000
    seed: int = 0

    def matrix(self) -> list[list[float]]:
        if self.rtt_matrix is not None:
            return self.rtt_matrix
        return uniform_rtt_matrix(self.num_replicas, self.rtt_ms)


def simulate(
    config: SimConfig,
    cluster: SubmitTarget,
    request_fn: Callable[[random.Random, int], SimRequest],
) -> SimResult:
    """Run one closed-loop simulation to ``max_txns`` or ``duration_ms``."""
    rng = random.Random(config.seed)
    matrix = config.matrix()
    # Cluster-wide bound: the price of a round involving every site
    # (2PC's ROWA cohort always does; scoped negotiations price their
    # own participant edges and only degrade to this worst case).
    sync_cost_ms = 2.0 * max_rtt(matrix)

    result = SimResult(
        mode=config.mode,
        measured_from_ms=config.warmup_ms,
        num_replicas=config.num_replicas,
    )

    # Client heap: (ready_time, client_id, replica).
    clients: list[tuple[float, int, int]] = []
    cid = 0
    for replica in range(config.num_replicas):
        for _ in range(config.clients_per_replica):
            # Small jitter avoids a lockstep start.
            clients.append((rng.uniform(0.0, 1.0), cid, replica))
            cid += 1
    heapq.heapify(clients)

    # Resources.
    cores: list[list[float]] = [
        [0.0] * config.cores_per_replica for _ in range(config.num_replicas)
    ]
    for pool in cores:
        heapq.heapify(pool)
    #: per (replica, key) lock-free time under homeo/opt/local;
    #: per key (cluster-wide) under 2PC.
    lock_free: dict[tuple, float] = {}
    now = 0.0

    while clients and result.committed < config.max_txns and now < config.duration_ms:
        ready, client, replica = heapq.heappop(clients)
        now = ready
        request = request_fn(rng, replica)
        service = rng.expovariate(1.0 / config.local_service_ms)

        if config.mode in ("homeo", "opt"):
            end, record = _run_protected(
                config, cluster, request, replica, ready, service,
                cores, lock_free, sync_cost_ms, matrix,
            )
        elif config.mode == "2pc":
            end, record = _run_2pc(
                config, cluster, request, replica, ready, service,
                cores, lock_free, sync_cost_ms, rng,
            )
        elif config.mode == "local":
            end, record = _run_local(
                config, cluster, request, replica, ready, service, cores, lock_free
            )
        else:
            raise ValueError(f"unknown mode {config.mode!r}")

        result.records.append(record)
        if record.kind != "failed":
            result.committed += 1
            if record.kind == "sync":
                result.negotiations += 1
        else:
            result.failed += 1
        result.aborted_attempts += record.retries
        heapq.heappush(clients, (end, client, replica))

    result.measured_to_ms = now
    # Transaction-count-bounded runs can finish before the nominal
    # warmup window; keep the warmup at 10% of the run in that case.
    result.measured_from_ms = min(config.warmup_ms, 0.1 * now)
    return result


def _acquire_core(cores: list[list[float]], replica: int, at: float) -> float:
    free_at = heapq.heappop(cores[replica])
    return max(at, free_at)


def _release_core(cores: list[list[float]], replica: int, at: float) -> None:
    heapq.heappush(cores[replica], at)


def _run_protected(
    config: SimConfig,
    cluster: SubmitTarget,
    request: SimRequest,
    replica: int,
    ready: float,
    service: float,
    cores: list[list[float]],
    lock_free: dict[tuple, float],
    sync_cost_ms: float,
    matrix: list[list[float]],
) -> tuple[float, TxnRecord]:
    """Homeostasis / OPT: local execution, negotiation on violation.

    Timing model: non-violating transactions never wait for an
    in-flight negotiation -- this matches the measured behaviour and
    the paper's own latency accounting ("4*0.98 + 200*0.02 =
    7.92 ms", Section 6.1), where only the ~2% violating transactions
    pay the two round trips.  Negotiations over *the same objects*
    serialize (racing violators of one treaty are losers that re-run,
    appearing here as queueing on the per-key negotiation gate);
    treaties of unrelated objects renegotiate independently and in
    parallel, which is what keeps the protocol's aggregate throughput
    three orders of magnitude above 2PC.

    Each negotiation is priced from the participant set the kernel
    reports for it: two barrier rounds at the slowest RTT among the
    sites actually involved (per-edge latency pricing).
    """
    start_exec = _acquire_core(cores, replica, ready)
    keys = [(replica, k) for k in request.lock_keys]
    for key in keys:
        start_exec = max(start_exec, lock_free.get(key, 0.0))
    local_end = start_exec + service
    _release_core(cores, replica, local_end)
    for key in keys:
        lock_free[key] = local_end

    outcome = cluster.submit(request.tx_name, request.params)
    if not outcome.synced:
        record = TxnRecord(
            start_ms=ready, end_ms=local_end, kind="local", replica=replica,
            family=request.family,
            wait_ms=start_exec - ready, local_ms=service,
        )
        return local_end, record

    solver = config.solver_ms if config.mode == "homeo" else 0.0
    participants = tuple(getattr(outcome, "participants", ()) or ())
    comm = negotiation_cost_ms(matrix, participants, fallback_ms=sync_cost_ms)
    negotiation_start = local_end
    for k in request.lock_keys:
        negotiation_start = max(negotiation_start, lock_free.get(("neg", k), 0.0))
    end = negotiation_start + comm + solver
    for k in request.lock_keys:
        lock_free[("neg", k)] = end
    record = TxnRecord(
        start_ms=ready, end_ms=end, kind="sync", replica=replica,
        family=request.family,
        wait_ms=(start_exec - ready) + (negotiation_start - local_end),
        local_ms=service,
        comm_ms=comm, solver_ms=solver,
        participants=participants,
    )
    return end, record


def _run_2pc(
    config: SimConfig,
    cluster: SubmitTarget,
    request: SimRequest,
    replica: int,
    ready: float,
    service: float,
    cores: list[list[float]],
    lock_free: dict[tuple, float],
    sync_cost_ms: float,
    rng: random.Random,
) -> tuple[float, TxnRecord]:
    """2PC: cluster-wide item locks held across both commit rounds."""
    attempt_start = ready
    retries = 0
    while True:
        start_exec = _acquire_core(cores, replica, attempt_start)
        lock_at = start_exec
        for key in request.lock_keys:
            lock_at = max(lock_at, lock_free.get(("2pc", key), 0.0))
        wait = lock_at - start_exec
        if wait > config.lock_timeout_ms:
            # MySQL-style lock wait timeout: abort, release the core,
            # retry from scratch.
            abort_at = start_exec + config.lock_timeout_ms
            _release_core(cores, replica, start_exec + 0.1)
            retries += 1
            if retries > config.max_retries:
                record = TxnRecord(
                    start_ms=ready, end_ms=abort_at, kind="failed",
                    replica=replica, family=request.family, retries=retries,
                )
                return abort_at, record
            attempt_start = abort_at
            continue
        commit_end = lock_at + service + sync_cost_ms
        _release_core(cores, replica, lock_at + service)
        for key in request.lock_keys:
            lock_free[("2pc", key)] = commit_end
        cluster.submit(request.tx_name, request.params)
        record = TxnRecord(
            start_ms=ready, end_ms=commit_end, kind="2pc", replica=replica,
            family=request.family,
            wait_ms=(lock_at - ready), local_ms=service, comm_ms=sync_cost_ms,
            retries=retries,
        )
        return commit_end, record


def _run_local(
    config: SimConfig,
    cluster: SubmitTarget,
    request: SimRequest,
    replica: int,
    ready: float,
    service: float,
    cores: list[list[float]],
    lock_free: dict[tuple, float],
) -> tuple[float, TxnRecord]:
    """LOCAL: uncoordinated execution at the origin replica."""
    start_exec = _acquire_core(cores, replica, ready)
    keys = [(replica, k) for k in request.lock_keys]
    for key in keys:
        start_exec = max(start_exec, lock_free.get(key, 0.0))
    end = start_exec + service
    _release_core(cores, replica, end)
    for key in keys:
        lock_free[key] = end
    cluster.submit(request.tx_name, request.params)
    record = TxnRecord(
        start_ms=ready, end_ms=end, kind="local", replica=replica,
        family=request.family,
        wait_ms=start_exec - ready, local_ms=service,
    )
    return end, record
