"""From-scratch arithmetic decision procedures (the paper used Z3).

The treaty machinery needs three capabilities, all over conjunctions
of linear integer constraints:

1. *feasibility / optimization* -- :mod:`repro.solver.simplex`
   (exact rational simplex) and :mod:`repro.solver.ilp`
   (branch-and-bound integer programming on top of it);
2. *unsat cores* -- :mod:`repro.solver.cores` (deletion-based
   minimization over the feasibility oracle);
3. *partial MaxSAT* -- :mod:`repro.solver.maxsat` implements the
   Fu-Malik algorithm cited in Section 5.2, with big-M relaxation of
   soft linear constraints, plus :mod:`repro.solver.fastmaxsat`, a
   specialized exact solver for the budget-allocation structure that
   treaty instances exhibit (used by default in the benchmarks; the
   two are cross-checked in the ablation suite).
"""

from repro.solver.simplex import LPResult, SolverError, lp_solve
from repro.solver.ilp import ILPResult, ilp_feasible, ilp_optimize
from repro.solver.cores import is_feasible, minimal_unsat_core
from repro.solver.maxsat import MaxSatResult, fu_malik_maxsat
from repro.solver.fastmaxsat import BudgetInstance, solve_budget_allocation

__all__ = [
    "BudgetInstance",
    "ILPResult",
    "LPResult",
    "MaxSatResult",
    "SolverError",
    "fu_malik_maxsat",
    "ilp_feasible",
    "ilp_optimize",
    "is_feasible",
    "lp_solve",
    "minimal_unsat_core",
    "solve_budget_allocation",
]
