"""Feasibility oracle and deletion-based unsat cores.

The Fu-Malik MaxSAT loop (see :mod:`repro.solver.maxsat`) repeatedly
asks for an unsatisfiable core of the soft constraints relative to the
hard ones.  A *core* is a subset of the soft constraints that is
jointly infeasible with the hard constraints; deletion-based
minimization shrinks it to a minimal one (every proper subset is
feasible) with a linear number of oracle calls.
"""

from __future__ import annotations

from typing import Sequence

from repro.logic.linear import LinearConstraint
from repro.solver.ilp import ilp_feasible


def is_feasible(constraints: Sequence[LinearConstraint]) -> bool:
    """Integer feasibility of a conjunction of linear constraints."""
    return ilp_feasible(list(constraints)).feasible


def minimal_unsat_core(
    hard: Sequence[LinearConstraint],
    soft: Sequence[LinearConstraint],
) -> list[int] | None:
    """Return indices of a minimal soft core, or None if satisfiable.

    Precondition for a useful answer: ``hard`` alone is feasible.  If
    ``hard + soft`` is feasible, returns ``None``.
    """
    if is_feasible(list(hard) + list(soft)):
        return None
    core = list(range(len(soft)))
    # Deletion-based minimization: drop one member at a time; if the
    # remainder is still unsat, the member is unnecessary.
    i = 0
    while i < len(core):
        trial = core[:i] + core[i + 1 :]
        if is_feasible(list(hard) + [soft[j] for j in trial]):
            i += 1  # needed; keep it
        else:
            core = trial  # redundant; drop and retry at same position
    return core
