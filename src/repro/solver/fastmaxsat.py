"""Exact specialized MaxSAT for treaty budget-allocation instances.

Treaty optimization (Algorithm 1, Appendix C.2) produces instances
with a very specific shape, one per global-treaty clause:

- one configuration variable ``c_k`` per site ``k``;
- a single hard constraint ``sum_k c_k >= C`` (the H1 requirement
  derived in Theorem 4.3's proof: local clauses imply the global
  clause iff the configuration variables absorb ``(K-1) * n``);
- a hard per-variable cap ``c_k <= cap_k`` (the H2 requirement: the
  local treaty must hold on the current database, i.e.
  ``c_k <= n - local_sum_k(D)``);
- soft constraints that are all *upper bounds* ``c_k <= u`` -- one per
  sampled future database state, obtained by plugging the state's
  local sums into the site template.

Maximizing the number of satisfied soft constraints subject to the
hard constraints is a resource-allocation problem solved exactly by a
Pareto-frontier dynamic program over sites: satisfying the ``n``
largest bounds of site ``k`` requires ``c_k <= v_k(n)`` (the n-th
largest bound), and taking ``c_k`` at exactly that value keeps the
sum as large as possible.  Feasibility is guaranteed whenever the
caps alone meet the budget -- which Theorem 4.3 proves for instances
derived from a treaty that holds on the current database.

The general Fu-Malik solver (:mod:`repro.solver.maxsat`) accepts the
same instances; the ablation benchmark cross-checks that both produce
the same optimum, and measures the (large) speed difference.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Sequence

#: Sentinel for "unbounded above" (no H2 cap supplied for the site).
_INF = None


@dataclass
class BudgetInstance:
    """One clause's optimization instance.

    ``required_total`` is C in ``sum_k c_k >= C``; ``soft_upper``
    lists the soft upper bounds per site; ``hard_upper`` the optional
    per-site caps.
    """

    sites: list[Hashable]
    required_total: int
    soft_upper: dict[Hashable, list[int]] = field(default_factory=dict)
    hard_upper: dict[Hashable, int] = field(default_factory=dict)
    #: optional slack-distribution weights (e.g. sampled per-site demand)
    slack_weights: dict[Hashable, int] = field(default_factory=dict)

    def num_soft(self) -> int:
        return sum(len(v) for v in self.soft_upper.values())


@dataclass
class BudgetSolution:
    assignment: dict[Hashable, int]
    satisfied: int


class InfeasibleBudget(Exception):
    """Raised when the hard caps cannot meet the required total."""


def _site_frontier(
    bounds: list[int], cap: int | None
) -> list[tuple[int, int | None]]:
    """Pareto choices ``(satisfied_count, value)`` for one site.

    ``value`` is the variable's assignment achieving ``count``
    satisfied bounds with the largest possible value; ``None`` means
    unbounded (no cap and the site abstains).
    """
    # The maximal usable value is the cap (or unbounded).  Candidates
    # are the soft bounds clipped to the cap, plus the cap itself.
    candidates: set[int] = set()
    for u in bounds:
        candidates.add(u if cap is _INF else min(u, cap))
    frontier: list[tuple[int, int | None]] = []
    top_count = (
        0 if cap is _INF else sum(1 for u in bounds if u >= cap)
    )
    frontier.append((top_count, cap))
    for v in sorted(candidates, reverse=True):
        if cap is not _INF and v >= cap:
            continue  # already covered by the cap entry
        count = sum(1 for u in bounds if u >= v)
        frontier.append((count, v))
    return frontier


def solve_budget_allocation(instance: BudgetInstance) -> BudgetSolution:
    """Exactly maximize satisfied soft bounds subject to the budget."""
    sites = list(instance.sites)
    frontiers = [
        _site_frontier(
            instance.soft_upper.get(s, []), instance.hard_upper.get(s, _INF)
        )
        for s in sites
    ]

    # DP states: count -> (best_total, picks); total None = unbounded.
    best: dict[int, tuple[int | None, list[int | None]]] = {0: (0, [])}
    for frontier in frontiers:
        nxt: dict[int, tuple[int | None, list[int | None]]] = {}
        for count, (total, picks) in best.items():
            for add_count, value in frontier:
                new_count = count + add_count
                if total is _INF or value is _INF:
                    new_total: int | None = _INF
                else:
                    new_total = total + value
                incumbent = nxt.get(new_count)
                if incumbent is None or _total_gt(new_total, incumbent[0]):
                    nxt[new_count] = (new_total, picks + [value])
        best = nxt

    feasible = [
        (count, total, picks)
        for count, (total, picks) in best.items()
        if total is _INF or total >= instance.required_total
    ]
    if not feasible:
        raise InfeasibleBudget(
            f"caps cannot reach the required total {instance.required_total}"
        )
    count, total, picks = max(feasible, key=lambda t: t[0])

    assignment: dict[Hashable, int] = {}
    finite_sum = sum(v for v in picks if v is not _INF)
    absorbers = [s for s, v in zip(sites, picks) if v is _INF]
    for site, value in zip(sites, picks):
        if value is not _INF:
            assignment[site] = value
    if absorbers:
        residual = instance.required_total - finite_sum
        assignment[absorbers[0]] = max(residual, 0)
        for site in absorbers[1:]:
            assignment[site] = 0

    # Distribute leftover budget slack by *lowering* assignments.
    # Lowering a variable can never unsatisfy an upper-bound soft
    # constraint, and in treaty terms a lower configuration value
    # means more local headroom beyond the sampled horizon.  The
    # distribution follows ``slack_weights`` (sampled per-site demand)
    # when provided -- the tie-break that makes skewed workloads get
    # skewed headroom -- and is equal otherwise, which makes uniform
    # workloads converge to the equal-split optimum.
    slack = sum(assignment.values()) - instance.required_total
    if slack > 0:
        weights = [max(instance.slack_weights.get(s, 0), 0) for s in sites]
        if sum(weights) == 0:
            weights = [1] * len(sites)
        total_weight = sum(weights)
        given = 0
        for site, weight in zip(sites, weights):
            share = slack * weight // total_weight
            assignment[site] -= share
            given += share
        # Round-off remainder goes to the heaviest site.
        if given < slack:
            heaviest = max(zip(sites, weights), key=lambda sw: sw[1])[0]
            assignment[heaviest] -= slack - given

    # Report the count actually achieved (abstaining sites may satisfy
    # some bounds incidentally; slack lowering may satisfy more).
    achieved = 0
    for site in sites:
        for u in instance.soft_upper.get(site, []):
            if assignment[site] <= u:
                achieved += 1
    return BudgetSolution(assignment=assignment, satisfied=achieved)


def _total_gt(a: int | None, b: int | None) -> bool:
    """Compare totals where None means +infinity."""
    if a is _INF:
        return b is not _INF
    if b is _INF:
        return False
    return a > b


def brute_force_budget(
    instance: BudgetInstance, candidate_extra: Sequence[int] = (0,)
) -> BudgetSolution:
    """Reference exhaustive solver for tiny instances (tests only)."""
    import itertools

    sites = list(instance.sites)
    candidates: list[list[int]] = []
    big = (
        abs(instance.required_total)
        + sum(abs(u) for us in instance.soft_upper.values() for u in us)
        + max((abs(c) for c in candidate_extra), default=0)
        + 1
    )
    for s in sites:
        cands = set(instance.soft_upper.get(s, [])) | set(candidate_extra) | {big}
        cap = instance.hard_upper.get(s, _INF)
        if cap is not _INF:
            cands = {min(c, cap) for c in cands} | {cap}
        candidates.append(sorted(cands))
    best: BudgetSolution | None = None
    for combo in itertools.product(*candidates):
        if sum(combo) < instance.required_total:
            continue
        assignment = dict(zip(sites, combo))
        satisfied = sum(
            1
            for s in sites
            for u in instance.soft_upper.get(s, [])
            if assignment[s] <= u
        )
        if best is None or satisfied > best.satisfied:
            best = BudgetSolution(assignment=assignment, satisfied=satisfied)
    if best is None:
        raise InfeasibleBudget("no candidate combination meets the budget")
    return best
