"""Branch-and-bound integer programming over the exact simplex.

Provides integer feasibility and optimization for conjunctions of
:class:`repro.logic.linear.LinearConstraint`.  The LP relaxation is
solved exactly (rational simplex), then a variable with a fractional
value is branched on (``v <= floor`` / ``v >= ceil``).  Since all
treaty instances are bounded in practice, a node limit guards against
pathological unbounded-relaxation inputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Hashable, Sequence

from repro.logic.linear import LinearConstraint, LinearExpr
from repro.solver.simplex import SolverError, lp_solve

DEFAULT_NODE_LIMIT = 20_000


@dataclass
class ILPResult:
    """Outcome of an integer solve."""

    status: str  # 'optimal' | 'infeasible' | 'unbounded' | 'node-limit'
    assignment: dict[Hashable, int]
    value: int = 0

    @property
    def feasible(self) -> bool:
        return self.status == "optimal"


def _branch_constraints(var: Hashable, value: Fraction) -> tuple[LinearConstraint, LinearConstraint]:
    floor = value.numerator // value.denominator
    left = LinearConstraint.make(LinearExpr.variable(var), "<=", floor)
    right = LinearConstraint.make(LinearExpr.variable(var).scaled(-1), "<=", -(floor + 1))
    return left, right


def _fractional_var(assignment: dict[Hashable, Fraction]) -> tuple[Hashable, Fraction] | None:
    for var in sorted(assignment, key=repr):
        value = assignment[var]
        if value.denominator != 1:
            return var, value
    return None


def ilp_feasible(
    constraints: Sequence[LinearConstraint],
    node_limit: int = DEFAULT_NODE_LIMIT,
) -> ILPResult:
    """Find any integer assignment satisfying the constraints."""
    stack: list[list[LinearConstraint]] = [list(constraints)]
    nodes = 0
    while stack:
        nodes += 1
        if nodes > node_limit:
            raise SolverError(f"ILP feasibility exceeded {node_limit} nodes")
        current = stack.pop()
        relax = lp_solve(current)
        if relax.status == "infeasible":
            continue
        fractional = _fractional_var(relax.assignment)
        if fractional is None:
            assignment = {v: int(x) for v, x in relax.assignment.items()}
            return ILPResult("optimal", assignment)
        var, value = fractional
        left, right = _branch_constraints(var, value)
        stack.append(current + [right])
        stack.append(current + [left])
    return ILPResult("infeasible", {})


def ilp_optimize(
    constraints: Sequence[LinearConstraint],
    objective: LinearExpr,
    maximize: bool = False,
    node_limit: int = DEFAULT_NODE_LIMIT,
) -> ILPResult:
    """Optimize an integer linear objective by branch and bound."""
    sign = -1 if maximize else 1
    best: ILPResult | None = None
    best_bound: Fraction | None = None  # best integer objective found (signed)
    stack: list[list[LinearConstraint]] = [list(constraints)]
    nodes = 0
    while stack:
        nodes += 1
        if nodes > node_limit:
            raise SolverError(f"ILP optimization exceeded {node_limit} nodes")
        current = stack.pop()
        relax = lp_solve(current, objective, maximize=maximize)
        if relax.status == "infeasible":
            continue
        if relax.status == "unbounded":
            # The relaxation is unbounded; the integer problem may be too.
            # Probe feasibility: if an integer point exists, report unbounded.
            probe = ilp_feasible(current, node_limit=node_limit - nodes)
            if probe.feasible:
                return ILPResult("unbounded", probe.assignment)
            continue
        relax_signed = sign * relax.value
        if best_bound is not None and relax_signed >= best_bound:
            continue  # bound: cannot improve on the incumbent
        fractional = _fractional_var(relax.assignment)
        if fractional is None:
            assignment = {v: int(x) for v, x in relax.assignment.items()}
            value = int(relax.value) if relax.value.denominator == 1 else relax.value
            candidate_signed = sign * Fraction(relax.value)
            if best_bound is None or candidate_signed < best_bound:
                best_bound = candidate_signed
                best = ILPResult("optimal", assignment, int(value))
            continue
        var, value = fractional
        left, right = _branch_constraints(var, value)
        stack.append(current + [right])
        stack.append(current + [left])
    return best if best is not None else ILPResult("infeasible", {})
