"""Fu-Malik partial MaxSAT over linear integer arithmetic.

Section 5.2 of the paper: "For finding optimal treaty configurations,
we use the Fu-Malik Max SAT procedure in the Microsoft Z3 SMT
solver."  This module reimplements that procedure over our own
decision procedure for conjunctions of linear integer constraints.

Fu-Malik (SAT'06), lifted to a theory setting:

    while UNSAT(hard AND soft):
        C <- minimal unsat core of the soft constraints
        for each soft s in C:
            add a fresh blocking variable b_s: replace s by (s OR b_s)
        add the hard cardinality constraint  sum_{s in C} b_s <= 1
        cost <- cost + 1

Disjunction ``s OR b_s`` is encoded with big-M relaxation: a soft
``expr <= bound`` becomes ``expr <= bound + M * b_s`` with
``0 <= b_s <= 1`` integer; soft equalities relax both directions.
``M`` must exceed the largest violation any model can exhibit; treaty
instances are bounded by database magnitudes, so the default is
generous and callers can tighten it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Sequence

from repro.logic.linear import LinearConstraint, LinearExpr
from repro.solver.cores import minimal_unsat_core
from repro.solver.ilp import ilp_feasible

DEFAULT_BIG_M = 10**9


@dataclass(frozen=True)
class _BlockVar:
    """A fresh 0/1 relaxation variable introduced by Fu-Malik."""

    round: int
    index: int

    def __repr__(self) -> str:  # stable ordering key for the simplex
        return f"_b{self.round}_{self.index}"


@dataclass
class MaxSatResult:
    """Outcome of a partial MaxSAT solve.

    ``assignment`` satisfies all hard constraints and all soft
    constraints except ``cost`` of them; ``satisfied`` flags each soft
    constraint.
    """

    assignment: dict[Hashable, int]
    cost: int
    satisfied: list[bool] = field(default_factory=list)

    @property
    def num_satisfied(self) -> int:
        return sum(self.satisfied)


def _relax(soft: LinearConstraint, block: _BlockVar, big_m: int) -> list[LinearConstraint]:
    """Encode ``soft OR block`` with big-M."""
    out: list[LinearConstraint] = []
    block_term = LinearExpr.variable(block, -big_m)
    if soft.op == "<=":
        out.append(LinearConstraint.make(soft.expr + block_term, "<=", soft.bound))
    else:  # equality: relax both directions
        out.append(LinearConstraint.make(soft.expr + block_term, "<=", soft.bound))
        out.append(
            LinearConstraint.make(soft.expr.scaled(-1) + block_term, "<=", -soft.bound)
        )
    return out


def _bounds_01(var: Hashable) -> list[LinearConstraint]:
    expr = LinearExpr.variable(var)
    return [
        LinearConstraint.make(expr, "<=", 1),
        LinearConstraint.make(expr.scaled(-1), "<=", 0),
    ]


def fu_malik_maxsat(
    hard: Sequence[LinearConstraint],
    soft: Sequence[LinearConstraint],
    big_m: int = DEFAULT_BIG_M,
    max_rounds: int | None = None,
) -> MaxSatResult:
    """Maximize the number of satisfied soft constraints.

    Raises ``ValueError`` if the hard constraints alone are infeasible
    (no treaty configuration exists -- Theorem 4.3 guarantees this
    never happens for template-generated instances).
    """
    hard_list = list(hard)
    if not ilp_feasible(hard_list).feasible:
        raise ValueError("hard constraints are infeasible")

    # Working copies of the soft constraints; each may accumulate
    # blocking variables over rounds.
    working: list[list[LinearConstraint]] = [[s] for s in soft]
    extra_hard: list[LinearConstraint] = []
    cost = 0
    rounds = 0
    limit = max_rounds if max_rounds is not None else len(soft) + 1

    while True:
        flattened = [c for group in working for c in group]
        core = minimal_unsat_core(hard_list + extra_hard, flattened)
        if core is None:
            break
        rounds += 1
        if rounds > limit:
            raise RuntimeError("Fu-Malik exceeded round limit; raise big_m?")
        # Map core indices (over flattened) back to soft indices.
        owner: list[int] = []
        for i, group in enumerate(working):
            owner.extend([i] * len(group))
        core_soft = sorted({owner[i] for i in core})
        blocks: list[_BlockVar] = []
        for k, soft_idx in enumerate(core_soft):
            block = _BlockVar(rounds, k)
            blocks.append(block)
            extra_hard.extend(_bounds_01(block))
            # Re-relax the *original* soft constraint with the new block
            # added on top of any previous relaxation of this soft.
            relaxed: list[LinearConstraint] = []
            for con in working[soft_idx]:
                relaxed.extend(_relax(con, block, big_m))
            working[soft_idx] = relaxed
        # At most one of this round's blocking variables may fire.
        card = LinearExpr.make({b: 1 for b in blocks})
        extra_hard.append(LinearConstraint.make(card, "<=", 1))
        cost += 1

    flattened = [c for group in working for c in group]
    solution = ilp_feasible(hard_list + extra_hard + flattened)
    assert solution.feasible, "post-loop model must exist"
    assignment = {
        v: x for v, x in solution.assignment.items() if not isinstance(v, _BlockVar)
    }
    satisfied = [s.satisfied_by(_total(assignment, s)) for s in soft]
    return MaxSatResult(assignment=assignment, cost=cost, satisfied=satisfied)


def _total(assignment: dict[Hashable, int], con: LinearConstraint) -> dict[Hashable, int]:
    """Assignment defaulting missing variables to 0 for evaluation."""
    return {v: assignment.get(v, 0) for v in con.variables()}
