"""Exact two-phase simplex over rationals.

A dense tableau implementation using :class:`fractions.Fraction`
arithmetic (no floating point, hence no numerical tolerance issues)
with Bland's anti-cycling rule.  Problem sizes in this system are tiny
-- a treaty clause contributes one constraint and one configuration
variable per site -- so clarity wins over sparse-matrix engineering.

Free (sign-unrestricted) variables are split as ``x = x+ - x-`` with
``x+, x- >= 0``; inequalities get slack variables; phase one drives
artificial variables out of the basis.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Hashable, Sequence

from repro.logic.linear import LinearConstraint, LinearExpr


class SolverError(Exception):
    """Raised on malformed solver input or resource exhaustion."""


@dataclass
class LPResult:
    """Outcome of an LP solve.

    ``status`` is ``"optimal"``, ``"infeasible"`` or ``"unbounded"``.
    For optimal solves, ``assignment`` maps every variable to a
    rational value and ``value`` is the objective value (0 for pure
    feasibility problems).
    """

    status: str
    assignment: dict[Hashable, Fraction]
    value: Fraction

    @property
    def feasible(self) -> bool:
        return self.status == "optimal"


class _Tableau:
    """Dense simplex tableau with Bland's rule."""

    def __init__(self, rows: list[list[Fraction]], basis: list[int]) -> None:
        # Each row: [a_0 ... a_{n-1} | b];  objective occupies self.obj.
        self.rows = rows
        self.basis = basis
        self.obj: list[Fraction] = []

    def pivot(self, row: int, col: int) -> None:
        pivot_val = self.rows[row][col]
        self.rows[row] = [v / pivot_val for v in self.rows[row]]
        for r in range(len(self.rows)):
            if r != row and self.rows[r][col] != 0:
                factor = self.rows[r][col]
                self.rows[r] = [
                    a - factor * b for a, b in zip(self.rows[r], self.rows[row])
                ]
        if self.obj and self.obj[col] != 0:
            factor = self.obj[col]
            self.obj = [a - factor * b for a, b in zip(self.obj, self.rows[row])]
        self.basis[row] = col

    def optimize(self, allowed_cols: int) -> str:
        """Minimize the objective row; returns 'optimal' or 'unbounded'.

        ``allowed_cols`` restricts entering columns (used to exclude
        artificial variables during phase two).
        """
        max_iters = 50_000
        for _ in range(max_iters):
            entering = -1
            for col in range(allowed_cols):
                if self.obj[col] < 0:  # Bland: first improving column
                    entering = col
                    break
            if entering < 0:
                return "optimal"
            leaving = -1
            best_ratio: Fraction | None = None
            for r, row in enumerate(self.rows):
                if row[entering] > 0:
                    ratio = row[-1] / row[entering]
                    if (
                        best_ratio is None
                        or ratio < best_ratio
                        or (ratio == best_ratio and self.basis[r] < self.basis[leaving])
                    ):
                        best_ratio = ratio
                        leaving = r
            if leaving < 0:
                return "unbounded"
            self.pivot(leaving, entering)
        raise SolverError("simplex exceeded iteration limit")


def lp_solve(
    constraints: Sequence[LinearConstraint],
    objective: LinearExpr | None = None,
    maximize: bool = False,
) -> LPResult:
    """Solve ``min/max objective s.t. constraints`` over the rationals.

    All variables are free (unrestricted in sign).  With no objective
    this is a pure feasibility check.
    """
    variables: list[Hashable] = []
    seen: set[Hashable] = set()
    for con in constraints:
        for v in con.expr.variables():
            if v not in seen:
                seen.add(v)
                variables.append(v)
    if objective is not None:
        for v in objective.variables():
            if v not in seen:
                seen.add(v)
                variables.append(v)
    var_index = {v: i for i, v in enumerate(variables)}
    nfree = len(variables)

    # Column layout: [x+_0, x-_0, ..., x+_{n-1}, x-_{n-1}, slacks..., artificials...]
    nslack = sum(1 for con in constraints if con.op == "<=")
    base_cols = 2 * nfree
    slack_start = base_cols
    art_start = slack_start + nslack
    total_cols = art_start + len(constraints)  # worst case: one artificial per row

    rows: list[list[Fraction]] = []
    basis: list[int] = []
    slack_idx = 0
    art_idx = 0
    zero = Fraction(0)
    one = Fraction(1)

    for con in constraints:
        row = [zero] * (total_cols + 1)
        for v, c in con.expr.coeffs:
            j = var_index[v]
            row[2 * j] += Fraction(c)
            row[2 * j + 1] -= Fraction(c)
        rhs = Fraction(con.bound)
        if con.op == "<=":
            row[slack_start + slack_idx] = one
            slack_col = slack_start + slack_idx
            slack_idx += 1
        else:
            slack_col = -1
        row[-1] = rhs
        if row[-1] < 0:
            row = [-v for v in row]
        # Choose a basic column: the slack if usable, else an artificial.
        if slack_col >= 0 and row[slack_col] == one:
            basis.append(slack_col)
        else:
            col = art_start + art_idx
            art_idx += 1
            row[col] = one
            basis.append(col)
        rows.append(row)

    tableau = _Tableau(rows, basis)

    # Phase one: minimize the sum of artificial variables.
    if art_idx > 0:
        obj = [zero] * (total_cols + 1)
        for col in range(art_start, art_start + art_idx):
            obj[col] = one
        # Express the objective in terms of non-basic variables.
        for r, b in enumerate(tableau.basis):
            if obj[b] != 0:
                factor = obj[b]
                obj = [a - factor * v for a, v in zip(obj, tableau.rows[r])]
        tableau.obj = obj
        status = tableau.optimize(total_cols)
        if status != "optimal" or -tableau.obj[-1] != 0:
            return LPResult("infeasible", {}, zero)
        # Pivot any artificial variables remaining in the basis out.
        for r in range(len(tableau.rows)):
            if tableau.basis[r] >= art_start:
                for col in range(art_start):
                    if tableau.rows[r][col] != 0:
                        tableau.pivot(r, col)
                        break

    # Phase two.
    sign = -1 if maximize else 1
    obj = [zero] * (total_cols + 1)
    if objective is not None:
        for v, c in objective.coeffs:
            j = var_index[v]
            obj[2 * j] += sign * Fraction(c)
            obj[2 * j + 1] -= sign * Fraction(c)
    for r, b in enumerate(tableau.basis):
        if obj[b] != 0:
            factor = obj[b]
            obj = [a - factor * v for a, v in zip(obj, tableau.rows[r])]
    tableau.obj = obj
    status = tableau.optimize(art_start)  # artificials stay non-basic
    if status == "unbounded":
        return LPResult("unbounded", {}, zero)

    values = [zero] * total_cols
    for r, b in enumerate(tableau.basis):
        if b < total_cols:
            values[b] = tableau.rows[r][-1]
    assignment = {
        v: values[2 * i] - values[2 * i + 1] for v, i in var_index.items()
    }
    obj_value = zero
    if objective is not None:
        obj_value = objective.const + sum(
            (Fraction(c) * assignment[v] for v, c in objective.coeffs), zero
        )
    return LPResult("optimal", assignment, obj_value)
