"""Local database substrate (the paper's prototype used MySQL InnoDB).

The homeostasis middleware needs, per site, a local store that can

- execute a stored procedure transactionally (atomic commit/abort),
- guarantee *local* serializability (the protocol's first normal-
  execution invariant, Section 3.3),
- expose current object values for treaty checks and synchronization.

This package provides that substrate:

- :mod:`repro.storage.kvstore` -- object store with finite support
  and 0 defaults (the paper's databases map objects to integers);
- :mod:`repro.storage.locks` -- strict two-phase locking with
  shared/exclusive modes, upgrades, wait queues, wait-for-graph
  deadlock detection and a lock-wait timeout (MySQL's 1 s floor is
  what produces the latency tails in Figures 19/21);
- :mod:`repro.storage.wal` -- per-transaction undo journal;
- :mod:`repro.storage.engine` -- the transactional engine gluing the
  three together;
- :mod:`repro.storage.table` -- a relational veneer (schemas, integer
  primary keys, scans) encoding rows as ``column[pk]`` objects, the
  same encoding the L++ analysis uses for arrays.
"""

from repro.storage.kvstore import KVStore
from repro.storage.locks import (
    DeadlockError,
    LockManager,
    LockMode,
    LockTimeoutError,
    WouldBlock,
)
from repro.storage.wal import UndoLog
from repro.storage.engine import LocalEngine, StorageTxn, TxnAborted
from repro.storage.table import Schema, Table

__all__ = [
    "DeadlockError",
    "KVStore",
    "LocalEngine",
    "LockManager",
    "LockMode",
    "LockTimeoutError",
    "Schema",
    "StorageTxn",
    "Table",
    "TxnAborted",
    "UndoLog",
    "WouldBlock",
]
