"""The per-site transactional engine.

Combines the object store, the strict-2PL lock manager and the undo
journal into the interface the protocol layer needs:

- ``begin() -> StorageTxn`` with ``read`` / ``write`` / ``commit`` /
  ``abort``;
- reads take S locks, writes take X locks (strict 2PL: everything is
  held until commit/abort), so committed local histories are conflict-
  serializable -- satisfying the protocol's first normal-execution
  invariant (Section 3.3);
- ``peek`` / ``poke`` bypass transactions for synchronization-phase
  state exchange (the protocol performs those while the site is
  quiesced);
- an update counter per object supports the cleanup-phase broadcast
  of "every local object updated since the start of the round".
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.storage.kvstore import KVStore
from repro.storage.locks import LockManager, LockMode
from repro.storage.wal import UndoLog


class TxnAborted(Exception):
    """Operations on a finished transaction handle."""


@dataclass
class StorageTxn:
    """A handle on one open transaction."""

    txn_id: int
    engine: "LocalEngine"
    undo: UndoLog = field(default_factory=UndoLog)
    log: list[int] = field(default_factory=list)
    active: bool = True
    #: objects this transaction wrote (for round-level dirty tracking)
    written: set[str] = field(default_factory=set)

    def _check_active(self) -> None:
        if not self.active:
            raise TxnAborted(f"txn {self.txn_id} is finished")

    def read(self, name: str, wait: bool = False) -> int:
        self._check_active()
        self.engine.locks.acquire(self.txn_id, name, LockMode.S, wait=wait)
        return self.engine.store.get(name)

    def write(self, name: str, value: int, wait: bool = False) -> None:
        self._check_active()
        self.engine.locks.acquire(self.txn_id, name, LockMode.X, wait=wait)
        self.undo.record(self.engine.store, name)
        self.engine.store.put(name, value)
        self.written.add(name)

    def emit(self, value: int) -> None:
        self._check_active()
        self.log.append(value)

    def commit(self) -> None:
        self._check_active()
        self.active = False
        self.undo.clear()
        for name in self.written:
            self.engine.dirty_counts[name] = self.engine.dirty_counts.get(name, 0) + 1
        self.engine.locks.release_all(self.txn_id)
        self.engine.committed += 1

    def abort(self) -> None:
        self._check_active()
        self.active = False
        self.undo.rollback(self.engine.store)
        self.engine.locks.release_all(self.txn_id)
        self.engine.aborted += 1


@dataclass
class LocalEngine:
    """One site's storage engine."""

    store: KVStore = field(default_factory=KVStore)
    locks: LockManager = field(default_factory=LockManager)
    #: per-object committed-write counters since the last checkpoint
    dirty_counts: dict[str, int] = field(default_factory=dict)
    #: bumped by every write that bypasses the transactional commit
    #: path (``poke``/``poke_dirty``, cleanup transactions): consumers
    #: holding incremental views of the store -- the escrow headroom
    #: counters -- compare against it and resynchronize when it moves
    epoch: int = 0
    committed: int = 0
    aborted: int = 0
    _ids: "itertools.count[int]" = field(default_factory=itertools.count)

    def begin(self) -> StorageTxn:
        return StorageTxn(txn_id=next(self._ids), engine=self)

    # -- non-transactional access (synchronization phases) ---------------------

    def peek(self, name: str) -> int:
        return self.store.get(name)

    def poke(self, name: str, value: int) -> None:
        self.store.put(name, value)
        self.epoch += 1

    def poke_dirty(self, name: str, value: int) -> None:
        """Non-transactional write that still marks the object dirty.

        Used by post-sync hooks (e.g. delta rebasing) at the object's
        *owner*: under participant-scoped synchronization the rewrite
        must be re-broadcast to sites that sat this round out, so it
        has to survive in the dirty set past the round's checkpoint.
        """
        self.store.put(name, value)
        self.dirty_counts[name] = self.dirty_counts.get(name, 0) + 1
        self.epoch += 1

    def dirty_objects(self) -> set[str]:
        """Objects committed-to since the last checkpoint."""
        return set(self.dirty_counts)

    def checkpoint(self) -> None:
        """Reset dirty tracking (called at round boundaries)."""
        self.dirty_counts.clear()
