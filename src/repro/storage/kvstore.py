"""Object store: a finite-support map from object names to integers.

Matches the paper's formal model (Section 2.1): "a database D is a map
from objects to integers that has finite support."  Objects never
written read as 0.  Writing 0 keeps the entry (the distinction is
invisible to readers but keeps update journals simple).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Mapping


@dataclass
class KVStore:
    """In-memory integer object store."""

    data: dict[str, int] = field(default_factory=dict)

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, int]) -> "KVStore":
        return cls(data=dict(mapping))

    def get(self, name: str) -> int:
        return self.data.get(name, 0)

    def put(self, name: str, value: int) -> None:
        if not isinstance(value, int):
            raise TypeError(f"object values are integers, got {value!r}")
        self.data[name] = value

    def delete(self, name: str) -> None:
        """Reset an object to the default (drop from the support)."""
        self.data.pop(name, None)

    def support(self) -> set[str]:
        return set(self.data)

    def snapshot(self) -> dict[str, int]:
        return dict(self.data)

    def restore(self, snapshot: Mapping[str, int]) -> None:
        self.data = dict(snapshot)

    def apply(self, updates: Mapping[str, int]) -> None:
        for name, value in updates.items():
            self.put(name, value)

    def items(self) -> Iterator[tuple[str, int]]:
        return iter(self.data.items())

    def __len__(self) -> int:
        return len(self.data)

    def __contains__(self, name: str) -> bool:
        return name in self.data

    def __eq__(self, other: object) -> bool:
        """Semantic equality: equal as total maps with 0 defaults."""
        if isinstance(other, KVStore):
            other_data = other.data
        elif isinstance(other, Mapping):
            other_data = dict(other)
        else:
            return NotImplemented
        keys = set(self.data) | set(other_data)
        return all(self.data.get(k, 0) == other_data.get(k, 0) for k in keys)
