"""Strict two-phase locking with deadlock detection.

The homeostasis protocol's first normal-execution invariant requires
each site's interleavings to be (view-)serializable; the paper's
prototype "relies on the concurrency control mechanism of the
transaction processing engine" (MySQL) for this.  This module is that
mechanism for our engine:

- shared (S) and exclusive (X) lock modes per object, with upgrade;
- FIFO wait queues; a requester that cannot be granted immediately is
  enqueued and reported as blocked;
- deadlock detection on the wait-for graph (depth-first cycle search)
  -- the victim is the requester that closed the cycle;
- an optional lock-wait timeout measured in "ticks" supplied by the
  caller, modelling MySQL's ``innodb_lock_wait_timeout`` whose 1 s
  minimum produces the paper's long latency tails (Section 6.2).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class LockMode(enum.Enum):
    S = "S"
    X = "X"

    def compatible(self, other: "LockMode") -> bool:
        return self is LockMode.S and other is LockMode.S


class DeadlockError(Exception):
    """Granting would close a wait-for cycle; the requester is the victim."""

    def __init__(self, victim: int, cycle: list[int]) -> None:
        super().__init__(f"deadlock: txn {victim} in cycle {cycle}")
        self.victim = victim
        self.cycle = cycle


class LockTimeoutError(Exception):
    """A waiter exceeded the lock-wait timeout."""

    def __init__(self, txn: int, name: str) -> None:
        super().__init__(f"txn {txn} timed out waiting for {name!r}")
        self.txn = txn
        self.name = name


class WouldBlock(Exception):
    """Raised in no-wait mode when a lock cannot be granted immediately."""

    def __init__(self, txn: int, name: str, holders: list[int]) -> None:
        super().__init__(f"txn {txn} would block on {name!r} held by {holders}")
        self.txn = txn
        self.name = name
        self.holders = holders


@dataclass
class _LockState:
    holders: dict[int, LockMode] = field(default_factory=dict)
    queue: list[tuple[int, LockMode]] = field(default_factory=list)


@dataclass
class LockManager:
    """Per-site lock table."""

    #: None disables timeouts; otherwise waiters expire after this many ticks.
    wait_timeout: int | None = None
    _locks: dict[str, _LockState] = field(default_factory=dict)
    _held: dict[int, set[str]] = field(default_factory=dict)
    _wait_since: dict[int, int] = field(default_factory=dict)
    _clock: int = 0

    # -- queries ---------------------------------------------------------------

    def holders(self, name: str) -> dict[int, LockMode]:
        return dict(self._locks.get(name, _LockState()).holders)

    def waiting(self, txn: int) -> str | None:
        """The object ``txn`` is currently queued on, if any."""
        for name, state in self._locks.items():
            if any(t == txn for t, _ in state.queue):
                return name
        return None

    def wait_for_graph(self) -> dict[int, set[int]]:
        """Edges waiter -> holder/earlier-waiter blocking it."""
        graph: dict[int, set[int]] = {}
        for state in self._locks.values():
            blockers = set(state.holders)
            for txn, _mode in state.queue:
                edges = {b for b in blockers if b != txn}
                if edges:
                    graph.setdefault(txn, set()).update(edges)
                blockers.add(txn)  # FIFO: later waiters also wait on earlier
        return graph

    def find_cycle_from(self, start: int) -> list[int] | None:
        graph = self.wait_for_graph()
        path: list[int] = []
        on_path: set[int] = set()
        visited: set[int] = set()

        def dfs(node: int) -> list[int] | None:
            if node in on_path:
                return path[path.index(node) :]
            if node in visited:
                return None
            visited.add(node)
            path.append(node)
            on_path.add(node)
            for nxt in graph.get(node, ()):
                found = dfs(nxt)
                if found is not None:
                    return found
            path.pop()
            on_path.remove(node)
            return None

        return dfs(start)

    # -- acquisition --------------------------------------------------------------

    def _can_grant(self, state: _LockState, txn: int, mode: LockMode) -> bool:
        held = state.holders.get(txn)
        if held is LockMode.X or held is mode:
            return True  # reentrant / already stronger
        others = {t: m for t, m in state.holders.items() if t != txn}
        if mode is LockMode.S:
            granted_ok = all(m is LockMode.S for m in others.values())
            # FIFO fairness: an S request must also not jump over queued X.
            queued_x = any(m is LockMode.X for _t, m in state.queue)
            return granted_ok and not queued_x
        return not others

    def acquire(self, txn: int, name: str, mode: LockMode, wait: bool = True) -> bool:
        """Try to take a lock.

        Returns True if granted.  If blocked: in wait mode the request
        is queued (returns False; deadlock raises
        :class:`DeadlockError` immediately); in no-wait mode raises
        :class:`WouldBlock`.
        """
        state = self._locks.setdefault(name, _LockState())
        if self._can_grant(state, txn, mode):
            current = state.holders.get(txn)
            if mode is LockMode.X or current is LockMode.X:
                state.holders[txn] = LockMode.X
            else:
                state.holders[txn] = LockMode.S
            self._held.setdefault(txn, set()).add(name)
            return True
        if not wait:
            raise WouldBlock(txn, name, sorted(state.holders))
        if not any(t == txn for t, _ in state.queue):
            state.queue.append((txn, mode))
            self._wait_since[txn] = self._clock
        cycle = self.find_cycle_from(txn)
        if cycle is not None:
            self._remove_from_queue(txn, name)
            raise DeadlockError(txn, cycle)
        return False

    def _remove_from_queue(self, txn: int, name: str) -> None:
        state = self._locks.get(name)
        if state is not None:
            state.queue = [(t, m) for t, m in state.queue if t != txn]
        self._wait_since.pop(txn, None)

    # -- release --------------------------------------------------------------------

    def release_all(self, txn: int) -> list[int]:
        """Release every lock of ``txn``; return newly unblocked txns."""
        unblocked: list[int] = []
        for name in sorted(self._held.pop(txn, set())):
            state = self._locks.get(name)
            if state is None:
                continue
            state.holders.pop(txn, None)
            unblocked.extend(self._drain_queue(name, state))
            if not state.holders and not state.queue:
                del self._locks[name]
        # The transaction may also be waiting somewhere (abort path).
        waiting_on = self.waiting(txn)
        if waiting_on is not None:
            self._remove_from_queue(txn, waiting_on)
            state = self._locks.get(waiting_on)
            if state is not None:
                unblocked.extend(self._drain_queue(waiting_on, state))
        self._wait_since.pop(txn, None)
        return unblocked

    def _drain_queue(self, name: str, state: _LockState) -> list[int]:
        granted: list[int] = []
        while state.queue:
            txn, mode = state.queue[0]
            others = {t: m for t, m in state.holders.items() if t != txn}
            compatible = (
                not others
                if mode is LockMode.X
                else all(m is LockMode.S for m in others.values())
            )
            if not compatible:
                break
            state.queue.pop(0)
            current = state.holders.get(txn)
            state.holders[txn] = (
                LockMode.X if mode is LockMode.X or current is LockMode.X else mode
            )
            self._held.setdefault(txn, set()).add(name)
            self._wait_since.pop(txn, None)
            granted.append(txn)
        return granted

    # -- time ------------------------------------------------------------------------

    def tick(self, amount: int = 1) -> list[LockTimeoutError]:
        """Advance the lock clock; expire waiters past the timeout."""
        self._clock += amount
        if self.wait_timeout is None:
            return []
        expired: list[LockTimeoutError] = []
        for txn, since in list(self._wait_since.items()):
            if self._clock - since >= self.wait_timeout:
                name = self.waiting(txn)
                if name is not None:
                    self._remove_from_queue(txn, name)
                    expired.append(LockTimeoutError(txn, name))
        return expired
