"""Relational veneer over the object store.

TPC-C needs tables (Section 6.2); the paper's formal model needs only
integer objects.  Appendix A reconciles the two by encoding relations
as bounded arrays of objects, and this module implements that
encoding for the runtime side, mirroring exactly the naming scheme
the analysis uses for L++ arrays:

- column ``c`` of the row with primary key ``(7, 3)`` in table ``t``
  is the object ``t_c[7,3]`` (:func:`repro.logic.terms.ground_name`
  of base ``t_c``);
- row existence is the 0/1 object ``t__exists[7,3]``.

All values are integers, as in the paper's model; TPC-C string fields
(names, addresses) play no role in any transaction's control flow and
are omitted -- only fields the three transactions read or write are
materialized.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Mapping, Sequence

from repro.logic.terms import ground_name
from repro.storage.kvstore import KVStore


class TableError(Exception):
    """Schema violations and missing rows."""


@dataclass(frozen=True)
class Schema:
    """A table schema: name, key arity, and non-key column names."""

    name: str
    key_columns: tuple[str, ...]
    value_columns: tuple[str, ...]

    def column_base(self, column: str) -> str:
        if column not in self.value_columns:
            raise TableError(f"unknown column {column!r} in table {self.name!r}")
        return f"{self.name}_{column}"

    def exists_base(self) -> str:
        return f"{self.name}__exists"


@dataclass
class Table:
    """Accessor for one table over a store (or any get/put callbacks).

    Designed to work both directly on a :class:`KVStore` and through a
    transaction handle, so stored procedures can use the same schema
    objects with locked access.
    """

    schema: Schema
    getobj: Callable[[str], int]
    setobj: Callable[[str, int], None]

    @classmethod
    def over_store(cls, schema: Schema, store: KVStore) -> "Table":
        return cls(schema=schema, getobj=store.get, setobj=store.put)

    # -- helpers -------------------------------------------------------------

    def _key(self, key: Sequence[int]) -> tuple[int, ...]:
        key = tuple(key)
        if len(key) != len(self.schema.key_columns):
            raise TableError(
                f"table {self.schema.name!r} key has arity "
                f"{len(self.schema.key_columns)}, got {key!r}"
            )
        return key

    def column_object(self, column: str, key: Sequence[int]) -> str:
        return ground_name(self.schema.column_base(column), self._key(key))

    def exists_object(self, key: Sequence[int]) -> str:
        return ground_name(self.schema.exists_base(), self._key(key))

    # -- row operations ---------------------------------------------------------

    def exists(self, key: Sequence[int]) -> bool:
        return self.getobj(self.exists_object(key)) != 0

    def insert(self, key: Sequence[int], values: Mapping[str, int]) -> None:
        if self.exists(key):
            raise TableError(f"duplicate key {tuple(key)} in {self.schema.name!r}")
        missing = set(self.schema.value_columns) - set(values)
        if missing:
            raise TableError(f"missing columns {sorted(missing)} on insert")
        for column, value in values.items():
            self.setobj(self.column_object(column, key), value)
        self.setobj(self.exists_object(key), 1)

    def delete(self, key: Sequence[int]) -> None:
        if not self.exists(key):
            raise TableError(f"no row {tuple(key)} in {self.schema.name!r}")
        # Appendix A: deletion marks the slot unused; values become
        # irrelevant placeholders and are zeroed for tidiness.
        for column in self.schema.value_columns:
            self.setobj(self.column_object(column, key), 0)
        self.setobj(self.exists_object(key), 0)

    def get(self, key: Sequence[int], column: str) -> int:
        if not self.exists(key):
            raise TableError(f"no row {tuple(key)} in {self.schema.name!r}")
        return self.getobj(self.column_object(column, key))

    def update(self, key: Sequence[int], column: str, value: int) -> None:
        if not self.exists(key):
            raise TableError(f"no row {tuple(key)} in {self.schema.name!r}")
        self.setobj(self.column_object(column, key), value)

    def read_row(self, key: Sequence[int]) -> dict[str, int]:
        if not self.exists(key):
            raise TableError(f"no row {tuple(key)} in {self.schema.name!r}")
        return {
            column: self.getobj(self.column_object(column, key))
            for column in self.schema.value_columns
        }

    # -- scans -------------------------------------------------------------------

    def scan(self, keys: Iterator[Sequence[int]]) -> Iterator[tuple[tuple[int, ...], dict[str, int]]]:
        """Yield existing rows among the candidate keys.

        Relations are bounded (Appendix A), so the caller supplies the
        candidate key space, exactly like the sequential scan the L
        encoding performs.
        """
        for key in keys:
            key = self._key(key)
            if self.exists(key):
                yield key, self.read_row(key)
