"""Per-transaction undo journal.

Records before-images so aborts restore the store exactly.  Only the
first write of a transaction to each object is journaled (later writes
overwrite the same slot, and the oldest before-image is what rollback
must restore).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.storage.kvstore import KVStore


@dataclass
class UndoLog:
    """Before-images of one transaction's writes, in write order."""

    entries: list[tuple[str, int, bool]] = field(default_factory=list)
    _seen: set[str] = field(default_factory=set)

    def record(self, store: KVStore, name: str) -> None:
        """Journal the current value of ``name`` before overwriting it."""
        if name in self._seen:
            return
        self._seen.add(name)
        self.entries.append((name, store.get(name), name in store))

    def rollback(self, store: KVStore) -> None:
        """Restore all before-images, newest first."""
        for name, value, existed in reversed(self.entries):
            if existed:
                store.put(name, value)
            else:
                store.delete(name)
        self.clear()

    def written_objects(self) -> list[str]:
        return [name for name, _value, _existed in self.entries]

    def clear(self) -> None:
        self.entries.clear()
        self._seen.clear()

    def __len__(self) -> int:
        return len(self.entries)
