"""Write-ahead logging: the undo journal and the treaty WAL.

Two durability mechanisms live here:

- :class:`UndoLog` -- the per-transaction undo journal.  Records
  before-images so aborts restore the store exactly.  Only the first
  write of a transaction to each object is journaled (later writes
  overwrite the same slot, and the oldest before-image is what
  rollback must restore).

- :class:`TreatyWAL` -- the per-site append-only log of **protocol
  metadata**: treaty installs and rebalance requests are logged
  *before* they are acknowledged, so a site that crash-stops after
  acking an install recovers with exactly the treaties its peers
  believe it holds.  The database itself is durable through the
  storage engine; the WAL exists because a local treaty is installed
  by message at negotiation time and lives nowhere else -- losing it
  on crash would silently weaken the global treaty (H1) when the
  site resumed committing against a stale local invariant.

The treaty WAL models an append-only file as a byte buffer of
JSON-lines records.  A record is durable once its terminating newline
is in the buffer; a **torn final record** (crash mid-append: no
newline, or truncated JSON) is detected and dropped on replay, which
is safe precisely because installs are logged before the ack -- a
torn install was never acknowledged, so no peer assumes the site has
it.  Replay is idempotent: it reduces the log to the *last complete*
install, so replaying twice (or appending the same install twice)
converges to the same state.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.storage.kvstore import KVStore

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.treaty.table import LocalTreaty


@dataclass
class UndoLog:
    """Before-images of one transaction's writes, in write order."""

    entries: list[tuple[str, int, bool]] = field(default_factory=list)
    _seen: set[str] = field(default_factory=set)

    def record(self, store: KVStore, name: str) -> None:
        """Journal the current value of ``name`` before overwriting it."""
        if name in self._seen:
            return
        self._seen.add(name)
        self.entries.append((name, store.get(name), name in store))

    def rollback(self, store: KVStore) -> None:
        """Restore all before-images, newest first."""
        for name, value, existed in reversed(self.entries):
            if existed:
                store.put(name, value)
            else:
                store.delete(name)
        self.clear()

    def written_objects(self) -> list[str]:
        return [name for name, _value, _existed in self.entries]

    def clear(self) -> None:
        self.entries.clear()
        self._seen.clear()

    def __len__(self) -> int:
        return len(self.entries)


# -- the treaty write-ahead log ----------------------------------------------------


class WALCorruption(Exception):
    """An *interior* WAL record failed to parse.  Unlike a torn final
    record (an interrupted append, expected under crash-stop), interior
    corruption means the log was damaged after being written and replay
    cannot trust anything past the damage."""


@dataclass
class TreatyWAL:
    """Append-only JSON-lines log of one site's protocol metadata.

    The byte buffer stands in for an fsync'd append-only file: a
    record is durable once its terminating newline is appended, and a
    crash can leave at most one torn record at the tail.  The write
    protocol is **log before ack**: `SiteServer` appends the install
    (or rebalance) record *before* applying it and before the
    transport returns the acknowledgement, so the set of records with
    newlines is always a superset of what any peer believes this site
    has.
    """

    _buf: bytearray = field(default_factory=bytearray)
    #: records appended in this process lifetime (observability)
    appended: int = 0

    def append(self, record: dict) -> None:
        """Durably append one record (the newline is the commit point)."""
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        self._buf.extend(line.encode("utf-8"))
        self._buf.extend(b"\n")
        self.appended += 1

    def size_bytes(self) -> int:
        return len(self._buf)

    def tear(self, nbytes: int) -> None:
        """Simulate a crash mid-append by chopping the final ``nbytes``
        from the buffer (test/fault-injection helper)."""
        if nbytes > 0:
            del self._buf[-nbytes:]

    def records(self) -> list[dict]:
        """Every *complete* record, oldest first.

        A torn final record (no terminating newline, or truncated
        JSON on the last line) is silently dropped: it was never
        acknowledged, so dropping it cannot diverge from any peer's
        view.  A malformed interior record raises
        :class:`WALCorruption`.
        """
        out: list[dict] = []
        lines = bytes(self._buf).split(b"\n")
        # A buffer ending in '\n' splits into [.., b'']; anything else
        # in the final slot is a torn tail (dropped).  Records are
        # single-line JSON, so an unparsable *newline-terminated* line
        # can only mean post-write damage, never an append crash.
        for i, line in enumerate(lines[:-1]):
            try:
                out.append(json.loads(line))
            except ValueError as exc:
                raise WALCorruption(f"record {i} unreadable: {line[:80]!r}") from exc
        return out

    def truncate_torn_tail(self) -> int:
        """Drop a torn final record from the buffer (recovery repair);
        returns the number of bytes removed."""
        idx = bytes(self._buf).rfind(b"\n")
        keep = idx + 1  # 0 when no newline at all: the whole buffer is torn
        removed = len(self._buf) - keep
        if removed:
            del self._buf[keep:]
        return removed

    def last_treaty_install(self) -> dict | None:
        """The most recent complete ``treaty_install`` record (what
        replay reinstalls); None for a fresh or fully-torn log."""
        last = None
        for record in self.records():
            if record.get("kind") == "treaty_install":
                last = record
        return last

    def clear(self) -> None:
        self._buf.clear()


def encode_local_treaty(
    treaty: "LocalTreaty", headroom: dict | None = None, paths: dict | None = None
) -> dict:
    """Serialize a local treaty (and its install-time headroom
    snapshot) into a WAL-storable record body.

    Local-treaty clauses range over ground database objects only
    (``ObjT`` leaves), so ``(object name, coefficient)`` pairs plus
    the normalized ``(op, bound)`` reconstruct each clause exactly.

    The per-clause ``headroom`` grants serve two recovery consumers:
    the adaptive low-watermark restores them verbatim (slack consumed
    before the crash must stay consumed), and the escrow fast path
    rebuilds its counter account from them before resynchronizing the
    live counters against the durable store (post-install consumption
    is derivable from the data, so the recovered counters equal a
    freshly lowered treaty's).

    ``paths`` is the optional per-path check partition built at
    install time (``tx name -> PathCheck tuples``): recovery re-derives
    the partition from the replayed treaty and the catalog, and
    validate mode cross-checks the re-derivation against this record
    -- the clause indices are positional into ``clauses``, which is
    why the partition travels with the treaty rather than separately.
    """
    headroom = headroom or {}
    clauses = []
    grants = []
    for con in treaty.constraints:
        clauses.append(
            {
                "coeffs": [[var.name, coeff] for var, coeff in con.expr.coeffs],
                "op": con.op,
                "bound": con.bound,
            }
        )
        grants.append(headroom.get(con))
    record = {"site": treaty.site, "clauses": clauses, "headroom": grants}
    if paths is not None:
        from repro.analysis.pathsplit import encode_path_checks

        record["paths"] = encode_path_checks(paths)
    return record


def decode_local_treaty(record: dict):
    """Rebuild ``(LocalTreaty, install_headroom)`` from a WAL record.

    The inverse of :func:`encode_local_treaty`; round-trip stability
    holds because stored clauses are already in the normal form
    :meth:`LinearConstraint.make` produces.
    """
    from repro.logic.linear import LinearConstraint, LinearExpr
    from repro.logic.terms import ObjT
    from repro.treaty.table import LocalTreaty

    constraints = []
    headroom: dict = {}
    for clause, grant in zip(record["clauses"], record["headroom"]):
        expr = LinearExpr.make({ObjT(name): coeff for name, coeff in clause["coeffs"]})
        con = LinearConstraint.make(expr, clause["op"], clause["bound"])
        constraints.append(con)
        if grant is not None:
            headroom[con] = grant
    return LocalTreaty(site=record["site"], constraints=constraints), headroom


def decode_recorded_paths(record: dict):
    """The path-check partition recorded with a treaty install, or
    ``None`` for records written before the path dimension existed
    (the codec stays readable across that upgrade)."""
    payload = record.get("paths")
    if payload is None:
        return None
    from repro.analysis.pathsplit import decode_path_checks

    return decode_path_checks(payload)
