"""Treaty generation and enforcement (Section 4, Appendix C).

Pipeline per protocol round:

1. pick the joint-table row psi matching the current database;
2. preprocess psi into a conjunction of linear constraints
   (:func:`repro.logic.linearize.linearize_for_treaty`);
3. split each clause into per-site templates with configuration
   variables (:mod:`repro.treaty.templates`);
4. instantiate the configuration -- the always-valid Theorem 4.3
   default, the demarcation-style equal split, or the Algorithm 1
   workload-optimized assignment (:mod:`repro.treaty.config` /
   :mod:`repro.treaty.optimize`);
5. install the per-site local treaties into the treaty table
   (:mod:`repro.treaty.table`) for cheap per-commit checking.
"""

from repro.treaty.templates import (
    ClauseTemplate,
    ConfigVar,
    TreatyTemplates,
    build_templates,
)
from repro.treaty.config import (
    Configuration,
    check_h1_algebraic,
    check_h1_semantic,
    check_h2,
    default_configuration,
    equal_split_configuration,
    local_treaties,
)
from repro.treaty.optimize import OptimizerStats, WorkloadModel, optimize_configuration
from repro.treaty.table import LocalTreaty, TreatyTable

__all__ = [
    "ClauseTemplate",
    "ConfigVar",
    "Configuration",
    "LocalTreaty",
    "OptimizerStats",
    "TreatyTable",
    "TreatyTemplates",
    "WorkloadModel",
    "build_templates",
    "check_h1_algebraic",
    "check_h1_semantic",
    "check_h2",
    "default_configuration",
    "equal_split_configuration",
    "local_treaties",
    "optimize_configuration",
]
