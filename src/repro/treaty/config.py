"""Treaty configurations: validity checks and closed-form strategies.

A *configuration* assigns an integer to every configuration variable
of the treaty templates.  A configuration is valid iff

- H1: the conjunction of the local treaties implies the global treaty
  for every database, and
- H2: every local treaty holds on the current database D.

Three closed-form strategies are provided:

- :func:`default_configuration` -- the Theorem 4.3 construction,
  which freezes each site's local contribution at its current value.
  Always valid; maximally conservative (any increasing local write
  violates).
- :func:`equal_split_configuration` -- the demarcation-protocol-style
  split used by the paper's OPT baseline (Section 6.1): the global
  slack ``n - psi(D)`` is divided equally among the sites.
- the workload-optimized configuration of Algorithm 1 lives in
  :mod:`repro.treaty.optimize`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

from repro.logic.linear import LinearConstraint, LinearExpr
from repro.solver.ilp import ilp_feasible
from repro.treaty.templates import ConfigVar, TreatyTemplates


@dataclass
class Configuration:
    """An assignment of integers to configuration variables."""

    values: dict[ConfigVar, int] = field(default_factory=dict)
    strategy: str = "custom"

    def value(self, var: ConfigVar) -> int:
        return self.values[var]

    def __getitem__(self, var: ConfigVar) -> int:
        return self.values[var]


def default_configuration(
    templates: TreatyTemplates, getobj: Callable[[str], int]
) -> Configuration:
    """Theorem 4.3: freeze local contributions at their current value.

    - equality clause: ``c_k = sum_{Loc(x) != k} d_j D(x_j)``
    - <= clause:       ``c_k = n - sum_{Loc(x) = k} d_i D(x_i)``
    """
    config = Configuration(strategy="default")
    for clause in templates.clauses:
        local_sums = {s: clause.local_sum_on(s, getobj) for s in clause.sites}
        total = sum(local_sums.values())
        for site in clause.sites:
            var = clause.config_var(site)
            if clause.op == "=":
                config.values[var] = total - local_sums[site]
            else:
                config.values[var] = clause.bound - local_sums[site]
    return config


def equal_split_configuration(
    templates: TreatyTemplates, getobj: Callable[[str], int]
) -> Configuration:
    """Demarcation-style OPT: share each <=-clause's slack equally.

    Site ``k`` receives headroom ``floor(slack / K)`` over its current
    local sum, where ``slack = n - psi(D) >= 0``.  Equality clauses
    fall back to the frozen default (they admit no slack).
    """
    config = Configuration(strategy="equal-split")
    for clause in templates.clauses:
        local_sums = {s: clause.local_sum_on(s, getobj) for s in clause.sites}
        total = sum(local_sums.values())
        if clause.op == "=":
            for site in clause.sites:
                config.values[clause.config_var(site)] = total - local_sums[site]
            continue
        slack = clause.bound - total
        if slack < 0:
            raise ValueError(
                f"clause {clause.index} does not hold on the current database"
            )
        share = slack // len(clause.sites)
        for site in clause.sites:
            config.values[clause.config_var(site)] = (
                clause.bound - local_sums[site] - share
            )
    return config


def local_treaties(
    templates: TreatyTemplates, config: Configuration
) -> dict[int, list[LinearConstraint]]:
    """Instantiate per-site local treaty constraint lists."""
    out: dict[int, list[LinearConstraint]] = {s: [] for s in templates.sites}
    for clause in templates.clauses:
        for site in clause.sites:
            value = config.value(clause.config_var(site))
            out[site].append(clause.local_constraint(site, value))
    return out


def check_h1_algebraic(templates: TreatyTemplates, config: Configuration) -> bool:
    """H1 via the Theorem 4.3 summing argument (sound and complete for
    the per-clause split used here)."""
    for clause in templates.clauses:
        total = sum(config.value(clause.config_var(s)) for s in clause.sites)
        rhs = (len(clause.sites) - 1) * clause.bound
        ok = total == rhs if clause.op == "=" else total >= rhs
        if not ok:
            return False
    return True


def check_h1_semantic(templates: TreatyTemplates, config: Configuration) -> bool:
    """H1 checked semantically with the integer solver.

    For each clause, ask whether *all local clauses hold but the
    global clause fails* is satisfiable; H1 holds iff every such query
    is infeasible.  Used in tests to validate the algebraic shortcut.
    """
    for clause in templates.clauses:
        locals_: list[LinearConstraint] = []
        for site in clause.sites:
            value = config.value(clause.config_var(site))
            locals_.append(clause.local_constraint(site, value))
        total_coeffs: dict = {}
        for site in clause.sites:
            expr = clause.site_exprs.get(site)
            if expr is None:
                continue
            for var, coeff in expr.coeffs:
                total_coeffs[var] = total_coeffs.get(var, 0) + coeff
        total = LinearExpr.make(total_coeffs)
        if clause.op == "<=":
            negations = [
                LinearConstraint.make(total.scaled(-1), "<=", -(clause.bound + 1))
            ]
        else:
            negations = [
                LinearConstraint.make(total.scaled(-1), "<=", -(clause.bound + 1)),
                LinearConstraint.make(total, "<=", clause.bound - 1),
            ]
        # '=' negates to a disjunction: check each disjunct separately.
        for negation in negations:
            if ilp_feasible(locals_ + [negation]).feasible:
                return False
    return True


def check_h2(
    templates: TreatyTemplates,
    config: Configuration,
    getobj: Callable[[str], int],
) -> bool:
    """H2: every local treaty holds on the current database."""
    for clause in templates.clauses:
        for site in clause.sites:
            local_sum = clause.local_sum_on(site, getobj)
            rhs = clause.bound - config.value(clause.config_var(site))
            ok = local_sum <= rhs if clause.op == "<=" else local_sum == rhs
            if not ok:
                return False
    return True


def configuration_from_mapping(
    values: Mapping[ConfigVar, int], strategy: str = "custom"
) -> Configuration:
    return Configuration(values=dict(values), strategy=strategy)
