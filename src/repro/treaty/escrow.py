"""Escrow headroom counters: the O(1) commit-time treaty check.

The paper's dominant local-treaty shape is a conjunction of linear
``<=``-bounds over site-owned counters, plus equality pins on objects
the negotiation froze.  For that shape the compiled closure
(:func:`repro.logic.compile.compile_clauses`) still re-reads every
object of every clause on each commit; this module replaces the
re-evaluation with *decrement-only integer headroom counters* (escrow
semantics): at install time each counter row's slack ``bound -
sum(coeff_i * D(x_i))`` is computed once, and a commit's check becomes
a handful of counter subtractions driven by the transaction's write
deltas.  A violation is exactly "a counter would go negative", at
which point the violated row indices are reported so the caller can
reconstruct the violated-object set for the cleanup/negotiation path.
An equality pin contributes an opposing pair of zero-slack rows
(``e <= b`` and ``-e <= -b``), so the same "negative counter" test
detects a pin breaking in either direction.

**Window-settlement safety argument.**  Settling every clause on every
commit is already cheap, but the account batches further: commits
accumulate per-object deltas in a pending buffer and the per-clause
counters are settled once per window.  The fast path admits a commit
without touching any counter when

    ``window_drain + drain(txn) <= budget``  and  ``commits < cap``

where ``budget`` is the **minimum headroom over all budget rows** at
the last settlement and ``drain(txn) = sum_x |delta_x| *
max_coeff[x]`` over-approximates how much of any single row's headroom
the commit can consume (``max_coeff[x]`` is the largest |coefficient|
of ``x`` across rows).  Because every budget row had at least
``budget`` slack at the last settlement and the admitted window's
total worst-case consumption never exceeds ``budget``, *no budget row
can be negative anywhere inside the window* -- batching never admits a
violation the per-commit path would have caught.  The moment a
commit's conservative drain would overrun the budget (or the window
cap is reached), the pending deltas are settled exactly per row and
that commit is checked on the exact counters; refills (negative
deltas) are charged ``|delta| * max_coeff`` too, which only costs
extra settlements, never soundness.  Note the budget is global (one
``min``), not per object: per-object budgets would let two objects of
one row each spend the row's full headroom independently.

Pin rows are *excluded* from the budget (their slack is zero whenever
the pin holds, so including them would disable the fast path
outright).  That is sound because a pinned object's worst-case
coefficient is :data:`repro.logic.compile.PIN_DRAIN` and, whenever
any pin row is installed, the budget is additionally capped at
``PIN_DRAIN - 1`` -- so any nonzero delta to a pinned object makes
``drain(txn)`` exceed the budget and the commit lands on the exact
settle-and-check path; a fast-path window therefore never moves a pin
row's value at all.  (Without the cap, a pin-only treaty would have
no budget rows and an uncapped "unbounded" budget would fast-admit
pin-breaking writes.)  A pin row that is already negative -- possible
only when a resync recomputed the counters from a state that breaks
the treaty -- drops the budget to ``-1`` so every commit is judged on
the exact counters, keeping the verdict identical to the compiled
oracle even off the protocol's H2 happy path.

The account is deliberately *not* aware of the storage engine: callers
feed it ``{object: delta}`` maps (the site server derives them from
the undo journal's before-images) and resynchronize it from the store
when non-transactional writes move values underneath it (tracked by
``LocalEngine.epoch``).
"""

from __future__ import annotations

from typing import Callable, Iterable, Mapping

from repro.logic.compile import PIN_DRAIN, EscrowProgram
from repro.logic.linear import LinearConstraint

#: default commit-window size: settle the counters at most every this
#: many commits even when budget remains (bounds the pending buffer
#: and keeps the counters observably fresh)
DEFAULT_WINDOW = 256

#: stand-in budget for an account with no clauses (nothing can be
#: violated, so the window guard should always admit)
_UNBOUNDED = 1 << 62


class EscrowDivergence(AssertionError):
    """The escrow fast path and the compiled oracle disagreed on one
    commit's verdict -- a bug in the lowering or the counter state,
    surfaced loudly by validate mode instead of silently weakening (or
    over-enforcing) the treaty."""


class EscrowAccount:
    """Mutable counter state enforcing one installed escrow program.

    The hot path is :meth:`commit`, built as a closure over the
    account's state (cell-variable access keeps the per-commit cost in
    the sub-microsecond range the escrow argument promises).  One
    account exists per treaty install; replacing a treaty means
    building a fresh account from the new install-time slack.
    """

    def __init__(
        self,
        program: EscrowProgram,
        headroom: Iterable[int],
        epoch: int = 0,
        window: int = DEFAULT_WINDOW,
    ) -> None:
        self.program = program
        #: live per-row headroom; exact only after :meth:`settle`
        self.headroom = list(headroom)
        if len(self.headroom) != len(program.rows):
            raise ValueError(
                f"{len(self.headroom)} counters for {len(program.rows)} rows"
            )
        self.window = window
        #: the ``LocalEngine.epoch`` the counters were last derived
        #: from; a mismatch means non-transactional writes moved the
        #: store and the caller must :meth:`resync` before trusting
        #: the counters
        self.synced_epoch = epoch
        self.counters = {
            "fast_commits": 0,
            "settled_commits": 0,
            "settlements": 0,
            "violations": 0,
            "resyncs": 0,
        }
        self._install_hot_path()

    # -- hot path --------------------------------------------------------------

    def _install_hot_path(self) -> None:
        program = self.program
        headroom = self.headroom
        touching = program.touching
        budget_idx = program.budget_rows
        cap = self.window
        counters = self.counters
        pending: dict[str, int] = {}
        drain_acc = 0
        commits = 0
        mc_get = program.max_coeff.get
        p_get = pending.get
        t_get = touching.get
        h_get = headroom.__getitem__
        pin_idx = tuple(
            i for i in range(len(program.rows)) if i not in set(budget_idx)
        )
        # With any pin row installed the budget must sit below
        # PIN_DRAIN, else a huge (or unbounded, for a pin-only treaty)
        # budget would fast-admit pin-breaking deltas.
        pin_cap = PIN_DRAIN - 1 if pin_idx else _UNBOUNDED

        def min_budget() -> int:
            # A pin row already negative means the installed state
            # breaks the treaty (only reachable through an off-H2
            # resync): force the exact path on every commit so the
            # verdict still matches the compiled oracle.
            if pin_idx and min(map(h_get, pin_idx)) < 0:
                return -1
            base = min(map(h_get, budget_idx)) if budget_idx else pin_cap
            return base if base < pin_cap else pin_cap

        budget = min_budget()

        def commit(deltas: Mapping[str, int]):
            """Check-and-apply one commit's write deltas.

            Returns ``None`` on acceptance (the deltas are absorbed
            into the window) or the sorted list of violated row
            indices on rejection (no state change: the treaty check
            failed exactly as ``violations_after_writes`` would have
            reported, and the caller aborts the transaction).
            """
            nonlocal drain_acc, commits, budget
            drain = 0
            for name, d in deltas.items():
                mc = mc_get(name)
                if mc:
                    drain += mc * d if d >= 0 else mc * -d
                    pending[name] = p_get(name, 0) + d
            if drain_acc + drain <= budget and commits < cap:
                drain_acc += drain
                commits += 1
                return None
            # Window exhausted (or a violation is possible): settle the
            # pending deltas -- including this commit's, staged above --
            # exactly per row, then judge this commit on the exact
            # counters.
            for pname, pd in pending.items():
                for idx, coeff in touching[pname]:
                    headroom[idx] -= coeff * pd
            pending.clear()
            counters["fast_commits"] += commits
            counters["settlements"] += 1
            counters["settled_commits"] += 1
            drain_acc = 0
            commits = 0
            # Every *written* object's rows are judged (zero deltas
            # included), matching the clause set
            # ``violations_after_writes`` restricts itself to.
            violated: set[int] | None = None
            for name in deltas:
                for idx, _coeff in t_get(name, ()):
                    if headroom[idx] < 0:
                        if violated is None:
                            violated = set()
                        violated.add(idx)
            if violated is not None:
                # Rejected: back this commit's deltas out again (the
                # prior window's commits were all admitted soundly and
                # stay settled).
                for name, d in deltas.items():
                    if d:
                        for idx, coeff in t_get(name, ()):
                            headroom[idx] += coeff * d
                counters["violations"] += 1
            budget = min_budget()
            return sorted(violated) if violated is not None else None

        def flush() -> None:
            """Settle all pending deltas; exact counters afterwards."""
            nonlocal drain_acc, commits, budget
            for pname, pd in pending.items():
                for idx, coeff in touching[pname]:
                    headroom[idx] -= coeff * pd
            pending.clear()
            counters["fast_commits"] += commits
            drain_acc = 0
            commits = 0
            budget = min_budget()

        def discard_window() -> None:
            """Drop pending deltas without applying them (the caller
            just recomputed the counters from the store, which already
            reflects every committed write)."""
            nonlocal drain_acc, commits, budget
            pending.clear()
            counters["fast_commits"] += commits
            drain_acc = 0
            commits = 0
            budget = min_budget()

        def window_state() -> dict:
            return {
                "pending": dict(pending),
                "drain": drain_acc,
                "commits": commits,
                "budget": budget,
            }

        self.commit = commit
        self._flush = flush
        self._discard_window = discard_window
        self.window_state = window_state

    # -- maintenance -----------------------------------------------------------

    def settle(self) -> None:
        """Force a settlement so :attr:`headroom` is exact (tests,
        snapshots, and the pre-read path of anything that wants the
        true per-clause slack)."""
        self._flush()

    def resync(self, getobj: Callable[[str], int], epoch: int | None = None) -> None:
        """Recompute every counter from the store.

        Required after non-transactional writes (sync broadcasts,
        post-sync hooks, cleanup transactions, recovery): the counters
        are an incremental view of clause slack, and any write that
        bypassed :meth:`commit` invalidates that view.  Pending window
        deltas are discarded -- the store already reflects them.
        """
        headroom = self.headroom
        for idx, row in enumerate(self.program.rows):
            total = 0
            for var, coeff in row.expr.coeffs:
                total += coeff * getobj(var.name)
            headroom[idx] = row.bound - total
        self._discard_window()
        self.counters["resyncs"] += 1
        if epoch is not None:
            self.synced_epoch = epoch

    # -- inspection ------------------------------------------------------------

    def violated_objects(self, indices: Iterable[int]) -> frozenset[str]:
        """Objects of the violated clauses (what the cleanup phase's
        participant computation is seeded with)."""
        out: set[str] = set()
        clause_objects = self.program.clause_objects
        for idx in indices:
            out.update(clause_objects[idx])
        return frozenset(out)

    def headroom_map(self) -> dict[LinearConstraint, int]:
        """Exact per-row headroom, keyed by row constraint (settles
        first).  ``<=`` clauses key their own constraint; an equality
        pin appears as its two derived ``<=`` rows."""
        self.settle()
        return dict(zip(self.program.rows, self.headroom))

    def stats(self) -> dict[str, int]:
        """Cumulative counters, including the still-open window's
        commits (reported as fast commits: they were admitted without
        touching a counter)."""
        out = dict(self.counters)
        out["fast_commits"] += self.window_state()["commits"]
        return out
