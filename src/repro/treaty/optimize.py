"""Algorithm 1 (Appendix C.2): workload-optimized treaty configurations.

Given the local treaty templates, a workload model and two tunable
parameters -- the lookahead interval ``L`` and the cost factor ``f``
-- the optimizer:

1. emits the hard constraints theta_h (locals imply the global
   treaty, one linear constraint over configuration variables per
   clause);
2. samples ``f`` future executions of ``L`` transactions each from
   the workload model and replays them on a scratch copy of the
   current database, recording after every transaction the soft
   constraint "the local treaties hold on this state" -- which,
   plugging the state's local sums into the templates, is an upper
   bound on each clause's configuration variables (simplified to the
   tightest bound per variable per execution, exactly as in the
   worked example of Appendix C.2);
3. hands hard + soft constraints to a MaxSAT engine: either the
   faithful Fu-Malik procedure over our LIA solver, or the exact
   specialized budget solver (default -- orders of magnitude faster,
   same optima; see ``benchmarks/bench_ablation_maxsat.py``).

Equality clauses admit no optimization freedom under the per-clause
split (their configuration variables are pinned by the H1 equality),
so they take the Theorem 4.3 default.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Mapping, Protocol, Sequence

from repro.lang.ast import Transaction
from repro.lang.interp import evaluate
from repro.logic.linear import LinearConstraint, LinearExpr
from repro.solver.fastmaxsat import BudgetInstance, solve_budget_allocation
from repro.solver.maxsat import fu_malik_maxsat
from repro.treaty.config import Configuration, default_configuration
from repro.treaty.templates import ConfigVar, TreatyTemplates


class WorkloadModel(Protocol):
    """A generative model of the expected future workload.

    The paper leaves the model's provenance open ("generated
    dynamically by gathering workload data as the system runs, or in
    other ways"); the optimizer only needs :meth:`sample`.
    """

    def sample(self, rng: random.Random, length: int) -> list[tuple[str, dict[str, int]]]:
        """Return a sequence of (transaction name, parameter values)."""
        ...


@dataclass
class SequenceWorkloadModel:
    """A workload model drawing i.i.d. transactions from a weighted mix.

    ``mix`` maps transaction names to relative frequencies;
    ``param_sampler`` draws parameter values per transaction.
    """

    mix: dict[str, float]
    param_sampler: Callable[[random.Random, str], dict[str, int]] = (
        lambda rng, name: {}
    )

    def sample(self, rng: random.Random, length: int) -> list[tuple[str, dict[str, int]]]:
        names = list(self.mix)
        weights = [self.mix[n] for n in names]
        out = []
        for _ in range(length):
            name = rng.choices(names, weights=weights, k=1)[0]
            out.append((name, self.param_sampler(rng, name)))
        return out


@dataclass
class OptimizerStats:
    """Observability for benchmarks (Figure 24's solver-time column)."""

    sampled_states: int = 0
    soft_constraints: int = 0
    satisfied: int = 0
    engine: str = "fast"


def _simulate_sequence(
    db: dict[str, int],
    sequence: Sequence[tuple[str, dict[str, int]]],
    transactions: Mapping[str, Transaction],
    arrays: Mapping[str, tuple[int, ...]] | None,
) -> list[dict[str, int]]:
    """Replay a sampled sequence, returning the post-state after every
    transaction (Algorithm 1 line 8: [D_1, ..., D_L])."""
    states: list[dict[str, int]] = []
    current = dict(db)
    for name, params in sequence:
        tx = transactions[name]
        result = evaluate(tx, current, params=params, arrays=arrays)
        current = result.db
        states.append(current)
    return states


def sample_executions(
    db_snapshot: Mapping[str, int],
    transactions: Mapping[str, Transaction],
    model: WorkloadModel,
    lookahead: int,
    cost_factor: int,
    rng: random.Random,
    arrays: Mapping[str, tuple[int, ...]] | None = None,
) -> list[list[dict[str, int]]]:
    """Lines 6-8 of Algorithm 1: f sampled executions of length L,
    each yielding its sequence of post-transaction database states."""
    runs: list[list[dict[str, int]]] = []
    for _ in range(cost_factor):
        sequence = model.sample(rng, lookahead)
        runs.append(
            _simulate_sequence(dict(db_snapshot), sequence, transactions, arrays)
        )
    return runs


def configure_from_samples(
    templates: TreatyTemplates,
    getobj: Callable[[str], int],
    state_runs: list[list[dict[str, int]]],
    engine: str = "fast",
) -> tuple[Configuration, OptimizerStats]:
    """Lines 9-13 of Algorithm 1 given pre-sampled executions.

    Split out from :func:`optimize_configuration` so an incremental
    treaty generator can sample the workload once and configure many
    template groups against the same futures.
    """
    stats = OptimizerStats(engine=engine)
    base = default_configuration(templates, getobj)

    # Soft bounds per configuration variable: one entry per sampled
    # execution (the tightest bound over that execution's states).
    soft_bounds: dict[ConfigVar, list[int]] = {}
    opt_clauses = [cl for cl in templates.clauses if cl.op == "<="]
    if not opt_clauses or not state_runs:
        return base, stats

    for states in state_runs:
        stats.sampled_states += len(states)
        tightest: dict[ConfigVar, int] = {}
        for state in states:
            lookup = lambda name: state.get(name, 0)  # noqa: E731
            for clause in opt_clauses:
                for site in clause.sites:
                    var = clause.config_var(site)
                    bound = clause.bound - clause.local_sum_on(site, lookup)
                    prev = tightest.get(var)
                    if prev is None or bound < prev:
                        tightest[var] = bound
        for var, bound in tightest.items():
            soft_bounds.setdefault(var, []).append(bound)

    stats.soft_constraints = sum(len(v) for v in soft_bounds.values())
    values = dict(base.values)

    if engine == "fast":
        for clause in opt_clauses:
            # base.values holds the Theorem 4.3 frozen defaults, which
            # for <=-clauses are exactly the H2 caps n - local_sum(D).
            # Sampled demand (cap minus tightest sampled bound) steers
            # the distribution of leftover slack.
            demand: dict[ConfigVar, int] = {}
            for site in clause.sites:
                var = clause.config_var(site)
                bounds = soft_bounds.get(var, [])
                cap = base.values[var]
                demand[var] = max(cap - min(bounds), 0) if bounds else 0
            # Laplace-style smoothing: finite samples of a uniform
            # workload should not produce a lopsided split.
            total_demand = sum(demand.values())
            smoothing = max(1, total_demand // (2 * len(clause.sites)))
            demand = {var: d + smoothing for var, d in demand.items()}
            instance = BudgetInstance(
                sites=[clause.config_var(s) for s in clause.sites],
                required_total=(len(clause.sites) - 1) * clause.bound,
                soft_upper={
                    clause.config_var(s): soft_bounds.get(clause.config_var(s), [])
                    for s in clause.sites
                },
                hard_upper={
                    clause.config_var(s): base.values[clause.config_var(s)]
                    for s in clause.sites
                },
                slack_weights=demand,
            )
            solution = solve_budget_allocation(instance)
            values.update(solution.assignment)
            stats.satisfied += solution.satisfied
    elif engine == "fumalik":
        hard = [cl.hard_constraint() for cl in opt_clauses]
        # H2 caps as hard constraints.
        for clause in opt_clauses:
            for site in clause.sites:
                var = clause.config_var(site)
                hard.append(
                    LinearConstraint.make(
                        LinearExpr.variable(var), "<=", base.values[var]
                    )
                )
        soft: list[LinearConstraint] = []
        for var, bounds in sorted(soft_bounds.items(), key=lambda kv: repr(kv[0])):
            for b in bounds:
                soft.append(LinearConstraint.make(LinearExpr.variable(var), "<=", b))
        result = fu_malik_maxsat(hard, soft)
        for clause in opt_clauses:
            for site in clause.sites:
                var = clause.config_var(site)
                if var in result.assignment:
                    values[var] = result.assignment[var]
        stats.satisfied = result.num_satisfied
    else:
        raise ValueError(f"unknown MaxSAT engine {engine!r}")

    return Configuration(values=values, strategy=f"optimized-{engine}"), stats


def demand_split(slack: int, weights: Sequence[float], floor: int) -> list[int]:
    """Split ``slack`` indivisible units proportionally to ``weights``.

    The demand-proportional allocation at the heart of adaptive treaty
    reallocation: each participant first receives a starvation floor
    of ``min(floor, slack // len(weights))`` units (so a site whose
    observed demand is zero still keeps headroom for its next burst),
    and the remainder is distributed proportionally to the weights by
    the largest-remainder method.  Invariants (property-tested in
    ``tests/treaty/test_demand.py``):

    - the shares sum to ``slack`` **exactly** -- no unit of global
      slack is wasted (equal-split floors the quotient and strands up
      to ``K - 1`` units) and none is invented, which is what keeps
      the H1 configuration-sum identity exact;
    - every share is non-negative, and at least the effective floor;
    - all-zero weights degrade to an (exact) equal split.

    Deterministic: remainder ties break by lowest index.
    """
    if slack < 0:
        raise ValueError(f"cannot split negative slack {slack}")
    count = len(weights)
    if count == 0:
        raise ValueError("cannot split slack among zero sites")
    if any(w < 0 for w in weights):
        raise ValueError("demand weights must be non-negative")
    base = min(max(floor, 0), slack // count)
    shares = [base] * count
    remainder = slack - base * count
    total_weight = sum(weights)
    if total_weight <= 0:
        weights = [1.0] * count
        total_weight = float(count)
    quotas = [remainder * w / total_weight for w in weights]
    for i in range(count):
        shares[i] += int(quotas[i])
    leftover = remainder - sum(int(q) for q in quotas)
    by_remainder = sorted(
        range(count), key=lambda i: (-(quotas[i] - int(quotas[i])), i)
    )
    for i in by_remainder[:leftover]:
        shares[i] += 1
    return shares


def demand_configuration(
    templates: TreatyTemplates,
    getobj: Callable[[str], int],
    object_rate: Callable[[str], float],
    floor: int | None = None,
) -> Configuration:
    """Demand-weighted configuration: size each site's split of every
    ``<=``-clause proportionally to its *observed* consumption rate.

    ``object_rate`` maps a ground object name to its estimated write
    rate (the online :class:`~repro.protocol.homeostasis.DemandEstimator`
    fed from the commit trace); a site's weight for a clause is the
    summed rate of the objects in its local sub-expression.  Site ``k``
    receives ``c_k = n - local_sum_k(D) - share_k`` where the shares
    partition the global slack ``n - psi(D)`` exactly, so

    - H1 is exact: ``sum_k c_k = K*n - psi(D) - slack = (K-1) * n``;
    - H2 holds: ``share_k >= 0`` gives ``local_sum_k <= n - c_k``.

    Two regularizers keep sparse, noisy rate estimates from producing
    worse allocations than a blind equal split (per-object write
    counts are tiny on workloads like TPC-C, where the item space is
    wide and re-splits are frequent):

    - Laplace-style smoothing (the same scheme the fast MaxSAT engine
      applies to its sampled demand): every site's weight gains
      ``total_rate / (2 K)``, so a site that happens to hold the only
      few recent writes gets ~3/4 of the slack instead of all of it,
      and uniform demand stays exactly uniform;
    - a scale-aware starvation floor: with ``floor=None`` (default)
      each site keeps at least ``max(1, slack // (4 K))`` units, ~6%
      of the clause's budget at K=4, whatever the estimator says.

    Equality clauses admit no slack and take the Theorem 4.3 frozen
    default, exactly as in the other strategies.
    """
    config = Configuration(strategy="demand")
    for clause in templates.clauses:
        local_sums = {s: clause.local_sum_on(s, getobj) for s in clause.sites}
        total = sum(local_sums.values())
        if clause.op == "=":
            for site in clause.sites:
                config.values[clause.config_var(site)] = total - local_sums[site]
            continue
        slack = clause.bound - total
        if slack < 0:
            raise ValueError(
                f"clause {clause.index} does not hold on the current database"
            )
        weights = []
        for site in clause.sites:
            expr = clause.site_exprs.get(site)
            rate = 0.0
            if expr is not None:
                for var, _coeff in expr.coeffs:
                    rate += object_rate(var.name)
            weights.append(rate)
        smoothing = sum(weights) / (2.0 * len(clause.sites))
        weights = [w + smoothing for w in weights]
        clause_floor = (
            floor if floor is not None else max(1, slack // (4 * len(clause.sites)))
        )
        shares = demand_split(slack, weights, clause_floor)
        for site, share in zip(clause.sites, shares):
            config.values[clause.config_var(site)] = (
                clause.bound - local_sums[site] - share
            )
    return config


def optimize_configuration(
    templates: TreatyTemplates,
    getobj: Callable[[str], int],
    db_snapshot: Mapping[str, int],
    transactions: Mapping[str, Transaction],
    model: WorkloadModel,
    lookahead: int = 20,
    cost_factor: int = 3,
    rng: random.Random | None = None,
    engine: str = "fast",
    arrays: Mapping[str, tuple[int, ...]] | None = None,
) -> tuple[Configuration, OptimizerStats]:
    """Algorithm 1: find a valid configuration minimizing expected
    violations over sampled future executions.

    ``engine`` is ``"fast"`` (specialized exact budget solver) or
    ``"fumalik"`` (the faithful Fu-Malik reimplementation).
    """
    rng = rng or random.Random(0)
    if lookahead <= 0 or cost_factor <= 0:
        return default_configuration(templates, getobj), OptimizerStats(engine=engine)
    runs = sample_executions(
        db_snapshot, transactions, model, lookahead, cost_factor, rng, arrays
    )
    return configure_from_samples(templates, getobj, runs, engine=engine)
