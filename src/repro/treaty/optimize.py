"""Algorithm 1 (Appendix C.2): workload-optimized treaty configurations.

Given the local treaty templates, a workload model and two tunable
parameters -- the lookahead interval ``L`` and the cost factor ``f``
-- the optimizer:

1. emits the hard constraints theta_h (locals imply the global
   treaty, one linear constraint over configuration variables per
   clause);
2. samples ``f`` future executions of ``L`` transactions each from
   the workload model and replays them on a scratch copy of the
   current database, recording after every transaction the soft
   constraint "the local treaties hold on this state" -- which,
   plugging the state's local sums into the templates, is an upper
   bound on each clause's configuration variables (simplified to the
   tightest bound per variable per execution, exactly as in the
   worked example of Appendix C.2);
3. hands hard + soft constraints to a MaxSAT engine: either the
   faithful Fu-Malik procedure over our LIA solver, or the exact
   specialized budget solver (default -- orders of magnitude faster,
   same optima; see ``benchmarks/bench_ablation_maxsat.py``).

Equality clauses admit no optimization freedom under the per-clause
split (their configuration variables are pinned by the H1 equality),
so they take the Theorem 4.3 default.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Mapping, Protocol, Sequence

from repro.lang.ast import Transaction
from repro.lang.interp import evaluate
from repro.logic.linear import LinearConstraint, LinearExpr
from repro.solver.fastmaxsat import BudgetInstance, solve_budget_allocation
from repro.solver.maxsat import fu_malik_maxsat
from repro.treaty.config import Configuration, default_configuration
from repro.treaty.templates import ConfigVar, TreatyTemplates


class WorkloadModel(Protocol):
    """A generative model of the expected future workload.

    The paper leaves the model's provenance open ("generated
    dynamically by gathering workload data as the system runs, or in
    other ways"); the optimizer only needs :meth:`sample`.
    """

    def sample(self, rng: random.Random, length: int) -> list[tuple[str, dict[str, int]]]:
        """Return a sequence of (transaction name, parameter values)."""
        ...


@dataclass
class SequenceWorkloadModel:
    """A workload model drawing i.i.d. transactions from a weighted mix.

    ``mix`` maps transaction names to relative frequencies;
    ``param_sampler`` draws parameter values per transaction.
    """

    mix: dict[str, float]
    param_sampler: Callable[[random.Random, str], dict[str, int]] = (
        lambda rng, name: {}
    )

    def sample(self, rng: random.Random, length: int) -> list[tuple[str, dict[str, int]]]:
        names = list(self.mix)
        weights = [self.mix[n] for n in names]
        out = []
        for _ in range(length):
            name = rng.choices(names, weights=weights, k=1)[0]
            out.append((name, self.param_sampler(rng, name)))
        return out


@dataclass
class OptimizerStats:
    """Observability for benchmarks (Figure 24's solver-time column)."""

    sampled_states: int = 0
    soft_constraints: int = 0
    satisfied: int = 0
    engine: str = "fast"


def _simulate_sequence(
    db: dict[str, int],
    sequence: Sequence[tuple[str, dict[str, int]]],
    transactions: Mapping[str, Transaction],
    arrays: Mapping[str, tuple[int, ...]] | None,
) -> list[dict[str, int]]:
    """Replay a sampled sequence, returning the post-state after every
    transaction (Algorithm 1 line 8: [D_1, ..., D_L])."""
    states: list[dict[str, int]] = []
    current = dict(db)
    for name, params in sequence:
        tx = transactions[name]
        result = evaluate(tx, current, params=params, arrays=arrays)
        current = result.db
        states.append(current)
    return states


def sample_executions(
    db_snapshot: Mapping[str, int],
    transactions: Mapping[str, Transaction],
    model: WorkloadModel,
    lookahead: int,
    cost_factor: int,
    rng: random.Random,
    arrays: Mapping[str, tuple[int, ...]] | None = None,
) -> list[list[dict[str, int]]]:
    """Lines 6-8 of Algorithm 1: f sampled executions of length L,
    each yielding its sequence of post-transaction database states."""
    runs: list[list[dict[str, int]]] = []
    for _ in range(cost_factor):
        sequence = model.sample(rng, lookahead)
        runs.append(
            _simulate_sequence(dict(db_snapshot), sequence, transactions, arrays)
        )
    return runs


def configure_from_samples(
    templates: TreatyTemplates,
    getobj: Callable[[str], int],
    state_runs: list[list[dict[str, int]]],
    engine: str = "fast",
) -> tuple[Configuration, OptimizerStats]:
    """Lines 9-13 of Algorithm 1 given pre-sampled executions.

    Split out from :func:`optimize_configuration` so an incremental
    treaty generator can sample the workload once and configure many
    template groups against the same futures.
    """
    stats = OptimizerStats(engine=engine)
    base = default_configuration(templates, getobj)

    # Soft bounds per configuration variable: one entry per sampled
    # execution (the tightest bound over that execution's states).
    soft_bounds: dict[ConfigVar, list[int]] = {}
    opt_clauses = [cl for cl in templates.clauses if cl.op == "<="]
    if not opt_clauses or not state_runs:
        return base, stats

    for states in state_runs:
        stats.sampled_states += len(states)
        tightest: dict[ConfigVar, int] = {}
        for state in states:
            lookup = lambda name: state.get(name, 0)  # noqa: E731
            for clause in opt_clauses:
                for site in clause.sites:
                    var = clause.config_var(site)
                    bound = clause.bound - clause.local_sum_on(site, lookup)
                    prev = tightest.get(var)
                    if prev is None or bound < prev:
                        tightest[var] = bound
        for var, bound in tightest.items():
            soft_bounds.setdefault(var, []).append(bound)

    stats.soft_constraints = sum(len(v) for v in soft_bounds.values())
    values = dict(base.values)

    if engine == "fast":
        for clause in opt_clauses:
            # base.values holds the Theorem 4.3 frozen defaults, which
            # for <=-clauses are exactly the H2 caps n - local_sum(D).
            # Sampled demand (cap minus tightest sampled bound) steers
            # the distribution of leftover slack.
            demand: dict[ConfigVar, int] = {}
            for site in clause.sites:
                var = clause.config_var(site)
                bounds = soft_bounds.get(var, [])
                cap = base.values[var]
                demand[var] = max(cap - min(bounds), 0) if bounds else 0
            # Laplace-style smoothing: finite samples of a uniform
            # workload should not produce a lopsided split.
            total_demand = sum(demand.values())
            smoothing = max(1, total_demand // (2 * len(clause.sites)))
            demand = {var: d + smoothing for var, d in demand.items()}
            instance = BudgetInstance(
                sites=[clause.config_var(s) for s in clause.sites],
                required_total=(len(clause.sites) - 1) * clause.bound,
                soft_upper={
                    clause.config_var(s): soft_bounds.get(clause.config_var(s), [])
                    for s in clause.sites
                },
                hard_upper={
                    clause.config_var(s): base.values[clause.config_var(s)]
                    for s in clause.sites
                },
                slack_weights=demand,
            )
            solution = solve_budget_allocation(instance)
            values.update(solution.assignment)
            stats.satisfied += solution.satisfied
    elif engine == "fumalik":
        hard = [cl.hard_constraint() for cl in opt_clauses]
        # H2 caps as hard constraints.
        for clause in opt_clauses:
            for site in clause.sites:
                var = clause.config_var(site)
                hard.append(
                    LinearConstraint.make(
                        LinearExpr.variable(var), "<=", base.values[var]
                    )
                )
        soft: list[LinearConstraint] = []
        for var, bounds in sorted(soft_bounds.items(), key=lambda kv: repr(kv[0])):
            for b in bounds:
                soft.append(LinearConstraint.make(LinearExpr.variable(var), "<=", b))
        result = fu_malik_maxsat(hard, soft)
        for clause in opt_clauses:
            for site in clause.sites:
                var = clause.config_var(site)
                if var in result.assignment:
                    values[var] = result.assignment[var]
        stats.satisfied = result.num_satisfied
    else:
        raise ValueError(f"unknown MaxSAT engine {engine!r}")

    return Configuration(values=values, strategy=f"optimized-{engine}"), stats


def optimize_configuration(
    templates: TreatyTemplates,
    getobj: Callable[[str], int],
    db_snapshot: Mapping[str, int],
    transactions: Mapping[str, Transaction],
    model: WorkloadModel,
    lookahead: int = 20,
    cost_factor: int = 3,
    rng: random.Random | None = None,
    engine: str = "fast",
    arrays: Mapping[str, tuple[int, ...]] | None = None,
) -> tuple[Configuration, OptimizerStats]:
    """Algorithm 1: find a valid configuration minimizing expected
    violations over sampled future executions.

    ``engine`` is ``"fast"`` (specialized exact budget solver) or
    ``"fumalik"`` (the faithful Fu-Malik reimplementation).
    """
    rng = rng or random.Random(0)
    if lookahead <= 0 or cost_factor <= 0:
        return default_configuration(templates, getobj), OptimizerStats(engine=engine)
    runs = sample_executions(
        db_snapshot, transactions, model, lookahead, cost_factor, rng, arrays
    )
    return configure_from_samples(templates, getobj, runs, engine=engine)
