"""The treaty table (Section 5.1).

"The protocol initializer sets up the treaty table -- a data structure
that at any given time contains the current global treaty and the
current local treaty configuration."  Each site keeps a copy; stored
procedures consult it on every commit, and the treaty negotiator
replaces it at each round boundary.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.logic.linear import LinearConstraint
from repro.logic.linearize import LinearizedTreaty
from repro.logic.terms import ObjT
from repro.treaty.config import Configuration, local_treaties
from repro.treaty.templates import TreatyTemplates


def _evaluate(con: LinearConstraint, getobj: Callable[[str], int]) -> bool:
    total = 0
    for var, coeff in con.expr.coeffs:
        assert isinstance(var, ObjT)
        total += coeff * getobj(var.name)
    return total <= con.bound if con.op == "<=" else total == con.bound


@dataclass
class LocalTreaty:
    """The conjunction of local treaty clauses enforced at one site."""

    site: int
    constraints: list[LinearConstraint] = field(default_factory=list)
    _by_object: dict[str, list[LinearConstraint]] | None = None

    def holds(self, getobj: Callable[[str], int]) -> bool:
        return all(_evaluate(con, getobj) for con in self.constraints)

    def holds_after_writes(
        self, getobj: Callable[[str], int], written: set[str]
    ) -> bool:
        """Treaty check restricted to clauses touching written objects.

        Sound fast path for the per-commit check: the treaty held
        before the transaction (H2 at round start, inductively per
        commit), and a clause's truth value can only change if one of
        its objects was written.
        """
        if self._by_object is None:
            index: dict[str, list[LinearConstraint]] = {}
            for con in self.constraints:
                for var in con.variables():
                    assert isinstance(var, ObjT)
                    index.setdefault(var.name, []).append(con)
            self._by_object = index
        seen: set[int] = set()
        for name in written:
            for con in self._by_object.get(name, ()):
                if id(con) in seen:
                    continue
                seen.add(id(con))
                if not _evaluate(con, getobj):
                    return False
        return True

    def violated_clauses(self, getobj: Callable[[str], int]) -> list[LinearConstraint]:
        return [con for con in self.constraints if not _evaluate(con, getobj)]

    def objects(self) -> set[str]:
        names: set[str] = set()
        for con in self.constraints:
            for var in con.variables():
                assert isinstance(var, ObjT)
                names.add(var.name)
        return names

    def pretty(self) -> str:
        body = " and ".join(c.pretty() for c in self.constraints) or "true"
        return f"site {self.site}: {body}"


@dataclass
class TreatyTable:
    """Current global treaty plus its per-site local treaties."""

    global_treaty: LinearizedTreaty
    templates: TreatyTemplates
    configuration: Configuration
    locals: dict[int, LocalTreaty] = field(default_factory=dict)
    round_number: int = 0

    @classmethod
    def assemble(
        cls,
        global_treaty: LinearizedTreaty,
        templates: TreatyTemplates,
        configuration: Configuration,
        round_number: int = 0,
    ) -> "TreatyTable":
        locals_ = {
            site: LocalTreaty(
                site=site,
                constraints=[c for c in constraints if not c.is_trivially_true()],
            )
            for site, constraints in local_treaties(templates, configuration).items()
        }
        return cls(
            global_treaty=global_treaty,
            templates=templates,
            configuration=configuration,
            locals=locals_,
            round_number=round_number,
        )

    def local_for(self, site: int) -> LocalTreaty:
        return self.locals[site]

    def check_local(self, site: int, getobj: Callable[[str], int]) -> bool:
        """The per-commit check a stored procedure performs."""
        return self.locals[site].holds(getobj)

    def global_holds(self, getobj: Callable[[str], int]) -> bool:
        """Direct check of the global treaty (needs a global view;
        used in tests and during synchronization, never during normal
        disconnected execution)."""
        return self.global_treaty.holds_on(getobj)

    def pretty(self) -> str:
        lines = [f"treaty table (round {self.round_number})"]
        lines.append("  global: " + self.global_treaty.pretty())
        for site in sorted(self.locals):
            lines.append("  " + self.locals[site].pretty())
        return "\n".join(lines)
