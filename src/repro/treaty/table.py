"""The treaty table (Section 5.1).

"The protocol initializer sets up the treaty table -- a data structure
that at any given time contains the current global treaty and the
current local treaty configuration."  Each site keeps a copy; stored
procedures consult it on every commit, and the treaty negotiator
replaces it at each round boundary.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.logic.compile import ClauseCheck, compile_clause, compile_clauses
from repro.logic.linear import LinearConstraint
from repro.logic.linearize import LinearizedTreaty
from repro.logic.terms import ObjT
from repro.treaty.config import Configuration, local_treaties
from repro.treaty.templates import TreatyTemplates


@dataclass
class LocalTreaty:
    """The conjunction of local treaty clauses enforced at one site.

    ``constraints`` must not be mutated after construction: the
    compiled whole-treaty check and the per-object clause index are
    built lazily from it and cached.  Replacing a site's treaty means
    installing a *new* ``LocalTreaty`` (which is what every install
    path does), never editing one in place.
    """

    site: int
    constraints: list[LinearConstraint] = field(default_factory=list)
    _by_object: dict[str, list[tuple[LinearConstraint, ClauseCheck]]] | None = None
    _compiled: ClauseCheck | None = None
    _clause_checks_cache: list[tuple[LinearConstraint, ClauseCheck]] | None = None
    _subset_checks: dict[tuple[int, ...], ClauseCheck] | None = None

    def compiled_check(self) -> ClauseCheck:
        """The whole-treaty check as one compiled closure (the
        per-commit fast path)."""
        if self._compiled is None:
            self._compiled = compile_clauses(self.constraints)
        return self._compiled

    def holds(self, getobj: Callable[[str], int]) -> bool:
        return self.compiled_check()(getobj)

    def _clause_checks(self) -> list[tuple[LinearConstraint, ClauseCheck]]:
        """Per-clause compiled checks, in clause order, built once per
        treaty (:meth:`violated_clauses` and the per-object index both
        read from here instead of re-entering ``compile_clause``)."""
        if self._clause_checks_cache is None:
            self._clause_checks_cache = [
                (con, compile_clause(con)) for con in self.constraints
            ]
        return self._clause_checks_cache

    def _object_index(self) -> dict[str, list[tuple[LinearConstraint, ClauseCheck]]]:
        if self._by_object is None:
            index: dict[str, list[tuple[LinearConstraint, ClauseCheck]]] = {}
            for con, check in self._clause_checks():
                for var in con.variables():
                    assert isinstance(var, ObjT)
                    index.setdefault(var.name, []).append((con, check))
            self._by_object = index
        return self._by_object

    def holds_after_writes(
        self, getobj: Callable[[str], int], written: set[str]
    ) -> bool:
        """Treaty check restricted to clauses touching written objects.

        Sound fast path for the per-commit check: the treaty held
        before the transaction (H2 at round start, inductively per
        commit), and a clause's truth value can only change if one of
        its objects was written.
        """
        return not self.violations_after_writes(getobj, written)

    def violations_after_writes(
        self, getobj: Callable[[str], int], written: set[str]
    ) -> set[str]:
        """Objects of every violated clause touching the written set
        (empty means the treaty still holds).

        The object set seeds the cleanup phase's participant
        computation: the violated treaty factors name the sites whose
        state and treaty pieces the negotiation must involve.
        """
        index = self._object_index()
        seen: set[int] = set()
        violated: set[str] = set()
        for name in written:
            for con, check in index.get(name, ()):
                if id(con) in seen:
                    continue
                seen.add(id(con))
                if not check(getobj):
                    for var in con.variables():
                        assert isinstance(var, ObjT)
                        violated.add(var.name)
        return violated

    def subset_check(self, indices: tuple[int, ...]) -> ClauseCheck:
        """Compiled conjunction of the clauses at the given indices.

        The path-sensitive tier precomputes, per stored-procedure
        execution path, which clause indices the path's statically
        known write set can touch; the per-commit check for such a
        path is this one closure call instead of the per-object index
        walk.  Compiled once per (treaty, index tuple) -- the
        underlying :func:`compile_clauses` memoizes by constraint
        tuple, so identical subsets across reinstalls share code."""
        if self._subset_checks is None:
            self._subset_checks = {}
        check = self._subset_checks.get(indices)
        if check is None:
            check = compile_clauses(tuple(self.constraints[i] for i in indices))
            self._subset_checks[indices] = check
        return check

    def violated_clauses(self, getobj: Callable[[str], int]) -> list[LinearConstraint]:
        return [
            con for con, check in self._clause_checks() if not check(getobj)
        ]

    def objects(self) -> set[str]:
        names: set[str] = set()
        for con in self.constraints:
            for var in con.variables():
                assert isinstance(var, ObjT)
                names.add(var.name)
        return names

    def pretty(self) -> str:
        body = " and ".join(c.pretty() for c in self.constraints) or "true"
        return f"site {self.site}: {body}"


@dataclass
class TreatyTable:
    """Current global treaty plus its per-site local treaties."""

    global_treaty: LinearizedTreaty
    templates: TreatyTemplates
    configuration: Configuration
    locals: dict[int, LocalTreaty] = field(default_factory=dict)
    round_number: int = 0
    #: lazy per-site factor index: object name -> sites whose local
    #: treaty enforces a clause mentioning it
    _factor_sites: dict[str, set[int]] | None = None
    #: per-site compiled whole-treaty checks (the ``check_local`` fast
    #: path); invalidated by :meth:`install_local`
    _compiled_checks: dict[int, ClauseCheck] = field(default_factory=dict)
    #: per-site path-check kinds, recorded at install time for
    #: observability: site -> tx name -> one check kind per execution
    #: path (row index order).  The authoritative partition lives on
    #: each :class:`SiteServer`; this mirror is what ``pretty`` and the
    #: classification tooling read without reaching into servers.
    path_kinds: dict[int, dict[str, tuple[str, ...]]] = field(default_factory=dict)

    @classmethod
    def assemble(
        cls,
        global_treaty: LinearizedTreaty,
        templates: TreatyTemplates,
        configuration: Configuration,
        round_number: int = 0,
    ) -> "TreatyTable":
        locals_ = {
            site: LocalTreaty(
                site=site,
                constraints=[c for c in constraints if not c.is_trivially_true()],
            )
            for site, constraints in local_treaties(templates, configuration).items()
        }
        return cls(
            global_treaty=global_treaty,
            templates=templates,
            configuration=configuration,
            locals=locals_,
            round_number=round_number,
        )

    def local_for(self, site: int) -> LocalTreaty:
        return self.locals[site]

    def install_local(self, site: int, treaty: LocalTreaty) -> None:
        """Replace one site's local treaty.

        Drops the site's compiled check and the per-site factor index
        so both are rebuilt from the new clauses on next use (the
        compiled-check cache must never outlive the treaty it was
        lowered from).
        """
        self.locals[site] = treaty
        self._compiled_checks.pop(site, None)
        self._factor_sites = None
        self.path_kinds.pop(site, None)

    def record_paths(self, site: int, paths) -> None:
        """Mirror one site's installed path-check table (kinds only)."""
        self.path_kinds[site] = {
            tx: tuple(check.kind for check in checks)
            for tx, checks in sorted(paths.items())
        }

    def precompile(self) -> int:
        """Eagerly compile every site's check; returns the number of
        sites warmed.  Normally compilation is lazy (first check after
        an install); the simulator warms the cache up front so no
        transaction pays the one-time lowering cost mid-run."""
        for site in self.locals:
            self._compiled_check(site)
        return len(self.locals)

    def _compiled_check(self, site: int) -> ClauseCheck:
        check = self._compiled_checks.get(site)
        if check is None:
            check = self.locals[site].compiled_check()
            self._compiled_checks[site] = check
        return check

    def sites_for_objects(self, names) -> set[int]:
        """Sites whose installed local treaty has a clause over any of
        the given objects (the per-site factor index).

        These are exactly the sites whose enforcement depends on the
        objects, so any negotiation that changes them must include
        these sites in its participant set.
        """
        if self._factor_sites is None:
            index: dict[str, set[int]] = {}
            for site, local in self.locals.items():
                for name in local.objects():
                    index.setdefault(name, set()).add(site)
            self._factor_sites = index
        out: set[int] = set()
        for name in names:
            out |= self._factor_sites.get(name, set())
        return out

    def check_local(self, site: int, getobj: Callable[[str], int]) -> bool:
        """The per-commit check a stored procedure performs.

        One compiled-closure call: the site's entire local treaty is
        lowered to a single code object (cached per site, invalidated
        on :meth:`install_local`)."""
        return self._compiled_check(site)(getobj)

    def global_holds(self, getobj: Callable[[str], int]) -> bool:
        """Direct check of the global treaty (needs a global view;
        used in tests and during synchronization, never during normal
        disconnected execution)."""
        return self.global_treaty.holds_on(getobj)

    def pretty(self) -> str:
        lines = [f"treaty table (round {self.round_number})"]
        lines.append("  global: " + self.global_treaty.pretty())
        for site in sorted(self.locals):
            lines.append("  " + self.locals[site].pretty())
        return "\n".join(lines)
