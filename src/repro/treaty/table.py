"""The treaty table (Section 5.1).

"The protocol initializer sets up the treaty table -- a data structure
that at any given time contains the current global treaty and the
current local treaty configuration."  Each site keeps a copy; stored
procedures consult it on every commit, and the treaty negotiator
replaces it at each round boundary.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.logic.linear import LinearConstraint
from repro.logic.linearize import LinearizedTreaty
from repro.logic.terms import ObjT
from repro.treaty.config import Configuration, local_treaties
from repro.treaty.templates import TreatyTemplates


def _evaluate(con: LinearConstraint, getobj: Callable[[str], int]) -> bool:
    total = 0
    for var, coeff in con.expr.coeffs:
        assert isinstance(var, ObjT)
        total += coeff * getobj(var.name)
    return total <= con.bound if con.op == "<=" else total == con.bound


@dataclass
class LocalTreaty:
    """The conjunction of local treaty clauses enforced at one site."""

    site: int
    constraints: list[LinearConstraint] = field(default_factory=list)
    _by_object: dict[str, list[LinearConstraint]] | None = None

    def holds(self, getobj: Callable[[str], int]) -> bool:
        return all(_evaluate(con, getobj) for con in self.constraints)

    def _object_index(self) -> dict[str, list[LinearConstraint]]:
        if self._by_object is None:
            index: dict[str, list[LinearConstraint]] = {}
            for con in self.constraints:
                for var in con.variables():
                    assert isinstance(var, ObjT)
                    index.setdefault(var.name, []).append(con)
            self._by_object = index
        return self._by_object

    def holds_after_writes(
        self, getobj: Callable[[str], int], written: set[str]
    ) -> bool:
        """Treaty check restricted to clauses touching written objects.

        Sound fast path for the per-commit check: the treaty held
        before the transaction (H2 at round start, inductively per
        commit), and a clause's truth value can only change if one of
        its objects was written.
        """
        return not self.violations_after_writes(getobj, written)

    def violations_after_writes(
        self, getobj: Callable[[str], int], written: set[str]
    ) -> set[str]:
        """Objects of every violated clause touching the written set
        (empty means the treaty still holds).

        The object set seeds the cleanup phase's participant
        computation: the violated treaty factors name the sites whose
        state and treaty pieces the negotiation must involve.
        """
        index = self._object_index()
        seen: set[int] = set()
        violated: set[str] = set()
        for name in written:
            for con in index.get(name, ()):
                if id(con) in seen:
                    continue
                seen.add(id(con))
                if not _evaluate(con, getobj):
                    for var in con.variables():
                        assert isinstance(var, ObjT)
                        violated.add(var.name)
        return violated

    def violated_clauses(self, getobj: Callable[[str], int]) -> list[LinearConstraint]:
        return [con for con in self.constraints if not _evaluate(con, getobj)]

    def objects(self) -> set[str]:
        names: set[str] = set()
        for con in self.constraints:
            for var in con.variables():
                assert isinstance(var, ObjT)
                names.add(var.name)
        return names

    def pretty(self) -> str:
        body = " and ".join(c.pretty() for c in self.constraints) or "true"
        return f"site {self.site}: {body}"


@dataclass
class TreatyTable:
    """Current global treaty plus its per-site local treaties."""

    global_treaty: LinearizedTreaty
    templates: TreatyTemplates
    configuration: Configuration
    locals: dict[int, LocalTreaty] = field(default_factory=dict)
    round_number: int = 0
    #: lazy per-site factor index: object name -> sites whose local
    #: treaty enforces a clause mentioning it
    _factor_sites: dict[str, set[int]] | None = None

    @classmethod
    def assemble(
        cls,
        global_treaty: LinearizedTreaty,
        templates: TreatyTemplates,
        configuration: Configuration,
        round_number: int = 0,
    ) -> "TreatyTable":
        locals_ = {
            site: LocalTreaty(
                site=site,
                constraints=[c for c in constraints if not c.is_trivially_true()],
            )
            for site, constraints in local_treaties(templates, configuration).items()
        }
        return cls(
            global_treaty=global_treaty,
            templates=templates,
            configuration=configuration,
            locals=locals_,
            round_number=round_number,
        )

    def local_for(self, site: int) -> LocalTreaty:
        return self.locals[site]

    def sites_for_objects(self, names) -> set[int]:
        """Sites whose installed local treaty has a clause over any of
        the given objects (the per-site factor index).

        These are exactly the sites whose enforcement depends on the
        objects, so any negotiation that changes them must include
        these sites in its participant set.
        """
        if self._factor_sites is None:
            index: dict[str, set[int]] = {}
            for site, local in self.locals.items():
                for name in local.objects():
                    index.setdefault(name, set()).add(site)
            self._factor_sites = index
        out: set[int] = set()
        for name in names:
            out |= self._factor_sites.get(name, set())
        return out

    def check_local(self, site: int, getobj: Callable[[str], int]) -> bool:
        """The per-commit check a stored procedure performs."""
        return self.locals[site].holds(getobj)

    def global_holds(self, getobj: Callable[[str], int]) -> bool:
        """Direct check of the global treaty (needs a global view;
        used in tests and during synchronization, never during normal
        disconnected execution)."""
        return self.global_treaty.holds_on(getobj)

    def pretty(self) -> str:
        lines = [f"treaty table (round {self.round_number})"]
        lines.append("  global: " + self.global_treaty.pretty())
        for site in sorted(self.locals):
            lines.append("  " + self.locals[site].pretty())
        return "\n".join(lines)
