"""Local treaty templates (Section 4.2, step two).

Given the preprocessed global treaty -- a conjunction of linear
clauses ``sum_i d_i x_i OP n`` -- each site ``k`` receives, per
clause, the template

    sum_{Loc(x_i) = k} d_i x_i + c_k  OP  n

where ``c_k`` is a fresh *configuration variable*.  Any assignment of
integers to the configuration variables yields candidate local
treaties; H1 (locals imply the global clause) reduces, by the summing
argument in Theorem 4.3's proof, to one linear constraint per clause
over the configuration variables:

    <=-clauses:  sum_k c_k >= (K - 1) * n
    =-clauses :  sum_k c_k  = (K - 1) * n

(For ``K`` sites; each object lives on exactly one site, so summing
the K local clauses counts every object coefficient once and every
bound K times.)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.logic.linear import LinearConstraint, LinearExpr
from repro.logic.linearize import LinearizedTreaty
from repro.logic.terms import ObjT


@dataclass(frozen=True)
class ConfigVar:
    """The fresh configuration variable ``c_{site}`` of one clause."""

    site: int
    clause: int

    def __repr__(self) -> str:
        return f"c[s{self.site},cl{self.clause}]"


@dataclass
class ClauseTemplate:
    """Per-site split of one global clause."""

    index: int
    op: str  # '<=' or '='
    bound: int
    #: per site: the local sub-expression  sum_{Loc(x)=k} d_i x_i
    site_exprs: dict[int, LinearExpr]
    sites: tuple[int, ...]

    def config_var(self, site: int) -> ConfigVar:
        return ConfigVar(site=site, clause=self.index)

    def local_constraint(self, site: int, config_value: int) -> LinearConstraint:
        """The site's local clause with the configuration folded in:
        ``sum_local d_i x_i <= n - c_k`` (resp. ``=``)."""
        expr = self.site_exprs.get(site, LinearExpr.constant(0))
        return LinearConstraint.make(expr, self.op, self.bound - config_value)

    def hard_constraint(self) -> LinearConstraint:
        """The H1 requirement over this clause's configuration variables."""
        total = LinearExpr.make({self.config_var(s): 1 for s in self.sites})
        rhs = (len(self.sites) - 1) * self.bound
        if self.op == "=":
            return LinearConstraint.make(total, "=", rhs)
        # sum c_k >= rhs   <=>   -sum c_k <= -rhs
        return LinearConstraint.make(total.scaled(-1), "<=", -rhs)

    def local_sum_on(self, site: int, getobj: Callable[[str], int]) -> int:
        expr = self.site_exprs.get(site)
        if expr is None:
            return 0
        total = 0
        for var, coeff in expr.coeffs:
            assert isinstance(var, ObjT)
            total += coeff * getobj(var.name)
        return total

    def global_holds_on(self, getobj: Callable[[str], int]) -> bool:
        total = sum(self.local_sum_on(s, getobj) for s in self.sites)
        return total <= self.bound if self.op == "<=" else total == self.bound

    def pretty(self) -> str:
        parts = []
        for site in self.sites:
            expr = self.site_exprs.get(site, LinearExpr.constant(0))
            parts.append(
                f"site {site}: {expr.pretty()} + {self.config_var(site)!r} "
                f"{self.op} {self.bound}"
            )
        return f"clause {self.index}: " + " | ".join(parts)


@dataclass
class TreatyTemplates:
    """All clause templates of one global treaty."""

    clauses: list[ClauseTemplate] = field(default_factory=list)
    sites: tuple[int, ...] = ()

    def config_vars(self) -> list[ConfigVar]:
        return [cl.config_var(s) for cl in self.clauses for s in cl.sites]

    def hard_constraints(self) -> list[LinearConstraint]:
        """theta_h of Algorithm 1: locals must imply the global treaty."""
        return [cl.hard_constraint() for cl in self.clauses]

    def pretty(self) -> str:
        return "\n".join(cl.pretty() for cl in self.clauses)


class TemplateError(Exception):
    """Raised when templates cannot be built from the treaty."""


def build_templates(
    treaty: LinearizedTreaty,
    locate: Callable[[str], int],
    sites: Sequence[int],
) -> TreatyTemplates:
    """Split every clause of the linearized treaty across sites.

    ``locate`` maps a ground object name to the site storing it (the
    ``Loc`` function of Section 3.1).
    """
    site_tuple = tuple(sites)
    site_set = set(site_tuple)
    templates = TreatyTemplates(sites=site_tuple)
    for idx, con in enumerate(treaty.constraints):
        per_site: dict[int, dict] = {}
        for var, coeff in con.expr.coeffs:
            if not isinstance(var, ObjT):
                raise TemplateError(f"non-object variable {var!r} in treaty clause")
            site = locate(var.name)
            if site not in site_set:
                raise TemplateError(f"object {var.name!r} located on unknown site {site}")
            per_site.setdefault(site, {})[var] = coeff
        templates.clauses.append(
            ClauseTemplate(
                index=idx,
                op=con.op,
                bound=con.bound,
                site_exprs={s: LinearExpr.make(c) for s, c in per_site.items()},
                sites=site_tuple,
            )
        )
    return templates
