"""The paper's workloads, packaged for the kernel and the simulator.

- :mod:`repro.workloads.micro` -- the Section 6.1 microbenchmark:
  a replicated ``Stock(itemid, qty)`` table with the decrement/refill
  transaction of Listing 1, plus the multi-item variant of Appendix
  F.1 (Figure 27).
- :mod:`repro.workloads.tpcc` -- the Section 6.2 TPC-C subset:
  New Order / Payment / Delivery encoded in L++ with the Appendix E
  treaty structure.
- :mod:`repro.workloads.geo` -- a geo-partitioned variant of the
  microbenchmark: the item space is split into replication groups
  (site subsets), so treaty negotiations are participant-scoped and
  priced from the group's own RTT edges.
- :mod:`repro.workloads.topk` -- the Section 1 top-k aggregation
  example (Figures 1-2).
- :mod:`repro.workloads.weather` -- the Appendix D examples (top-k of
  minimums; top-k temperature differences).
"""

from repro.workloads.geo import GeoMicroWorkload
from repro.workloads.micro import MicroWorkload
from repro.workloads.tpcc import TpccWorkload
from repro.workloads.topk import TopKWorkload
from repro.workloads.weather import WeatherWorkload

__all__ = [
    "GeoMicroWorkload",
    "MicroWorkload",
    "TpccWorkload",
    "TopKWorkload",
    "WeatherWorkload",
]
