"""The paper's workloads, packaged for the kernel and the simulator.

- :mod:`repro.workloads.micro` -- the Section 6.1 microbenchmark:
  a replicated ``Stock(itemid, qty)`` table with the decrement/refill
  transaction of Listing 1, plus the multi-item variant of Appendix
  F.1 (Figure 27).
- :mod:`repro.workloads.tpcc` -- the Section 6.2 TPC-C subset:
  New Order / Payment / Delivery encoded in L++ with the Appendix E
  treaty structure.
- :mod:`repro.workloads.geo` -- a geo-partitioned variant of the
  microbenchmark: the item space is split into replication groups
  (site subsets), so treaty negotiations are participant-scoped and
  priced from the group's own RTT edges.
- :mod:`repro.workloads.topk` -- the Section 1 top-k aggregation
  example (Figures 1-2).
- :mod:`repro.workloads.weather` -- the Appendix D examples (top-k of
  minimums; top-k temperature differences).

The scenario fleet stresses regimes the paper's own benchmarks leave
implicit:

- :mod:`repro.workloads.flashsale` -- one hot SKU, a stock treaty
  whose headroom collapses toward zero (the adaptive-rebalance
  stress case).
- :mod:`repro.workloads.banking` -- cross-site account transfers
  under non-negative balances (the ING / coordination-avoidance
  canonical example).
- :mod:`repro.workloads.quota` -- a multi-tenant rate limiter: many
  small independent treaties stressing the treaty table and the
  compiled-check cache.

All three share the builder spine in
:mod:`repro.workloads.common`, whose :class:`WorkloadSpecError`
is raised by every workload constructor on a misconfigured spec.
"""

from repro.workloads.banking import BankingWorkload
from repro.workloads.common import ReplicatedWorkloadBase, WorkloadSpecError
from repro.workloads.flashsale import FlashSaleWorkload
from repro.workloads.geo import GeoMicroWorkload
from repro.workloads.micro import MicroWorkload
from repro.workloads.quota import QuotaWorkload
from repro.workloads.tpcc import TpccWorkload
from repro.workloads.topk import TopKWorkload
from repro.workloads.weather import WeatherWorkload

__all__ = [
    "BankingWorkload",
    "FlashSaleWorkload",
    "GeoMicroWorkload",
    "MicroWorkload",
    "QuotaWorkload",
    "ReplicatedWorkloadBase",
    "TpccWorkload",
    "TopKWorkload",
    "WeatherWorkload",
    "WorkloadSpecError",
]
