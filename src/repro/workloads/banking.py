"""Banking: cross-site transfers under non-negative balances.

The canonical coordination-avoidance case study (Soethout et al.'s
ING account transfers; Bailis et al.'s invariant-confluent balance
checks): money moves between accounts whose replicas live on
different sites, and the one invariant that must survive replication
is ``balance >= 0`` on every account.

A transfer is the interesting shape: *two* array slots touched in one
transaction, a guarded decrement on the source and an unconditional
credit to the destination.  After the Appendix B transform the debit
is the treaty-bearing write (the guard ``b >= amount`` becomes the
headroom the protocol splits across sites) while the credit is a free
local delta -- one transaction straddling both halves of the
classifier's verdict space.

Families over a replicated ``balance`` array:

- ``Transfer(src, dst, amount) distinct(src, dst)`` -- guarded move;
  insufficient funds means ``skip`` (the transfer bounces, the
  invariant holds).
- ``Deposit(acct, amount)`` -- unconditional credit
  (coordination-free after the transform, like TPC-C's Payment).
- ``Audit(acct)`` -- read-only balance probe (classifier-FREE;
  excluded from treaty generation like the micro workload's Audit).

``conservation(state, deposited)`` is the money-supply audit: no
execution mode may mint or burn money beyond the committed deposits.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.analysis.ground import ground_instances
from repro.analysis.symbolic import SymbolicTable, build_symbolic_table
from repro.lang.ast import Transaction
from repro.lang.parser import parse_transaction
from repro.protocol.remote_writes import (
    ReplicationSpec,
    delta_base,
    initial_replicated_db,
    replicate_workload,
)
from repro.treaty.optimize import SequenceWorkloadModel
from repro.workloads.common import (
    ReplicatedWorkloadBase,
    WorkloadSpecError,
    require_fraction,
    require_positive,
    require_sites,
)

#: transfer / deposit amounts (small, so treaty headroom stays tight)
AMOUNTS = (1, 2, 3)

TRANSFER_SRC = """
transaction Transfer(src, dst, amount) distinct(src, dst) {
  b := read(balance(@src));
  if b >= @amount then {
    write(balance(@src) = b - @amount);
    d := read(balance(@dst));
    write(balance(@dst) = d + @amount)
  } else { skip }
}
"""

DEPOSIT_SRC = """
transaction Deposit(acct, amount) {
  b := read(balance(@acct));
  write(balance(@acct) = b + @amount)
}
"""

AUDIT_SRC = """
transaction Audit(acct) {
  b := read(balance(@acct));
  print(b)
}
"""


@dataclass
class BankingRequest:
    """One client request, as the simulator sees it."""

    tx_name: str
    family: str  # 'Transfer' | 'Deposit' | 'Audit'
    params: dict[str, int]
    site: int
    accounts: tuple[int, ...]


@dataclass
class BankingWorkload(ReplicatedWorkloadBase):
    """Builder for the banking workload across execution modes."""

    num_accounts: int = 6
    num_sites: int = 2
    #: opening balance of every account
    initial_balance: int = 20
    #: fraction of all requests that are deposits
    deposit_fraction: float = 0.1
    #: fraction of all requests that are read-only audits
    audit_fraction: float = 0.0
    #: Zipf-ish skew: fraction of transfers debiting account 0
    hot_fraction: float = 0.0
    site_weights: dict[int, float] = field(default_factory=dict)
    init_seed: int = 1

    def __post_init__(self) -> None:
        require_sites("num_sites", self.num_sites, floor=2)
        if self.num_accounts < 2:
            raise WorkloadSpecError(
                "num_accounts must be >= 2 (a transfer needs distinct "
                f"src/dst), got {self.num_accounts!r}"
            )
        require_positive("initial_balance", self.initial_balance)
        require_fraction("deposit_fraction", self.deposit_fraction)
        require_fraction("audit_fraction", self.audit_fraction)
        require_fraction("hot_fraction", self.hot_fraction)
        if self.deposit_fraction + self.audit_fraction > 1.0:
            raise WorkloadSpecError(
                "deposit_fraction + audit_fraction must leave room for "
                f"transfers, got {self.deposit_fraction + self.audit_fraction!r}"
            )
        self.sites = tuple(range(self.num_sites))
        if not self.site_weights:
            self.site_weights = {s: 1.0 for s in self.sites}
        elif set(self.site_weights) != set(self.sites):
            raise WorkloadSpecError(
                f"site_weights keys {sorted(self.site_weights)} must match "
                f"sites {list(self.sites)}"
            )

        self.transfer = parse_transaction(TRANSFER_SRC)
        self.deposit = parse_transaction(DEPOSIT_SRC)
        self.audit = parse_transaction(AUDIT_SRC)
        families = [self.transfer, self.deposit]
        if self.audit_fraction > 0.0:
            families.append(self.audit)
        self.spec = ReplicationSpec(
            bases={"balance": self.sites}, home={"balance": 0}
        )
        self.variants = replicate_workload(families, self.sites, self.spec)
        self.tx_home = {
            name: int(name.rsplit("@s", 1)[1]) for name in self.variants
        }
        self.initial_values = {
            f"balance[{a}]": self.initial_balance
            for a in range(self.num_accounts)
        }
        self.initial_db = initial_replicated_db(
            self.initial_values, self.spec, self.sites
        )

    # -- analysis products ---------------------------------------------------

    def ground_tables(self) -> list[tuple[SymbolicTable, int]]:
        domains = {
            "src": list(range(self.num_accounts)),
            "dst": list(range(self.num_accounts)),
            "acct": list(range(self.num_accounts)),
            "amount": list(AMOUNTS),
        }
        out: list[tuple[SymbolicTable, int]] = []
        for name, tx in self.variants.items():
            if name.startswith("Audit@"):
                # Read-only probe: print pins every balance slot, which
                # is exactly the coordination the classifier proves it
                # does not need.  Same exclusion as micro's Audit.
                continue
            site = self.tx_home[name]
            for gi in ground_instances(
                tx, {p: domains[p] for p in tx.params}
            ):
                out.append((build_symbolic_table(gi.transaction), site))
        return out

    def workload_model(self) -> SequenceWorkloadModel:
        def sample_params(rng: random.Random, name: str) -> dict[str, int]:
            if name.startswith("Transfer@"):
                src, dst = self._sample_pair(rng)
                return {"src": src, "dst": dst, "amount": rng.choice(AMOUNTS)}
            if name.startswith("Deposit@"):
                return {
                    "acct": rng.randrange(self.num_accounts),
                    "amount": rng.choice(AMOUNTS),
                }
            return {"acct": rng.randrange(self.num_accounts)}

        mix: dict[str, float] = {}
        transfer_share = 1.0 - self.deposit_fraction - self.audit_fraction
        for name in self.variants:
            weight = self.site_weights[self.tx_home[name]]
            if name.startswith("Deposit@"):
                weight *= self.deposit_fraction
            elif name.startswith("Audit@"):
                weight *= self.audit_fraction
            else:
                weight *= transfer_share
            mix[name] = weight
        return SequenceWorkloadModel(mix=mix, param_sampler=sample_params)

    # -- request generation --------------------------------------------------

    def _sample_pair(self, rng: random.Random) -> tuple[int, int]:
        if self.hot_fraction > 0.0 and rng.random() < self.hot_fraction:
            src = 0
        else:
            src = rng.randrange(self.num_accounts)
        dst = rng.randrange(self.num_accounts - 1)
        if dst >= src:
            dst += 1
        return src, dst

    def next_request(
        self, rng: random.Random, site: int | None = None
    ) -> BankingRequest:
        if site is None:
            weights = [self.site_weights[s] for s in self.sites]
            site = rng.choices(self.sites, weights=weights, k=1)[0]
        draw = rng.random()
        if draw < self.deposit_fraction:
            acct = rng.randrange(self.num_accounts)
            amount = rng.choice(AMOUNTS)
            return BankingRequest(
                f"Deposit@s{site}",
                "Deposit",
                {"acct": acct, "amount": amount},
                site,
                (acct,),
            )
        if draw < self.deposit_fraction + self.audit_fraction:
            acct = rng.randrange(self.num_accounts)
            return BankingRequest(
                f"Audit@s{site}", "Audit", {"acct": acct}, site, (acct,)
            )
        src, dst = self._sample_pair(rng)
        amount = rng.choice(AMOUNTS)
        return BankingRequest(
            f"Transfer@s{site}",
            "Transfer",
            {"src": src, "dst": dst, "amount": amount},
            site,
            (src, dst),
        )

    # -- baselines -----------------------------------------------------------

    def baseline_transactions(self) -> dict[str, Transaction]:
        out: dict[str, Transaction] = {}
        for s in self.sites:
            out[f"Transfer@s{s}"] = self.transfer
            out[f"Deposit@s{s}"] = self.deposit
            if self.audit_fraction > 0.0:
                out[f"Audit@s{s}"] = self.audit
        return out

    # -- audits --------------------------------------------------------------

    def balances(self, state: dict[str, int]) -> dict[int, int]:
        """Logical per-account balance from a cluster's global state
        (base copy plus every site's delta)."""
        out: dict[int, int] = {}
        for a in range(self.num_accounts):
            total = state.get(f"balance[{a}]", 0)
            for s in self.sites:
                total += state.get(f"{delta_base('balance', s)}[{a}]", 0)
            out[a] = total
        return out

    def total_money(self, state: dict[str, int]) -> int:
        return sum(self.balances(state).values())

    def conservation_violations(
        self, state: dict[str, int], deposited: int
    ) -> list[str]:
        """The money-supply audit.  ``deposited`` is the sum of all
        committed Deposit amounts; transfers must conserve the total
        and no account may go negative."""
        problems: list[str] = []
        expected = self.num_accounts * self.initial_balance + deposited
        total = self.total_money(state)
        if total != expected:
            problems.append(
                f"money supply {total} != expected {expected} "
                f"(initial {self.num_accounts * self.initial_balance} "
                f"+ deposits {deposited})"
            )
        for acct, bal in self.balances(state).items():
            if bal < 0:
                problems.append(f"balance[{acct}] = {bal} < 0")
        return problems
